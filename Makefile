# CI entry points. `make ci` is the full gate: static checks, build,
# race-enabled tests (the internal/harness pool tests are the reason for
# -race), and a short-deadline smoke sweep through the parallel engine.
GO ?= go

.PHONY: ci vet build test race quick smoke bench

ci: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Full suite, no race detector (tier-1 gate: go build ./... && go test ./...).
test:
	$(GO) test ./...

# Full suite under the race detector; race-enables the harness tests.
race:
	$(GO) test -race ./...

# Fast iteration loop: skips the steady-state simulations but still runs
# the harness engine tests (they use synthetic jobs) under -race.
quick:
	$(GO) test -race -short ./...

# Short-deadline smoke sweep: exercises the worker pool, early stop,
# progress lines, and manifest output end to end in a few seconds.
smoke:
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,VAL -step 0.25 \
		-warmup 1000 -window 1000 -j 2 -manifest /tmp/hxsweep-smoke.json >/dev/null
	@grep -q '"events_per_sec"' /tmp/hxsweep-smoke.json
	@echo smoke OK

bench:
	$(GO) test -bench=. -benchmem
