# CI entry points. `make ci` is the full gate: static checks (vet plus
# the hxlint determinism suite), build, the full tier-1 test suite,
# race-enabled tests (the internal/harness pool tests are the reason for
# -race), and a short-deadline smoke sweep through the parallel engine.
GO ?= go
# bash: the cover gate uses pipefail so a failing `go test` is never
# masked by the tee pipeline.
SHELL := /bin/bash

.PHONY: ci vet lint build test race quick smoke faultsmoke ckptsmoke shardsmoke servesmoke fuzzshort cover bench

ci: vet lint build test race smoke faultsmoke ckptsmoke shardsmoke servesmoke fuzzshort cover bench

vet:
	$(GO) vet ./...

# Determinism-contract static analysis (see internal/lint): nodeterm,
# seedflow, maporder, noconc, and allocfree over the simulation packages
# and the CSV/manifest emission path, plus the interprocedural contract
# passes — stagesafe (unstaged mutations reachable from Act/Execute
# event entries) and statecover (Snapshot/Restore field coverage and
# configKey/optsKey completeness) — and allowaudit, which fails the
# build on stale or malformed //hxlint: directives. A gofmt cleanliness
# gate rides along. Exits nonzero on any finding.
lint:
	$(GO) run ./cmd/hxlint ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

# Full suite, no race detector (tier-1 gate: go build ./... && go test ./...).
test:
	$(GO) test ./...

# Race detector pass: the full internal tree (the harness pool is the
# concurrency that matters), plus the short root-package tests — the root
# package is steady-state simulations that run minutes each under the
# detector's slowdown without exercising any extra concurrency.
race:
	$(GO) test -race ./internal/...
	$(GO) test -race -short .

# Fast iteration loop: skips the steady-state simulations but still runs
# the harness engine tests (they use synthetic jobs) under -race.
quick:
	$(GO) test -race -short ./...

# Short-deadline smoke sweep: exercises the worker pool, early stop,
# progress lines, and manifest output end to end in a few seconds.
smoke:
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,VAL -step 0.25 \
		-warmup 1000 -window 1000 -j 2 -manifest /tmp/hxsweep-smoke.json >/dev/null
	@grep -q '"events_per_sec"' /tmp/hxsweep-smoke.json
	@echo smoke OK

# Fault-injection smoke: every algorithm sweeps a small topology with two
# failed links (the fault set is connectivity-preserving by construction).
# The gate: the fault-aware algorithms must not drop a single packet —
# column 9 of the sweep CSV is the whole-run drop count.
faultsmoke:
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,VAL,UGAL,UGAL+,DimWAR,OmniWAR,MinAD,DAL \
		-faults 2 -step 0.25 -warmup 1000 -window 1000 -j 2 -q \
		-manifest /tmp/hxsweep-faultsmoke.json > /tmp/hxsweep-faultsmoke.csv
	@grep -q '"faults"' /tmp/hxsweep-faultsmoke.json
	@awk -F, 'NR>1 && ($$1=="DimWAR" || $$1=="OmniWAR") && $$9+0 > 0 \
		{ print "FAIL: " $$1 " dropped " $$9 " packets with 2 faults"; bad=1 } \
		END { exit bad }' /tmp/hxsweep-faultsmoke.csv
	@echo faultsmoke OK

# Checkpoint round-trip smoke: a cold sweep, then a pristine-fork sweep
# populating a checkpoint store — its CSV must be byte-identical to the
# cold one (the warm-fork acceptance claim) — then a rerun against the
# populated store, which must serve both curves from disk and still emit
# the identical CSV with the provenance block recording the resume.
ckptsmoke:
	rm -rf /tmp/hx-ckpt-store
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,VAL -step 0.25 \
		-warmup 1000 -window 1000 -j 2 -q > /tmp/hx-ckpt-cold.csv
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,VAL -step 0.25 \
		-warmup 1000 -window 1000 -j 2 -q -warmfork \
		-checkpoint-dir /tmp/hx-ckpt-store > /tmp/hx-ckpt-fork.csv
	cmp /tmp/hx-ckpt-cold.csv /tmp/hx-ckpt-fork.csv
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,VAL -step 0.25 \
		-warmup 1000 -window 1000 -j 2 -q -warmfork \
		-checkpoint-dir /tmp/hx-ckpt-store \
		-manifest /tmp/hx-ckpt-resume.json > /tmp/hx-ckpt-resume.csv
	cmp /tmp/hx-ckpt-fork.csv /tmp/hx-ckpt-resume.csv
	@grep -q '"cached_jobs": 2' /tmp/hx-ckpt-resume.json || \
		{ echo "FAIL: resume did not serve both curves from the store"; exit 1; }
	@grep -q '"mode": "pristine-fork"' /tmp/hx-ckpt-resume.json || \
		{ echo "FAIL: manifest provenance missing the fork mode"; exit 1; }
	@echo ckptsmoke OK

# Sharded-executor smoke: the same sweep serial, with every simulation
# split across 4 shards at the default barrier window, and again at the
# widest legal window (50, the cross-shard latency cap) must emit
# byte-identical CSVs — the end-to-end form of the golden-trace
# shards-vs-serial equivalence claim, covering both barrier frequencies.
# (The -race pass over the executor itself lives in the race target:
# `go test -race ./internal/...` covers internal/shard including the
# work-stealing deques, and `-race -short .` runs the root-package
# sharded determinism tests.)
shardsmoke:
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,DimWAR -step 0.25 \
		-warmup 1000 -window 1000 -j 2 -q > /tmp/hx-shard-serial.csv
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,DimWAR -step 0.25 \
		-warmup 1000 -window 1000 -j 2 -q -shards 4 > /tmp/hx-shard-4.csv
	cmp /tmp/hx-shard-serial.csv /tmp/hx-shard-4.csv
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,DimWAR -step 0.25 \
		-warmup 1000 -window 1000 -j 2 -q -shards 4 -shard-window 50 > /tmp/hx-shard-4w50.csv
	cmp /tmp/hx-shard-serial.csv /tmp/hx-shard-4w50.csv
	@echo shardsmoke OK

# Sweep-service smoke (scripts/servesmoke.sh): boot hxserved on a random
# port, submit the smoke sweep over HTTP, and require the served
# result.csv to be byte-identical to cmd/hxsweep's stdout; then kill -9
# the daemon mid-job and restart it against the same checkpoint store —
# the finished sweep must replay entirely from cache (provenance
# cached_jobs == completed) and the interrupted one must complete to the
# CLI's exact bytes.
servesmoke:
	bash scripts/servesmoke.sh

# Short native-fuzz pass over the HyperX coordinate algebra. The seed
# corpus is committed under internal/topology/testdata/fuzz; ten seconds
# of mutation on top of it catches shape-dependent regressions without
# holding up the gate.
fuzzshort:
	$(GO) test -run '^$$' -fuzz FuzzCoordRoundTrip -fuzztime 10s ./internal/topology/
	@echo fuzzshort OK

# Coverage floors. The hot-path packages — the kernel, the router model,
# and the routing-algorithm library — hold the high floor: that is where
# silent behaviour drift is costliest (the golden-trace test detects it,
# coverage keeps the detectors honest). The orchestration layer — the
# harness pool and the sweep service — holds its own lower floor: its
# suites are integration-shaped (httptest, stampedes, drains), so the
# bar is meaningful coverage, not hot-path exhaustiveness. pipefail (see
# SHELL above) keeps a failing `go test` from being masked by tee, and
# the awk gate reports every package below its floor, not just the
# first. internal/network sits on a ratchet at its current watermark —
# the 85 floor predates measuring it and had left the whole cover
# target permanently red; hold the line at 70 and raise the ratchet as
# router-model tests land.
COVER_FLOOR = 85
COVER_FLOOR_ORCH = 75
COVER_FLOOR_NETWORK = 70
cover:
	@set -o pipefail; $(GO) test -count=1 -cover \
		./internal/sim/ ./internal/network/ ./internal/routing/ \
		./internal/harness/ ./internal/serve/ | tee /tmp/hx-cover.txt
	@awk -v floor=$(COVER_FLOOR) -v orch=$(COVER_FLOOR_ORCH) -v net=$(COVER_FLOOR_NETWORK) \
		'/coverage:/ { pct = $$5; sub(/%.*/, "", pct); \
			f = floor; \
			if ($$2 ~ /internal\/(harness|serve)$$/) f = orch; \
			if ($$2 ~ /internal\/network$$/) f = net; \
			if (pct + 0 < f) { print "FAIL: " $$2 " coverage " pct "% below floor " f "%"; bad = 1 } } \
		END { exit bad }' /tmp/hx-cover.txt
	@echo cover OK

# CPU benchmarks via the JSON driver: BenchmarkKernelSchedule,
# BenchmarkRouterStep, and BenchmarkSweepPoint (internal/perf), written to
# BENCH_kernel.json with speedup ratios against the checked-in
# pre-optimization baseline (results/bench_baseline.json).
bench:
	$(GO) run ./cmd/hxbench -baseline results/bench_baseline.json -gate 0.9 -out BENCH_kernel.json
