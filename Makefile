# CI entry points. `make ci` is the full gate: static checks (vet plus
# the hxlint determinism suite), build, the full tier-1 test suite,
# race-enabled tests (the internal/harness pool tests are the reason for
# -race), and a short-deadline smoke sweep through the parallel engine.
GO ?= go

.PHONY: ci vet lint build test race quick smoke faultsmoke bench

ci: vet lint build test race smoke faultsmoke

vet:
	$(GO) vet ./...

# Determinism-invariant static analysis (see internal/lint): nodeterm,
# seedflow, maporder, and noconc over the simulation packages and the
# CSV/manifest emission path, plus a gofmt cleanliness gate. Exits
# nonzero on any finding.
lint:
	$(GO) run ./cmd/hxlint ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

# Full suite, no race detector (tier-1 gate: go build ./... && go test ./...).
test:
	$(GO) test ./...

# Race detector pass: the full internal tree (the harness pool is the
# concurrency that matters), plus the short root-package tests — the root
# package is steady-state simulations that run minutes each under the
# detector's slowdown without exercising any extra concurrency.
race:
	$(GO) test -race ./internal/...
	$(GO) test -race -short .

# Fast iteration loop: skips the steady-state simulations but still runs
# the harness engine tests (they use synthetic jobs) under -race.
quick:
	$(GO) test -race -short ./...

# Short-deadline smoke sweep: exercises the worker pool, early stop,
# progress lines, and manifest output end to end in a few seconds.
smoke:
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,VAL -step 0.25 \
		-warmup 1000 -window 1000 -j 2 -manifest /tmp/hxsweep-smoke.json >/dev/null
	@grep -q '"events_per_sec"' /tmp/hxsweep-smoke.json
	@echo smoke OK

# Fault-injection smoke: every algorithm sweeps a small topology with two
# failed links (the fault set is connectivity-preserving by construction).
# The gate: the fault-aware algorithms must not drop a single packet —
# column 9 of the sweep CSV is the whole-run drop count.
faultsmoke:
	$(GO) run ./cmd/hxsweep -pattern UR -algs DOR,VAL,UGAL,UGAL+,DimWAR,OmniWAR,MinAD,DAL \
		-faults 2 -step 0.25 -warmup 1000 -window 1000 -j 2 -q \
		-manifest /tmp/hxsweep-faultsmoke.json > /tmp/hxsweep-faultsmoke.csv
	@grep -q '"faults"' /tmp/hxsweep-faultsmoke.json
	@awk -F, 'NR>1 && ($$1=="DimWAR" || $$1=="OmniWAR") && $$9+0 > 0 \
		{ print "FAIL: " $$1 " dropped " $$9 " packets with 2 faults"; bad=1 } \
		END { exit bad }' /tmp/hxsweep-faultsmoke.csv
	@echo faultsmoke OK

bench:
	$(GO) test -bench=. -benchmem
