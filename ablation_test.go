package hyperx

import "testing"

// TestSensingAblation documents the mechanism behind Figure 6d (see
// DESIGN.md §5): with realistic per-port output-queue sensing, UGAL's
// minimal and Valiant options sit on statistically identical X-dimension
// ports under URBy, so hopcount keeps it minimal and it saturates at the
// bisection ceiling; with idealized per-resource-class sensing it can see
// that the Valiant class is empty and escapes.
func TestSensingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 8000, Window: 8000}
	get := func(classSense bool) float64 {
		cfg := DefaultScale()
		cfg.Algorithm = "UGAL"
		cfg.ClassSense = classSense
		th, err := RunThroughput(cfg, "URBy", opts)
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	port := get(false)
	class := get(true)
	t.Logf("UGAL URBy accepted: port-sensing=%.3f class-sensing=%.3f", port, class)
	if class <= port {
		t.Errorf("class sensing (%.3f) should outperform port sensing (%.3f) for UGAL on URBy", class, port)
	}
}

// TestArbiterFacade: all arbiter names build and run; unknown rejected.
func TestArbiterFacade(t *testing.T) {
	for _, arb := range []string{"", "age", "fifo", "random"} {
		cfg := DefaultScale()
		cfg.Arbiter = arb
		if _, err := Build(cfg); err != nil {
			t.Errorf("arbiter %q: %v", arb, err)
		}
	}
	cfg := DefaultScale()
	cfg.Arbiter = "bogus"
	if _, err := Build(cfg); err == nil {
		t.Error("bogus arbiter accepted")
	}
}

// TestOmniWARClassSweep: more distance classes (deroute budget) never
// hurt DCR throughput, and the full budget far exceeds the minimal-only
// configuration — the Section 5.2 tunability claim.
func TestOmniWARClassSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 6000, Window: 6000}
	get := func(classes int) float64 {
		cfg := DefaultScale()
		cfg.Algorithm = "OmniWAR"
		cfg.OmniClasses = classes
		th, err := RunThroughput(cfg, "DCR", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("OmniWAR classes=%d DCR accepted %.3f", classes, th)
		return th
	}
	minOnly := get(3) // M=0: minimal adaptive
	full := get(8)    // M=5
	// Any-dimension-order minimal routing already dodges most of the DCR
	// funnel (which is a dimension-ordering artifact, cf. DimWAR's
	// collapse in Figure 6f); the deroute budget buys the rest of the
	// way to the ~50% bound.
	if full < minOnly+0.05 {
		t.Errorf("full deroute budget (%.3f) should clearly exceed minimal-only (%.3f) on DCR", full, minOnly)
	}
	if full < 0.45 {
		t.Errorf("full OmniWAR DCR throughput %.3f, want approaching 0.5", full)
	}
}
