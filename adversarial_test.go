package hyperx

import "testing"

// TestURByAdversarial reproduces the paper's headline Figure 6d result at
// test scale: when the second dimension is the unbalanced one, source-
// adaptive algorithms (UGAL, Clos-AD) cannot see the congestion from the
// source router and saturate near the minimal bisection limit (1/W), while
// the incremental DimWAR and OmniWAR route around it and sustain ~50%.
func TestURByAdversarial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second steady-state simulation")
	}
	opts := RunOpts{Warmup: 8000, Window: 8000}
	// W=4: minimal bisection saturation for the complement dimension is
	// 1/W = 25%. Probe at 40%: above the source-adaptive ceiling, below
	// the incremental algorithms' ~50%.
	probe := 0.40

	// Note: Clos-AD (UGAL+) is not asserted saturated here. The paper's
	// Figure 6d shows it pinned at 1/W like UGAL, but our faithful
	// implementation of its Section 4.1 description — weighing lateral
	// ports of *all* unaligned dimensions at the source — lets it escape
	// the Y-dimension congestion through its own (cold) Y ports at test
	// scale. EXPERIMENTS.md records this divergence.
	for _, tc := range []struct {
		alg          string
		wantSaturate bool
	}{
		{"UGAL", true},
		{"DOR", true},
		{"DimWAR", false},
		{"OmniWAR", false},
	} {
		tc := tc
		t.Run(tc.alg, func(t *testing.T) {
			cfg := DefaultScale()
			cfg.Algorithm = tc.alg
			pt, err := RunLoadPoint(cfg, "URBy", probe, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s @%.0f%% URBy: mean=%.1f accepted=%.3f saturated=%v samples=%d",
				tc.alg, probe*100, pt.Mean, pt.Accepted, pt.Saturated, pt.Samples)
			if pt.Saturated != tc.wantSaturate {
				t.Errorf("%s at %.0f%% URBy: saturated=%v, want %v",
					tc.alg, probe*100, pt.Saturated, tc.wantSaturate)
			}
		})
	}
}
