package hyperx

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded results). Each benchmark runs the experiment at the reduced
// 4x4x4 t=4 default scale — the cmd/ tools regenerate the same data at
// the paper's 8x8x8 t=8 scale — and reports domain metrics via
// b.ReportMetric:
//
//	accepted    accepted throughput, flits/cycle/terminal (1.0 = capacity)
//	mean_ns     mean packet latency
//	exec_ns     application execution time (stencil benches)
//
// Run with: go test -bench=. -benchmem
// The ns/op column measures simulator wall-clock cost, not network
// latency; the reported metrics carry the paper's results.

import (
	"fmt"
	"testing"

	"hyperx/internal/cost"
)

// benchOpts keeps benchmark runtime bounded on one core.
var benchOpts = RunOpts{Warmup: 6000, Window: 6000}

var benchAlgs = []string{"DOR", "VAL", "UGAL", "UGAL+", "DimWAR", "OmniWAR"}

// loadLatencyBench probes one pattern at one offered load for every
// algorithm — one point of the corresponding Figure 6 panel.
func loadLatencyBench(b *testing.B, pattern string, load float64) {
	for _, alg := range benchAlgs {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultScale()
				cfg.Algorithm = alg
				pt, err := RunLoadPoint(cfg, pattern, load, benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.Accepted, "accepted")
				b.ReportMetric(pt.Mean, "mean_ns")
				if pt.Saturated {
					b.ReportMetric(1, "saturated")
				} else {
					b.ReportMetric(0, "saturated")
				}
			}
		})
	}
}

// BenchmarkFig6a_UR: uniform random, the benign baseline — every adaptive
// algorithm should accept the probe load minimally.
func BenchmarkFig6a_UR(b *testing.B) { loadLatencyBench(b, "UR", 0.60) }

// BenchmarkFig6b_BC: bit complement; adaptive algorithms must go
// non-minimal past the 1/W bisection ceiling.
func BenchmarkFig6b_BC(b *testing.B) { loadLatencyBench(b, "BC", 0.40) }

// BenchmarkFig6c_URBx: first dimension unbalanced — the congestion is at
// the source router, so even source-adaptive routing handles it.
func BenchmarkFig6c_URBx(b *testing.B) { loadLatencyBench(b, "URBx", 0.40) }

// BenchmarkFig6d_URBy: second dimension unbalanced — the paper's headline
// case where source-adaptive routing saturates at 1/W while the
// incremental WARs sustain the load.
func BenchmarkFig6d_URBy(b *testing.B) { loadLatencyBench(b, "URBy", 0.40) }

// BenchmarkFig6e_S2: swap-2 leaves most bandwidth unused; topology-aware
// incremental algorithms should approach full throughput.
func BenchmarkFig6e_S2(b *testing.B) { loadLatencyBench(b, "S2", 0.60) }

// BenchmarkFig6f_DCR: the worst-case admissible 3-D pattern; OmniWAR's
// any-dimension-order freedom separates it from DimWAR.
func BenchmarkFig6f_DCR(b *testing.B) { loadLatencyBench(b, "DCR", 0.30) }

// BenchmarkFig6g_Throughput: saturated accepted throughput for every
// pattern x algorithm — the Figure 6g comparison bars.
func BenchmarkFig6g_Throughput(b *testing.B) {
	for _, pattern := range []string{"UR", "BC", "URBx", "URBy", "URBz", "S2", "DCR"} {
		for _, alg := range benchAlgs {
			pattern, alg := pattern, alg
			b.Run(pattern+"/"+alg, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := DefaultScale()
					cfg.Algorithm = alg
					th, err := RunThroughput(cfg, pattern, benchOpts)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(th, "accepted")
				}
			})
		}
	}
}

// BenchmarkFig8a_Collective: dissemination collective only.
func BenchmarkFig8a_Collective(b *testing.B) { stencilModeBench(b, 0, 1) }

// BenchmarkFig8b_Halo: halo exchange only.
func BenchmarkFig8b_Halo(b *testing.B) { stencilModeBench(b, 1, 1) }

// BenchmarkFig8c_FullApp: one full iteration (exchange + collective).
func BenchmarkFig8c_FullApp(b *testing.B) { stencilModeBench(b, 2, 1) }

// BenchmarkFig8c_FullApp16: sixteen blended iterations (the paper's
// communication-overlap variant).
func BenchmarkFig8c_FullApp16(b *testing.B) { stencilModeBench(b, 2, 16) }

// stencilModeBench runs one Figure 8 panel (mode 0=collective, 1=halo,
// 2=full) across the algorithms.
func stencilModeBench(b *testing.B, mode, iters int) {
	for _, alg := range benchAlgs {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultScale()
				cfg.Algorithm = alg
				o := StencilOpts{
					Grid:       [3]int{4, 4, 4},
					Iterations: iters,
					Bytes:      25_000,
					Random:     true,
				}
				switch mode {
				case 0:
					o.Mode = CollectiveOnly
				case 1:
					o.Mode = HaloOnly
				default:
					o.Mode = FullApp
				}
				res, err := RunStencil(cfg, o)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ExecTime), "exec_ns")
			}
		})
	}
}

// BenchmarkFig4TopoComparison: the full stencil application on HyperX,
// Dragonfly, and fat tree (Figure 4; lower exec_ns is better).
func BenchmarkFig4TopoComparison(b *testing.B) {
	opts := StencilOpts{Grid: [3]int{4, 4, 4}, Mode: FullApp, Iterations: 1, Bytes: 25_000, Random: true}
	b.Run("hyperx/OmniWAR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := DefaultScale()
			cfg.Algorithm = "OmniWAR"
			res, err := RunStencil(cfg, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.ExecTime), "exec_ns")
		}
	})
	b.Run("dragonfly/UGAL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net, err := BuildDragonfly(DragonflyConfig{P: 4, A: 8, H: 2})
			if err != nil {
				b.Fatal(err)
			}
			res, err := RunStencilOn(net, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.ExecTime), "exec_ns")
		}
	})
	b.Run("fattree/ClosAdaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net, err := BuildFatTree(FatTreeConfig{K: 10})
			if err != nil {
				b.Fatal(err)
			}
			res, err := RunStencilOn(net, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.ExecTime), "exec_ns")
		}
	})
}

// BenchmarkFig2Scalability: the analytic scalability sweep (Figure 2).
// The reported metric is the 64-port 3-D HyperX size, which must stay
// pinned to the paper's 78,608.
func BenchmarkFig2Scalability(b *testing.B) {
	var last int
	for i := 0; i < b.N; i++ {
		var radixes []int
		for k := 8; k <= 256; k += 8 {
			radixes = append(radixes, k)
		}
		pts := cost.ScalabilityCurve(radixes)
		last = pts[7].HyperX3 // radix 64
	}
	b.ReportMetric(float64(last), "nodes_hx3_r64")
}

// BenchmarkFig3CableCost: the cabling-cost comparison (Figure 3). Metrics
// are the Dragonfly/HyperX per-node cost ratios at the largest size under
// 25 GHz copper and passive optics.
func BenchmarkFig3CableCost(b *testing.B) {
	var copper, optical float64
	for i := 0; i < b.N; i++ {
		pts := cost.CompareCableCost(cost.DefaultGeometry(), []int{6, 8, 10, 12})
		last := pts[len(pts)-1]
		for j, name := range last.Tech {
			switch name {
			case "DAC+AOC@25GHz":
				copper = last.CostRatio[j]
			case "PassiveOptical":
				optical = last.CostRatio[j]
			}
		}
	}
	b.ReportMetric(copper, "ratio_copper")
	b.ReportMetric(optical, "ratio_optical")
}

// BenchmarkTable1 regenerates the implementation-comparison table; the
// metric is its row count.
func BenchmarkTable1(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = TableOne()
	}
	b.ReportMetric(float64(len(s)), "bytes")
}

// BenchmarkDALAtomicCeiling: the Section 4.2 atomic-queue-allocation
// throughput ceiling for single-flit and random-size packets.
func BenchmarkDALAtomicCeiling(b *testing.B) {
	for _, tc := range []struct {
		name     string
		min, max int
	}{{"single-flit", 1, 1}, {"random-1-16", 1, 16}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultScale()
				cfg.Algorithm = "DAL"
				th, err := RunThroughput(cfg, "UR", RunOpts{
					Warmup: 5000, Window: 5000, MinFlits: tc.min, MaxFlits: tc.max,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(th, "accepted")
			}
		})
	}
}

// BenchmarkAblationSensing: routing-weight congestion sensing — realistic
// per-port output-queue aggregates versus idealized per-class occupancy —
// on the URBy case. Per-class sensing lets UGAL escape the remote
// congestion it cannot escape on real hardware (DESIGN.md §5).
func BenchmarkAblationSensing(b *testing.B) {
	for _, tc := range []struct {
		name  string
		class bool
	}{{"port-sensing", false}, {"class-sensing", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultScale()
				cfg.Algorithm = "UGAL"
				cfg.ClassSense = tc.class
				th, err := RunThroughput(cfg, "URBy", benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(th, "accepted")
			}
		})
	}
}

// BenchmarkAblationOmniVCs: OmniWAR's deroute budget (M = classes - N)
// versus DCR throughput — the tunability knob of Section 5.2.
func BenchmarkAblationOmniVCs(b *testing.B) {
	for classes := 3; classes <= 8; classes++ {
		classes := classes
		b.Run(fmt.Sprintf("classes-%d", classes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultScale()
				cfg.Algorithm = "OmniWAR"
				cfg.OmniClasses = classes
				th, err := RunThroughput(cfg, "DCR", benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(th, "accepted")
			}
		})
	}
}

// BenchmarkAblationB2BDeroute: the Section 5.2 optimization restricting
// back-to-back deroutes in the same dimension.
func BenchmarkAblationB2BDeroute(b *testing.B) {
	for _, tc := range []struct {
		name string
		noB  bool
	}{{"unrestricted", false}, {"no-back-to-back", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultScale()
				cfg.Algorithm = "OmniWAR"
				cfg.OmniNoB2B = tc.noB
				th, err := RunThroughput(cfg, "DCR", benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(th, "accepted")
			}
		})
	}
}

// BenchmarkAblationCollective: dissemination (the paper's collective)
// versus recursive doubling on the collective-only stencil phase.
func BenchmarkAblationCollective(b *testing.B) {
	for _, tc := range []struct {
		name string
		rd   bool
	}{{"dissemination", false}, {"recursive-doubling", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultScale()
				cfg.Algorithm = "DimWAR"
				res, err := RunStencil(cfg, StencilOpts{
					Grid: [3]int{4, 4, 4}, Mode: CollectiveOnly, Iterations: 4,
					Random: true, RecursiveDoubling: tc.rd,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ExecTime), "exec_ns")
			}
		})
	}
}

// BenchmarkAblationArbiter: output arbitration policy (age vs fifo vs
// random) under adversarial BC traffic — age-based arbitration is what
// the paper's router uses for stability.
func BenchmarkAblationArbiter(b *testing.B) {
	for _, arb := range []string{"age", "fifo", "random"} {
		arb := arb
		b.Run(arb, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultScale()
				cfg.Algorithm = "DimWAR"
				cfg.Arbiter = arb
				th, err := RunThroughput(cfg, "BC", benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(th, "accepted")
			}
		})
	}
}

// BenchmarkSimulatorSpeed measures the raw event-processing rate of the
// simulator substrate itself (packets delivered per wall-second) — useful
// when sizing paper-scale runs.
func BenchmarkSimulatorSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultScale()
		cfg.Algorithm = "DimWAR"
		if _, err := RunLoadPoint(cfg, "UR", 0.5, RunOpts{Warmup: 2000, Window: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}
