package hyperx

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
)

// checkpointVersion is the on-disk checkpoint format version. Bump it
// whenever the file schema, a payload type, or the key scheme changes in a
// way that would let an old file satisfy a new request incorrectly; old
// versions are rejected with an explicit error, never silently reread.
// The format and compatibility rules are documented in docs/STATE.md.
const checkpointVersion = 1

// checkpointFile is the envelope around every persisted result: a format
// version, the full canonical key (so a filename hash collision can never
// serve the wrong experiment), and a CRC over the payload bytes (so a
// truncated or corrupted write is detected rather than parsed).
type checkpointFile struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// CheckpointStore persists completed sweep results in a directory, one
// file per (configuration, pattern, algorithm, load, methodology) key, so
// a killed sweep rerun with the same flags resumes from what it already
// computed and produces byte-identical output. Saves are atomic
// (write-to-temp + rename); concurrent workers never observe torn files.
type CheckpointStore struct {
	dir string

	// Access counters for the cache-stats surface of the sweep service:
	// hits and misses count Load outcomes (a filename collision with a
	// different key is a miss), saves counts successful Save calls. They
	// are atomics because the harness pool and concurrent service jobs
	// share one store.
	hits   atomic.Uint64
	misses atomic.Uint64
	saves  atomic.Uint64
}

// OpenCheckpointDir opens (creating if needed) a checkpoint directory.
func OpenCheckpointDir(dir string) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hyperx: checkpoint dir: %w", err)
	}
	return &CheckpointStore{dir: dir}, nil
}

// Dir returns the store's directory path (for provenance records).
func (s *CheckpointStore) Dir() string { return s.dir }

func (s *CheckpointStore) path(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(s.dir, fmt.Sprintf("%016x.ckpt.json", h.Sum64()))
}

// Load reads the result stored under key into into. It returns (false,
// nil) on a clean miss — no file, or a filename collision with a
// different key — and an explicit error on a corrupt, truncated, or
// version-incompatible file: a damaged checkpoint must surface, not
// silently recompute, so the operator decides whether to delete it.
func (s *CheckpointStore) Load(key string, into any) (bool, error) {
	path := s.path(key)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		s.misses.Add(1)
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("hyperx: checkpoint %s: %w", path, err)
	}
	var f checkpointFile
	if err := json.Unmarshal(b, &f); err != nil {
		return false, fmt.Errorf("hyperx: checkpoint %s is corrupt or truncated (%v); delete it to recompute", path, err)
	}
	if f.Version != checkpointVersion {
		return false, fmt.Errorf("hyperx: checkpoint %s has format version %d, this build reads version %d; delete the checkpoint directory to recompute", path, f.Version, checkpointVersion)
	}
	if f.Key != key {
		s.misses.Add(1)
		return false, nil // hash collision with a different experiment
	}
	if crc := crc32.ChecksumIEEE(f.Payload); crc != f.CRC {
		return false, fmt.Errorf("hyperx: checkpoint %s failed its payload checksum (have %08x, want %08x): corrupt or truncated write; delete it to recompute", path, crc, f.CRC)
	}
	if err := json.Unmarshal(f.Payload, into); err != nil {
		return false, fmt.Errorf("hyperx: checkpoint %s payload does not parse (%v); delete it to recompute", path, err)
	}
	s.hits.Add(1)
	return true, nil
}

// Save persists v under key, atomically replacing any previous value.
func (s *CheckpointStore) Save(key string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("hyperx: checkpoint save: %w", err)
	}
	b, err := json.Marshal(checkpointFile{
		Version: checkpointVersion,
		Key:     key,
		CRC:     crc32.ChecksumIEEE(payload),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("hyperx: checkpoint save: %w", err)
	}
	path := s.path(key)
	tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("hyperx: checkpoint save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("hyperx: checkpoint save: %w", err)
	}
	s.saves.Add(1)
	return nil
}

// CacheStats describes a checkpoint store for the service's
// /v1/cache/stats endpoint: the on-disk footprint plus this process's
// access counters (which start at zero per store instance; entries and
// bytes survive restarts, the counters do not).
type CacheStats struct {
	Dir     string `json:"dir"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Saves   uint64 `json:"saves"`
}

// Stats walks the store directory and returns its current footprint and
// access counters. The walk ignores non-checkpoint files (temp files of
// in-flight saves, stray editor droppings).
func (s *CheckpointStore) Stats() (CacheStats, error) {
	st := CacheStats{
		Dir:    s.dir,
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Saves:  s.saves.Load(),
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return st, fmt.Errorf("hyperx: checkpoint stats: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt.json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // deleted between readdir and stat: not an error
		}
		st.Entries++
		st.Bytes += info.Size()
	}
	return st, nil
}

// pointRecord is the persisted payload of one completed load point.
type pointRecord struct {
	Point LoadPoint `json:"point"`
	Stats simStats  `json:"stats"`
}

// curveRecord is the persisted payload of one completed warm-fork curve.
type curveRecord struct {
	Points []LoadPoint `json:"points"`
	Stats  simStats    `json:"stats"`
}

// thptRecord is the persisted payload of one completed saturated-throughput
// grid cell.
type thptRecord struct {
	Value float64  `json:"value"`
	Stats simStats `json:"stats"`
}

// hexFloat renders a float for a checkpoint key: the 'x' format is exact
// (every distinct float64 has a distinct rendering), so two loads that
// differ in any bit never share a key.
func hexFloat(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// configKey canonicalizes every Config field that influences simulation
// results. Adding a result-affecting Config field without extending this
// key is a checkpoint-correctness bug — see docs/STATE.md.
func configKey(cfg Config) string {
	w := make([]string, len(cfg.Widths))
	for i, x := range cfg.Widths {
		w[i] = strconv.Itoa(x)
	}
	return fmt.Sprintf("w=%s;t=%d;alg=%s;vcs=%d;buf=%d;maxpkt=%d;xbar=%d;chan=%d;term=%d;omni=%d;nob2b=%v;atomic=%v;sense=%v;arb=%s;faults=%d;fseed=%d;seed=%d",
		strings.Join(w, "x"), cfg.Terms, cfg.Algorithm, cfg.NumVCs, cfg.BufDepth,
		cfg.MaxPktFlits, cfg.XbarLat, cfg.RouterChanLat, cfg.TermChanLat,
		cfg.OmniClasses, cfg.OmniNoB2B, cfg.AtomicVCAlloc, cfg.ClassSense,
		cfg.Arbiter, cfg.Faults, cfg.FaultSeed, cfg.Seed)
}

// optsKey canonicalizes the RunOpts fields that influence results (callers
// pass defaulted opts). RunOpts.Shards AND RunOpts.ShardWindow are
// deliberately absent: the sharded executor's event sequence is
// bit-identical to serial at every shard count and barrier window width
// (see internal/shard), so results never depend on either knob and a
// cache written at one setting must serve runs at every other.
func optsKey(opts RunOpts) string {
	return fmt.Sprintf("warm=%d;win=%d;drain=%d;latcap=%s;minf=%d;maxf=%d",
		opts.Warmup, opts.Window, opts.DrainCap, hexFloat(opts.LatencyCap),
		opts.MinFlits, opts.MaxFlits)
}

// pointKey identifies one cold-path load point result.
func pointKey(cfg Config, pattern string, load float64, opts RunOpts) string {
	return fmt.Sprintf("point|v%d|%s|pat=%s|load=%s|%s",
		checkpointVersion, configKey(cfg), pattern, hexFloat(load), optsKey(opts))
}

// thptKey identifies one saturated-throughput grid cell. Offered load is
// always 1.0 on this path, so it is not part of the key.
func thptKey(cfg Config, pattern string, opts RunOpts) string {
	return fmt.Sprintf("thpt|v%d|%s|pat=%s|%s",
		checkpointVersion, configKey(cfg), pattern, optsKey(opts))
}

// curveKey identifies one warm-fork curve result (the whole load grid and
// the fork methodology are part of the identity).
func curveKey(cfg Config, pattern string, loads []float64, opts RunOpts, fk ForkOpts) string {
	ls := make([]string, len(loads))
	for i, l := range loads {
		ls[i] = hexFloat(l)
	}
	return fmt.Sprintf("curve|v%d|%s|pat=%s|loads=%s|%s|fork=%d,%s,%d",
		checkpointVersion, configKey(cfg), pattern, strings.Join(ls, ","),
		optsKey(opts), fk.WarmCycles, hexFloat(fk.WarmLoad), fk.Settle)
}

// PointKey returns the canonical content address of one cold-path load
// point result — the key the checkpoint store files it under and the
// sweep service deduplicates in-flight computations on. Config and
// RunOpts are canonicalized (defaults applied) first, so callers need
// not pre-default; the exact string format is pinned by the
// key-stability test against testdata/checkpoint_keys.txt, and the
// intentional-change procedure is documented in docs/STATE.md.
func PointKey(cfg Config, pattern string, load float64, opts RunOpts) string {
	return pointKey(cfg.withDefaults(), pattern, load, opts.withDefaults())
}

// ThptKey returns the canonical content address of one saturated-
// throughput grid cell (offered load is always 1.0 on that path). See
// PointKey for the canonicalization and stability contract.
func ThptKey(cfg Config, pattern string, opts RunOpts) string {
	return thptKey(cfg.withDefaults(), pattern, opts.withDefaults())
}

// CurveKey returns the canonical content address of one whole-curve
// result under the fork methodology fk, defaulted exactly as the forked
// sweep defaults it (so the zero ForkOpts addresses the pristine fork,
// whose results are byte-identical to the cold path). See PointKey for
// the canonicalization and stability contract.
func CurveKey(cfg Config, pattern string, loads []float64, opts RunOpts, fk ForkOpts) string {
	o := opts.withDefaults()
	return curveKey(cfg.withDefaults(), pattern, loads, o, fk.withDefaults(o))
}
