package hyperx

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestCheckpointStoreRoundTrip: basic store semantics — a saved value
// loads back equal, an absent key is a clean miss, and a filename hash
// collision with a different key is also a clean miss (the stored full
// key disambiguates), never a wrong answer.
func TestCheckpointStoreRoundTrip(t *testing.T) {
	store, err := OpenCheckpointDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := pointRecord{
		Point: LoadPoint{Load: 0.3, Mean: 123.5, Accepted: 0.299, Samples: 777, Delivered: 901},
		Stats: simStats{Cycles: 40000, Events: 123456, Delivered: 901},
	}
	const key = "point|test|roundtrip"
	var got pointRecord
	if ok, err := store.Load(key, &got); err != nil || ok {
		t.Fatalf("Load before Save = (%v, %v), want clean miss", ok, err)
	}
	if err := store.Save(key, want); err != nil {
		t.Fatal(err)
	}
	if ok, err := store.Load(key, &got); err != nil || !ok {
		t.Fatalf("Load after Save = (%v, %v), want hit", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the record:\ngot:  %+v\nwant: %+v", got, want)
	}

	// Forge a collision: a file at key's path whose stored key differs.
	env, _ := json.Marshal(checkpointFile{Version: checkpointVersion, Key: "point|other|experiment"})
	if err := os.WriteFile(store.path(key), env, 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := store.Load(key, &got); err != nil || ok {
		t.Errorf("Load against a colliding file = (%v, %v), want clean miss", ok, err)
	}
}

// TestCheckpointStoreRejectsDamage: a damaged checkpoint must surface as
// an explicit error — never a silent recompute (the operator decides
// whether to delete it) and never a parsed-anyway wrong result.
func TestCheckpointStoreRejectsDamage(t *testing.T) {
	const key = "point|test|damage"
	newStore := func() *CheckpointStore {
		store, err := OpenCheckpointDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Save(key, pointRecord{Point: LoadPoint{Load: 0.5}}); err != nil {
			t.Fatal(err)
		}
		return store
	}

	cases := []struct {
		name    string
		damage  func(t *testing.T, path string)
		wantErr string
	}{
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not json at all{{{"), 0o644); err != nil {
				t.Fatal(err)
			}
		}, "corrupt or truncated"},
		{"truncated", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}, "corrupt or truncated"},
		{"version-mismatch", func(t *testing.T, path string) {
			env, _ := json.Marshal(checkpointFile{Version: checkpointVersion + 1, Key: key, Payload: []byte("{}")})
			if err := os.WriteFile(path, env, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "format version"},
		{"payload-corruption", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip one payload byte; the envelope still parses but the
			// CRC no longer matches.
			i := strings.Index(string(b), `"Load":0.5`)
			if i < 0 {
				t.Fatalf("payload marker not found in %s", b)
			}
			b[i+len(`"Load":0.`)] = '6'
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "checksum"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			store := newStore()
			c.damage(t, store.path(key))
			var rec pointRecord
			ok, err := store.Load(key, &rec)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Load = (%v, %v), want error containing %q", ok, err, c.wantErr)
			}
		})
	}
}

// TestSweepCheckpointResume: the kill-and-resume acceptance claim. A
// sweep interrupted partway leaves completed points in the store; the
// rerun with identical parameters serves those from the store, computes
// the rest, and returns curves identical to an uninterrupted run — with
// the manifest recording which jobs were cached and where from.
func TestSweepCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 1500, Window: 1500}
	loads := LoadRange(0.2)
	patterns, algs := []string{"UR"}, []string{"DOR", "VAL"}
	cfg := DefaultScale()

	want, _, err := RunLoadSweepParallel(context.Background(), cfg,
		patterns, algs, loads, opts, SweepOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// "Kill" a run partway: cancel the context as soon as the first job
	// completes. Completed points are already persisted (saves happen
	// inside the job, before the outcome is reported).
	ctx, cancel := context.WithCancel(context.Background())
	_, _, err = RunLoadSweepParallel(ctx, cfg, patterns, algs, loads, opts,
		SweepOpts{Workers: 2, CheckpointDir: dir, Progress: func(string) { cancel() }})
	if err == nil {
		t.Fatal("interrupted sweep reported success; cancellation did not take")
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("interrupted sweep persisted nothing; resume has nothing to serve")
	}

	got, mani, err := RunLoadSweepParallel(context.Background(), cfg,
		patterns, algs, loads, opts, SweepOpts{Workers: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed sweep diverged from uninterrupted run:\ngot:  %+v\nwant: %+v", got, want)
	}
	if mani.Provenance == nil {
		t.Fatal("resumed sweep has no provenance block")
	}
	if mani.Provenance.ResumedFrom != dir {
		t.Errorf("provenance resumed_from = %q, want %q", mani.Provenance.ResumedFrom, dir)
	}
	if mani.Provenance.CachedJobs == 0 {
		t.Error("resume served no cached jobs despite a populated store")
	}
	cached := 0
	for _, rec := range mani.Jobs {
		if rec.Cached {
			if rec.Status != "done" {
				t.Errorf("cached job %s has status %q, want done", rec.Label, rec.Status)
			}
			cached++
		}
	}
	if cached != mani.Provenance.CachedJobs {
		t.Errorf("provenance counts %d cached jobs, job records mark %d", mani.Provenance.CachedJobs, cached)
	}

	// Third run: every point the result includes was stored by the
	// second run, so all of them must now be served from the store.
	again, mani3, err := RunLoadSweepParallel(context.Background(), cfg,
		patterns, algs, loads, opts, SweepOpts{Workers: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("fully cached sweep diverged from uninterrupted run")
	}
	returned := 0
	for _, c := range want {
		returned += len(c.Points)
	}
	if mani3.Provenance == nil || mani3.Provenance.CachedJobs < returned {
		t.Errorf("third run served %+v cached jobs, want at least the %d returned points", mani3.Provenance, returned)
	}
}

// TestForkSweepCheckpointResume: warm-fork curves checkpoint as whole
// curves; a rerun serves them from the store byte-identically.
func TestForkSweepCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	cfg := Config{Widths: []int{4, 4}, Terms: 2, Algorithm: "DimWAR", Seed: 1}
	opts := RunOpts{Warmup: 1000, Window: 1000}
	fork := &ForkOpts{WarmCycles: 2000, WarmLoad: 0.3, Settle: 250}
	dir := t.TempDir()
	run := func() ([]Curve, *Manifest) {
		curves, mani, err := RunLoadSweepParallel(context.Background(), cfg,
			[]string{"UR"}, []string{"DOR", "DimWAR"}, LoadRange(0.2), opts,
			SweepOpts{Workers: 2, CheckpointDir: dir, Fork: fork})
		if err != nil {
			t.Fatal(err)
		}
		return curves, mani
	}
	first, mani1 := run()
	if mani1.Provenance == nil || mani1.Provenance.CachedJobs != 0 {
		t.Errorf("first run provenance %+v, want 0 cached jobs", mani1.Provenance)
	}
	second, mani2 := run()
	if !reflect.DeepEqual(second, first) {
		t.Error("cached warm-fork sweep diverged from the run that populated the store")
	}
	if mani2.Provenance == nil || mani2.Provenance.CachedJobs != 2 {
		t.Errorf("second run provenance %+v, want both curves cached", mani2.Provenance)
	}
}

// TestSweepSurfacesCorruptCheckpoint: a damaged checkpoint file fails
// the sweep with an explicit, actionable error instead of silently
// recomputing or — worse — feeding garbage into the CSV.
func TestSweepSurfacesCorruptCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 1000, Window: 1000}
	loads := []float64{0.2}
	cfg := Config{Widths: []int{4, 4}, Terms: 2, Seed: 1}
	dir := t.TempDir()
	store, err := OpenCheckpointDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Plant garbage exactly where the sweep's one job will look.
	ccfg := cfg.withDefaults()
	ccfg.Algorithm = "DOR"
	key := pointKey(ccfg, "UR", loads[0], opts.withDefaults())
	if err := os.WriteFile(store.path(key), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = RunLoadSweepParallel(context.Background(), cfg,
		[]string{"UR"}, []string{"DOR"}, loads, opts, SweepOpts{CheckpointDir: dir})
	if err == nil || !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Errorf("sweep over a corrupt checkpoint returned %v, want an explicit corruption error", err)
	}
}
