// Command hxbench runs the simulator's CPU benchmarks (internal/perf)
// through testing.Benchmark and emits a machine-readable JSON report —
// the artifact behind `make bench` (BENCH_kernel.json).
//
// Fields per benchmark:
//
//	ns_per_op       wall nanoseconds per benchmark op
//	allocs_per_op   heap allocations per op
//	bytes_per_op    heap bytes per op
//	events_per_sec  kernel events executed per wall-second
//	iterations      how many ops the 1-second auto-calibration ran
//
// With -baseline pointing at a previously captured report, the output
// embeds that report under "baseline" and a per-benchmark
// "events_per_sec_speedup" ratio (current / baseline), which is how the
// kernel-optimization acceptance number (>= 1.25x on BenchmarkSweepPoint)
// is recorded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"hyperx/internal/perf"
)

type benchRecord struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`

	EventsPerSecSpeedup float64 `json:"events_per_sec_speedup,omitempty"`
}

type report struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Benchmarks  []benchRecord `json:"benchmarks"`
	Baseline    *report       `json:"baseline,omitempty"`
}

// suite lists the benchmarks in fixed emission order (never range a map
// here: this file is on the deterministic-output path).
var suite = []struct {
	name string
	fn   func(*testing.B)
}{
	{"BenchmarkKernelSchedule", perf.BenchKernelSchedule},
	{"BenchmarkRouterStep", perf.BenchRouterStep},
	{"BenchmarkSweepPoint", perf.BenchSweepPoint},
}

func main() {
	out := flag.String("out", "BENCH_kernel.json", "output JSON path, - for stdout")
	baseline := flag.String("baseline", "", "prior hxbench JSON to embed and compute speedups against")
	flag.Parse()

	rep := report{
		GeneratedBy: "cmd/hxbench",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	var base *report
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hxbench: %v\n", err)
			os.Exit(1)
		}
		base = &report{}
		if err := json.Unmarshal(data, base); err != nil {
			fmt.Fprintf(os.Stderr, "hxbench: parsing baseline: %v\n", err)
			os.Exit(1)
		}
		rep.Baseline = base
	}

	for _, s := range suite {
		fmt.Fprintf(os.Stderr, "running %s...\n", s.name)
		res := testing.Benchmark(s.fn)
		rec := benchRecord{
			Name:         s.name,
			Iterations:   res.N,
			NsPerOp:      res.NsPerOp(),
			AllocsPerOp:  res.AllocsPerOp(),
			BytesPerOp:   res.AllocedBytesPerOp(),
			EventsPerSec: res.Extra["events/sec"],
		}
		if base != nil {
			for _, b := range base.Benchmarks {
				if b.Name == rec.Name && b.EventsPerSec > 0 {
					rec.EventsPerSecSpeedup = rec.EventsPerSec / b.EventsPerSec
				}
			}
		}
		fmt.Fprintf(os.Stderr, "  %s: %d ns/op, %d allocs/op, %.0f events/sec\n",
			s.name, rec.NsPerOp, rec.AllocsPerOp, rec.EventsPerSec)
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hxbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "hxbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
