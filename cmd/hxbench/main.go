// Command hxbench runs the simulator's CPU benchmarks (internal/perf)
// through testing.Benchmark and emits a machine-readable JSON report —
// the artifact behind `make bench` (BENCH_kernel.json).
//
// Fields per benchmark:
//
//	ns_per_op       wall nanoseconds per benchmark op
//	allocs_per_op   heap allocations per op
//	bytes_per_op    heap bytes per op
//	events_per_sec  kernel events executed per wall-second
//	iterations      how many ops the 1-second auto-calibration ran
//
// With -baseline pointing at a previously captured report, the output
// embeds that report under "baseline" and a per-benchmark
// "events_per_sec_speedup" ratio (current / baseline), which is how the
// kernel-optimization acceptance number (>= 1.25x on BenchmarkSweepPoint)
// is recorded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"hyperx/internal/perf"
)

type benchRecord struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`

	EventsPerSecSpeedup float64 `json:"events_per_sec_speedup,omitempty"`

	// BytesPerTerminal is reported only by the paper-scale footprint
	// benchmark: build heap bytes normalized per simulated node.
	BytesPerTerminal float64 `json:"bytes_per_terminal,omitempty"`
}

type report struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Benchmarks  []benchRecord `json:"benchmarks"`
	Baseline    *report       `json:"baseline,omitempty"`
}

// suite lists the benchmarks in fixed emission order (never range a map
// here: this file is on the deterministic-output path).
var suite = []struct {
	name string
	fn   func(*testing.B)
}{
	{"BenchmarkKernelSchedule", perf.BenchKernelSchedule},
	{"BenchmarkRouterStep", perf.BenchRouterStep},
	{"BenchmarkSweepPoint", perf.BenchSweepPoint},
	{"BenchmarkPaperScaleSweepPoint", perf.BenchPaperScaleSweepPoint},
	{"BenchmarkShardedSweepPoint", perf.BenchShardedSweepPoint},
	{"BenchmarkSnapshotRestore", perf.BenchSnapshotRestore},
	{"BenchmarkPaperScaleFootprint", perf.BenchPaperScaleFootprint},
}

func main() {
	out := flag.String("out", "BENCH_kernel.json", "output JSON path, - for stdout")
	baseline := flag.String("baseline", "", "prior hxbench JSON to embed and compute speedups against")
	gate := flag.Float64("gate", 0, "fail (exit 1) if any events_per_sec_speedup drops below this ratio; 0 disables")
	flag.Parse()

	rep := report{
		GeneratedBy: "cmd/hxbench",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	var base *report
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hxbench: %v\n", err)
			os.Exit(1)
		}
		base = &report{}
		if err := json.Unmarshal(data, base); err != nil {
			fmt.Fprintf(os.Stderr, "hxbench: parsing baseline: %v\n", err)
			os.Exit(1)
		}
		rep.Baseline = base
	}

	for _, s := range suite {
		fmt.Fprintf(os.Stderr, "running %s...\n", s.name)
		res := testing.Benchmark(s.fn)
		rec := benchRecord{
			Name:             s.name,
			Iterations:       res.N,
			NsPerOp:          res.NsPerOp(),
			AllocsPerOp:      res.AllocsPerOp(),
			BytesPerOp:       res.AllocedBytesPerOp(),
			EventsPerSec:     res.Extra["events/sec"],
			BytesPerTerminal: res.Extra["bytes/terminal"],
		}
		if base != nil {
			for _, b := range base.Benchmarks {
				if b.Name == rec.Name && b.EventsPerSec > 0 {
					rec.EventsPerSecSpeedup = rec.EventsPerSec / b.EventsPerSec
				}
			}
		}
		fmt.Fprintf(os.Stderr, "  %s: %d ns/op, %d allocs/op, %.0f events/sec\n",
			s.name, rec.NsPerOp, rec.AllocsPerOp, rec.EventsPerSec)
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hxbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		checkGate(&rep, *gate)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "hxbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	checkGate(&rep, *gate)
}

// checkGate enforces the regression floor: every benchmark that has a
// baseline counterpart must retain at least gate of the baseline's
// events/sec, and every benchmark that REPORTS an events/sec metric must
// have a baseline counterpart — a benchmark silently absent from the
// baseline would otherwise pass the gate forever, unfloored. Benchmarks
// without the metric (the footprint benchmark reports bytes/terminal
// only) are exempt from both checks. The report is written before the
// check runs, so a gate failure still leaves the measurement on disk for
// diagnosis.
func checkGate(rep *report, gate float64) {
	if gate <= 0 || rep.Baseline == nil {
		return
	}
	failed := false
	for _, rec := range rep.Benchmarks {
		if rec.EventsPerSecSpeedup == 0 {
			if rec.EventsPerSec > 0 {
				fmt.Fprintf(os.Stderr, "hxbench: GATE FAIL %s: reports events/sec but has no baseline entry; add one to the baseline file\n",
					rec.Name)
				failed = true
			}
			continue // no events metric: nothing to floor
		}
		if rec.EventsPerSecSpeedup < gate {
			fmt.Fprintf(os.Stderr, "hxbench: GATE FAIL %s: %.3fx baseline events/sec (floor %.2fx)\n",
				rec.Name, rec.EventsPerSecSpeedup, gate)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
