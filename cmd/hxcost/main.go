// Command hxcost regenerates the paper's analytic figures: the topology
// scalability curves of Figure 2 and the Dragonfly-vs-HyperX cabling cost
// comparison of Figure 3.
//
// Examples:
//
//	hxcost -fig 2
//	hxcost -fig 3
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperx/internal/cost"
)

func main() {
	fig := flag.Int("fig", 2, "figure to regenerate: 2 (scalability) or 3 (cabling cost)")
	flag.Parse()

	switch *fig {
	case 2:
		fmt.Println("radix,hyperx2,hyperx3,hyperx4,dragonfly,fattree,slimfly,hypercube")
		var radixes []int
		for k := 8; k <= 256; k += 8 {
			radixes = append(radixes, k)
		}
		for _, p := range cost.ScalabilityCurve(radixes) {
			fmt.Printf("%d,%d,%d,%d,%d,%d,%d,%d\n",
				p.Radix, p.HyperX2, p.HyperX3, p.HyperX4, p.Dragonfly, p.FatTree, p.SlimFly, p.HyperCube)
		}
	case 3:
		pts := cost.CompareCableCost(cost.DefaultGeometry(), []int{4, 6, 8, 10, 12, 14, 16})
		if len(pts) == 0 {
			fmt.Fprintln(os.Stderr, "no comparison points")
			os.Exit(1)
		}
		fmt.Print("nodes_hyperx,nodes_dragonfly")
		for _, name := range pts[0].Tech {
			fmt.Printf(",ratio_%s", name)
		}
		fmt.Println()
		for _, p := range pts {
			fmt.Printf("%d,%d", p.HyperXNodes, p.DragonflyNodes)
			for _, r := range p.CostRatio {
				fmt.Printf(",%.4f", r)
			}
			fmt.Println()
		}
		fmt.Fprintln(os.Stderr, "ratio = dragonfly cost per node / hyperx cost per node; >1 means HyperX cheaper")
	default:
		fmt.Fprintln(os.Stderr, "unknown figure; use -fig 2 or -fig 3")
		os.Exit(1)
	}
}
