// Command hxlint enforces the simulator's determinism and performance
// contracts: it walks the module and reports every nodeterm / seedflow /
// maporder / noconc / allocfree violation (see internal/lint) as
// "file:line: [pass] message", exiting nonzero if anything is found.
// `make lint` runs it over the whole tree, and `make ci` gates on it, so a
// wall-clock read, a global-RNG draw, an unsorted map iteration in an
// output path, stray concurrency inside a simulation package, or an
// unreasoned allocation on the steady-state data path fails the build
// instead of silently skewing results.
//
// Usage:
//
//	hxlint ./...            # lint the whole module (the CI form)
//	hxlint ./internal/sim   # restrict the report to one subtree
//
// Findings can be suppressed, with a mandatory reason, by an
// //hxlint:allow directive on or directly above the offending line:
//
//	//hxlint:allow maporder — emission order is re-sorted by the caller
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hyperx/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hxlint [./... | dir ...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hxlint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hxlint:", err)
		os.Exit(2)
	}
	findings, err = restrict(findings, root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hxlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hxlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// restrict filters findings to the subtrees named on the command line.
// "./..." (or no arguments) keeps everything — the whole-module form the
// Makefile uses.
func restrict(findings []lint.Finding, root string, args []string) ([]lint.Finding, error) {
	var prefixes []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return findings, nil
		}
		abs, err := filepath.Abs(strings.TrimSuffix(a, "/..."))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside the module at %s", a, root)
		}
		prefixes = append(prefixes, filepath.ToSlash(rel)+"/")
	}
	if len(prefixes) == 0 {
		return findings, nil
	}
	var out []lint.Finding
	for _, f := range findings {
		for _, p := range prefixes {
			if p == "./" || strings.HasPrefix(f.File, p) {
				out = append(out, f)
				break
			}
		}
	}
	return out, nil
}
