// Command hxlint enforces the simulator's determinism and performance
// contracts: it walks the module and reports every nodeterm / seedflow /
// maporder / noconc / allocfree / stagesafe / statecover / allowaudit
// violation (see internal/lint) as "file:line: [pass] message", exiting
// nonzero if anything is found. `make lint` runs it over the whole tree,
// and `make ci` gates on it, so a wall-clock read, a global-RNG draw, an
// unsorted map iteration in an output path, stray concurrency inside a
// simulation package, an unreasoned allocation on the steady-state data
// path, an unstaged shared-state mutation reachable from an event
// handler, an uncovered snapshot or checkpoint-key field, or a stale
// suppression directive fails the build instead of silently skewing
// results.
//
// Usage:
//
//	hxlint ./...            # lint the whole module (the CI form)
//	hxlint ./internal/sim   # restrict the report to one subtree
//	hxlint -json ./...      # one JSON object per finding, suppressed included
//
// With -json, every finding — including those waived by allow directives —
// is emitted as one JSON object per line with fields file, line, col,
// pass, msg, and suppressed, so CI and editors can consume the report
// without parsing the text format. The exit status still reflects only
// live (unsuppressed) findings.
//
// Findings can be suppressed, with a mandatory reason, by an
// //hxlint:allow directive on or directly above the offending line:
//
//	//hxlint:allow maporder — emission order is re-sorted by the caller
//
// statecover exclusions use the dedicated field-level grammars
// //hxlint:state ephemeral — <reason> and //hxlint:key excluded — <reason>
// (see internal/lint and docs/STATE.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hyperx/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON finding object per line (includes suppressed findings)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hxlint [-json] [./... | dir ...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hxlint:", err)
		os.Exit(2)
	}
	findings, err := lint.RunAll(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hxlint:", err)
		os.Exit(2)
	}
	findings, err = restrict(findings, root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hxlint:", err)
		os.Exit(2)
	}
	live := 0
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *jsonOut {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(os.Stderr, "hxlint:", err)
				os.Exit(2)
			}
		} else if !f.Suppressed {
			fmt.Println(f)
		}
		if !f.Suppressed {
			live++
		}
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "hxlint: %d finding(s)\n", live)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// restrict filters findings to the subtrees named on the command line.
// "./..." (or no arguments) keeps everything — the whole-module form the
// Makefile uses.
func restrict(findings []lint.Finding, root string, args []string) ([]lint.Finding, error) {
	var prefixes []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return findings, nil
		}
		abs, err := filepath.Abs(strings.TrimSuffix(a, "/..."))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside the module at %s", a, root)
		}
		prefixes = append(prefixes, filepath.ToSlash(rel)+"/")
	}
	if len(prefixes) == 0 {
		return findings, nil
	}
	var out []lint.Finding
	for _, f := range findings {
		for _, p := range prefixes {
			if p == "./" || strings.HasPrefix(f.File, p) {
				out = append(out, f)
				break
			}
		}
	}
	return out, nil
}
