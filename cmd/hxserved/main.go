// Command hxserved is the persistent sweep service: an HTTP daemon that
// runs hxsweep's experiments behind a content-addressed result cache.
//
// Submit an experiment, poll it, fetch its CSV — byte-identical to what
// cmd/hxsweep prints for the same configuration:
//
//	hxserved -checkpoint-dir /var/lib/hyperx/cache &
//	curl -d '{"config":{"Seed":1},"opts":{"Warmup":20000,"Window":15000}}' \
//	     localhost:8080/v1/sweeps
//	curl localhost:8080/v1/jobs/<id>               # status
//	curl -N localhost:8080/v1/jobs/<id>/events     # NDJSON progress
//	curl localhost:8080/v1/jobs/<id>/result.csv    # the Figure 6 panel
//	curl localhost:8080/v1/cache/stats             # store + dedup counters
//
// Jobs are identified by the hash of their cells' checkpoint keys:
// resubmitting a completed experiment returns the finished job, and
// after a restart against the same -checkpoint-dir the cells replay out
// of the store in microseconds (the result manifest's provenance block
// records how many were cached). On SIGINT/SIGTERM the daemon drains:
// running jobs finish and persist, queued jobs report cancelled.
//
// -addr :0 picks a free port; -addr-file writes the bound address for
// scripts (see make servesmoke).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyperx/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (use :0 for a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening")
		ckptDir  = flag.String("checkpoint-dir", "", "content-addressed result cache directory (empty = in-memory dedup only)")
		jobs     = flag.Int("j", 0, "harness workers per job (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "default per-simulation shard count for requests that leave it unset")
		queue    = flag.Int("queue", 0, "submit queue depth (0 = default 32)")
		active   = flag.Int("active", 0, "jobs executed concurrently (0 = default 2)")
		drain    = flag.Duration("drain", 10*time.Minute, "graceful-shutdown budget for running jobs")
	)
	flag.Parse()

	srv, err := serve.New(serve.Options{
		CheckpointDir: *ckptDir,
		Workers:       *jobs,
		Shards:        *shards,
		QueueDepth:    *queue,
		Executors:     *active,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "hxserved: listening on %s (cache %q)\n", ln.Addr(), *ckptDir)

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "hxserved: draining (running jobs finish, queued jobs cancel)")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "hxserved: drain:", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "hxserved: http:", err)
	}
}
