// Command hxsim runs a single steady-state simulation point of a HyperX
// network and reports latency and throughput, or prints the Table 1
// implementation comparison.
//
// Examples:
//
//	hxsim -alg DimWAR -pattern URBy -load 0.4
//	hxsim -widths 8,8,8 -terms 8 -alg OmniWAR -pattern DCR -load 0.3 -warmup 60000 -window 30000
//	hxsim -table1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hyperx"
)

func main() {
	var (
		widths  = flag.String("widths", "4,4,4", "HyperX widths per dimension, comma separated")
		terms   = flag.Int("terms", 4, "terminals per router")
		alg     = flag.String("alg", "DimWAR", fmt.Sprintf("routing algorithm %v", hyperx.Algorithms))
		pattern = flag.String("pattern", "UR", fmt.Sprintf("traffic pattern %v", hyperx.Patterns))
		load    = flag.Float64("load", 0.5, "offered load, flits/cycle/terminal")
		warmup  = flag.Int("warmup", 20000, "warmup cycles")
		window  = flag.Int("window", 15000, "measurement window cycles")
		vcs     = flag.Int("vcs", 8, "virtual channels per port")
		seed    = flag.Uint64("seed", 1, "random seed")
		table1  = flag.Bool("table1", false, "print the Table 1 implementation comparison and exit")
		paper   = flag.Bool("paper", false, "use the paper's 8x8x8 t=8 scale (overrides -widths/-terms)")
	)
	flag.Parse()

	if *table1 {
		fmt.Print(hyperx.TableOne())
		return
	}

	cfg := hyperx.Config{Terms: *terms, Algorithm: *alg, NumVCs: *vcs, Seed: *seed}
	for _, s := range strings.Split(*widths, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad width %q: %v\n", s, err)
			os.Exit(1)
		}
		cfg.Widths = append(cfg.Widths, w)
	}
	if *paper {
		cfg.Widths = []int{8, 8, 8}
		cfg.Terms = 8
	}

	pt, err := hyperx.RunLoadPoint(cfg, *pattern, *load, hyperx.RunOpts{Warmup: *warmup, Window: *window})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("topology   hyperx %v t=%d (%d terminals)\n", cfg.Widths, cfg.Terms, product(cfg.Widths)*cfg.Terms)
	fmt.Printf("algorithm  %s\n", *alg)
	fmt.Printf("pattern    %s\n", *pattern)
	fmt.Printf("offered    %.3f flits/cycle/terminal\n", *load)
	fmt.Printf("accepted   %.3f\n", pt.Accepted)
	fmt.Printf("latency    mean %.1f ns   p50 %.1f   p99 %.1f   (%d samples)\n", pt.Mean, pt.P50, pt.P99, pt.Samples)
	fmt.Printf("saturated  %v\n", pt.Saturated)
}

func product(v []int) int {
	p := 1
	for _, x := range v {
		p *= x
	}
	return p
}
