// Command hxstencil regenerates the stencil-application experiments: the
// Figure 8 phase breakdown (collective-only, halo-only, full app) across
// HyperX routing algorithms, and the Figure 4 topology comparison
// (fat tree vs Dragonfly vs HyperX).
//
// Examples:
//
//	hxstencil                       # Figure 8 at test scale
//	hxstencil -iters 16 -paper      # Figure 8c's blended-iteration variant, full scale
//	hxstencil -fig4                 # Figure 4 topology comparison
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hyperx"
	"hyperx/internal/app"
)

func main() {
	var (
		algs  = flag.String("algs", "DOR,VAL,UGAL,UGAL+,DimWAR,OmniWAR", "algorithms, comma separated")
		bytes = flag.Int("bytes", 100_000, "aggregate halo bytes per process per exchange")
		iters = flag.Int("iters", 1, "application iterations")
		fig4  = flag.Bool("fig4", false, "run the Figure 4 topology comparison instead of Figure 8")
		paper = flag.Bool("paper", false, "use the paper's 8x8x8 t=8 scale (16x16x16 process grid)")
		rd    = flag.Bool("recursive-doubling", false, "use recursive doubling instead of the dissemination collective")
		seed  = flag.Uint64("seed", 1, "random seed (placement and tie-breaks)")
	)
	flag.Parse()

	cfg := hyperx.DefaultScale()
	grid := [3]int{4, 4, 4}
	if *paper {
		cfg = hyperx.PaperScale()
		grid = [3]int{16, 16, 16}
	}
	cfg.Seed = *seed

	if *fig4 {
		runFig4(grid, *bytes, *iters, *seed)
		return
	}

	modes := []struct {
		name string
		mode app.Mode
	}{
		{"collective", hyperx.CollectiveOnly},
		{"halo", hyperx.HaloOnly},
		{"full", hyperx.FullApp},
	}
	fmt.Println("phase,algorithm,exec_time_ns,iterations")
	for _, m := range modes {
		for _, alg := range split(*algs) {
			cfg.Algorithm = alg
			res, err := hyperx.RunStencil(cfg, hyperx.StencilOpts{
				Grid: grid, Mode: m.mode, Iterations: *iters, Bytes: *bytes,
				Random: true, RecursiveDoubling: *rd, Seed: *seed,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%s,%s,%d,%d\n", m.name, alg, res.ExecTime, res.Iterations)
			fmt.Fprintf(os.Stderr, "done %s/%s\n", m.name, alg)
		}
	}
}

// runFig4 compares the full application across topologies of comparable
// size, each with its best practical adaptive routing.
func runFig4(grid [3]int, bytes, iters int, seed uint64) {
	opts := hyperx.StencilOpts{Grid: grid, Mode: hyperx.FullApp, Iterations: iters, Bytes: bytes, Random: true, Seed: seed}
	procs := grid[0] * grid[1] * grid[2]

	fmt.Println("topology,routing,terminals,exec_time_ns")

	hx := hyperx.DefaultScale()
	if procs > 256 {
		hx = hyperx.PaperScale()
	}
	hx.Algorithm = "OmniWAR"
	hx.Seed = seed
	inst, err := hyperx.Build(hx)
	fail(err)
	res, err := hyperx.RunStencilOn(inst.Net, opts)
	fail(err)
	fmt.Printf("hyperx,OmniWAR,%d,%d\n", inst.Topo.NumTerminals(), res.ExecTime)

	// Dragonfly sized to cover the process count.
	dfp := hyperx.DragonflyConfig{P: 4, A: 8, H: 2, Algorithm: "UGAL", Seed: seed} // 544 terminals
	if procs > 544 {
		dfp = hyperx.DragonflyConfig{P: 8, A: 16, H: 4, Algorithm: "UGAL", Seed: seed} // 8320
	}
	df, err := hyperx.BuildDragonfly(dfp)
	fail(err)
	res, err = hyperx.RunStencilOn(df, opts)
	fail(err)
	fmt.Printf("dragonfly,UGAL,%d,%d\n", df.Cfg.Topo.NumTerminals(), res.ExecTime)

	k := 10 // 250 terminals
	if procs > 250 {
		k = 26 // 4394
	}
	ft, err := hyperx.BuildFatTree(hyperx.FatTreeConfig{K: k, Seed: seed})
	fail(err)
	res, err = hyperx.RunStencilOn(ft, opts)
	fail(err)
	fmt.Printf("fattree,Clos-Adaptive,%d,%d\n", ft.Cfg.Topo.NumTerminals(), res.ExecTime)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func split(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
