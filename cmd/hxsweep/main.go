// Command hxsweep regenerates the Figure 6 data: load-latency curves
// (6a-6f) for one traffic pattern across routing algorithms, or the
// saturated-throughput comparison bars (6g) across all patterns.
//
// Sweeps run on the parallel harness (internal/harness): every (pattern,
// algorithm, load) triple is an independent, independently seeded
// simulation, so the CSV is bit-identical at any -j worker count, and
// -manifest records what each job cost (wall time, simulated cycles,
// events executed, events/sec).
//
// Fault injection: -faults k fails k randomly chosen (seeded by
// -faultseed, connectivity-preserving) router-to-router links in every
// simulation of the sweep, and the manifest records the failed links plus
// per-job delivered/dropped packet counts. -resilience K instead runs the
// graceful-degradation experiment: every algorithm at a fixed -load for
// k = 0..K failed links, one CSV row per cell.
//
// Examples:
//
//	hxsweep -pattern URBy -step 0.05                  # one Figure 6 panel, CSV
//	hxsweep -throughput                               # Figure 6g, CSV
//	hxsweep -pattern DCR -algs DimWAR,OmniWAR -paper  # full 8x8x8 scale
//	hxsweep -pattern UR -j 8 -manifest run.json       # 8 workers + run manifest
//	hxsweep -pattern UR -faults 4 -manifest run.json  # sweep with 4 dead links
//	hxsweep -resilience 6 -load 0.5                   # degradation vs fault count
//	hxsweep -pattern UR -shards 4                     # sharded executor, same CSV bytes
//	hxsweep -pattern UR -shards 4 -shard-window 50    # widest barrier window, same CSV bytes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"hyperx"
)

func main() {
	var (
		pattern    = flag.String("pattern", "UR", fmt.Sprintf("traffic pattern %v", hyperx.Patterns))
		algs       = flag.String("algs", "DOR,VAL,UGAL,UGAL+,DimWAR,OmniWAR", "algorithms, comma separated")
		step       = flag.Float64("step", 0.05, "load sweep granularity (the paper uses 0.02)")
		warmup     = flag.Int("warmup", 20000, "warmup cycles")
		window     = flag.Int("window", 15000, "measurement window cycles")
		throughput = flag.Bool("throughput", false, "emit Figure 6g: saturated throughput for every pattern x algorithm")
		patterns   = flag.String("patterns", "UR,BC,URBx,URBy,URBz,S2,DCR", "patterns for -throughput")
		paper      = flag.Bool("paper", false, "use the paper's 8x8x8 t=8 scale")
		seed       = flag.Uint64("seed", 1, "random seed")
		faults     = flag.Int("faults", 0, "inject this many failed router-router links (0 = pristine)")
		faultseed  = flag.Uint64("faultseed", 0, "seed for fault selection (0 = use -seed)")
		resilience = flag.Int("resilience", 0, "run the resilience experiment for 0..K failed links at -load")
		load       = flag.Float64("load", 0.5, "fixed offered load for -resilience")
		jobs       = flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS); results are identical at any -j")
		shards     = flag.Int("shards", 0, "cores per simulation via the deterministic sharded executor (0/1 = serial); results are bit-identical at any -shards")
		shardWin   = flag.Int("shard-window", 0, "sharded executor barrier window width in cycles (0 = derive from latencies; clamped to the cross-shard latency); results are bit-identical at any width")
		manifest   = flag.String("manifest", "", "write a JSON run manifest (per-job wall time, cycles, events/sec) to this file")
		quiet      = flag.Bool("q", false, "suppress the per-job progress lines on stderr")
		warmfork   = flag.Bool("warmfork", false, "fork each curve's load points from one shared pristine snapshot (bit-identical CSV, one network build per curve)")
		forkwarm   = flag.Int("forkwarm", 0, "warm the shared snapshot this many cycles at -forkload before forking (implies -warmfork; amortizes warmup across points — deterministic but NOT byte-comparable to cold CSVs, see EXPERIMENTS.md)")
		forkload   = flag.Float64("forkload", 0.5, "offered load during the -forkwarm shared warmup")
		forksettle = flag.Int("forksettle", 0, "post-fork settle cycles per point for -forkwarm (0 = warmup/4)")
		ckptDir    = flag.String("checkpoint-dir", "", "persist completed results here and resume from them on rerun (kill+rerun with identical flags yields a byte-identical CSV)")
	)
	flag.Parse()

	cfg := hyperx.DefaultScale()
	if *paper {
		cfg = hyperx.PaperScale()
	}
	cfg.Seed = *seed
	cfg.Faults = *faults
	cfg.FaultSeed = *faultseed
	opts := hyperx.RunOpts{Warmup: *warmup, Window: *window, Shards: *shards, ShardWindow: *shardWin}
	algList := split(*algs)
	po := hyperx.SweepOpts{Workers: *jobs, CheckpointDir: *ckptDir}
	if !*quiet {
		po.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	if *warmfork || *forkwarm > 0 {
		po.Fork = &hyperx.ForkOpts{WarmCycles: *forkwarm, WarmLoad: *forkload, Settle: *forksettle}
	}
	ctx := context.Background()

	if *resilience > 0 {
		// Graceful degradation: every algorithm x fault-count cell at one
		// fixed offered load.
		points, mani, err := hyperx.RunResilienceSweep(ctx, cfg, *pattern, algList, *resilience, *load, opts, po)
		writeManifest(*manifest, mani)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := hyperx.WriteResilienceCSV(os.Stdout, points); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *throughput {
		// Figure 6g: accepted throughput at 100% offered load.
		grid, mani, err := hyperx.RunThroughputGrid(ctx, cfg, split(*patterns), algList, opts, po)
		writeManifest(*manifest, mani)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := hyperx.WriteThroughputCSV(os.Stdout, grid); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// One Figure 6 panel: load,latency CSV per algorithm; lines end at
	// saturation like the paper's plots.
	curves, mani, err := hyperx.RunLoadSweepParallel(ctx, cfg, []string{*pattern}, algList, hyperx.LoadRange(*step), opts, po)
	writeManifest(*manifest, mani)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := hyperx.WriteSweepCSV(os.Stdout, curves); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !*quiet {
		for _, c := range curves {
			fmt.Fprintf(os.Stderr, "done %s/%s: %d points\n", c.Pattern, c.Algorithm, len(c.Points))
		}
	}
}

// writeManifest persists the run manifest when -manifest was given; a
// manifest is written even for failed runs so aborted sweeps still leave
// an observability record.
func writeManifest(path string, m *hyperx.Manifest) {
	if path == "" || m == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "manifest:", err)
		return
	}
	defer f.Close()
	if err := m.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "manifest:", err)
	}
}

func split(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
