// Command hxsweep regenerates the Figure 6 data: load-latency curves
// (6a-6f) for one traffic pattern across routing algorithms, or the
// saturated-throughput comparison bars (6g) across all patterns.
//
// Sweeps run on the parallel harness (internal/harness): every (pattern,
// algorithm, load) triple is an independent, independently seeded
// simulation, so the CSV is bit-identical at any -j worker count, and
// -manifest records what each job cost (wall time, simulated cycles,
// events executed, events/sec).
//
// Examples:
//
//	hxsweep -pattern URBy -step 0.05                  # one Figure 6 panel, CSV
//	hxsweep -throughput                               # Figure 6g, CSV
//	hxsweep -pattern DCR -algs DimWAR,OmniWAR -paper  # full 8x8x8 scale
//	hxsweep -pattern UR -j 8 -manifest run.json       # 8 workers + run manifest
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"hyperx"
)

func main() {
	var (
		pattern    = flag.String("pattern", "UR", fmt.Sprintf("traffic pattern %v", hyperx.Patterns))
		algs       = flag.String("algs", "DOR,VAL,UGAL,UGAL+,DimWAR,OmniWAR", "algorithms, comma separated")
		step       = flag.Float64("step", 0.05, "load sweep granularity (the paper uses 0.02)")
		warmup     = flag.Int("warmup", 20000, "warmup cycles")
		window     = flag.Int("window", 15000, "measurement window cycles")
		throughput = flag.Bool("throughput", false, "emit Figure 6g: saturated throughput for every pattern x algorithm")
		patterns   = flag.String("patterns", "UR,BC,URBx,URBy,URBz,S2,DCR", "patterns for -throughput")
		paper      = flag.Bool("paper", false, "use the paper's 8x8x8 t=8 scale")
		seed       = flag.Uint64("seed", 1, "random seed")
		jobs       = flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS); results are identical at any -j")
		manifest   = flag.String("manifest", "", "write a JSON run manifest (per-job wall time, cycles, events/sec) to this file")
		quiet      = flag.Bool("q", false, "suppress the per-job progress lines on stderr")
	)
	flag.Parse()

	cfg := hyperx.DefaultScale()
	if *paper {
		cfg = hyperx.PaperScale()
	}
	cfg.Seed = *seed
	opts := hyperx.RunOpts{Warmup: *warmup, Window: *window}
	algList := split(*algs)
	po := hyperx.SweepOpts{Workers: *jobs}
	if !*quiet {
		po.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	ctx := context.Background()

	if *throughput {
		// Figure 6g: accepted throughput at 100% offered load.
		grid, mani, err := hyperx.RunThroughputGrid(ctx, cfg, split(*patterns), algList, opts, po)
		writeManifest(*manifest, mani)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pattern,%s\n", strings.Join(algList, ","))
		for pi, pat := range grid.Patterns {
			row := []string{pat}
			for ai := range grid.Algorithms {
				row = append(row, fmt.Sprintf("%.3f", grid.Values[pi][ai]))
			}
			fmt.Println(strings.Join(row, ","))
		}
		return
	}

	// One Figure 6 panel: load,latency CSV per algorithm; lines end at
	// saturation like the paper's plots.
	curves, mani, err := hyperx.RunLoadSweepParallel(ctx, cfg, []string{*pattern}, algList, hyperx.LoadRange(*step), opts, po)
	writeManifest(*manifest, mani)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("algorithm,load,mean_ns,p50_ns,p99_ns,accepted,saturated")
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Printf("%s,%.3f,%.1f,%.1f,%.1f,%.3f,%v\n", c.Algorithm, p.Load, p.Mean, p.P50, p.P99, p.Accepted, p.Saturated)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "done %s/%s: %d points\n", c.Pattern, c.Algorithm, len(c.Points))
		}
	}
}

// writeManifest persists the run manifest when -manifest was given; a
// manifest is written even for failed runs so aborted sweeps still leave
// an observability record.
func writeManifest(path string, m *hyperx.Manifest) {
	if path == "" || m == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "manifest:", err)
		return
	}
	defer f.Close()
	if err := m.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "manifest:", err)
	}
}

func split(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
