// Command hxsweep regenerates the Figure 6 data: load-latency curves
// (6a-6f) for one traffic pattern across routing algorithms, or the
// saturated-throughput comparison bars (6g) across all patterns.
//
// Examples:
//
//	hxsweep -pattern URBy -step 0.05                  # one Figure 6 panel, CSV
//	hxsweep -throughput                               # Figure 6g, CSV
//	hxsweep -pattern DCR -algs DimWAR,OmniWAR -paper  # full 8x8x8 scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hyperx"
)

func main() {
	var (
		pattern    = flag.String("pattern", "UR", fmt.Sprintf("traffic pattern %v", hyperx.Patterns))
		algs       = flag.String("algs", "DOR,VAL,UGAL,UGAL+,DimWAR,OmniWAR", "algorithms, comma separated")
		step       = flag.Float64("step", 0.05, "load sweep granularity (the paper uses 0.02)")
		warmup     = flag.Int("warmup", 20000, "warmup cycles")
		window     = flag.Int("window", 15000, "measurement window cycles")
		throughput = flag.Bool("throughput", false, "emit Figure 6g: saturated throughput for every pattern x algorithm")
		patterns   = flag.String("patterns", "UR,BC,URBx,URBy,URBz,S2,DCR", "patterns for -throughput")
		paper      = flag.Bool("paper", false, "use the paper's 8x8x8 t=8 scale")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := hyperx.DefaultScale()
	if *paper {
		cfg = hyperx.PaperScale()
	}
	cfg.Seed = *seed
	opts := hyperx.RunOpts{Warmup: *warmup, Window: *window}
	algList := split(*algs)

	if *throughput {
		// Figure 6g: accepted throughput at 100% offered load.
		fmt.Printf("pattern,%s\n", strings.Join(algList, ","))
		for _, pat := range split(*patterns) {
			row := []string{pat}
			for _, alg := range algList {
				cfg.Algorithm = alg
				th, err := hyperx.RunThroughput(cfg, pat, opts)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				row = append(row, fmt.Sprintf("%.3f", th))
				fmt.Fprintf(os.Stderr, "done %s/%s = %.3f\n", pat, alg, th)
			}
			fmt.Println(strings.Join(row, ","))
		}
		return
	}

	// One Figure 6 panel: load,latency CSV per algorithm; lines end at
	// saturation like the paper's plots.
	fmt.Println("algorithm,load,mean_ns,p50_ns,p99_ns,accepted,saturated")
	for _, alg := range algList {
		cfg.Algorithm = alg
		pts, err := hyperx.RunLoadSweep(cfg, *pattern, hyperx.LoadRange(*step), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, p := range pts {
			fmt.Printf("%s,%.3f,%.1f,%.1f,%.1f,%.3f,%v\n", alg, p.Load, p.Mean, p.P50, p.P99, p.Accepted, p.Saturated)
		}
		fmt.Fprintf(os.Stderr, "done %s/%s: %d points\n", *pattern, alg, len(pts))
	}
}

func split(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
