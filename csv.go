package hyperx

import (
	"fmt"
	"io"
	"strings"
)

// This file is the single source of truth for the CSV shapes of every
// experiment output. cmd/hxsweep prints through these writers and the
// sweep service (internal/serve) serves result.csv through them, which
// is what makes the daemon's responses byte-identical to the CLI's
// files for the same Config/RunOpts — the service is a serving layer in
// front of the same computation, never a second implementation of the
// output format. The httptest suite pins this equivalence.

// WriteSweepCSV renders load-latency curves (one Figure 6 panel) in the
// exact byte format cmd/hxsweep emits: a fixed header, then one row per
// point in curve order, each curve truncated at its first saturated
// point by the sweep itself.
func WriteSweepCSV(w io.Writer, curves []Curve) error {
	if _, err := fmt.Fprintln(w, "algorithm,load,mean_ns,p50_ns,p99_ns,accepted,saturated,delivered,dropped"); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			if _, err := fmt.Fprintf(w, "%s,%.3f,%.1f,%.1f,%.1f,%.3f,%v,%d,%d\n",
				c.Algorithm, p.Load, p.Mean, p.P50, p.P99, p.Accepted, p.Saturated, p.Delivered, p.Dropped); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteThroughputCSV renders the Figure 6g saturated-throughput grid in
// the exact byte format cmd/hxsweep emits: an algorithm-named header,
// then one row per pattern.
func WriteThroughputCSV(w io.Writer, grid *ThroughputGrid) error {
	if _, err := fmt.Fprintf(w, "pattern,%s\n", strings.Join(grid.Algorithms, ",")); err != nil {
		return err
	}
	for pi, pat := range grid.Patterns {
		row := []string{pat}
		for ai := range grid.Algorithms {
			row = append(row, fmt.Sprintf("%.3f", grid.Values[pi][ai]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteResilienceCSV renders the graceful-degradation experiment in the
// exact byte format cmd/hxsweep emits: one row per algorithm ×
// fault-count cell, grouped by algorithm with ascending k.
func WriteResilienceCSV(w io.Writer, points []ResiliencePoint) error {
	if _, err := fmt.Fprintln(w, "algorithm,faults,load,mean_ns,p99_ns,accepted,delivered,dropped,delivered_frac"); err != nil {
		return err
	}
	for _, p := range points {
		lp := p.LoadPoint
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%.1f,%.1f,%.3f,%d,%d,%.6f\n",
			p.Algorithm, p.Faults, lp.Load, lp.Mean, lp.P99, lp.Accepted,
			lp.Delivered, lp.Dropped, p.DeliveredFrac()); err != nil {
			return err
		}
	}
	return nil
}
