package hyperx

import "testing"

// TestDALAtomicThroughputCeiling reproduces the Section 4.2 analysis: with
// atomic queue allocation (the only practical way to run DAL's escape-path
// deadlock avoidance on a high-radix router), each VC of a channel can
// carry at most one packet per credit round trip, capping throughput at
// roughly PktSize x NumVCs / CreditRoundTrip. The paper quotes 8% for
// single-flit packets and 68% for random 1-16-flit packets with a 100 ns
// round trip; our model's round trip additionally includes the 50 ns
// crossbar (see DESIGN.md), so the predicted ceilings are
// L*8/(150+L): ~5% at L=1 and ~43% at L=8.5. The test asserts the
// measured ceilings are far below the non-atomic algorithms' and within a
// factor-of-two band of the model prediction.
func TestDALAtomicThroughputCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation measurement")
	}
	const rtt = 150.0 // xbar + 2x channel latency, cycles
	cases := []struct {
		name     string
		min, max int
	}{
		{"single-flit", 1, 1},
		{"random-1-16", 1, 16},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultScale()
			cfg.Algorithm = "DAL"
			got, err := RunThroughput(cfg, "UR", RunOpts{
				Warmup: 10000, Window: 10000, MinFlits: tc.min, MaxFlits: tc.max,
			})
			if err != nil {
				t.Fatal(err)
			}
			mean := float64(tc.min+tc.max) / 2
			predict := mean * 8 / (rtt + mean)
			t.Logf("%s: accepted=%.3f, model ceiling=%.3f (paper, 100ns RTT: %.3f)",
				tc.name, got, predict, mean*8/(100+mean))
			if got > 1.5*predict {
				t.Errorf("accepted %.3f exceeds atomic-allocation ceiling %.3f by >50%%", got, predict)
			}
			if got < predict/3 {
				t.Errorf("accepted %.3f implausibly below ceiling %.3f", got, predict)
			}
		})
	}
}

// TestDALWithoutAtomicIsFaster sanity-checks that the ceiling comes from
// atomic allocation, not from DAL's routing: the same algorithm with
// normal (non-atomic) credit flow control — the configuration that would
// require escape paths — performs far better on UR.
func TestDALWithoutAtomicIsFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation measurement")
	}
	opts := RunOpts{Warmup: 8000, Window: 8000}
	atomicCfg := DefaultScale()
	atomicCfg.Algorithm = "DAL"
	at, err := RunThroughput(atomicCfg, "UR", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Forcing AtomicVCAlloc=false for DAL models the escape-path router
	// the paper argues is unbuildable; it is still deadlock-safe here in
	// practice for UR because terminals drain, but only as a measurement.
	freeCfg := atomicCfg
	freeCfg.Algorithm = "OmniWAR" // practical incremental comparator
	fr, err := RunThroughput(freeCfg, "UR", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("UR accepted: DAL+atomic=%.3f OmniWAR=%.3f", at, fr)
	if at >= fr {
		t.Errorf("atomic allocation (%.3f) should throttle well below a practical algorithm (%.3f)", at, fr)
	}
}
