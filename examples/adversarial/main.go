// Adversarial: reproduce the paper's headline result (Figure 6d) at demo
// scale. URBy traffic is load-balanced in the X and Z dimensions but
// complements Y, so the congestion lives one hop away from the source
// router. Source-adaptive routing (UGAL) cannot distinguish its minimal
// and Valiant options there and pins to the congested minimal paths,
// saturating at the 1/W bisection ceiling, while the incremental DimWAR
// and OmniWAR route around the hot links and sustain near 50%.
package main

import (
	"fmt"
	"log"

	"hyperx"
)

func main() {
	cfg := hyperx.DefaultScale() // 4x4x4, t=4; W=4 so the minimal ceiling is 25%
	opts := hyperx.RunOpts{Warmup: 10000, Window: 10000}

	fmt.Println("URBy (complement in Y, uniform in X/Z) — accepted throughput at 45% offered")
	fmt.Printf("%-8s %10s %12s %10s\n", "alg", "accepted", "mean(ns)", "saturated")
	for _, alg := range []string{"DOR", "VAL", "UGAL", "UGAL+", "DimWAR", "OmniWAR"} {
		cfg.Algorithm = alg
		pt, err := hyperx.RunLoadPoint(cfg, "URBy", 0.45, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10.3f %12.1f %10v\n", alg, pt.Accepted, pt.Mean, pt.Saturated)
	}

	fmt.Println("\nThe incremental algorithms (DimWAR, OmniWAR) keep accepting the full")
	fmt.Println("offered load; DOR and UGAL collapse to ~1/W of capacity (the paper's")
	fmt.Println("Figure 6d shows the same effect at 8x8x8, where 1/W = 12.5%).")
}
