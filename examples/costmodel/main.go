// Costmodel: the paper's motivation in two tables. First the Figure 2
// scalability comparison (how many nodes each low-diameter topology
// builds from a given router radix), then the Figure 3 cabling-cost
// comparison showing why co-packaged photonics flips the economics from
// Dragonfly to HyperX.
package main

import (
	"fmt"

	"hyperx/internal/cost"
)

func main() {
	fmt.Println("Figure 2 — maximum network size by router radix")
	fmt.Printf("%6s %12s %12s %12s %12s %12s\n", "radix", "HyperX-2", "HyperX-3", "HyperX-4", "Dragonfly", "FatTree-3")
	for _, p := range cost.ScalabilityCurve([]int{16, 32, 48, 64, 96, 128}) {
		fmt.Printf("%6d %12d %12d %12d %12d %12d\n",
			p.Radix, p.HyperX2, p.HyperX3, p.HyperX4, p.Dragonfly, p.FatTree)
	}
	c := cost.MaxHyperX(64, 3)
	fmt.Printf("\n(64-port 3-D HyperX: widths %v, %d terminals/router -> %d nodes,\n", c.Widths, c.Terms, c.Nodes)
	fmt.Println(" matching the paper's Section 3.1 figure of 78,608.)")

	fmt.Println("\nFigure 3 — cabling cost, Dragonfly relative to HyperX (per node)")
	fmt.Println("ratio > 1 means the HyperX is cheaper")
	pts := cost.CompareCableCost(cost.DefaultGeometry(), []int{6, 8, 10, 12})
	fmt.Printf("%10s", "nodes")
	for _, name := range pts[0].Tech {
		fmt.Printf(" %18s", name)
	}
	fmt.Println()
	for _, p := range pts {
		fmt.Printf("%10d", p.HyperXNodes)
		for _, r := range p.CostRatio {
			fmt.Printf(" %18.3f", r)
		}
		fmt.Println()
	}
	fmt.Println("\nWith copper-era DAC+AOC pricing the Dragonfly is cheaper at scale;")
	fmt.Println("with passive optical cables the HyperX is always equal or cheaper —")
	fmt.Println("the condition under which the paper develops its routing algorithms.")
}
