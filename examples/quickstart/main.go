// Quickstart: build a small HyperX, route uniform-random traffic with the
// paper's DimWAR algorithm, and print the steady-state latency and
// throughput of a single load point.
package main

import (
	"fmt"
	"log"

	"hyperx"
)

func main() {
	// A 4x4x4 HyperX with 4 terminals per router: 64 routers, 256 nodes.
	// (Use hyperx.PaperScale() for the paper's 4,096-node configuration.)
	cfg := hyperx.Config{
		Widths:    []int{4, 4, 4},
		Terms:     4,
		Algorithm: "DimWAR", // one of hyperx.Algorithms
	}

	// Measure one point: uniform-random traffic at 50% of injection
	// capacity, using the paper's methodology (warm up, then sample every
	// packet born in the measurement window while injection continues).
	pt, err := hyperx.RunLoadPoint(cfg, "UR", 0.5, hyperx.RunOpts{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HyperX 4x4x4, t=4, DimWAR, uniform random @ 50% load")
	fmt.Printf("  mean latency: %.0f ns   p99: %.0f ns\n", pt.Mean, pt.P99)
	fmt.Printf("  accepted:     %.3f flits/cycle/terminal\n", pt.Accepted)
	fmt.Printf("  saturated:    %v\n", pt.Saturated)

	// The same API sweeps a whole load-latency curve (Figure 6 style):
	pts, err := hyperx.RunLoadSweep(cfg, "UR", hyperx.LoadRange(0.2), hyperx.RunOpts{
		Warmup: 8000, Window: 8000, // shorter windows for a quick demo
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nload-latency curve (UR):")
	fmt.Print(hyperx.FormatLoadPoints(pts))
}
