// Stencil: run the paper's 27-point stencil application model (Section
// 6.2) — iterations of a halo exchange with 26 neighbors followed by a
// dissemination-algorithm collective — and compare routing algorithms by
// application execution time (Figure 8 style; lower is better).
package main

import (
	"fmt"
	"log"

	"hyperx"
	"hyperx/internal/app"
)

func main() {
	cfg := hyperx.DefaultScale()
	grid := [3]int{4, 4, 4} // 64 processes on 256 terminals, randomly placed

	phases := []struct {
		name string
		mode app.Mode
	}{
		{"collective only (Fig 8a)", hyperx.CollectiveOnly},
		{"halo exchange only (Fig 8b)", hyperx.HaloOnly},
		{"full application (Fig 8c)", hyperx.FullApp},
	}
	algs := []string{"DOR", "VAL", "UGAL", "UGAL+", "DimWAR", "OmniWAR"}

	for _, ph := range phases {
		fmt.Printf("\n%s — 100 kB halo per process, random placement\n", ph.name)
		for _, alg := range algs {
			cfg.Algorithm = alg
			res, err := hyperx.RunStencil(cfg, hyperx.StencilOpts{
				Grid:       grid,
				Mode:       ph.mode,
				Iterations: 1,
				Bytes:      100_000,
				Random:     true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s %9d ns  (%d packets)\n", alg, res.ExecTime, res.Packets)
		}
	}
}
