package hyperx

import (
	"strings"
	"testing"
)

func TestBuildDefaults(t *testing.T) {
	inst, err := Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Topo.NumTerminals() != 256 {
		t.Errorf("default scale terminals = %d, want 256", inst.Topo.NumTerminals())
	}
	if inst.Alg.Name() != "DimWAR" {
		t.Errorf("default algorithm %s", inst.Alg.Name())
	}
}

func TestPaperScale(t *testing.T) {
	inst, err := Build(PaperScale())
	if err != nil {
		t.Fatal(err)
	}
	if inst.Topo.NumTerminals() != 4096 {
		t.Errorf("paper scale terminals = %d, want 4096", inst.Topo.NumTerminals())
	}
	if inst.Topo.NumPorts() != 29 {
		t.Errorf("paper scale radix = %d, want 29", inst.Topo.NumPorts())
	}
}

func TestAllAlgorithmsConstruct(t *testing.T) {
	for _, name := range Algorithms {
		cfg := DefaultScale()
		cfg.Algorithm = name
		if _, err := Build(cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAllPatternsConstruct(t *testing.T) {
	inst := MustBuild(DefaultScale())
	for _, name := range Patterns {
		if _, err := NewPattern(name, inst.Topo); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestUnknownNamesRejected(t *testing.T) {
	cfg := DefaultScale()
	cfg.Algorithm = "bogus"
	if _, err := Build(cfg); err == nil {
		t.Error("bogus algorithm accepted")
	}
	inst := MustBuild(DefaultScale())
	if _, err := NewPattern("bogus", inst.Topo); err == nil {
		t.Error("bogus pattern accepted")
	}
}

func TestDALImpliesAtomic(t *testing.T) {
	cfg := DefaultScale()
	cfg.Algorithm = "DAL"
	inst := MustBuild(cfg)
	if !inst.Net.Cfg.AtomicVCAlloc {
		t.Error("DAL did not imply atomic queue allocation")
	}
}

func TestLoadRange(t *testing.T) {
	r := LoadRange(0.25)
	if len(r) != 4 || r[0] != 0.25 || r[3] != 1.0 {
		t.Errorf("LoadRange(0.25) = %v", r)
	}
	if got := len(LoadRange(0.02)); got != 50 {
		t.Errorf("paper granularity gives %d points, want 50", got)
	}
}

func TestFitGrid(t *testing.T) {
	cases := []struct {
		n    int
		want [3]int
	}{
		{64, [3]int{4, 4, 4}},
		{256, [3]int{4, 8, 8}},
		{4096, [3]int{16, 16, 16}},
		{250, [3]int{5, 5, 10}},
	}
	for _, c := range cases {
		got := FitGrid(c.n)
		if got != c.want {
			t.Errorf("FitGrid(%d) = %v, want %v", c.n, got, c.want)
		}
		if got[0]*got[1]*got[2] > c.n {
			t.Errorf("FitGrid(%d) = %v exceeds n", c.n, got)
		}
	}
}

func TestTableOneContent(t *testing.T) {
	tbl := TableOne()
	for _, want := range []string{"DimWAR", "OmniWAR", "UGAL+", "DAL", "N+M", "int. addr.", "escape paths"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, tbl)
		}
	}
	// The contributions carry no packet state.
	for _, line := range strings.Split(tbl, "\n") {
		if strings.HasPrefix(line, "DimWAR") || strings.HasPrefix(line, "OmniWAR") {
			if !strings.HasSuffix(strings.TrimSpace(line), "none") {
				t.Errorf("WAR row should end with PktContents none: %q", line)
			}
		}
	}
}

// TestRunDeterminism: identical config and seed give bit-identical
// results.
func TestRunDeterminism(t *testing.T) {
	cfg := DefaultScale()
	cfg.Algorithm = "OmniWAR"
	opts := RunOpts{Warmup: 2000, Window: 2000}
	a, err := RunLoadPoint(cfg, "UR", 0.3, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoadPoint(cfg, "UR", 0.3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nondeterministic results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 2
	c, err := RunLoadPoint(cfg, "UR", 0.3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical results")
	}
}

// TestFormatLoadPoints renders saturation markers.
func TestFormatLoadPoints(t *testing.T) {
	s := FormatLoadPoints([]LoadPoint{
		{Load: 0.5, Mean: 300, Accepted: 0.5, Samples: 10},
		{Load: 0.6, Mean: 9000, Accepted: 0.41, Samples: 10, Saturated: true},
	})
	if !strings.Contains(s, "[saturated]") {
		t.Errorf("missing saturation marker:\n%s", s)
	}
	if strings.Count(s, "\n") != 3 {
		t.Errorf("unexpected line count:\n%s", s)
	}
}
