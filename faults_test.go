package hyperx

import (
	"context"
	"reflect"
	"testing"
)

// TestFaultConfigBuilds: the facade wires one consistent fault picture
// into topology, algorithm, and network; fault selection is a pure
// function of (Widths, Faults, FaultSeed).
func TestFaultConfigBuilds(t *testing.T) {
	cfg := DefaultScale()
	cfg.Faults = 3
	cfg.FaultSeed = 99
	inst, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Faults.Size() != 3 {
		t.Fatalf("instance has %d faults, want 3", inst.Faults.Size())
	}
	fs, err := BuildFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs.Strings(), inst.Faults.Strings()) {
		t.Error("BuildFaults disagrees with the built instance")
	}
	pristine := DefaultScale()
	if fs, err := BuildFaults(pristine); err != nil || fs != nil {
		t.Errorf("Faults=0 must yield a nil fault set, got %v, %v", fs, err)
	}
}

// TestFaultSweepDeterminismAcrossWorkers: the satellite determinism
// claim — the same (seed, faultseed, k) yields identical sweep results
// at any worker count, drops included.
func TestFaultSweepDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 1500, Window: 1500}
	loads := []float64{0.2, 0.4}
	cfg := DefaultScale()
	cfg.Seed = 3
	cfg.Faults = 2
	cfg.FaultSeed = 17

	var ref []Curve
	for _, workers := range []int{1, 8} {
		curves, mani, err := RunLoadSweepParallel(context.Background(), cfg,
			[]string{"UR"}, []string{"DimWAR", "DOR"}, loads, opts, SweepOpts{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(mani.Faults) != 2 {
			t.Fatalf("workers=%d: manifest records %d faults, want 2", workers, len(mani.Faults))
		}
		if ref == nil {
			ref = curves
			continue
		}
		if !reflect.DeepEqual(ref, curves) {
			t.Errorf("workers=%d diverged from workers=1 on a faulted sweep", workers)
		}
	}

	// DimWAR routes around the faults; DOR pays for them in drops.
	for _, c := range ref {
		for _, p := range c.Points {
			if c.Algorithm == "DimWAR" && p.Dropped != 0 {
				t.Errorf("DimWAR dropped %d packets at load %.2f", p.Dropped, p.Load)
			}
		}
	}
}

// TestResilienceSweep: the graceful-degradation experiment end-to-end on
// a small topology — fault-aware algorithms keep DeliveredFrac at 1.0,
// the dimension-ordered baseline loses packets, and k=0 cells are
// loss-free for everyone.
func TestResilienceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	cfg := DefaultScale()
	cfg.Seed = 5
	opts := RunOpts{Warmup: 1500, Window: 1500}
	algs := []string{"DOR", "DimWAR"}
	points, mani, err := RunResilienceSweep(context.Background(), cfg,
		"UR", algs, 2, 0.3, opts, SweepOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(algs)*3 {
		t.Fatalf("got %d points, want %d", len(points), len(algs)*3)
	}
	if len(mani.Faults) == 0 {
		t.Error("resilience manifest must record the max-k fault list")
	}
	var dorLoss bool
	for _, p := range points {
		if p.Faults == 0 {
			if p.LoadPoint.Dropped != 0 {
				t.Errorf("%s k=0 dropped %d packets on a pristine network", p.Algorithm, p.LoadPoint.Dropped)
			}
			if len(p.FaultSet) != 0 {
				t.Errorf("%s k=0 carries a fault list", p.Algorithm)
			}
			continue
		}
		if len(p.FaultSet) != p.Faults {
			t.Errorf("%s k=%d records %d links", p.Algorithm, p.Faults, len(p.FaultSet))
		}
		switch p.Algorithm {
		case "DimWAR":
			if p.DeliveredFrac() != 1.0 {
				t.Errorf("DimWAR k=%d delivered fraction %.6f, want 1.0", p.Faults, p.DeliveredFrac())
			}
		case "DOR":
			if p.LoadPoint.Dropped > 0 {
				dorLoss = true
			}
		}
	}
	if !dorLoss {
		t.Error("DOR shed no packets across any faulted cell; detect-and-drop path untested")
	}
}

// TestPaperScaleFaultDelivery is the headline acceptance run: four random
// link failures on the full 8x8x8, DimWAR and OmniWAR each deliver 100%
// of injected packets with zero drops.
func TestPaperScaleFaultDelivery(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("paper-scale simulation")
	}
	cfg := PaperScale()
	cfg.Faults = 4
	cfg.FaultSeed = 2
	opts := RunOpts{Warmup: 3000, Window: 3000}
	for _, alg := range []string{"DimWAR", "OmniWAR"} {
		cfg.Algorithm = alg
		pt, err := RunLoadPoint(cfg, "UR", 0.3, opts)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if pt.Dropped != 0 {
			t.Errorf("%s dropped %d of %d packets with k=4", alg, pt.Dropped, pt.Delivered+pt.Dropped)
		}
		if pt.Delivered == 0 {
			t.Errorf("%s delivered nothing", alg)
		}
	}
}
