package hyperx

import "testing"

// Figure-shape integration tests: each asserts the qualitative result of
// one evaluation figure at test scale (4x4x4, t=4; W=4 so the minimal
// bisection ceiling for complement traffic is 1/W = 25%). These are the
// paper's claims, not absolute-number matches — see EXPERIMENTS.md.

// TestFig6bShape — bit complement: every adaptive algorithm must push
// past the 1/W minimal ceiling by routing non-minimally, approaching the
// ~50% non-minimal bound, while DOR saturates at 1/W.
func TestFig6bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 8000, Window: 8000}
	get := func(alg string) float64 {
		cfg := DefaultScale()
		cfg.Algorithm = alg
		th, err := RunThroughput(cfg, "BC", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("BC %-8s accepted %.3f", alg, th)
		return th
	}
	dor := get("DOR")
	if dor > 0.30 {
		t.Errorf("DOR BC throughput %.3f, want ~1/W = 0.25", dor)
	}
	// All adaptive algorithms must beat the minimal ceiling. OmniWAR's
	// margin is the smallest at this scale (one VC per distance class —
	// no HOL spares; see EXPERIMENTS.md), so the bound is just above 1/W.
	for _, alg := range []string{"UGAL", "UGAL+", "DimWAR", "OmniWAR"} {
		if th := get(alg); th < 0.28 {
			t.Errorf("%s BC throughput %.3f did not exceed the minimal ceiling", alg, th)
		}
	}
}

// TestFig6eShape — swap-2: the HyperX-tailored incremental algorithms
// approach full throughput; plain UGAL gets stuck near VAL-like levels.
func TestFig6eShape(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 8000, Window: 8000}
	get := func(alg string) float64 {
		cfg := DefaultScale()
		cfg.Algorithm = alg
		th, err := RunThroughput(cfg, "S2", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("S2 %-8s accepted %.3f", alg, th)
		return th
	}
	dim, omni, ugal := get("DimWAR"), get("OmniWAR"), get("UGAL")
	// DimWAR exploits the unused bandwidth fully; OmniWAR pays its
	// one-VC-per-class HOL penalty at this scale (EXPERIMENTS.md) but
	// must still clearly beat UGAL.
	if dim < 0.72 {
		t.Errorf("DimWAR on S2: %.3f, want near full throughput", dim)
	}
	if omni < 0.62 {
		t.Errorf("OmniWAR on S2: %.3f, want well above UGAL", omni)
	}
	if ugal > dim || ugal > omni {
		t.Errorf("UGAL (%.3f) should trail the incremental WARs (%.3f, %.3f) on S2", ugal, dim, omni)
	}
}

// TestFig6fShape — DCR, the worst-case admissible 3-D pattern: DOR
// collapses to ~1/(W*t); OmniWAR (full path diversity) beats DimWAR
// (dimension-ordered); OmniWAR approaches the 50% bound.
func TestFig6fShape(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 8000, Window: 8000}
	get := func(alg string) float64 {
		cfg := DefaultScale()
		cfg.Algorithm = alg
		th, err := RunThroughput(cfg, "DCR", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("DCR %-8s accepted %.3f", alg, th)
		return th
	}
	dor := get("DOR")
	// 1/(W*t) = 1/16 at this scale.
	if dor > 0.12 {
		t.Errorf("DOR DCR throughput %.3f, want near 1/(W*t) = 0.0625", dor)
	}
	dim, omni := get("DimWAR"), get("OmniWAR")
	if omni < dim {
		t.Errorf("OmniWAR (%.3f) should beat DimWAR (%.3f) on DCR", omni, dim)
	}
	if omni < 0.35 {
		t.Errorf("OmniWAR DCR throughput %.3f, want approaching 0.5", omni)
	}
}

// TestFig6aShape — uniform random: every algorithm except VAL accepts
// high load; VAL caps near 50% by construction.
func TestFig6aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 8000, Window: 8000}
	get := func(alg string) float64 {
		cfg := DefaultScale()
		cfg.Algorithm = alg
		th, err := RunThroughput(cfg, "UR", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("UR %-8s accepted %.3f", alg, th)
		return th
	}
	if val := get("VAL"); val > 0.62 {
		t.Errorf("VAL UR throughput %.3f, should cap near 50%%", val)
	}
	for _, alg := range []string{"DimWAR", "OmniWAR", "MinAD"} {
		if th := get(alg); th < 0.70 {
			t.Errorf("%s UR throughput %.3f, want high", alg, th)
		}
	}
}

// TestFig8Shape — stencil: the WARs never lose to DOR or VAL on the full
// application (the paper's Figure 8c ordering).
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("application simulations")
	}
	get := func(alg string) int64 {
		cfg := DefaultScale()
		cfg.Algorithm = alg
		res, err := RunStencil(cfg, StencilOpts{
			Grid: [3]int{4, 4, 4}, Mode: FullApp, Iterations: 1, Bytes: 100_000, Random: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("stencil %-8s %d ns", alg, res.ExecTime)
		return int64(res.ExecTime)
	}
	dor, val := get("DOR"), get("VAL")
	dim, omni := get("DimWAR"), get("OmniWAR")
	worstOblivious := dor
	if val > worstOblivious {
		worstOblivious = val
	}
	if dim > worstOblivious || omni > worstOblivious {
		t.Errorf("WARs (%d, %d) slower than the worst oblivious algorithm (%d)", dim, omni, worstOblivious)
	}
}
