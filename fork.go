package hyperx

import (
	"context"
	"fmt"

	"hyperx/internal/network"
	"hyperx/internal/sim"
	"hyperx/internal/traffic"
)

// SimState is a complete warm-state checkpoint of a simulation instance:
// the network half (state slabs, packets, credits, router RNG streams,
// kernel calendar — see internal/network.Snapshot) plus the traffic half
// (per-terminal generator streams and carries). It is relocatable: restore
// it into the same instance or into a fresh one built from the identical
// Config, and the resumed run is bit-identical to the captured one.
// docs/STATE.md is the authoritative inventory of what it contains.
type SimState struct {
	Net *network.Snapshot `json:"net"`
	Gen *traffic.GenState `json:"gen,omitempty"`
}

// Snapshot captures the instance's warm state. gen is the traffic
// generator driving the instance, or nil if no generator has been started
// (a pristine post-Build snapshot). The instance may keep running
// afterwards; the snapshot is an independent value copy.
func (inst *Instance) Snapshot(gen *traffic.Generator) (*SimState, error) {
	var ext []sim.Actor
	s := &SimState{}
	if gen != nil {
		ext = append(ext, gen)
		s.Gen = gen.Snapshot()
	}
	ns, err := inst.Net.Snapshot(ext...)
	if err != nil {
		return nil, err
	}
	s.Net = ns
	return s, nil
}

// Restore rewinds the instance to a snapshotted state. gen must mirror the
// Snapshot call: the generator that will receive the snapshot's pending
// injection events (started, so its stream slab exists), or nil for a
// generator-free snapshot. On error the instance is in an unspecified
// state and must be discarded.
func (inst *Instance) Restore(s *SimState, gen *traffic.Generator) error {
	if (gen != nil) != (s.Gen != nil) {
		return fmt.Errorf("hyperx: restore: snapshot %s a generator but caller %s one",
			has(s.Gen != nil), has(gen != nil))
	}
	var ext []sim.Actor
	if gen != nil {
		if err := gen.Restore(s.Gen); err != nil {
			return err
		}
		ext = append(ext, gen)
	}
	return inst.Net.Restore(s.Net, ext...)
}

func has(b bool) string {
	if b {
		return "has"
	}
	return "lacks"
}

// ForkOpts selects how a warm-fork sweep shares state across the load
// points of one (pattern, algorithm) curve. Two modes, chosen by
// WarmCycles:
//
// Pristine fork (WarmCycles == 0): the curve builds one instance,
// snapshots its pristine post-Build state, and restores it for every load
// point, which then warms up and measures exactly as a cold run does. The
// per-point simulation code path is identical to the cold path from Build
// onward, so the curve is bit-identical to the cold sweep — guaranteed by
// construction and pinned by TestWarmForkMatchesCold.
//
// Warm fork (WarmCycles > 0): the curve warms one instance for WarmCycles
// cycles at offered load WarmLoad, snapshots, and restores per point,
// retargeting the generator to the point's load and settling for Settle
// cycles before the measurement window. The warmup is paid once instead of
// per point — that is the sweep speedup — but the traffic history differs
// from a cold run's, so results are a distinct deterministic methodology
// (same seed → same CSV, pinned by the golden_warmfork test), NOT
// byte-comparable to cold CSVs. See EXPERIMENTS.md for the methodology
// discussion.
type ForkOpts struct {
	WarmCycles int     // warmup cycles before the fork point; 0 = pristine fork
	WarmLoad   float64 // offered load during shared warmup (default 0.5)
	Settle     int     // post-fork settle cycles per point (default Warmup/4)
}

func (f ForkOpts) withDefaults(opts RunOpts) ForkOpts {
	if f.WarmLoad == 0 {
		f.WarmLoad = 0.5
	}
	if f.Settle == 0 {
		f.Settle = opts.Warmup / 4
	}
	return f
}

// runCurveWarmFork measures one (pattern, algorithm) curve by forking a
// shared snapshot per load point, serially in ascending load order,
// stopping after the first saturated point like the serial sweep. The
// returned simStats aggregate the whole curve (warmup included).
func runCurveWarmFork(ctx context.Context, cfg Config, patternName string, loads []float64, opts RunOpts, fk ForkOpts) ([]LoadPoint, simStats, error) {
	opts = opts.withDefaults()
	fk = fk.withDefaults(opts)
	inst, err := Build(cfg)
	if err != nil {
		return nil, simStats{}, err
	}
	defer inst.Close()
	pat, err := NewPattern(patternName, inst.Topo)
	if err != nil {
		return nil, simStats{}, err
	}
	sizes := traffic.UniformSize{Min: opts.MinFlits, Max: opts.MaxFlits}

	var (
		snap *SimState
		gen  *traffic.Generator // non-nil only in warm (mode 2) forking
	)
	if fk.WarmCycles > 0 {
		gen = &traffic.Generator{Net: inst.Net, Pattern: pat, Sizes: sizes, Load: fk.WarmLoad}
		gen.Start(inst.Cfg.Seed)
		if _, err := inst.runCtx(ctx, sim.Time(fk.WarmCycles), opts.Shards, opts.ShardWindow); err != nil {
			return nil, simStats{}, err
		}
	}
	if snap, err = inst.Snapshot(gen); err != nil {
		return nil, simStats{}, err
	}
	// Baseline at the fork point: restore rewinds the clock and counters,
	// so each point's stats include the shared warm phase. The aggregate
	// charges the warm phase once plus every point's own delta.
	fork := simStats{
		Cycles:    int64(inst.K.Now()),
		Events:    inst.K.Executed(),
		Delivered: inst.Net.DeliveredPackets,
		Dropped:   inst.Net.DroppedPackets,
	}

	var pts []LoadPoint
	agg := fork
	for _, load := range loads {
		var pt LoadPoint
		var st simStats
		if gen != nil {
			// Warm fork: rewind to the fork point, retarget the offered
			// load, settle, measure.
			if err := inst.Restore(snap, gen); err != nil {
				return pts, agg, err
			}
			gen.Load = load
			pt, st, err = runPointOn(ctx, inst, gen, load, opts, sim.Time(fk.Settle))
		} else {
			// Pristine fork: rewind to the post-Build state and run the
			// exact cold-path point code (fresh generator, full warmup).
			if err := inst.Restore(snap, nil); err != nil {
				return pts, agg, err
			}
			g := &traffic.Generator{Net: inst.Net, Pattern: pat, Sizes: sizes, Load: load}
			g.Start(inst.Cfg.Seed)
			pt, st, err = runPointOn(ctx, inst, g, load, opts, sim.Time(opts.Warmup))
		}
		if err != nil {
			return pts, agg, err
		}
		agg.Cycles += st.Cycles - fork.Cycles
		agg.Events += st.Events - fork.Events
		agg.Delivered += st.Delivered - fork.Delivered
		agg.Dropped += st.Dropped - fork.Dropped
		pts = append(pts, pt)
		if pt.Saturated {
			break
		}
	}
	return pts, agg, nil
}
