package hyperx

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"reflect"
	"testing"

	"hyperx/internal/traffic"
)

var updateWarmFork = flag.Bool("update-warmfork", false, "rewrite testdata/golden_warmfork.json from the current simulator")

// TestWarmForkMatchesCold: the pristine-fork acceptance claim — a sweep
// forked from one shared post-Build snapshot per curve is bit-identical
// to the plain cold sweep, because each restored point then runs the
// exact cold-path code (fresh generator, full warmup) on the rewound
// network. VAL saturates partway up the grid, so the test also covers
// the curve-truncation rule agreeing between the two execution shapes.
func TestWarmForkMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 1500, Window: 1500}
	loads := LoadRange(0.2)
	patterns, algs := []string{"UR"}, []string{"DOR", "VAL"}
	cfg := DefaultScale()

	cold, coldMani, err := RunLoadSweepParallel(context.Background(), cfg,
		patterns, algs, loads, opts, SweepOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if coldMani.Provenance != nil {
		t.Errorf("plain cold sweep stamped provenance %+v, want nil (historical manifest shape)", coldMani.Provenance)
	}

	forked, mani, err := RunLoadSweepParallel(context.Background(), cfg,
		patterns, algs, loads, opts, SweepOpts{Workers: 2, Fork: &ForkOpts{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forked, cold) {
		for i := range cold {
			t.Errorf("curve %s/%s:\nforked: %s\ncold:   %s", cold[i].Pattern, cold[i].Algorithm,
				FormatLoadPoints(forked[i].Points), FormatLoadPoints(cold[i].Points))
		}
		t.Fatal("pristine-fork sweep diverged from cold sweep")
	}
	if mani.Provenance == nil || mani.Provenance.Mode != "pristine-fork" {
		t.Errorf("fork sweep provenance = %+v, want mode pristine-fork", mani.Provenance)
	}
	if mani.Provenance != nil && mani.Provenance.ForkCycles != 0 {
		t.Errorf("pristine fork recorded fork_cycles=%d, want 0", mani.Provenance.ForkCycles)
	}
}

// warmForkScenario runs the fixed mode-2 (warm-fork) scenario the golden
// file pins: a small [4,4] t=2 network, one shared 2000-cycle warmup at
// load 0.3, forked across a coarse load grid.
func warmForkScenario(t *testing.T) ([]Curve, *Manifest) {
	t.Helper()
	cfg := Config{Widths: []int{4, 4}, Terms: 2, Algorithm: "DimWAR", Seed: 1}
	opts := RunOpts{Warmup: 1000, Window: 1000}
	curves, mani, err := RunLoadSweepParallel(context.Background(), cfg,
		[]string{"UR"}, []string{"DOR", "DimWAR"}, LoadRange(0.2), opts,
		SweepOpts{Workers: 2, Fork: &ForkOpts{WarmCycles: 2000, WarmLoad: 0.3, Settle: 250}})
	if err != nil {
		t.Fatal(err)
	}
	return curves, mani
}

// TestWarmForkGolden: warm forking (WarmCycles > 0) is a distinct
// deterministic methodology — not byte-comparable to cold runs, but the
// same seed must yield the same curves on every run and every machine.
// The curves are pinned in testdata/golden_warmfork.json; regenerate with
//
//	go test -run TestWarmForkGolden -update-warmfork .
//
// only when an intentional behaviour change alters the results.
func TestWarmForkGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	const goldenFile = "testdata/golden_warmfork.json"
	curves, mani := warmForkScenario(t)
	if mani.Provenance == nil || mani.Provenance.Mode != "warm-fork" {
		t.Errorf("provenance = %+v, want mode warm-fork", mani.Provenance)
	} else if p := mani.Provenance; p.ForkCycles != 2000 || p.ForkLoad != 0.3 || p.ForkSettle != 250 || p.WarmSeed != 1 {
		t.Errorf("provenance fork parameters %+v do not record the requested methodology", p)
	}
	got, err := json.MarshalIndent(curves, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateWarmFork {
		if err := os.WriteFile(goldenFile, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenFile)
		return
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("%v (run with -update-warmfork to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("warm-fork curves diverged from %s:\ngot:\n%s\nwant:\n%s", goldenFile, got, want)
	}

	// Same run again: the methodology must be internally deterministic
	// independent of the pinned file.
	again, _ := warmForkScenario(t)
	if !reflect.DeepEqual(again, curves) {
		t.Error("two identical warm-fork sweeps in one process diverged")
	}
}

// TestSnapshotRestoreAcrossInstances: the facade-level relocatability
// contract — a SimState captured mid-run on one instance, serialized
// through JSON (the checkpoint wire format), restores into a freshly
// built instance and resumes to the exact same delivery counters the
// donor reaches.
func TestSnapshotRestoreAcrossInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	cfg := Config{Widths: []int{4, 4}, Terms: 2, Algorithm: "DimWAR", Seed: 3}
	buildDriven := func() (*Instance, *traffic.Generator) {
		inst := MustBuild(cfg)
		pat, err := NewPattern("UR", inst.Topo)
		if err != nil {
			t.Fatal(err)
		}
		gen := &traffic.Generator{
			Net:     inst.Net,
			Pattern: pat,
			Sizes:   traffic.UniformSize{Min: 1, Max: 16},
			Load:    0.4,
		}
		gen.Start(inst.Cfg.Seed)
		return inst, gen
	}

	donor, donorGen := buildDriven()
	donor.K.Run(1200) // mid-run fork point with traffic in flight
	s, err := donor.Snapshot(donorGen)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	donor.K.Run(donor.K.Now() + 3000)
	wantDelivered, wantEvents := donor.Net.DeliveredPackets, donor.K.Executed()
	if wantDelivered == 0 {
		t.Fatal("donor delivered nothing; scenario too small")
	}

	fresh, freshGen := buildDriven() // Start gives the stream slab Restore overwrites
	var decoded SimState
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(&decoded, freshGen); err != nil {
		t.Fatal(err)
	}
	fresh.K.Run(fresh.K.Now() + 3000)
	if fresh.Net.DeliveredPackets != wantDelivered || fresh.K.Executed() != wantEvents {
		t.Errorf("restored instance resumed to delivered=%d events=%d, donor reached delivered=%d events=%d",
			fresh.Net.DeliveredPackets, fresh.K.Executed(), wantDelivered, wantEvents)
	}
}
