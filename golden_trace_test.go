package hyperx

// Golden-trace determinism regression. A tiny 2x2 t=2 network runs for a
// fixed window while the kernel's TraceExec hook folds every executed
// event's (time, seq) into an FNV-1a hash; per-router link counters and
// the network's aggregate counters are folded in afterwards. The result is
// pinned in testdata/golden_trace.json, which also stores the first
// tracePrefixLen executed events so an event-reordering regression (for
// example from a queue replacement in internal/sim) fails with the first
// divergent event rather than just a hash mismatch.
//
// Regenerate the golden file only when an intentional behaviour change
// alters the event stream:
//
//	go test -run TestGoldenTrace -update-golden .

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hyperx/internal/sim"
	"hyperx/internal/traffic"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_trace.json from the current simulator")

const (
	goldenTraceFile = "testdata/golden_trace.json"
	tracePrefixLen  = 512
	traceRunUntil   = 2500 // cycles simulated per traced run
)

// traceGolden pins one algorithm's execution fingerprint.
type traceGolden struct {
	Alg    string     `json:"alg"`
	Hash   uint64     `json:"hash"`   // FNV-1a 64 over the full fold
	Events uint64     `json:"events"` // live events executed during the run
	Prefix [][2]int64 `json:"prefix"` // first tracePrefixLen (time, seq) pairs
}

// runTraced executes the fixed tiny-network scenario for one algorithm and
// returns its fingerprint. shards <= 1 runs the historical serial kernel
// loop; shards > 1 runs the same scenario through the window-barrier
// sharded executor at the given window width, which must produce the
// identical fingerprint (counts beyond the 4 routers clamp, so shards=8
// exercises the clamp path; window=1 is the per-cycle barrier, wider
// windows exercise in-window local execution and the batched merge).
func runTraced(t *testing.T, alg string, shards, window int) traceGolden {
	t.Helper()
	inst, err := Build(Config{Widths: []int{2, 2}, Terms: 2, Algorithm: alg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [16]byte
	g := traceGolden{Alg: alg}
	inst.K.TraceExec = func(at sim.Time, seq uint64) {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(at))
		binary.LittleEndian.PutUint64(buf[8:16], seq)
		h.Write(buf[:])
		if len(g.Prefix) < tracePrefixLen {
			g.Prefix = append(g.Prefix, [2]int64{int64(at), int64(seq)})
		}
	}
	pat, err := NewPattern("UR", inst.Topo)
	if err != nil {
		t.Fatal(err)
	}
	gen := &traffic.Generator{
		Net:     inst.Net,
		Pattern: pat,
		Sizes:   traffic.UniformSize{Min: 1, Max: 16},
		Load:    0.6,
	}
	gen.Start(inst.Cfg.Seed)
	if shards > 1 {
		defer inst.Close()
		if _, err := inst.runCtx(context.Background(), traceRunUntil, shards, window); err != nil {
			t.Fatal(err)
		}
	} else {
		inst.K.Run(traceRunUntil)
	}

	// Fold the end-state counters: per-router link grants and busy time
	// (via LinkUtilization) and the network aggregates. Any bookkeeping
	// divergence shows up here even if event order happened to match.
	fold := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[0:8], v)
		h.Write(buf[0:8])
	}
	for _, ls := range inst.Net.LinkUtilization() {
		fold(uint64(ls.Router))
		fold(uint64(ls.Port))
		fold(ls.Grants)
		fold(math.Float64bits(ls.Utilization))
	}
	fold(inst.Net.InjectedPackets)
	fold(inst.Net.InjectedFlits)
	fold(inst.Net.DeliveredPackets)
	fold(inst.Net.DeliveredFlits)
	fold(inst.Net.DroppedPackets)
	fold(uint64(inst.K.Now()))
	fold(inst.K.Executed())

	g.Hash = h.Sum64()
	g.Events = inst.K.Executed()
	return g
}

// goldenTraceAlgs covers the paper's two contribution algorithms plus the
// dimension-ordered baseline: between them they exercise every router-path
// event type (route, reroute, grant, credit, deliver) and both the
// adaptive and oblivious candidate generators.
var goldenTraceAlgs = []string{"DOR", "DimWAR", "OmniWAR"}

func TestGoldenTrace(t *testing.T) {
	if *updateGolden {
		var all []traceGolden
		for _, alg := range goldenTraceAlgs {
			all = append(all, runTraced(t, alg, 1, 1))
		}
		data, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenTraceFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTraceFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenTraceFile)
		return
	}

	data, err := os.ReadFile(goldenTraceFile)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGoldenTrace -update-golden .`): %v", err)
	}
	var want []traceGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(goldenTraceAlgs) {
		t.Fatalf("golden file has %d entries, want %d", len(want), len(goldenTraceAlgs))
	}
	// Every shard count and window width must reproduce the serial golden
	// bit-for-bit: the sharded executor's contract is an identical
	// executed-event sequence, so there is exactly one golden fingerprint
	// per algorithm. Window 1 is the per-cycle barrier, 5 the derived
	// default (min configured latency), 50 the cross-shard latency cap.
	for i, alg := range goldenTraceAlgs {
		alg, want := alg, want[i]
		t.Run(alg, func(t *testing.T) {
			for _, nsh := range []int{1, 2, 4, 8} {
				for _, win := range []int{1, 5, 50} {
					if nsh == 1 && win != 1 {
						continue // serial path has no window
					}
					nsh, win := nsh, win
					t.Run(fmt.Sprintf("shards=%d,window=%d", nsh, win), func(t *testing.T) {
						got := runTraced(t, alg, nsh, win)
						if got.Hash == want.Hash && got.Events == want.Events {
							return
						}
						// Locate the first divergent event for the failure message.
						n := len(got.Prefix)
						if len(want.Prefix) < n {
							n = len(want.Prefix)
						}
						for j := 0; j < n; j++ {
							if got.Prefix[j] != want.Prefix[j] {
								t.Fatalf("event stream diverges at executed event %d: got (t=%d seq=%d), golden (t=%d seq=%d)",
									j, got.Prefix[j][0], got.Prefix[j][1], want.Prefix[j][0], want.Prefix[j][1])
							}
						}
						t.Fatalf("trace hash mismatch beyond the %d-event prefix: got hash=%#x events=%d, golden hash=%#x events=%d",
							n, got.Hash, got.Events, want.Hash, want.Events)
					})
				}
			}
		})
	}
}
