// Package hyperx is the public API of this reproduction of "Practical and
// Efficient Incremental Adaptive Routing for HyperX Networks" (McDonald et
// al., SC '19). It wires the internal substrates — event kernel, HyperX /
// Dragonfly / fat-tree topologies, the CIOQ router model with virtual-
// channel flow control, the routing algorithms (including the paper's
// DimWAR and OmniWAR), traffic generators, and the stencil application
// model — behind a small configuration surface that the cmd/ tools,
// examples, and benchmarks share.
package hyperx

import (
	"context"
	"fmt"

	"hyperx/internal/core"
	"hyperx/internal/network"
	"hyperx/internal/route"
	"hyperx/internal/routing"
	"hyperx/internal/shard"
	"hyperx/internal/sim"
	"hyperx/internal/topology"
	"hyperx/internal/traffic"
)

// Algorithms lists the HyperX routing algorithm names accepted by Config,
// in the paper's Table 2 order plus the extras this repo adds.
var Algorithms = []string{"DOR", "VAL", "UGAL", "UGAL+", "DimWAR", "OmniWAR", "MinAD", "DAL"}

// Patterns lists the synthetic traffic pattern names accepted by the run
// helpers, in the paper's Table 3 order plus the extras this repo adds.
var Patterns = []string{"UR", "BC", "URBx", "URBy", "URBz", "S2", "DCR", "TP", "TOR", "HS"}

// Config describes a HyperX simulation instance. Zero values take the
// paper's evaluation defaults scaled to the configured widths.
type Config struct {
	Widths []int // routers per dimension (default 4,4,4)
	Terms  int   // terminals per router (default 4)

	Algorithm string // one of Algorithms (default "DimWAR")

	NumVCs        int // default 8
	BufDepth      int // flits per (port,VC), default 256
	MaxPktFlits   int // default 16
	XbarLat       int // ns, default 50
	RouterChanLat int // ns, default 50
	TermChanLat   int // ns, default 5

	// OmniClasses sets OmniWAR's N+M distance classes (default NumVCs).
	OmniClasses int
	// OmniNoB2B enables the Section 5.2 optimization restricting
	// back-to-back deroutes in the same dimension.
	OmniNoB2B bool

	// AtomicVCAlloc forces atomic queue allocation (Section 4.2). It is
	// implied by Algorithm "DAL".
	AtomicVCAlloc bool

	// ClassSense switches congestion sensing for routing weights from the
	// realistic per-port output-queue aggregate to idealized per-class
	// occupancy (ablation; see route.Ctx.ClassSense).
	ClassSense bool

	// Arbiter selects the output-arbitration policy: "age" (default, the
	// paper's configuration), "fifo", or "random" (ablation).
	Arbiter string

	// Faults is the number of failed router-to-router links to inject
	// (0 = pristine network). Links are chosen by a deterministic seeded
	// shuffle, resampled until the surviving network is connected; DimWAR
	// and OmniWAR reroute around the failures while the dimension-ordered
	// baselines drop (and count) packets that meet a dead hop.
	Faults int
	// FaultSeed seeds the fault selection (default: Seed), so the fault
	// pattern can be varied independently of the traffic universe.
	FaultSeed uint64

	Seed uint64
}

func (c Config) withDefaults() Config {
	if len(c.Widths) == 0 {
		c.Widths = []int{4, 4, 4}
	}
	if c.Terms == 0 {
		c.Terms = 4
	}
	if c.Algorithm == "" {
		c.Algorithm = "DimWAR"
	}
	if c.NumVCs == 0 {
		c.NumVCs = 8
	}
	if c.OmniClasses == 0 {
		c.OmniClasses = c.NumVCs
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = c.Seed
	}
	return c
}

// PaperScale returns the full evaluation configuration of Section 6: a
// 4,096-node 8x8x8 HyperX with 8 terminals per router and 8 VCs.
func PaperScale() Config {
	return Config{Widths: []int{8, 8, 8}, Terms: 8}
}

// DefaultScale returns the reduced 256-node 4x4x4 configuration used by
// the test suite and benchmarks (see DESIGN.md for the shape-fidelity
// argument).
func DefaultScale() Config {
	return Config{Widths: []int{4, 4, 4}, Terms: 4}
}

// Instance is a built simulation: kernel, network, topology, algorithm.
type Instance struct {
	//hxlint:state ephemeral — identity, not state: a snapshot restores only into an instance built from the identical Config
	Cfg Config
	//hxlint:state ephemeral — kernel state rides inside the network snapshot (Net.Snapshot embeds the kernel's events and clock)
	K *sim.Kernel
	//hxlint:state ephemeral — immutable build-time wiring derived from Config
	Topo *topology.HyperX
	//hxlint:state ephemeral — immutable build-time wiring derived from Config
	Alg route.Algorithm
	Net *network.Network
	//hxlint:state ephemeral — immutable build-time wiring derived from Config (FaultSeed)
	Faults *topology.FaultSet // nil when Cfg.Faults == 0

	// Cached sharded executor (lazily built on the first runCtx with
	// Shards > 1; rebuilt if the shard count or window width changes).
	//hxlint:state ephemeral — lazily rebuilt cache; shard machinery is empty between windows and never snapshotted
	shx *shard.Executor
	//hxlint:state ephemeral — cache key for shx, rebuilt with it
	shxN int
	//hxlint:state ephemeral — cache key for shx (resolved window width), rebuilt with it
	shxW sim.Time
}

// Close releases the instance's cached sharded executor — its persistent
// worker pool — if one was built. Safe on instances that never ran
// sharded; idempotent. The run helpers close instances they build; hold
// your own Instance open across runs to keep the pool warm.
func (inst *Instance) Close() {
	if inst.shx != nil {
		inst.shx.Close()
		inst.shx = nil
		inst.shxN, inst.shxW = 0, 0
	}
}

// shardWindow resolves the executor's window width from an override (in
// cycles; <= 0 derives the default) and the instance's configured
// latencies. The derived default is the conservative lookahead bound of
// the ISSUE: min(XbarLat, RouterChanLat, TermChanLat) — any event can
// only schedule at least that far ahead. The hard cap is RouterChanLat,
// the minimum latency of any CROSS-SHARD schedule (router-to-router
// arrivals carry XbarLat+RouterChanLat, credits flits+RouterChanLat,
// and the fault-path drop credit exactly RouterChanLat; everything
// cheaper is same-shard and executes locally inside the window), so
// overrides beyond it are clamped rather than allowed to break the
// ownership argument.
func (inst *Instance) shardWindow(w sim.Time) sim.Time {
	cfg := &inst.Net.Cfg
	if w <= 0 {
		w = cfg.XbarLat
		if cfg.RouterChanLat < w {
			w = cfg.RouterChanLat
		}
		if cfg.TermChanLat < w {
			w = cfg.TermChanLat
		}
	}
	if w > cfg.RouterChanLat {
		w = cfg.RouterChanLat
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runCtx advances the instance's kernel to until: serially for
// shards <= 1, or through the window-barriered sharded executor
// otherwise (window <= 0 derives the width from the configured
// latencies; see shardWindow). Every (shards, window) combination
// executes the bit-identical event sequence — the sharded executor's
// merge replays staged work in serial order (see internal/shard) — so
// results never depend on either knob, and RunOpts.Shards/ShardWindow
// stay out of the checkpoint key. Shard counts beyond the router count
// are clamped.
func (inst *Instance) runCtx(ctx context.Context, until sim.Time, shards, window int) (sim.Time, error) {
	if nr := len(inst.Net.Routers); shards > nr {
		shards = nr
	}
	if shards <= 1 {
		return inst.K.RunCtx(ctx, until)
	}
	win := inst.shardWindow(sim.Time(window))
	if inst.shx == nil || inst.shxN != shards || inst.shxW != win {
		inst.Close()
		if err := inst.Net.ConfigureShards(shards); err != nil {
			return inst.K.Now(), err
		}
		inst.shx = shard.New(inst.K, inst.Net, win)
		inst.shxN, inst.shxW = shards, win
	}
	return inst.shx.RunCtx(ctx, until)
}

// faultAware is implemented by routing algorithms whose candidate
// generation can be restricted to live links (DimWAR, OmniWAR, MinAD).
type faultAware interface {
	SetFaults(*topology.FaultSet)
}

// BuildFaults constructs the deterministic fault set a Config implies:
// Faults failed links drawn by FaultSeed, resampled until the surviving
// network is connected. Returns nil (no error) when Faults == 0. Callers
// that only need the fault list for a manifest use this without paying
// for a network build.
func BuildFaults(cfg Config) (*topology.FaultSet, error) {
	cfg = cfg.withDefaults()
	if cfg.Faults == 0 {
		return nil, nil
	}
	h, err := topology.NewHyperX(cfg.Widths, cfg.Terms)
	if err != nil {
		return nil, err
	}
	return topology.RandomConnectedFaults(h, cfg.Faults, cfg.FaultSeed)
}

// NewAlgorithm constructs a HyperX routing algorithm by name.
func NewAlgorithm(name string, h *topology.HyperX, cfg Config) (route.Algorithm, error) {
	switch name {
	case "DOR":
		return routing.NewDOR(h), nil
	case "VAL":
		return routing.NewVAL(h), nil
	case "UGAL":
		return routing.NewUGAL(h), nil
	case "UGAL+", "Clos-AD", "ClosAD":
		return routing.NewClosAD(h), nil
	case "DimWAR":
		return core.NewDimWAR(h), nil
	case "OmniWAR":
		return core.NewOmniWAR(h, cfg.OmniClasses, cfg.OmniNoB2B)
	case "MinAD":
		return routing.NewMinAD(h), nil
	case "DAL":
		return routing.NewDAL(h), nil
	default:
		return nil, fmt.Errorf("hyperx: unknown algorithm %q (have %v)", name, Algorithms)
	}
}

// NewPattern constructs a synthetic traffic pattern by name for the given
// HyperX.
func NewPattern(name string, h *topology.HyperX) (traffic.Pattern, error) {
	n := h.NumTerminals()
	switch name {
	case "UR":
		return traffic.UniformRandom{N: n}, nil
	case "BC":
		return traffic.BitComplement{N: n}, nil
	case "URBx":
		return traffic.URB{Topo: h, Dim: 0}, nil
	case "URBy":
		return traffic.URB{Topo: h, Dim: 1}, nil
	case "URBz":
		return traffic.URB{Topo: h, Dim: 2}, nil
	case "S2":
		return traffic.Swap2{Topo: h}, nil
	case "DCR":
		return traffic.DCR{Topo: h}, nil
	case "TP":
		return traffic.Transpose{Topo: h}, nil
	case "TOR":
		return traffic.Tornado{Topo: h}, nil
	case "HS":
		// 20% of traffic converges on terminal 0 — the Section 3.2
		// localized-congestion scenario.
		return traffic.Hotspot{N: n, Hot: 0, Fraction: 0.2}, nil
	default:
		return nil, fmt.Errorf("hyperx: unknown pattern %q (have %v)", name, Patterns)
	}
}

// Build constructs a ready-to-run simulation instance from a Config.
func Build(cfg Config) (*Instance, error) {
	cfg = cfg.withDefaults()
	h, err := topology.NewHyperX(cfg.Widths, cfg.Terms)
	if err != nil {
		return nil, err
	}
	alg, err := NewAlgorithm(cfg.Algorithm, h, cfg)
	if err != nil {
		return nil, err
	}
	var faults *topology.FaultSet
	if cfg.Faults > 0 {
		faults, err = topology.RandomConnectedFaults(h, cfg.Faults, cfg.FaultSeed)
		if err != nil {
			return nil, err
		}
		if fa, ok := alg.(faultAware); ok {
			fa.SetFaults(faults)
		}
	}
	atomic := cfg.AtomicVCAlloc || cfg.Algorithm == "DAL"
	var arb network.Arbiter
	switch cfg.Arbiter {
	case "", "age":
		arb = network.AgeArbiter
	case "fifo":
		arb = network.FIFOArbiter
	case "random":
		arb = network.RandomArbiter
	default:
		return nil, fmt.Errorf("hyperx: unknown arbiter %q (age, fifo, random)", cfg.Arbiter)
	}
	k := sim.NewKernel()
	net, err := network.New(k, network.Config{
		Topo:          h,
		Alg:           alg,
		NumVCs:        cfg.NumVCs,
		BufDepth:      cfg.BufDepth,
		MaxPktFlits:   cfg.MaxPktFlits,
		XbarLat:       sim.Time(cfg.XbarLat),
		RouterChanLat: sim.Time(cfg.RouterChanLat),
		TermChanLat:   sim.Time(cfg.TermChanLat),
		AtomicVCAlloc: atomic,
		ClassSense:    cfg.ClassSense,
		Arbiter:       arb,
		Faults:        faults,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Instance{Cfg: cfg, K: k, Topo: h, Alg: alg, Net: net, Faults: faults}, nil
}

// MustBuild is Build that panics on error; for tests and examples with
// constant configurations.
func MustBuild(cfg Config) *Instance {
	inst, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return inst
}
