// Package app implements the paper's 27-point stencil application model
// (Section 6.2): iterations of a halo exchange with the 26 neighbors of
// each sub-cube (6 faces, 12 edges, 8 corners, periodic boundaries)
// followed by a global synchronizing collective implemented with the
// dissemination algorithm (log2 N rounds of send/receive with ID +/- 2^k).
// Compute time is zero, as in the paper's simulations, so the measured
// execution time is pure communication.
package app

import (
	"fmt"
	"math/bits"

	"hyperx/internal/network"
	"hyperx/internal/rng"
	"hyperx/internal/route"
	"hyperx/internal/sim"
)

// Mode selects which phases of the application run.
type Mode int

const (
	// CollectiveOnly runs just the dissemination collective (Figure 8a).
	CollectiveOnly Mode = iota
	// HaloOnly runs just the halo exchanges (Figure 8b).
	HaloOnly
	// Full alternates halo exchange and collective each iteration
	// (Figure 8c).
	Full
)

func (m Mode) String() string {
	switch m {
	case CollectiveOnly:
		return "collective"
	case HaloOnly:
		return "halo"
	default:
		return "full"
	}
}

// Collective selects the synchronizing-collective algorithm.
type Collective int

const (
	// Dissemination is the paper's topology-agnostic algorithm
	// (Hensgen/Finkel/Manber): round k sends to ID+2^k and ID-2^k. Works
	// for any process count.
	Dissemination Collective = iota
	// RecursiveDoubling exchanges with partner ID xor 2^k each round;
	// requires a power-of-two process count (the classic comparison
	// point the paper cites).
	RecursiveDoubling
)

// placementStream labels the random-placement RNG stream within the
// instance's seed universe (rng.DeriveSeed), keeping it independent of
// the traffic and arbitration streams derived from the same Config.Seed.
const placementStream = 0x706c6163 // "plac"

// Placement maps stencil processes to network terminals.
type Placement int

const (
	// RandomPlacement assigns processes to terminals by a seeded random
	// permutation — the paper's policy.
	RandomPlacement Placement = iota
	// LinearPlacement assigns process p to terminal p.
	LinearPlacement
)

// Config parameterizes a stencil run.
type Config struct {
	// Grid is the process grid; GridX*GridY*GridZ processes must fit the
	// network's terminal count.
	GridX, GridY, GridZ int

	Mode       Mode
	Iterations int // default 1

	BytesPerExchange int // aggregate halo bytes per process (default 100_000)
	CollectiveBytes  int // payload of one collective message (default 64)
	FlitBytes        int // flit width in bytes (default 32)
	SubCubeSide      int // n for face:edge:corner = n^2:n:1 weighting (default 16)

	Placement  Placement
	Collective Collective
	Seed       uint64

	// MaxCycles aborts a run that fails to complete (deadlock guard).
	MaxCycles sim.Time
}

func (c Config) withDefaults() Config {
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.BytesPerExchange == 0 {
		c.BytesPerExchange = 100_000
	}
	if c.CollectiveBytes == 0 {
		c.CollectiveBytes = 64
	}
	if c.FlitBytes == 0 {
		c.FlitBytes = 32
	}
	if c.SubCubeSide == 0 {
		c.SubCubeSide = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 500_000_000
	}
	return c
}

// Result reports a completed stencil run.
type Result struct {
	ExecTime   sim.Time // cycles (ns) until the last process finished
	Processes  int
	Iterations int
	Packets    uint64 // total packets delivered for the app
	Flits      uint64
}

// neighbor is a precomputed halo peer with its message size.
type neighbor struct {
	proc    int
	packets []int // packet lengths in flits
}

const (
	phaseHalo       = 0
	phaseCollective = 1 // + round
)

// tag packs (iteration, phase, round) into a packet tag.
func tag(iter, phase, round int) uint64 {
	return uint64(iter)<<16 | uint64(phase)<<8 | uint64(round)
}

func untag(t uint64) (iter, phase, round int) {
	return int(t >> 16), int(t >> 8 & 0xff), int(t & 0xff)
}

// Stencil is a live application instance bound to a network.
type Stencil struct {
	cfg Config
	net *network.Network

	procs     int
	rounds    int   // dissemination rounds = ceil(log2 procs)
	placement []int // process -> terminal
	whoAt     []int // terminal -> process, -1 if unused

	neighbors  [][]neighbor // per process
	haloExpect []int        // packets expected per halo phase, per process

	// recv[p] counts packets received, keyed by iteration and phase slot:
	// slot 0 = halo, slot 1+k = collective round k.
	recv [][]int32

	state    []procState
	finished int
	doneAt   sim.Time
}

type procState struct {
	iter  int // current iteration
	phase int // phaseHalo or phaseCollective
	round int
	done  bool
	endAt sim.Time
}

// New builds a stencil application over the given network. The network's
// OnDeliver hook is claimed by the application.
func New(net *network.Network, cfg Config) (*Stencil, error) {
	cfg = cfg.withDefaults()
	p := cfg.GridX * cfg.GridY * cfg.GridZ
	if p < 2 {
		return nil, fmt.Errorf("app: need at least 2 processes, grid gives %d", p)
	}
	if p > net.Cfg.Topo.NumTerminals() {
		return nil, fmt.Errorf("app: %d processes exceed %d terminals", p, net.Cfg.Topo.NumTerminals())
	}
	if cfg.Collective == RecursiveDoubling && p&(p-1) != 0 {
		return nil, fmt.Errorf("app: recursive doubling requires a power-of-two process count, got %d", p)
	}
	s := &Stencil{cfg: cfg, net: net, procs: p}
	s.rounds = bits.Len(uint(p - 1)) // ceil(log2 p)

	s.placement = make([]int, p)
	s.whoAt = make([]int, net.Cfg.Topo.NumTerminals())
	for i := range s.whoAt {
		s.whoAt[i] = -1
	}
	switch cfg.Placement {
	case RandomPlacement:
		perm := make([]int, net.Cfg.Topo.NumTerminals())
		rng.New(rng.DeriveSeed(cfg.Seed, placementStream)).Perm(perm)
		for i := 0; i < p; i++ {
			s.placement[i] = perm[i]
		}
	default:
		for i := 0; i < p; i++ {
			s.placement[i] = i
		}
	}
	for proc, term := range s.placement {
		s.whoAt[term] = proc
	}

	s.buildNeighbors()
	slots := 1 + s.rounds
	s.recv = make([][]int32, p)
	for i := range s.recv {
		s.recv[i] = make([]int32, slots*(cfg.Iterations+1))
	}
	s.state = make([]procState, p)
	net.OnDeliver = s.onDeliver
	return s, nil
}

// buildNeighbors precomputes the 26 halo peers of every process and the
// per-peer message sizes: total BytesPerExchange split across faces,
// edges, and corners in proportion n^2 : n : 1 (surface areas of a
// sub-cube of side n).
func (s *Stencil) buildNeighbors() {
	c := s.cfg
	n := c.SubCubeSide
	unit := float64(c.BytesPerExchange) / float64(6*n*n+12*n+8)
	faceB := int(unit * float64(n*n))
	edgeB := int(unit * float64(n))
	cornerB := int(unit)
	if faceB < 1 {
		faceB = 1
	}
	if edgeB < 1 {
		edgeB = 1
	}
	if cornerB < 1 {
		cornerB = 1
	}

	s.neighbors = make([][]neighbor, s.procs)
	s.haloExpect = make([]int, s.procs)
	idx := func(x, y, z int) int {
		x = (x + c.GridX) % c.GridX
		y = (y + c.GridY) % c.GridY
		z = (z + c.GridZ) % c.GridZ
		return (z*c.GridY+y)*c.GridX + x
	}
	for z := 0; z < c.GridZ; z++ {
		for y := 0; y < c.GridY; y++ {
			for x := 0; x < c.GridX; x++ {
				p := idx(x, y, z)
				seen := make(map[int]bool)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							q := idx(x+dx, y+dy, z+dz)
							if q == p || seen[q] {
								continue // tiny grids: wrapped duplicates collapse
							}
							seen[q] = true
							bytes := cornerB
							switch nz := abs(dx) + abs(dy) + abs(dz); nz {
							case 1:
								bytes = faceB
							case 2:
								bytes = edgeB
							}
							s.neighbors[p] = append(s.neighbors[p], neighbor{
								proc:    q,
								packets: packetize(bytes, c.FlitBytes, s.net.Cfg.MaxPktFlits),
							})
						}
					}
				}
			}
		}
	}
	// Expected halo packets: sum over senders targeting each process.
	for p := range s.neighbors {
		for _, nb := range s.neighbors[p] {
			s.haloExpect[nb.proc] += len(nb.packets)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// packetize splits a message of the given bytes into packet lengths in
// flits, each at most maxFlits.
func packetize(bytes, flitBytes, maxFlits int) []int {
	flits := (bytes + flitBytes - 1) / flitBytes
	if flits < 1 {
		flits = 1
	}
	var out []int
	for flits > 0 {
		n := flits
		if n > maxFlits {
			n = maxFlits
		}
		out = append(out, n)
		flits -= n
	}
	return out
}

// Run executes the configured iterations and returns the result.
func (s *Stencil) Run() (Result, error) {
	k := s.net.K
	for p := 0; p < s.procs; p++ {
		s.startIteration(p)
	}
	for s.finished < s.procs {
		if !k.Step() {
			return Result{}, fmt.Errorf("app: event queue drained with %d/%d processes finished (deadlock or lost packet)",
				s.finished, s.procs)
		}
		if k.Now() > s.cfg.MaxCycles {
			return Result{}, fmt.Errorf("app: exceeded %d cycles with %d/%d processes finished",
				s.cfg.MaxCycles, s.finished, s.procs)
		}
	}
	return Result{
		ExecTime:   s.doneAt,
		Processes:  s.procs,
		Iterations: s.cfg.Iterations,
		Packets:    s.net.DeliveredPackets,
		Flits:      s.net.DeliveredFlits,
	}, nil
}

// slot maps (iter, phase, round) to a recv counter index.
func (s *Stencil) slot(iter, phase, round int) int {
	base := iter * (1 + s.rounds)
	if phase == phaseHalo {
		return base
	}
	return base + 1 + round
}

func (s *Stencil) startIteration(p int) {
	st := &s.state[p]
	if st.iter >= s.cfg.Iterations {
		st.done = true
		st.endAt = s.net.K.Now()
		s.finished++
		if st.endAt > s.doneAt {
			s.doneAt = st.endAt
		}
		return
	}
	if s.cfg.Mode == CollectiveOnly {
		st.phase = phaseCollective
		st.round = 0
		s.sendCollective(p, st.iter, 0)
		s.advance(p)
		return
	}
	st.phase = phaseHalo
	s.sendHalo(p, st.iter)
	s.advance(p)
}

func (s *Stencil) sendHalo(p, iter int) {
	term := s.net.Terminals[s.placement[p]]
	for _, nb := range s.neighbors[p] {
		dst := s.placement[nb.proc]
		for _, flits := range nb.packets {
			pkt := s.net.NewPacket(s.placement[p], dst, flits)
			pkt.Tag = tag(iter, phaseHalo, 0)
			term.Send(pkt)
		}
	}
}

// collectivePeers returns the processes p exchanges with in a round:
// ID+/-2^k for dissemination, ID xor 2^k for recursive doubling.
func (s *Stencil) collectivePeers(p, round int, buf []int) []int {
	if s.cfg.Collective == RecursiveDoubling {
		return append(buf, p^(1<<uint(round)))
	}
	up := (p + (1 << uint(round))) % s.procs
	down := (p - (1 << uint(round)) + s.procs*2) % s.procs
	buf = append(buf, up)
	if down != up {
		buf = append(buf, down)
	}
	return buf
}

func (s *Stencil) sendCollective(p, iter, round int) {
	term := s.net.Terminals[s.placement[p]]
	flits := packetize(s.cfg.CollectiveBytes, s.cfg.FlitBytes, s.net.Cfg.MaxPktFlits)
	var buf [2]int
	for _, peer := range s.collectivePeers(p, round, buf[:0]) {
		if peer == p {
			continue
		}
		for _, f := range flits {
			pkt := s.net.NewPacket(s.placement[p], s.placement[peer], f)
			pkt.Tag = tag(iter, phaseCollective, round)
			term.Send(pkt)
		}
	}
}

// collectiveExpect returns how many packets process p expects in a
// collective round (its peers' messages; peers coincide only in
// degenerate tiny configurations).
func (s *Stencil) collectiveExpect(p, round int) int {
	per := len(packetize(s.cfg.CollectiveBytes, s.cfg.FlitBytes, s.net.Cfg.MaxPktFlits))
	n := 0
	var buf [2]int
	for _, peer := range s.collectivePeers(p, round, buf[:0]) {
		if peer != p {
			n += per
		}
	}
	return n
}

// onDeliver dispatches packet arrivals to the application state machine.
func (s *Stencil) onDeliver(p *route.Packet, at sim.Time) {
	proc := s.whoAt[p.Dst]
	if proc < 0 {
		return
	}
	iter, phase, round := untag(p.Tag)
	s.recv[proc][s.slot(iter, phase, round)]++
	s.advance(proc)
}

// advance runs process proc's state machine as far as received data
// allows.
func (s *Stencil) advance(proc int) {
	st := &s.state[proc]
	for !st.done {
		switch st.phase {
		case phaseHalo:
			if int(s.recv[proc][s.slot(st.iter, phaseHalo, 0)]) < s.haloExpect[proc] {
				return
			}
			if s.cfg.Mode == HaloOnly {
				st.iter++
				s.startIteration(proc)
				return
			}
			st.phase = phaseCollective
			st.round = 0
			s.sendCollective(proc, st.iter, 0)
		case phaseCollective:
			if int(s.recv[proc][s.slot(st.iter, phaseCollective, st.round)]) < s.collectiveExpect(proc, st.round) {
				return
			}
			st.round++
			if st.round >= s.rounds {
				st.iter++
				s.startIteration(proc)
				return
			}
			s.sendCollective(proc, st.iter, st.round)
		}
	}
}
