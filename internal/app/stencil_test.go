package app

import (
	"testing"

	"hyperx/internal/core"
	"hyperx/internal/network"
	"hyperx/internal/sim"
	"hyperx/internal/topology"
)

func testNet(t *testing.T) *network.Network {
	t.Helper()
	h := topology.MustHyperX([]int{4, 4}, 4) // 64 terminals
	n, err := network.New(sim.NewKernel(), network.Config{Topo: h, Alg: core.NewDimWAR(h), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPacketize(t *testing.T) {
	cases := []struct {
		bytes, flitB, maxF int
		want               []int
	}{
		{64, 32, 16, []int{2}},
		{0, 32, 16, []int{1}},
		{512, 32, 16, []int{16}},
		{513, 32, 16, []int{16, 1}},
		{1600, 32, 16, []int{16, 16, 16, 2}},
	}
	for _, c := range cases {
		got := packetize(c.bytes, c.flitB, c.maxF)
		if len(got) != len(c.want) {
			t.Errorf("packetize(%d) = %v, want %v", c.bytes, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("packetize(%d) = %v, want %v", c.bytes, got, c.want)
				break
			}
		}
	}
}

func TestTagRoundTrip(t *testing.T) {
	for _, c := range [][3]int{{0, 0, 0}, {15, 1, 11}, {3, 0, 0}, {1, 1, 7}} {
		i, p, r := untag(tag(c[0], c[1], c[2]))
		if i != c[0] || p != c[1] || r != c[2] {
			t.Errorf("tag round trip %v -> %d %d %d", c, i, p, r)
		}
	}
}

// TestNeighborStructure: with a 4x4x4 periodic grid each process has
// exactly 26 distinct neighbors: 6 faces, 12 edges, 8 corners, and halo
// byte budget is conserved across types.
func TestNeighborStructure(t *testing.T) {
	n := testNet(t)
	s, err := New(n, Config{GridX: 4, GridY: 4, GridZ: 4, Mode: HaloOnly, BytesPerExchange: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < s.procs; p++ {
		if len(s.neighbors[p]) != 26 {
			t.Fatalf("process %d has %d neighbors, want 26", p, len(s.neighbors[p]))
		}
	}
	// Symmetry: expected receive counts equal sent counts globally, and
	// every process expects the same amount on a symmetric torus grid.
	for p := 1; p < s.procs; p++ {
		if s.haloExpect[p] != s.haloExpect[0] {
			t.Fatalf("asymmetric halo expectation: %d vs %d", s.haloExpect[p], s.haloExpect[0])
		}
	}
}

// TestNeighborWeighting: face messages carry n^2/(n) times more than
// edge/corner messages (n=SubCubeSide ratio).
func TestNeighborWeighting(t *testing.T) {
	n := testNet(t)
	s, err := New(n, Config{GridX: 4, GridY: 4, GridZ: 4, Mode: HaloOnly, BytesPerExchange: 100_000, SubCubeSide: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Face neighbors (single non-zero offset) get ~16x edge bytes which
	// get ~16x corner bytes; measured in flits: faces >> corners.
	flits := func(pkts []int) int {
		total := 0
		for _, f := range pkts {
			total += f
		}
		return total
	}
	var face, corner int
	nb := s.neighbors[0]
	for _, x := range nb {
		f := flits(x.packets)
		if f > face {
			face = f
		}
		if corner == 0 || f < corner {
			corner = f
		}
	}
	if face < 10*corner {
		t.Errorf("face flits %d not >> corner flits %d", face, corner)
	}
}

// TestCollectiveOnlyCompletes and takes ~rounds * round-trip time.
func TestCollectiveOnlyCompletes(t *testing.T) {
	n := testNet(t)
	s, err := New(n, Config{GridX: 4, GridY: 4, GridZ: 4, Mode: CollectiveOnly})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.rounds != 6 {
		t.Fatalf("rounds = %d, want ceil(log2 64) = 6", s.rounds)
	}
	// Each round costs at least one network traversal (~200ns at this
	// scale); all six must be serialized.
	if res.ExecTime < 6*200 {
		t.Errorf("collective finished implausibly fast: %d", res.ExecTime)
	}
}

// TestCollectiveNonPowerOfTwo: dissemination handles any process count.
func TestCollectiveNonPowerOfTwo(t *testing.T) {
	n := testNet(t)
	s, err := New(n, Config{GridX: 3, GridY: 3, GridZ: 5, Mode: CollectiveOnly}) // 45 procs
	if err != nil {
		t.Fatal(err)
	}
	if s.rounds != 6 {
		t.Fatalf("rounds = %d, want ceil(log2 45) = 6", s.rounds)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestHaloOnlyConservation: all sent packets are delivered and counted.
func TestHaloOnlyConservation(t *testing.T) {
	n := testNet(t)
	s, err := New(n, Config{GridX: 4, GridY: 4, GridZ: 2, Mode: HaloOnly, BytesPerExchange: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	expected := 0
	for p := range s.neighbors {
		for _, nb := range s.neighbors[p] {
			expected += len(nb.packets)
		}
	}
	if int(res.Packets) != expected {
		t.Errorf("delivered %d packets, want %d", res.Packets, expected)
	}
}

// TestIterationsScaleTime: 3 iterations take at least 2x one iteration.
func TestIterationsScaleTime(t *testing.T) {
	run := func(iters int) sim.Time {
		n := testNet(t)
		s, err := New(n, Config{GridX: 4, GridY: 2, GridZ: 2, Mode: Full, Iterations: iters, BytesPerExchange: 2_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	one, three := run(1), run(3)
	if three < 2*one {
		t.Errorf("3 iterations (%d) < 2x one iteration (%d)", three, one)
	}
}

// TestRandomPlacementIsPermutation and is seed-deterministic.
func TestRandomPlacement(t *testing.T) {
	mk := func(seed uint64) []int {
		n := testNet(t)
		s, err := New(n, Config{GridX: 4, GridY: 4, GridZ: 4, Mode: CollectiveOnly, Placement: RandomPlacement, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return s.placement
	}
	a, b, c := mk(5), mk(5), mk(6)
	seen := map[int]bool{}
	diff := false
	for i := range a {
		if seen[a[i]] {
			t.Fatal("placement not injective")
		}
		seen[a[i]] = true
		if a[i] != b[i] {
			t.Fatal("same seed produced different placements")
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical placements")
	}
}

// TestRecursiveDoubling: the alternative collective completes on a
// power-of-two count and is rejected otherwise.
func TestRecursiveDoubling(t *testing.T) {
	n := testNet(t)
	s, err := New(n, Config{GridX: 4, GridY: 4, GridZ: 4, Mode: CollectiveOnly, Collective: RecursiveDoubling})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Exactly procs * rounds messages (one send per peer per round).
	want := uint64(64 * 6)
	if res.Packets != want {
		t.Errorf("recursive doubling delivered %d packets, want %d", res.Packets, want)
	}

	n2 := testNet(t)
	if _, err := New(n2, Config{GridX: 3, GridY: 3, GridZ: 5, Mode: CollectiveOnly, Collective: RecursiveDoubling}); err == nil {
		t.Error("recursive doubling accepted 45 processes")
	}
}

// TestCollectiveAlgorithmsAgreeOnTime: both collectives run the same
// number of rounds, so their execution times are comparable (within a
// small factor at idle load).
func TestCollectiveAlgorithmsAgreeOnTime(t *testing.T) {
	run := func(c Collective) int64 {
		n := testNet(t)
		s, err := New(n, Config{GridX: 4, GridY: 4, GridZ: 4, Mode: CollectiveOnly, Collective: c})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.ExecTime)
	}
	dis, rd := run(Dissemination), run(RecursiveDoubling)
	t.Logf("collective time: dissemination=%d recursive-doubling=%d", dis, rd)
	if rd > 2*dis || dis > 2*rd {
		t.Errorf("collective times diverge: %d vs %d", dis, rd)
	}
}

// TestConfigErrors: too many processes or degenerate grids rejected.
func TestConfigErrors(t *testing.T) {
	n := testNet(t)
	if _, err := New(n, Config{GridX: 10, GridY: 10, GridZ: 10}); err == nil {
		t.Error("1000 processes on 64 terminals accepted")
	}
	if _, err := New(n, Config{GridX: 1, GridY: 1, GridZ: 1}); err == nil {
		t.Error("single process accepted")
	}
}
