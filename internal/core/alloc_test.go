package core

// Allocation regression for the routing hot path: one full route decision
// — candidate generation plus weighted selection — must not allocate once
// the context's candidate scratch is warm. The router calls this pair for
// every packet head and every re-route timer, so a single stray allocation
// here multiplies into millions per sweep point.

import (
	"testing"

	"hyperx/internal/rng"
	"hyperx/internal/route"
	"hyperx/internal/routetest"
	"hyperx/internal/topology"
)

func decisionZeroAlloc(t *testing.T, mk func(*topology.HyperX) route.Algorithm) {
	h := topology.MustHyperX([]int{8, 8, 8}, 8)
	alg := mk(h)
	src := h.RouterAt([]int{0, 0, 0})
	dst := h.RouterAt([]int{5, 6, 7})
	p := &route.Packet{SrcRouter: src, DstRouter: dst, Len: 4}
	p.Reset()
	view := &routetest.StubView{}
	view.SetRouter(src)
	ctx := &route.Ctx{Router: src, InPort: -1, View: view, RNG: rng.New(1),
		Cands: make([]route.Candidate, 0, 64)}

	// One warm call: Route may grow the scratch past its initial capacity;
	// the router keeps the grown buffer the same way.
	ctx.Cands = alg.Route(ctx, p)

	allocs := testing.AllocsPerRun(500, func() {
		cands := alg.Route(ctx, p)
		ctx.Cands = cands
		if len(cands) == 0 {
			t.Fatal("no candidates")
		}
		_ = cands[route.SelectMinWeight(ctx, cands)]
	})
	if allocs != 0 {
		t.Fatalf("%s route decision allocated %.1f objects/op, want 0", alg.Name(), allocs)
	}
}

func TestDimWARDecisionZeroAlloc(t *testing.T) {
	decisionZeroAlloc(t, func(h *topology.HyperX) route.Algorithm { return NewDimWAR(h) })
}

func TestOmniWARDecisionZeroAlloc(t *testing.T) {
	decisionZeroAlloc(t, func(h *topology.HyperX) route.Algorithm {
		a, err := NewOmniWAR(h, h.NumDims()+1, false)
		if err != nil {
			t.Fatal(err)
		}
		return a
	})
}
