package core

import (
	"testing"
	"testing/quick"

	"hyperx/internal/rng"
	"hyperx/internal/route"
	"hyperx/internal/routetest"
	"hyperx/internal/topology"
)

func newCtx(r int, view route.View) *route.Ctx {
	return &route.Ctx{Router: r, InPort: -1, View: view, RNG: rng.New(1)}
}

func flatView() *routetest.StubView { return &routetest.StubView{} }

// TestDimWARCandidatesAtSource: in the first unaligned dimension, one
// minimal candidate on class 0 plus W-2 deroutes on class 1.
func TestDimWARCandidatesAtSource(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := NewDimWAR(h)
	src := h.RouterAt([]int{0, 0, 0})
	dst := h.RouterAt([]int{2, 3, 1})
	p := &route.Packet{SrcRouter: src, DstRouter: dst}
	p.Reset()
	cands := a.Route(newCtx(src, flatView()), p)
	if len(cands) != 1+2 {
		t.Fatalf("candidates = %d, want 3 (1 minimal + W-2 deroutes)", len(cands))
	}
	minimal, deroutes := 0, 0
	for _, c := range cands {
		d, _ := h.PortDim(src, c.Port)
		if d != 0 {
			t.Errorf("candidate in dim %d; DimWAR must stay in the first unaligned dimension", d)
		}
		if c.Deroute {
			deroutes++
			if c.Class != 1 {
				t.Errorf("deroute on class %d, want 1", c.Class)
			}
			if c.HopsLeft != 4 {
				t.Errorf("deroute HopsLeft %d, want minHops+1 = 4", c.HopsLeft)
			}
		} else {
			minimal++
			if c.Class != 0 {
				t.Errorf("minimal on class %d, want 0", c.Class)
			}
			if c.HopsLeft != 3 {
				t.Errorf("minimal HopsLeft %d, want 3", c.HopsLeft)
			}
		}
	}
	if minimal != 1 || deroutes != 2 {
		t.Errorf("minimal=%d deroutes=%d", minimal, deroutes)
	}
}

// TestDimWARNoDerouteAfterDeroute: a packet on class 1 may only take the
// aligning minimal hop.
func TestDimWARNoDerouteAfterDeroute(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 1)
	a := NewDimWAR(h)
	src := h.RouterAt([]int{1, 0})
	dst := h.RouterAt([]int{3, 2})
	p := &route.Packet{SrcRouter: src, DstRouter: dst}
	p.Reset()
	p.Class = 1 // as if just derouted
	p.Hops = 1
	cands := a.Route(newCtx(src, flatView()), p)
	if len(cands) != 1 || cands[0].Deroute {
		t.Fatalf("on class 1 want exactly the minimal candidate, got %+v", cands)
	}
}

// TestDimWARSkipsAlignedDims: with dimension 0 aligned, candidates are in
// dimension 1.
func TestDimWARSkipsAlignedDims(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 1)
	a := NewDimWAR(h)
	src := h.RouterAt([]int{2, 0})
	dst := h.RouterAt([]int{2, 3})
	p := &route.Packet{SrcRouter: src, DstRouter: dst}
	p.Reset()
	for _, c := range a.Route(newCtx(src, flatView()), p) {
		if d, _ := h.PortDim(src, c.Port); d != 1 {
			t.Errorf("candidate in dim %d with dim 0 aligned", d)
		}
	}
}

// TestDimWARAvoidsHotMinimal: a congested minimal path loses to a cold
// deroute — the essence of incremental adaptivity.
func TestDimWARAvoidsHotMinimal(t *testing.T) {
	h := topology.MustHyperX([]int{4}, 1)
	a := NewDimWAR(h)
	src, dst := 0, 2
	view := &routetest.StubView{Loads: map[[2]int]int{{0, h.DimPort(0, 0, 2)}: 1000}}
	hops, p, err := routetest.Walk(h, a, src, dst, 4, 7, view)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 2 {
		t.Fatalf("path length %d, want 2 (deroute + align)", len(hops))
	}
	if !hops[0].Cand.Deroute || hops[0].Cand.Class != 1 {
		t.Errorf("first hop should be a class-1 deroute: %+v", hops[0].Cand)
	}
	if hops[1].Cand.Deroute || hops[1].Cand.Class != 0 {
		t.Errorf("second hop should be the class-0 aligning hop: %+v", hops[1].Cand)
	}
	if p.Hops != 2 {
		t.Errorf("packet hops = %d", p.Hops)
	}
}

// TestDimWARWalkProperties: from any source to any destination under
// random congestion, DimWAR delivers within 2N hops, never deroutes twice
// in one dimension, and traverses dimensions in order.
func TestDimWARWalkProperties(t *testing.T) {
	h := topology.MustHyperX([]int{4, 3, 5}, 1)
	a := NewDimWAR(h)
	f := func(s, d uint32, seed uint64, hot uint32) bool {
		src := int(s) % h.NumRouters()
		dst := int(d) % h.NumRouters()
		if src == dst {
			return true
		}
		view := &routetest.StubView{Loads: map[[2]int]int{
			{int(hot) % h.NumRouters(), h.Terms + int(hot)%3}: 500,
		}}
		hops, _, err := routetest.Walk(h, a, src, dst, 2*h.NumDims(), seed, view)
		if err != nil {
			t.Logf("walk error: %v", err)
			return false
		}
		lastDim := -1
		deroutesInDim := map[int8]int{}
		for _, hp := range hops {
			d := int(hp.Cand.Dim)
			if d < lastDim {
				return false // dimension order violated
			}
			lastDim = d
			if hp.Cand.Deroute {
				deroutesInDim[hp.Cand.Dim]++
				if deroutesInDim[hp.Cand.Dim] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestOmniWARCandidates: minimal candidates in all unaligned dimensions,
// deroutes everywhere while the class budget allows, distance class = hop
// index.
func TestOmniWARCandidates(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := MustOmniWAR(h, 8, false)
	src := h.RouterAt([]int{0, 0, 0})
	dst := h.RouterAt([]int{1, 2, 3})
	p := &route.Packet{SrcRouter: src, DstRouter: dst}
	p.Reset()
	cands := a.Route(newCtx(src, flatView()), p)
	// 3 minimal + 3 dims x 2 lateral values.
	if len(cands) != 3+6 {
		t.Fatalf("candidates = %d, want 9", len(cands))
	}
	for _, c := range cands {
		if c.Class != 0 {
			t.Errorf("first hop class %d, want 0 (distance class = hop index)", c.Class)
		}
	}
}

// TestOmniWARDerouteBudget: with classes == remaining minimal hops,
// deroutes disappear.
func TestOmniWARDerouteBudget(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := MustOmniWAR(h, 8, false)
	src := h.RouterAt([]int{0, 0, 0})
	dst := h.RouterAt([]int{1, 2, 3})
	p := &route.Packet{SrcRouter: src, DstRouter: dst}
	p.Reset()
	p.Hops = 5 // 3 classes left, 3 minimal hops needed
	for _, c := range a.Route(newCtx(src, flatView()), p) {
		if c.Deroute {
			t.Errorf("deroute offered with zero spare classes: %+v", c)
		}
		if c.Class != 5 {
			t.Errorf("class %d, want hop index 5", c.Class)
		}
	}
}

// TestOmniWARMinADDegenerate: with classes == N the algorithm is minimal
// adaptive and reports itself as MinAD.
func TestOmniWARMinADDegenerate(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := MustOmniWAR(h, 3, false)
	if a.Name() != "MinAD" {
		t.Errorf("name = %s", a.Name())
	}
	if a.MaxDeroutes() != 0 {
		t.Errorf("deroutes = %d", a.MaxDeroutes())
	}
}

// TestOmniWARRejectsTooFewClasses: fewer classes than dimensions is a
// configuration error.
func TestOmniWARRejectsTooFewClasses(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	if _, err := NewOmniWAR(h, 2, false); err == nil {
		t.Error("2 classes accepted for 3-D network")
	}
}

// TestOmniWARB2BRestriction: with the optimization on, a deroute in the
// same dimension as the immediately preceding deroute is not offered.
func TestOmniWARB2BRestriction(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 1)
	a := MustOmniWAR(h, 8, true)
	src := h.RouterAt([]int{0, 0})
	dst := h.RouterAt([]int{3, 3})
	p := &route.Packet{SrcRouter: src, DstRouter: dst}
	p.Reset()
	p.Hops = 1
	p.LastDerDim = 0 // just derouted in dim 0
	for _, c := range a.Route(newCtx(src, flatView()), p) {
		if c.Deroute && c.Dim == 0 {
			t.Errorf("back-to-back deroute in dim 0 offered: %+v", c)
		}
	}
	// Deroutes in dim 1 must still exist.
	found := false
	for _, c := range a.Route(newCtx(src, flatView()), p) {
		if c.Deroute && c.Dim == 1 {
			found = true
		}
	}
	if !found {
		t.Error("no deroute in the other dimension")
	}
}

// TestOmniWARWalkProperties: delivery within the class budget, strictly
// increasing distance classes, and correct hop accounting under random
// congestion.
func TestOmniWARWalkProperties(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	classes := 8
	a := MustOmniWAR(h, classes, false)
	f := func(s, d uint32, seed uint64, hotR, hotP uint32) bool {
		src := int(s) % h.NumRouters()
		dst := int(d) % h.NumRouters()
		if src == dst {
			return true
		}
		view := &routetest.StubView{Loads: map[[2]int]int{
			{int(hotR) % h.NumRouters(), h.Terms + int(hotP)%(h.NumPorts()-h.Terms)}: 700,
		}}
		hops, p, err := routetest.Walk(h, a, src, dst, classes, seed, view)
		if err != nil {
			t.Logf("walk error: %v", err)
			return false
		}
		if len(hops) > classes {
			return false
		}
		for i, hp := range hops {
			if int(hp.Cand.Class) != i {
				return false // distance class must equal hop index
			}
		}
		return int(p.Hops) == len(hops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestWARMeta sanity-checks the Table 1 rows of the two contributions.
func TestWARMeta(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	dw := NewDimWAR(h).Meta()
	if !dw.DimOrdered || dw.Style != "incremental" || dw.PktContents != "none" {
		t.Errorf("DimWAR meta %+v", dw)
	}
	ow := MustOmniWAR(h, 8, false).Meta()
	if ow.DimOrdered || ow.Style != "incremental" || ow.PktContents != "none" {
		t.Errorf("OmniWAR meta %+v", ow)
	}
	if NewDimWAR(h).NumClasses() != 2 {
		t.Error("DimWAR must need exactly 2 classes")
	}
}
