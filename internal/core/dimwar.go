// Package core implements the paper's contribution: the two practical
// incremental adaptive routing algorithms for HyperX networks.
//
//   - DimWAR (Section 5.1): dimensionally-ordered weighted adaptive
//     routing. Fine-grained incremental adaptivity with one deroute per
//     dimension, needing only two resource classes regardless of the
//     number of dimensions.
//   - OmniWAR (Section 5.2): omni-dimensional weighted adaptive routing.
//     Traverses unaligned dimensions in any order with up to M deroutes
//     anywhere along the path, using N+M distance classes.
//
// Both are implementable on commodity high-radix routers: all routing
// state is encoded in the VC identifier, no packet fields or special
// architectural features are required (Table 1).
package core

import (
	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// DimWAR is Dimensionally-ordered Weighted Adaptive Routing (Section 5.1).
//
// The packet resolves dimensions in ascending order. In the current
// dimension it may take the direct (minimal) hop on resource class 0, or —
// if it currently occupies class 0 — deroute to any other router in that
// dimension on resource class 1, after which only the aligning minimal hop
// is admissible. Dependencies within a dimension therefore flow only from
// class 1 to class 0 buffers, and dimensions are visited in a fixed order,
// so two classes suffice for deadlock freedom for any dimensionality.
type DimWAR struct {
	topo   *topology.HyperX
	faults *topology.FaultSet
}

// NewDimWAR returns a DimWAR instance for the given HyperX.
func NewDimWAR(h *topology.HyperX) *DimWAR {
	return &DimWAR{topo: h}
}

// SetFaults makes candidate generation fault-aware: dead minimal hops are
// omitted, and a deroute is offered only when both of its hops (the
// lateral and the forced aligning hop) are alive — because a class-1
// packet's only admissible move is the aligning hop, committing to a
// deroute whose second hop is dead would wedge the packet. The restricted
// candidate set is a subset of the fault-free one, so the two-class
// deadlock discipline of §5.1 is unchanged. Faults are static; nil means
// pristine and restores the exact fault-free candidate stream.
func (a *DimWAR) SetFaults(fs *topology.FaultSet) { a.faults = fs }

// Name implements route.Algorithm.
func (a *DimWAR) Name() string { return "DimWAR" }

// NumClasses implements route.Algorithm: two resource classes regardless
// of dimensionality.
func (a *DimWAR) NumClasses() int { return 2 }

// Meta implements route.Algorithm (Table 1 row).
func (a *DimWAR) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   true,
		Style:        "incremental",
		VCsRequired:  "2",
		Deadlock:     "restricted routes + resource classes",
		ArchRequires: "none",
		PktContents:  "none",
	}
}

// Route implements route.Algorithm.
func (a *DimWAR) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	h := a.topo
	r, dst := ctx.Router, p.DstRouter
	d := h.FirstUnalignedDim(r, dst)
	if d < 0 {
		return ctx.Cands[:0] // at destination router; router ejects
	}
	minRem := int8(h.MinHops(r, dst))
	dstV := h.CoordDigit(dst, d)
	dim := int8(d)
	fs := a.faults

	cands := ctx.Cands[:0]
	minPort := h.DimPort(r, d, dstV)
	if !fs.Dead(r, minPort) {
		cands = append(cands, route.Candidate{
			Port:     minPort,
			Class:    0,
			HopsLeft: minRem,
			Dim:      dim,
		})
	}
	// Deroutes are valid only within the current dimension and only while
	// the packet occupies the first resource class (step 2 of §5.1). A
	// packet that just derouted sits on class 1 and must take the aligning
	// minimal hop next, bounding it to one deroute per dimension. Under
	// faults that forced aligning hop must be verified alive before the
	// deroute is offered; when the minimal hop is dead, a surviving
	// deroute-then-align pair is the only admissible path through the
	// dimension.
	if p.Class == 0 {
		// Walk the dimension's port block: ports ascend with the peer's
		// digit (own skipped), so this is the same v-ascending lateral
		// order as before, with the minimal port standing in for v == dstV.
		base, n := h.DimPortBlock(d)
		for port := base; port < base+n; port++ {
			if port == minPort {
				continue
			}
			if fs != nil {
				if fs.Dead(r, port) {
					continue
				}
				via := h.PeerRouter(r, port)
				if fs.Dead(via, h.DimPort(via, d, dstV)) {
					continue
				}
			}
			cands = append(cands, route.Candidate{
				Port:     port,
				Class:    1,
				HopsLeft: minRem + 1,
				Deroute:  true,
				Dim:      dim,
			})
		}
	}
	return cands
}
