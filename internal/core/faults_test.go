package core

import (
	"testing"
	"testing/quick"

	"hyperx/internal/route"
	"hyperx/internal/routetest"
	"hyperx/internal/topology"
)

// TestDimWARExcludesDeadMinimal: with the minimal link of the first
// unaligned dimension dead, DimWAR must offer only deroutes, and only via
// intermediates whose remote aligning link is alive.
func TestDimWARExcludesDeadMinimal(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 1)
	src := h.RouterAt([]int{0, 0})
	dst := h.RouterAt([]int{2, 3})
	fs := topology.NewFaultSet()
	if err := fs.Add(h, src, h.DimPort(src, 0, 2)); err != nil {
		t.Fatal(err)
	}
	a := NewDimWAR(h)
	a.SetFaults(fs)
	p := &route.Packet{SrcRouter: src, DstRouter: dst}
	p.Reset()
	view := &routetest.StubView{Faults: fs}
	view.SetRouter(src)
	cands := a.Route(newCtx(src, view), p)
	if len(cands) == 0 {
		t.Fatal("no candidates around a single dead minimal link")
	}
	for _, c := range cands {
		if !c.Deroute {
			t.Errorf("minimal candidate on port %d survived its dead link", c.Port)
		}
		if fs.Dead(src, c.Port) {
			t.Errorf("candidate uses dead lateral port %d", c.Port)
		}
		via, _ := h.Peer(src, c.Port)
		if fs.Dead(via, h.DimPort(via, 0, 2)) {
			t.Errorf("deroute via %d has a dead remote aligning link", via)
		}
	}
}

// TestDimWARFaultWalks: with a connected random fault set, DimWAR walks
// deliver every pair within the two-resource-class hop bound and never
// traverse a dead link (Walk errors on either violation).
func TestDimWARFaultWalks(t *testing.T) {
	h := topology.MustHyperX([]int{4, 3, 5}, 1)
	fs, err := topology.RandomConnectedFaults(h, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	a := NewDimWAR(h)
	a.SetFaults(fs)
	f := func(s, d uint32, seed uint64) bool {
		src := int(s) % h.NumRouters()
		dst := int(d) % h.NumRouters()
		if src == dst {
			return true
		}
		view := &routetest.StubView{Faults: fs}
		_, _, err := routetest.Walk(h, a, src, dst, 2*h.NumDims(), seed, view)
		if err != nil {
			t.Logf("walk %d->%d: %v", src, dst, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestOmniWARFaultWalks: same guarantee for OmniWAR within its distance-
// class budget.
func TestOmniWARFaultWalks(t *testing.T) {
	h := topology.MustHyperX([]int{4, 3, 5}, 1)
	fs, err := topology.RandomConnectedFaults(h, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	a := MustOmniWAR(h, 8, false)
	a.SetFaults(fs)
	f := func(s, d uint32, seed uint64) bool {
		src := int(s) % h.NumRouters()
		dst := int(d) % h.NumRouters()
		if src == dst {
			return true
		}
		view := &routetest.StubView{Faults: fs}
		_, _, err := routetest.Walk(h, a, src, dst, 8, seed, view)
		if err != nil {
			t.Logf("walk %d->%d: %v", src, dst, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestFaultCandidatesAreSubset: on any router, the faulted candidate set
// is a subset of the fault-free one — the deadlock-freedom argument.
func TestFaultCandidatesAreSubset(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 1)
	fs, err := topology.RandomConnectedFaults(h, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	pristine := NewDimWAR(h)
	faulted := NewDimWAR(h)
	faulted.SetFaults(fs)
	key := func(c route.Candidate) [4]int {
		return [4]int{c.Port, int(c.Class), int(c.Dim), b2i(c.Deroute)}
	}
	for src := 0; src < h.NumRouters(); src++ {
		for dst := 0; dst < h.NumRouters(); dst++ {
			if src == dst {
				continue
			}
			p := &route.Packet{SrcRouter: src, DstRouter: dst}
			p.Reset()
			free := make(map[[4]int]bool)
			for _, c := range pristine.Route(newCtx(src, flatView()), p) {
				free[key(c)] = true
			}
			p2 := &route.Packet{SrcRouter: src, DstRouter: dst}
			p2.Reset()
			for _, c := range faulted.Route(newCtx(src, flatView()), p2) {
				if !free[key(c)] {
					t.Fatalf("src %d dst %d: faulted candidate %+v not offered fault-free", src, dst, c)
				}
			}
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
