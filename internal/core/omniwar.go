package core

import (
	"fmt"

	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// OmniWAR is Omni-dimensional Weighted Adaptive Routing (Section 5.2).
//
// At every router the packet may move in any unaligned dimension — the
// aligning (minimal) hop or, while spare distance classes remain, any
// lateral deroute in an unaligned dimension. Each hop advances the packet
// to the next distance class (VC identifier = hop count), so with
// N + M classes a packet can take up to M deroutes anywhere along its
// path; distance classes make resource usage acyclic without escape paths.
type OmniWAR struct {
	topo    *topology.HyperX
	classes int  // N + M distance classes
	noB2B   bool // restrict back-to-back deroutes in the same dimension (§5.2 optimization)
}

// NewOmniWAR returns an OmniWAR with the given total number of distance
// classes (N + M). classes must be at least the number of dimensions so a
// minimal path is always completable.
func NewOmniWAR(h *topology.HyperX, classes int, restrictB2B bool) (*OmniWAR, error) {
	if classes < h.NumDims() {
		return nil, fmt.Errorf("omniwar: need >= %d distance classes for a %d-D HyperX, got %d",
			h.NumDims(), h.NumDims(), classes)
	}
	return &OmniWAR{topo: h, classes: classes, noB2B: restrictB2B}, nil
}

// MustOmniWAR is NewOmniWAR that panics on configuration error.
func MustOmniWAR(h *topology.HyperX, classes int, restrictB2B bool) *OmniWAR {
	a, err := NewOmniWAR(h, classes, restrictB2B)
	if err != nil {
		panic(err)
	}
	return a
}

// Name implements route.Algorithm.
func (a *OmniWAR) Name() string {
	if a.classes == a.topo.NumDims() {
		return "MinAD" // no deroutes: adaptive minimal routing
	}
	return "OmniWAR"
}

// NumClasses implements route.Algorithm.
func (a *OmniWAR) NumClasses() int { return a.classes }

// MaxDeroutes returns M, the deroute budget.
func (a *OmniWAR) MaxDeroutes() int { return a.classes - a.topo.NumDims() }

// Meta implements route.Algorithm (Table 1 row).
func (a *OmniWAR) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   false,
		Style:        "incremental",
		VCsRequired:  "N+M",
		Deadlock:     "restricted routes + distance classes",
		ArchRequires: "none",
		PktContents:  "none",
	}
}

// Route implements route.Algorithm.
func (a *OmniWAR) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	h := a.topo
	r, dst := ctx.Router, p.DstRouter
	minRem := int8(h.MinHops(r, dst))
	if minRem == 0 {
		return ctx.Cands[:0]
	}
	next := p.Hops // distance class for the next hop = hops taken so far
	// Derouting is allowed only while the remaining distance classes
	// exceed the remaining minimal hops (step 2 of §5.2): a deroute burns
	// a class without reducing the minimal distance.
	allowDeroute := a.classes-int(p.Hops) > int(minRem)

	cands := ctx.Cands[:0]
	for d, w := range h.Widths {
		own := h.CoordDigit(r, d)
		dstV := h.CoordDigit(dst, d)
		if own == dstV {
			continue // aligned dimension: no valid outputs (§5.2 step 3)
		}
		dim := int8(d)
		cands = append(cands, route.Candidate{
			Port:     h.DimPort(r, d, dstV),
			Class:    next,
			HopsLeft: minRem,
			Dim:      dim,
		})
		if !allowDeroute || (a.noB2B && p.LastDerDim == dim) {
			continue
		}
		for v := 0; v < w; v++ {
			if v == own || v == dstV {
				continue
			}
			cands = append(cands, route.Candidate{
				Port:     h.DimPort(r, d, v),
				Class:    next,
				HopsLeft: minRem + 1,
				Deroute:  true,
				Dim:      dim,
			})
		}
	}
	return cands
}
