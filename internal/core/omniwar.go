package core

import (
	"fmt"

	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// OmniWAR is Omni-dimensional Weighted Adaptive Routing (Section 5.2).
//
// At every router the packet may move in any unaligned dimension — the
// aligning (minimal) hop or, while spare distance classes remain, any
// lateral deroute in an unaligned dimension. Each hop advances the packet
// to the next distance class (VC identifier = hop count), so with
// N + M classes a packet can take up to M deroutes anywhere along its
// path; distance classes make resource usage acyclic without escape paths.
type OmniWAR struct {
	topo    *topology.HyperX
	classes int  // N + M distance classes
	noB2B   bool // restrict back-to-back deroutes in the same dimension (§5.2 optimization)
	faults  *topology.FaultSet

	// risk[d][v] marks that some dead link in dimension d touches digit v:
	// a packet whose dimension-d destination digit is v may meet a dead
	// aligning hop somewhere along its walk, even where the local minimal
	// link is alive. Precomputed by SetFaults from the global fault set.
	risk [][]bool
}

// NewOmniWAR returns an OmniWAR with the given total number of distance
// classes (N + M). classes must be at least the number of dimensions so a
// minimal path is always completable.
func NewOmniWAR(h *topology.HyperX, classes int, restrictB2B bool) (*OmniWAR, error) {
	if classes < h.NumDims() {
		return nil, fmt.Errorf("omniwar: need >= %d distance classes for a %d-D HyperX, got %d",
			h.NumDims(), h.NumDims(), classes)
	}
	return &OmniWAR{topo: h, classes: classes, noB2B: restrictB2B}, nil
}

// MustOmniWAR is NewOmniWAR that panics on configuration error.
func MustOmniWAR(h *topology.HyperX, classes int, restrictB2B bool) *OmniWAR {
	a, err := NewOmniWAR(h, classes, restrictB2B)
	if err != nil {
		panic(err)
	}
	return a
}

// Name implements route.Algorithm.
func (a *OmniWAR) Name() string {
	if a.classes == a.topo.NumDims() {
		return "MinAD" // no deroutes: adaptive minimal routing
	}
	return "OmniWAR"
}

// NumClasses implements route.Algorithm.
func (a *OmniWAR) NumClasses() int { return a.classes }

// MaxDeroutes returns M, the deroute budget.
func (a *OmniWAR) MaxDeroutes() int { return a.classes - a.topo.NumDims() }

// SetFaults makes candidate generation fault-aware. Dead minimal hops are
// omitted; a deroute is offered only when both the lateral hop and the
// aligning hop from the deroute target are alive, so every deroute still
// guarantees a minimal completion of its dimension. On top of the §5.2
// budget rule, voluntary (congestion-motivated) deroutes must leave
// enough spare distance classes to cover the forced deroutes the fault
// set could still demand: because OmniWAR visits dimensions in any order,
// a dead aligning link can be invisible from the current router and only
// surface hops later, so the reservation counts every unaligned dimension
// in which any dead link touches the packet's destination digit (the
// precomputed risk table) — not just the dead links adjacent to this
// router. Without it, a packet could spend its classes dodging congestion
// and then meet a dead aligning link with no budget left. Candidates
// remain a subset of the fault-free set, so distance classes stay
// acyclic.
func (a *OmniWAR) SetFaults(fs *topology.FaultSet) {
	a.faults = fs
	a.risk = nil
	if fs.Size() == 0 {
		return
	}
	h := a.topo
	//hxlint:allow allocfree — fault-set installation is configuration time, once per build or per injected failure, never per event
	a.risk = make([][]bool, h.NumDims())
	for d, w := range h.Widths {
		//hxlint:allow allocfree — configuration time, see above
		a.risk[d] = make([]bool, w)
	}
	for _, l := range fs.Links() {
		d, _ := h.PortDim(l.RouterA, l.PortA)
		a.risk[d][h.CoordDigit(l.RouterA, d)] = true
		a.risk[d][h.CoordDigit(l.RouterB, d)] = true
	}
}

// Meta implements route.Algorithm (Table 1 row).
func (a *OmniWAR) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   false,
		Style:        "incremental",
		VCsRequired:  "N+M",
		Deadlock:     "restricted routes + distance classes",
		ArchRequires: "none",
		PktContents:  "none",
	}
}

// Route implements route.Algorithm.
func (a *OmniWAR) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	h := a.topo
	r, dst := ctx.Router, p.DstRouter
	minRem := int8(h.MinHops(r, dst))
	if minRem == 0 {
		return ctx.Cands[:0]
	}
	next := p.Hops // distance class for the next hop = hops taken so far
	// Derouting is allowed only while the remaining distance classes
	// exceed the remaining minimal hops (step 2 of §5.2): a deroute burns
	// a class without reducing the minimal distance.
	budget := a.classes - int(p.Hops) - int(minRem)
	allowDeroute := budget > 0
	fs := a.faults

	// Under faults, count the unaligned dimensions in which the fault set
	// could still force a deroute anywhere ahead — dead links touching the
	// destination digit, whether or not they are adjacent to this router.
	// Voluntary deroutes must leave that many classes in reserve (see
	// SetFaults).
	reserve := 0
	if a.risk != nil {
		for d := range h.Widths {
			dstV := h.CoordDigit(dst, d)
			if h.CoordDigit(r, d) != dstV && a.risk[d][dstV] {
				reserve++
			}
		}
	}

	cands := ctx.Cands[:0]
	for d := range h.Widths {
		own := h.CoordDigit(r, d)
		dstV := h.CoordDigit(dst, d)
		if own == dstV {
			continue // aligned dimension: no valid outputs (§5.2 step 3)
		}
		dim := int8(d)
		minPort := h.DimPort(r, d, dstV)
		minDead := fs.Dead(r, minPort)
		if !minDead {
			cands = append(cands, route.Candidate{
				Port:     minPort,
				Class:    next,
				HopsLeft: minRem,
				Dim:      dim,
			})
		}
		if !allowDeroute || (a.noB2B && p.LastDerDim == dim) {
			continue
		}
		if fs != nil && !minDead && budget <= reserve {
			continue // reserve remaining classes for forced deroutes
		}
		// Lateral deroutes via the dimension's port block: ports ascend
		// with the peer digit (own skipped), matching the old v-ascending
		// order; the minimal port is v == dstV.
		base, n := h.DimPortBlock(d)
		for port := base; port < base+n; port++ {
			if port == minPort {
				continue
			}
			if fs != nil {
				if fs.Dead(r, port) {
					continue
				}
				via := h.PeerRouter(r, port)
				if fs.Dead(via, h.DimPort(via, d, dstV)) {
					continue
				}
			}
			cands = append(cands, route.Candidate{
				Port:     port,
				Class:    next,
				HopsLeft: minRem + 1,
				Deroute:  true,
				Dim:      dim,
			})
		}
	}
	return cands
}
