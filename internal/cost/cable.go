package cost

import "math"

// This file implements the Figure 3 cabling-cost model. The paper computed
// the length of every cable in Dragonfly and HyperX systems from "common
// physical dimensions and placement" and priced them with per-technology
// cost curves (DAC where reach allows + AOC beyond it, or passive optical
// cables enabled by co-packaged photonics; the paper's optical prices came
// from confidential vendor quotes). We reproduce the same geometry and use
// parameterized, documented price curves: the DAC+AOC defaults are
// calibrated to reproduce the published 2008 result (Dragonfly ~10%
// cheaper than HyperX at scale); the passive-optical defaults reflect
// fixed-cost-dominated pricing, under which the cable count — where the
// HyperX is no worse — dominates and the HyperX becomes equal or cheaper.

// Geometry describes machine-room packaging. Defaults follow common
// practice: 0.6 m cabinet pitch within a row, 2.4 m row pitch (rows plus
// aisle), 2 m of vertical/slack overhead per inter-cabinet cable and 1 m
// for intra-cabinet cables.
type Geometry struct {
	CabinetPitch float64 // m between adjacent cabinets in a row
	RowPitch     float64 // m between adjacent rows
	InterSlack   float64 // m of overhead per inter-cabinet cable
	IntraLen     float64 // m per intra-cabinet cable
}

// DefaultGeometry returns the packaging constants above.
func DefaultGeometry() Geometry {
	return Geometry{CabinetPitch: 0.6, RowPitch: 2.4, InterSlack: 2.0, IntraLen: 1.0}
}

// CableTech prices a single cable of a given length.
type CableTech struct {
	Name string
	// DAC pricing applies up to ReachM; beyond it an AOC (or the
	// technology's only medium) is used.
	ReachM   float64 // electrical reach; 0 means the optical curve prices everything
	DACFixed float64
	DACPerM  float64
	OptFixed float64 // AOC or passive-optical fixed cost (transceivers/connectors)
	OptPerM  float64
}

// Cost prices one cable of length m.
func (t CableTech) Cost(m float64) float64 {
	if t.ReachM > 0 && m <= t.ReachM {
		return t.DACFixed + t.DACPerM*m
	}
	return t.OptFixed + t.OptPerM*m
}

// Technologies returns the cable technology sweep of Figure 3: DAC+AOC at
// the signaling rates whose electrical reach the paper cites (2.5 GHz:
// 8 m, 10 GHz: 5 m, 25 GHz: 3 m, 50 GHz: 2 m, 100 GHz: 1 m) plus passive
// optical cables, whose cost is almost entirely the (co-packaged)
// endpoints rather than reach-dependent electronics.
func Technologies() []CableTech {
	mk := func(name string, reach float64) CableTech {
		return CableTech{Name: name, ReachM: reach, DACFixed: 5, DACPerM: 2, OptFixed: 45, OptPerM: 1}
	}
	return []CableTech{
		mk("DAC+AOC@2.5GHz", 8),
		mk("DAC+AOC@10GHz", 5),
		mk("DAC+AOC@25GHz", 3),
		mk("DAC+AOC@50GHz", 2),
		mk("DAC+AOC@100GHz", 1),
		{Name: "PassiveOptical", ReachM: 0, OptFixed: 12, OptPerM: 0.25},
	}
}

// cabinetDistance returns the cable length between cabinets laid out on a
// grid of `perRow` cabinets per row.
func cabinetDistance(g Geometry, a, b, perRow int) float64 {
	if a == b {
		return g.IntraLen
	}
	ra, ca := a/perRow, a%perRow
	rb, cb := b/perRow, b%perRow
	return g.InterSlack + math.Abs(float64(ca-cb))*g.CabinetPitch + math.Abs(float64(ra-rb))*g.RowPitch
}

// LengthHistogram accumulates cables as (length, count) pairs.
type LengthHistogram struct {
	Lengths []float64
	Counts  []float64
}

// Add appends count cables of the given length.
func (h *LengthHistogram) Add(length float64, count float64) {
	h.Lengths = append(h.Lengths, length)
	h.Counts = append(h.Counts, count)
}

// TotalCables returns the number of cables in the histogram.
func (h *LengthHistogram) TotalCables() float64 {
	t := 0.0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Cost prices the whole histogram under a technology.
func (h *LengthHistogram) Cost(t CableTech) float64 {
	sum := 0.0
	for i, l := range h.Lengths {
		sum += t.Cost(l) * h.Counts[i]
	}
	return sum
}

// HyperXCables computes the router-to-router cable-length histogram of a
// 3-D HyperX (widths w0 x w1 x w2, t terminals/router) packaged with
// dimension 0 inside a cabinet, dimension 1 across the cabinets of a row,
// and dimension 2 across rows — the natural HyperX packaging the paper
// describes (each dimension fits a packaging domain).
func HyperXCables(g Geometry, w0, w1, w2 int) LengthHistogram {
	var h LengthHistogram
	numCabinets := w1 * w2
	_ = numCabinets
	// Dimension 0: full mesh inside every cabinet.
	h.Add(g.IntraLen, float64(w1*w2)*float64(w0*(w0-1))/2)
	// Dimension 1: for each row (one per w2 value) and each cabinet pair
	// (b, b') in the row, w0 parallel cables.
	for b := 0; b < w1; b++ {
		for bp := b + 1; bp < w1; bp++ {
			l := g.InterSlack + float64(bp-b)*g.CabinetPitch
			h.Add(l, float64(w2)*float64(w0))
		}
	}
	// Dimension 2: for each column position b and row pair (c, c'),
	// w0 parallel cables spanning rows.
	for c := 0; c < w2; c++ {
		for cp := c + 1; cp < w2; cp++ {
			l := g.InterSlack + float64(cp-c)*g.RowPitch
			h.Add(l, float64(w1)*float64(w0))
		}
	}
	return h
}

// DragonflyCables computes the router-to-router cable-length histogram of
// a balanced maximal Dragonfly (p, a=2p, h=p, g=a*h+1) packaged one group
// per cabinet, cabinets on a near-square grid.
func DragonflyCables(g Geometry, p int) LengthHistogram {
	var h LengthHistogram
	a := 2 * p
	groups := a*p + 1
	perRow := int(math.Ceil(math.Sqrt(float64(groups))))
	// Local links: full mesh within each cabinet.
	h.Add(g.IntraLen, float64(groups)*float64(a*(a-1))/2)
	// Global links: one cable between every pair of groups.
	for x := 0; x < groups; x++ {
		for y := x + 1; y < groups; y++ {
			h.Add(cabinetDistance(g, x, y, perRow), 1)
		}
	}
	return h
}

// ComparePoint is one system size of the Figure 3 comparison.
type ComparePoint struct {
	TargetNodes    int
	HyperXNodes    int
	DragonflyNodes int
	// CostRatio[tech] = Dragonfly cost per node / HyperX cost per node;
	// values > 1 mean HyperX is cheaper.
	Tech      []string
	CostRatio []float64
}

// CompareCableCost evaluates Figure 3 for a set of HyperX widths: for
// each width W it builds the W x W x W HyperX with t=W terminals and the
// nearest-size balanced Dragonfly, computes every cable length in both,
// and prices them under every technology. Costs are normalized per node
// because the two systems never match sizes exactly.
func CompareCableCost(g Geometry, widths []int) []ComparePoint {
	techs := Technologies()
	out := make([]ComparePoint, 0, len(widths))
	for _, w := range widths {
		hx := HyperXCables(g, w, w, w)
		hxNodes := w * w * w * w
		p, dfNodes := NearestDragonflyFor(hxNodes)
		df := DragonflyCables(g, p)
		pt := ComparePoint{TargetNodes: hxNodes, HyperXNodes: hxNodes, DragonflyNodes: dfNodes}
		for _, t := range techs {
			hxCost := hx.Cost(t) / float64(hxNodes)
			dfCost := df.Cost(t) / float64(dfNodes)
			pt.Tech = append(pt.Tech, t.Name)
			pt.CostRatio = append(pt.CostRatio, dfCost/hxCost)
		}
		out = append(out, pt)
	}
	return out
}
