package cost

import "testing"

// TestMaxHyperXPaperNumbers checks the Section 3.1 scalability claims for
// 64-port routers exactly.
func TestMaxHyperXPaperNumbers(t *testing.T) {
	for _, tc := range []struct {
		dims, want int
	}{
		{2, 10648},
		{3, 78608},
		{4, 463736},
	} {
		got := MaxHyperX(64, tc.dims)
		if got.Nodes != tc.want {
			t.Errorf("MaxHyperX(64, %d) = %d nodes (widths %v, t=%d), want %d",
				tc.dims, got.Nodes, got.Widths, got.Terms, tc.want)
		}
	}
}

// TestMaxHyperXInvariants checks structural invariants over a radix sweep.
func TestMaxHyperXInvariants(t *testing.T) {
	for k := 8; k <= 128; k += 4 {
		for d := 1; d <= 4; d++ {
			c := MaxHyperX(k, d)
			if c.Nodes == 0 {
				continue
			}
			sum := c.Terms
			minW := c.Widths[0]
			for _, w := range c.Widths {
				sum += w - 1
				if w < minW {
					minW = w
				}
			}
			if sum > k {
				t.Fatalf("radix %d dims %d: ports used %d > radix", k, d, sum)
			}
			if c.Terms > minW {
				t.Fatalf("radix %d dims %d: t=%d violates full bisection (minW=%d)", k, d, c.Terms, minW)
			}
		}
	}
}

// TestScalabilityOrdering: at high radix, more dimensions scale further,
// and Dragonfly out-scales 3-D HyperX (Figure 2's qualitative ordering).
func TestScalabilityOrdering(t *testing.T) {
	pts := ScalabilityCurve([]int{32, 64, 128})
	for _, p := range pts {
		if !(p.HyperX2 < p.HyperX3 && p.HyperX3 < p.HyperX4) {
			t.Errorf("radix %d: HyperX scaling not monotone in dims: %d %d %d",
				p.Radix, p.HyperX2, p.HyperX3, p.HyperX4)
		}
		if p.Dragonfly <= p.HyperX3 {
			t.Errorf("radix %d: Dragonfly (%d) should out-scale HyperX-3 (%d)",
				p.Radix, p.Dragonfly, p.HyperX3)
		}
		if p.FatTree >= p.Dragonfly {
			t.Errorf("radix %d: 3-level fat tree (%d) should scale below Dragonfly (%d)",
				p.Radix, p.FatTree, p.Dragonfly)
		}
	}
}

// TestScalabilityMonotoneInRadix: every topology's max size grows with
// radix.
func TestScalabilityMonotoneInRadix(t *testing.T) {
	var prev ScalePoint
	for i, p := range ScalabilityCurve([]int{16, 24, 32, 48, 64, 96, 128}) {
		if i > 0 {
			if p.HyperX3 < prev.HyperX3 || p.Dragonfly < prev.Dragonfly || p.FatTree < prev.FatTree {
				t.Errorf("scale not monotone between radix %d and %d", prev.Radix, p.Radix)
			}
		}
		prev = p
	}
}

// TestCableCostShape reproduces Figure 3's two qualitative claims: with
// copper-era DAC+AOC pricing the Dragonfly is cheaper (ratio < 1) at
// large scale, and with passive optical cables the HyperX is equal or
// cheaper (ratio >= ~1).
func TestCableCostShape(t *testing.T) {
	pts := CompareCableCost(DefaultGeometry(), []int{6, 8, 10, 12})
	for _, p := range pts {
		var dacRatio, optRatio float64
		for i, name := range p.Tech {
			switch name {
			case "DAC+AOC@25GHz":
				dacRatio = p.CostRatio[i]
			case "PassiveOptical":
				optRatio = p.CostRatio[i]
			}
		}
		t.Logf("N~%d: dragonfly/hyperx cost ratio: 25GHz copper=%.3f passive optical=%.3f",
			p.TargetNodes, dacRatio, optRatio)
		if p.TargetNodes >= 4096 && dacRatio >= 1.0 {
			t.Errorf("N=%d: with DAC+AOC, Dragonfly should be cheaper (ratio %.3f >= 1)", p.TargetNodes, dacRatio)
		}
		if optRatio < 0.97 {
			t.Errorf("N=%d: with passive optics, HyperX should be equal or cheaper (ratio %.3f < 0.97)", p.TargetNodes, optRatio)
		}
	}
}

// TestCableHistogramsSane checks cable counts against closed forms.
func TestCableHistogramsSane(t *testing.T) {
	g := DefaultGeometry()
	w := 4
	hx := HyperXCables(g, w, w, w)
	// 3 dims x W^2 instances x W(W-1)/2 links each.
	want := 3 * w * w * w * (w - 1) / 2
	if int(hx.TotalCables()) != want {
		t.Errorf("hyperx cable count = %v, want %d", hx.TotalCables(), want)
	}
	p := 3
	df := DragonflyCables(g, p)
	a := 2 * p
	groups := a*p + 1
	wantDF := groups*a*(a-1)/2 + groups*(groups-1)/2
	if int(df.TotalCables()) != wantDF {
		t.Errorf("dragonfly cable count = %v, want %d", df.TotalCables(), wantDF)
	}
}
