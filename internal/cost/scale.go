// Package cost implements the paper's two analytic models: topology
// scalability versus router radix (Figure 2) and the cabling cost
// comparison between Dragonfly and HyperX under different link
// technologies (Figure 3).
package cost

import "math"

// HyperXConfig is a scalability-optimal HyperX for a given radix.
type HyperXConfig struct {
	Widths []int
	Terms  int
	Nodes  int
}

// MaxHyperX returns the HyperX configuration with the most nodes
// buildable from routers of the given radix in the given number of
// dimensions, under the full-bisection constraint t <= min(W). This
// reproduces the paper's Section 3.1 numbers: with 64-port routers,
// 10,648 nodes in 2-D, 78,608 in 3-D, and 463,736 in 4-D.
func MaxHyperX(radix, dims int) HyperXConfig {
	best := HyperXConfig{}
	// Optimal widths are near-equal: search all splits of dims into
	// widths W and W-1.
	for w := 2; dims*(w-1) < radix; w++ {
		for hi := 0; hi <= dims; hi++ { // hi dimensions of width w, rest w-1
			widths := make([]int, dims)
			sum := 0
			ok := true
			for i := range widths {
				if i < hi {
					widths[i] = w
				} else {
					widths[i] = w - 1
				}
				if widths[i] < 2 {
					ok = false
					break
				}
				sum += widths[i] - 1
			}
			if !ok || sum >= radix {
				continue
			}
			t := radix - sum
			minW := widths[dims-1]
			if t > minW {
				t = minW // full bisection: terminals per router <= min width
			}
			if t < 1 {
				continue
			}
			nodes := t
			for _, wd := range widths {
				nodes *= wd
			}
			if nodes > best.Nodes {
				best = HyperXConfig{Widths: widths, Terms: t, Nodes: nodes}
			}
		}
	}
	return best
}

// MaxDragonfly returns the node count of the balanced maximal Dragonfly
// (a = 2p = 2h, g = a*h + 1) buildable from the given radix:
// k = p + (a-1) + h = 4p - 1.
func MaxDragonfly(radix int) int {
	p := (radix + 1) / 4
	if p < 1 {
		return 0
	}
	a := 2 * p
	g := a*p + 1
	return p * a * g
}

// MaxFatTree returns the node count of a 3-level folded-Clos fat tree of
// radix-k switches: k^3/4.
func MaxFatTree(radix int) int {
	if radix < 2 {
		return 0
	}
	return radix * radix * radix / 4
}

// MaxSlimFly returns the approximate node count of a diameter-2 Slim Fly
// (MMS graph): 2q^2 routers of network degree ~3q/2 with p ~ 3q/4
// terminals each, so radix k ~ 9q/4 and N ~ 3q^3/2. The continuous
// approximation ignores the prime-power constraint on q.
func MaxSlimFly(radix int) int {
	q := 4 * float64(radix) / 9
	if q < 1 {
		return 0
	}
	return int(1.5 * q * q * q)
}

// MaxHyperCube returns the node count of a binary hypercube with one
// terminal per router: dimensions = radix-1, N = 2^(radix-1), capped to
// avoid overflow for large radix.
func MaxHyperCube(radix int) int {
	n := radix - 1
	if n < 1 {
		return 0
	}
	if n > 40 {
		n = 40
	}
	return 1 << uint(n)
}

// ScalePoint is one (radix, nodes-per-topology) sample of Figure 2.
type ScalePoint struct {
	Radix     int
	HyperX2   int
	HyperX3   int
	HyperX4   int
	Dragonfly int
	FatTree   int
	SlimFly   int
	HyperCube int
}

// ScalabilityCurve samples Figure 2 over the given radix grid.
func ScalabilityCurve(radixes []int) []ScalePoint {
	out := make([]ScalePoint, 0, len(radixes))
	for _, k := range radixes {
		out = append(out, ScalePoint{
			Radix:     k,
			HyperX2:   MaxHyperX(k, 2).Nodes,
			HyperX3:   MaxHyperX(k, 3).Nodes,
			HyperX4:   MaxHyperX(k, 4).Nodes,
			Dragonfly: MaxDragonfly(k),
			FatTree:   MaxFatTree(k),
			SlimFly:   MaxSlimFly(k),
			HyperCube: MaxHyperCube(k),
		})
	}
	return out
}

// NearestDragonflyFor returns the balanced Dragonfly parameter p whose
// node count is closest to target (used to build cost-comparable
// configurations).
func NearestDragonflyFor(target int) (p int, nodes int) {
	best, bestN := 1, 0
	bestD := math.MaxFloat64
	for q := 1; q < 64; q++ {
		n := q * 2 * q * (2*q*q + 1)
		if d := math.Abs(float64(n - target)); d < bestD {
			best, bestN, bestD = q, n, d
		}
		if n > 4*target {
			break
		}
	}
	return best, bestN
}
