package harness

import (
	"sync"
	"sync/atomic"
)

// Flight deduplicates concurrent identical computations by key: the
// first caller of a key (the leader) computes while every concurrent
// caller of the same key waits and shares the leader's value. The
// facade threads a Flight through sweep jobs keyed by the checkpoint
// cache key of each cell, so overlapping in-flight submissions to the
// sweep service trigger exactly one simulation per distinct cell — the
// in-memory complement of the on-disk content-addressed store.
//
// Unlike x/sync/singleflight, a leader's failure is not shared: one
// waiting follower retries as the new leader. That matters here because
// a leader can be cancelled for reasons private to its own run (the
// harness's speculative early stop, a client abort) and its context
// error must not poison an unrelated run computing the same cell.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	computes atomic.Uint64
	shared   atomic.Uint64
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error

	// waiters counts followers parked on done; the stampede tests use it
	// to hold the leader in its compute until every follower has joined,
	// making the exactly-one-compute assertion deterministic.
	waiters atomic.Int32
}

// NewFlight returns an empty flight group.
func NewFlight() *Flight {
	return &Flight{calls: make(map[string]*flightCall)}
}

// Do runs fn under key, deduplicating concurrent callers. shared
// reports whether the returned value came from another caller's
// computation rather than this caller's own fn invocation. When the
// leader fails, one follower at a time retries as a fresh leader, so an
// error is only ever returned to a caller whose own fn produced it.
func (f *Flight) Do(key string, fn func() (any, error)) (v any, shared bool, err error) {
	for {
		f.mu.Lock()
		if c, ok := f.calls[key]; ok {
			c.waiters.Add(1)
			f.mu.Unlock()
			<-c.done
			if c.err == nil {
				f.shared.Add(1)
				return c.val, true, nil
			}
			continue // leader failed: race to become the new leader
		}
		c := &flightCall{done: make(chan struct{})}
		f.calls[key] = c
		f.mu.Unlock()

		f.computes.Add(1)
		c.val, c.err = fn()

		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
		return c.val, false, c.err
	}
}

// Computes returns how many times Do actually invoked a compute
// function — the number that stays at one when N concurrent callers
// submit the same key (the stampede test's assertion).
func (f *Flight) Computes() uint64 { return f.computes.Load() }

// Shared returns how many Do calls were served by another caller's
// computation.
func (f *Flight) Shared() uint64 { return f.shared.Load() }

// waitersFor reports how many followers are currently parked on key's
// in-flight call (0 when no call is in flight). Test-only rendezvous.
func (f *Flight) waitersFor(key string) int32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		return c.waiters.Load()
	}
	return 0
}
