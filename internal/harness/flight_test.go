package harness

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// waitForWaiters spins (yielding) until n followers are parked on key.
// The leader is held inside its compute function while this runs, so
// the rendezvous is deterministic: no follower can miss the flight.
func waitForWaiters(t *testing.T, fl *Flight, key string, n int32) {
	t.Helper()
	for fl.waitersFor(key) < n {
		runtime.Gosched()
	}
}

// TestFlightStampedeComputesOnce is the core dedup contract: N
// concurrent callers of one key trigger exactly one compute, and every
// other caller shares its value.
func TestFlightStampedeComputesOnce(t *testing.T) {
	const followers = 15
	fl := NewFlight()

	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, shared, err := fl.Do("cell", func() (any, error) {
			close(entered) // leader is in the compute; hold it open
			<-release
			return 42, nil
		})
		if err != nil || shared || v.(int) != 42 {
			t.Errorf("leader: v=%v shared=%v err=%v", v, shared, err)
		}
	}()
	<-entered

	var wg sync.WaitGroup
	var ran atomic.Int32
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := fl.Do("cell", func() (any, error) {
				ran.Add(1) // must never run: the leader's value is shared
				return -1, nil
			})
			if err != nil || !shared || v.(int) != 42 {
				t.Errorf("follower: v=%v shared=%v err=%v", v, shared, err)
			}
		}()
	}
	waitForWaiters(t, fl, "cell", followers)
	close(release)
	wg.Wait()
	<-leaderDone

	if got := fl.Computes(); got != 1 {
		t.Errorf("computes = %d, want exactly 1", got)
	}
	if got := fl.Shared(); got != followers {
		t.Errorf("shared = %d, want %d", got, followers)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("follower compute ran %d times, want 0", got)
	}
}

// TestFlightLeaderFailureHandsOff pins the non-poisoning contract: a
// leader's error is returned only to the leader itself; a waiting
// follower retries as the new leader instead of inheriting the failure.
func TestFlightLeaderFailureHandsOff(t *testing.T) {
	fl := NewFlight()
	boom := errors.New("cancelled by the leader's own run")

	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, shared, err := fl.Do("cell", func() (any, error) {
			close(entered)
			<-release
			return nil, boom
		})
		if !errors.Is(err, boom) || shared {
			t.Errorf("leader: shared=%v err=%v, want its own error", shared, err)
		}
	}()
	<-entered

	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		v, shared, err := fl.Do("cell", func() (any, error) {
			return 7, nil // the retry-as-leader path
		})
		if err != nil || shared || v.(int) != 7 {
			t.Errorf("follower retry: v=%v shared=%v err=%v", v, shared, err)
		}
	}()
	waitForWaiters(t, fl, "cell", 1)
	close(release)
	<-leaderDone
	<-followerDone

	if got := fl.Computes(); got != 2 {
		t.Errorf("computes = %d, want 2 (failed leader + retrying follower)", got)
	}
	if got := fl.Shared(); got != 0 {
		t.Errorf("shared = %d, want 0: an error must never be shared", got)
	}
}

// TestFlightDistinctKeysDoNotBlock: different keys compute
// independently and concurrently.
func TestFlightDistinctKeysDoNotBlock(t *testing.T) {
	fl := NewFlight()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := fl.Do(string(rune('a'+i)), func() (any, error) { return i, nil })
			if err != nil || shared || v.(int) != i {
				t.Errorf("key %d: v=%v shared=%v err=%v", i, v, shared, err)
			}
		}()
	}
	wg.Wait()
	if got := fl.Computes(); got != 8 {
		t.Errorf("computes = %d, want 8", got)
	}
}

// TestFlightSequentialCallsEachCompute: dedup applies to concurrent
// callers only — a later call after the flight lands recomputes (the
// durable dedup layer is the checkpoint store, not the flight).
func TestFlightSequentialCallsEachCompute(t *testing.T) {
	fl := NewFlight()
	for i := 0; i < 3; i++ {
		if _, shared, err := fl.Do("cell", func() (any, error) { return i, nil }); err != nil || shared {
			t.Fatalf("call %d: shared=%v err=%v", i, shared, err)
		}
	}
	if got := fl.Computes(); got != 3 {
		t.Errorf("computes = %d, want 3", got)
	}
}
