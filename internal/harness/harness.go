// Package harness is the parallel experiment-execution engine behind the
// facade's RunLoadSweepParallel and RunThroughputGrid. It turns a sweep
// specification (traffic patterns × routing algorithms × offered loads)
// into independent jobs and runs them on a bounded worker pool, with two
// guarantees the paper's methodology depends on:
//
// Determinism. Every job is a closed simulation instance whose entire
// random universe derives from the job's own seed (see internal/rng), so
// worker count and scheduling order cannot perturb any result: a sweep at
// -j 8 is bit-identical to the same sweep at -j 1, which in turn matches
// the legacy serial runners. The engine assigns results by job index, not
// completion order, so output ordering is deterministic too.
//
// Early stop without lost points. A load-latency curve ends at its first
// saturated point (Section 6.1), which serially means "stop sweeping this
// curve". In parallel the engine instead runs points speculatively and,
// when a point at index i on a curve reports saturation, cancels — via
// context, honoured by sim.Kernel.RunCtx — only points at strictly higher
// indices on that curve. Points at or below the eventual curve end are
// therefore always run to completion, so truncating each curve at its
// first saturated point yields exactly the serial output; speculative
// points past it are discarded (and recorded as cancelled in the
// manifest).
//
// Observability. Each job is timed and its kernel counters sampled
// (simulated cycles, events executed, events/sec); the aggregate plus one
// record per job forms a Manifest that can be serialized to JSON, and an
// optional progress writer receives a one-line status after every job
// completes.
package harness

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Outcome is what a job's Run function reports on success. Value carries
// the measurement itself (e.g. a load point); the remaining fields feed
// the observability layer and the early-stop logic.
type Outcome struct {
	Saturated bool   // point saturated: cancels higher points on the curve
	Cached    bool   // served from a checkpoint store, not simulated now
	Cycles    int64  // simulated cycles at the end of the run
	Events    uint64 // kernel events executed (sim.Kernel.Executed)
	Delivered uint64 // packets delivered over the run (fault observability)
	Dropped   uint64 // packets lost to fault-induced drops
	Value     any    // the measurement (facade-defined)
}

// Job is one independent simulation instance in a sweep. Curve groups
// jobs that form a single load-latency line (one pattern × algorithm);
// Point is the job's ascending position along that curve — the early-stop
// rule cancels points strictly past a curve's first saturated Point. Run
// must honour ctx cancellation (return ctx.Err()) and must not share
// mutable state with other jobs.
type Job struct {
	Curve int    // curve (pattern × algorithm) this job belongs to
	Point int    // index along the curve, ascending offered load
	Label string // human-readable identity, e.g. "UR/DimWAR@0.30"
	Seed  uint64 // seed of the job's random universe (recorded in the manifest)
	Run   func(ctx context.Context) (Outcome, error)
}

// Options configures a Run.
type Options struct {
	// Workers bounds the pool; 0 or negative means runtime.GOMAXPROCS(0).
	Workers int
	// EarlyStop enables per-curve speculative cancellation past the first
	// saturated point. Leave false for grids whose cells are independent.
	EarlyStop bool
	// Progress, when non-nil, receives a one-line status after each job
	// completes. Writes are serialized by the engine.
	Progress func(line string)
	// OnEvent, when non-nil, receives a structured progress event after
	// each job resolves — the machine-readable twin of Progress, streamed
	// by the hxserved job-event endpoint. Calls are serialized by the
	// engine and arrive in completion order, not job order.
	OnEvent func(Event)
}

// Event is one structured progress notification: the fate of a single
// job plus the run-wide counters at that moment. It is what a service
// client sees while a sweep is in flight, so it carries identity (label,
// curve, point), outcome (status, cached, saturated), cost (wall time,
// simulated cycles, kernel events), and the done/cancelled/failed/total
// frontier of the whole run.
type Event struct {
	Label     string  `json:"label"`
	Curve     int     `json:"curve"`
	Point     int     `json:"point"`
	Status    string  `json:"status"` // "ok", "saturated", "skipped", "cancelled", or "failed"
	Cached    bool    `json:"cached,omitempty"`
	Saturated bool    `json:"saturated,omitempty"`
	WallSecs  float64 `json:"wall_seconds"`
	SimCycles int64   `json:"sim_cycles,omitempty"`
	Events    uint64  `json:"events,omitempty"`

	Done      int `json:"done"`
	Cancelled int `json:"cancelled"`
	Failed    int `json:"failed"`
	Total     int `json:"total"`
}

// JobResult pairs a job with what happened to it. Exactly one of Done,
// Cancelled, or a non-nil Err holds for every job of a finished run.
type JobResult struct {
	Job       Job
	Outcome   Outcome // valid only when Done
	Err       error   // the job's own failure (not cancellation)
	Done      bool    // ran to completion
	Cancelled bool    // skipped or interrupted by early stop / run abort

	wall time.Duration // wall time of the completed run, for the manifest
}

// RunResult is the full record of one engine invocation: per-job results
// in input order plus the aggregated manifest.
type RunResult struct {
	Jobs     []JobResult
	Manifest *Manifest
}

// curveState tracks the saturation frontier of one curve: the lowest
// point index that reported saturation, and cancel handles for the
// curve's currently running jobs.
type curveState struct {
	mu      sync.Mutex
	minSat  int // lowest saturated point index seen, or math.MaxInt
	cancels map[int]context.CancelFunc
}

// Run executes jobs on a bounded worker pool and blocks until every job
// has completed, been cancelled, or the run has aborted. Jobs are started
// in slice order (callers sort for good speculation order: ascending
// Point, then Curve). On a job failure the whole run is cancelled and the
// first failure, in job order, is returned alongside the partial result;
// ctx cancellation likewise aborts the run and returns ctx.Err().
func Run(ctx context.Context, jobs []Job, opts Options) (*RunResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	curves := make(map[int]*curveState)
	for _, j := range jobs {
		if curves[j.Curve] == nil {
			curves[j.Curve] = &curveState{minSat: math.MaxInt, cancels: make(map[int]context.CancelFunc)}
		}
	}

	rr := &RunResult{Jobs: make([]JobResult, len(jobs))}
	for i, j := range jobs {
		rr.Jobs[i].Job = j
	}

	var (
		mu       sync.Mutex // progress counters and failure bookkeeping
		done     int
		canceled int
		failed   int
		started  = time.Now()
	)
	progress := func(idx int, status string, wall time.Duration, out Outcome) {
		if opts.Progress == nil && opts.OnEvent == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if opts.Progress != nil {
			line := fmt.Sprintf("[%d/%d done, %d cancelled, %d failed] %-9s %s",
				done, len(jobs), canceled, failed, status, jobs[idx].Label)
			if status == "ok" || status == "saturated" {
				evs := float64(out.Events) / math.Max(wall.Seconds(), 1e-9)
				line += fmt.Sprintf("  %.2fs wall, %d cycles, %.2f Mev/s",
					wall.Seconds(), out.Cycles, evs/1e6)
			}
			opts.Progress(line)
		}
		if opts.OnEvent != nil {
			opts.OnEvent(Event{
				Label:     jobs[idx].Label,
				Curve:     jobs[idx].Curve,
				Point:     jobs[idx].Point,
				Status:    status,
				Cached:    out.Cached,
				Saturated: out.Saturated,
				WallSecs:  wall.Seconds(),
				SimCycles: out.Cycles,
				Events:    out.Events,
				Done:      done,
				Cancelled: canceled,
				Failed:    failed,
				Total:     len(jobs),
			})
		}
	}

	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				if runCtx.Err() != nil {
					// Run aborted while this index was in flight.
					rr.Jobs[idx].Cancelled = true
					mu.Lock()
					canceled++
					mu.Unlock()
					continue
				}
				j := jobs[idx]
				cs := curves[j.Curve]

				cs.mu.Lock()
				if opts.EarlyStop && j.Point > cs.minSat {
					cs.mu.Unlock()
					rr.Jobs[idx].Cancelled = true
					mu.Lock()
					canceled++
					mu.Unlock()
					progress(idx, "skipped", 0, Outcome{})
					continue
				}
				jctx, jcancel := context.WithCancel(runCtx)
				cs.cancels[j.Point] = jcancel
				cs.mu.Unlock()

				start := time.Now()
				out, err := j.Run(jctx)
				wall := time.Since(start)

				cs.mu.Lock()
				delete(cs.cancels, j.Point)
				cs.mu.Unlock()
				interrupted := jctx.Err() != nil
				jcancel()

				switch {
				case err != nil && interrupted:
					// Aborted by early stop or run shutdown, not a failure.
					rr.Jobs[idx].Cancelled = true
					mu.Lock()
					canceled++
					mu.Unlock()
					progress(idx, "cancelled", wall, Outcome{})
				case err != nil:
					rr.Jobs[idx].Err = err
					mu.Lock()
					failed++
					mu.Unlock()
					cancelRun() // fail fast: abort the rest of the run
					progress(idx, "failed", wall, Outcome{})
				default:
					rr.Jobs[idx].Done = true
					rr.Jobs[idx].Outcome = out
					rr.Jobs[idx].wall = wall
					status := "ok"
					if out.Saturated {
						status = "saturated"
						if opts.EarlyStop {
							cs.mu.Lock()
							if j.Point < cs.minSat {
								cs.minSat = j.Point
								// Cancel doomed speculative points in ascending
								// order: correctness doesn't depend on it (every
								// p > j.Point gets cancelled either way), but a
								// deterministic order keeps cancellation traces
								// reproducible.
								points := make([]int, 0, len(cs.cancels))
								for p := range cs.cancels {
									points = append(points, p)
								}
								sort.Ints(points)
								for _, p := range points {
									if p > j.Point {
										cs.cancels[p]()
									}
								}
							}
							cs.mu.Unlock()
						}
					}
					mu.Lock()
					done++
					mu.Unlock()
					progress(idx, status, wall, out)
				}
			}
		}()
	}
	wg.Wait()

	// Jobs the feeder never handed out (run aborted early).
	for i := range rr.Jobs {
		if !rr.Jobs[i].Done && !rr.Jobs[i].Cancelled && rr.Jobs[i].Err == nil {
			rr.Jobs[i].Cancelled = true
		}
	}

	rr.Manifest = buildManifest(rr, workers, started, time.Since(started))

	// Report the first failure in job order, deterministically.
	for _, jr := range rr.Jobs {
		if jr.Err != nil {
			return rr, fmt.Errorf("harness: job %s: %w", jr.Job.Label, jr.Err)
		}
	}
	if err := ctx.Err(); err != nil {
		return rr, err
	}
	return rr, nil
}

// SortForSpeculation orders jobs for good early-stop behaviour: ascending
// point index first (cheap, likely-unsaturated loads across all curves),
// then curve, so workers establish every curve's saturation frontier
// before burning time on deep-saturated high-load points.
func SortForSpeculation(jobs []Job) {
	sort.SliceStable(jobs, func(a, b int) bool {
		if jobs[a].Point != jobs[b].Point {
			return jobs[a].Point < jobs[b].Point
		}
		return jobs[a].Curve < jobs[b].Curve
	})
}
