package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeJob builds a deterministic synthetic job: value = 100*curve + point,
// saturated iff point >= satAt, optionally sleeping (cancellably) first.
func fakeJob(curve, point, satAt int, sleep time.Duration) Job {
	return Job{
		Curve: curve,
		Point: point,
		Label: fmt.Sprintf("c%d@p%d", curve, point),
		Seed:  uint64(curve),
		Run: func(ctx context.Context) (Outcome, error) {
			if sleep > 0 {
				select {
				case <-time.After(sleep):
				case <-ctx.Done():
					return Outcome{}, ctx.Err()
				}
			}
			return Outcome{
				Saturated: point >= satAt,
				Cycles:    int64(1000 + point),
				Events:    uint64(10 * (point + 1)),
				Value:     100*curve + point,
			}, nil
		},
	}
}

// truncate extracts curve c's points in ascending order, stopping after
// the first saturated one — the same assembly rule the facade applies.
func truncate(rr *RunResult, curve, npoints int) []int {
	byPoint := make(map[int]JobResult)
	for _, jr := range rr.Jobs {
		if jr.Job.Curve == curve {
			byPoint[jr.Job.Point] = jr
		}
	}
	var out []int
	for p := 0; p < npoints; p++ {
		jr, ok := byPoint[p]
		if !ok || !jr.Done {
			break
		}
		out = append(out, jr.Outcome.Value.(int))
		if jr.Outcome.Saturated {
			break
		}
	}
	return out
}

// TestDeterministicAcrossWorkerCounts: the truncated curves are identical
// for every worker count, matching the serial (1-worker) result.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	const curves, points = 3, 6
	satAt := []int{2, 4, 99} // curve 2 never saturates
	mk := func() []Job {
		var jobs []Job
		for c := 0; c < curves; c++ {
			for p := 0; p < points; p++ {
				jobs = append(jobs, fakeJob(c, p, satAt[c], 0))
			}
		}
		SortForSpeculation(jobs)
		return jobs
	}
	var baseline [][]int
	for _, workers := range []int{1, 3, 8} {
		rr, err := Run(context.Background(), mk(), Options{Workers: workers, EarlyStop: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var got [][]int
		for c := 0; c < curves; c++ {
			got = append(got, truncate(rr, c, points))
		}
		if baseline == nil {
			baseline = got
			// Serial shape checks: curve 0 ends at its first saturated
			// point (index 2 → 3 points), curve 2 runs all points.
			if len(got[0]) != 3 || len(got[1]) != 5 || len(got[2]) != points {
				t.Fatalf("serial truncation lengths wrong: %v", got)
			}
			continue
		}
		for c := range got {
			if fmt.Sprint(got[c]) != fmt.Sprint(baseline[c]) {
				t.Errorf("workers=%d curve %d: %v, serial %v", workers, c, got[c], baseline[c])
			}
		}
	}
}

// TestEarlyStopNeverDropsPreSaturationPoints: adversarial timing — the
// saturating point finishes first while lower points are still running —
// must never cancel a point at or below the curve's first saturated index.
func TestEarlyStopNeverDropsPreSaturationPoints(t *testing.T) {
	const points, satAt = 5, 3
	var jobs []Job
	for p := 0; p < points; p++ {
		sleep := 30 * time.Millisecond // slow pre-saturation points
		if p >= satAt {
			sleep = 0 // the saturated point (and beyond) return instantly
		}
		jobs = append(jobs, fakeJob(0, p, satAt, sleep))
	}
	rr, err := Run(context.Background(), jobs, Options{Workers: points, EarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	got := truncate(rr, 0, points)
	if len(got) != satAt+1 {
		t.Fatalf("curve = %v, want all %d points up to and including saturation", got, satAt+1)
	}
	for _, jr := range rr.Jobs {
		if jr.Job.Point <= satAt && !jr.Done {
			t.Errorf("pre-saturation point %d was not run to completion: %+v", jr.Job.Point, jr)
		}
	}
	// Bookkeeping always adds up.
	m := rr.Manifest
	if m.Completed+m.Cancelled+m.Failed != m.NumJobs {
		t.Errorf("manifest counts inconsistent: %+v", m)
	}
}

// TestEarlyStopCancelsRunningSuccessors: a long-running point past the
// saturation index is cancelled mid-flight via its context.
func TestEarlyStopCancelsRunningSuccessors(t *testing.T) {
	jobs := []Job{
		fakeJob(0, 0, 0, 0),              // saturates immediately
		fakeJob(0, 1, 0, 10*time.Second), // must be cancelled, not waited for
		fakeJob(0, 2, 0, 10*time.Second), // likely skipped before starting
	}
	startAt := time.Now()
	rr, err := Run(context.Background(), jobs, Options{Workers: 3, EarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(startAt); wall > 5*time.Second {
		t.Fatalf("run took %v; cancellation did not interrupt successors", wall)
	}
	if !rr.Jobs[0].Done || !rr.Jobs[0].Outcome.Saturated {
		t.Fatalf("saturated point not recorded: %+v", rr.Jobs[0])
	}
	for _, idx := range []int{1, 2} {
		if !rr.Jobs[idx].Cancelled {
			t.Errorf("job %d should be cancelled: %+v", idx, rr.Jobs[idx])
		}
	}
}

// TestJobErrorAbortsRun: one failing job cancels the rest and surfaces
// its error (wrapped with the job label) from Run.
func TestJobErrorAbortsRun(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		fakeJob(0, 0, 99, 0),
		{Curve: 0, Point: 1, Label: "c0@p1", Run: func(context.Context) (Outcome, error) {
			return Outcome{}, boom
		}},
		fakeJob(0, 2, 99, time.Minute),
	}
	rr, err := Run(context.Background(), jobs, Options{Workers: 1, EarlyStop: true})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "c0@p1") {
		t.Errorf("error should carry the job label: %v", err)
	}
	if rr.Manifest.Failed != 1 {
		t.Errorf("manifest failed = %d, want 1", rr.Manifest.Failed)
	}
	if !rr.Jobs[2].Cancelled {
		t.Errorf("job after the failure should be cancelled: %+v", rr.Jobs[2])
	}
}

// TestCallerCancellation: cancelling the run context aborts promptly and
// reports context.Canceled.
func TestCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var startedJobs atomic.Int32
	var jobs []Job
	for p := 0; p < 8; p++ {
		p := p
		jobs = append(jobs, Job{
			Curve: 0, Point: p, Label: fmt.Sprintf("c0@p%d", p),
			Run: func(jctx context.Context) (Outcome, error) {
				startedJobs.Add(1)
				if p == 0 {
					cancel()
				}
				select {
				case <-time.After(10 * time.Second):
					return Outcome{Value: p}, nil
				case <-jctx.Done():
					return Outcome{}, jctx.Err()
				}
			},
		})
	}
	start := time.Now()
	_, err := Run(ctx, jobs, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("caller cancellation did not abort the run promptly")
	}
	if n := startedJobs.Load(); n > 3 {
		t.Errorf("%d jobs started after cancellation", n)
	}
}

// TestManifestAggregates: totals are the sums over completed jobs and the
// records surface per-job wall time and rates.
func TestManifestAggregates(t *testing.T) {
	var jobs []Job
	for p := 0; p < 4; p++ {
		jobs = append(jobs, fakeJob(0, p, 99, time.Millisecond))
	}
	var lines []string
	rr, err := Run(context.Background(), jobs, Options{
		Workers:  2,
		Progress: func(l string) { lines = append(lines, l) },
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rr.Manifest
	if m.Completed != 4 || m.NumJobs != 4 || m.Workers != 2 {
		t.Fatalf("manifest header wrong: %+v", m)
	}
	// Events per fake job: 10*(p+1) → total 100; cycles 1000+p → 4006.
	if m.TotalEvents != 100 || m.TotalSimCycles != 4006 {
		t.Errorf("aggregates = %d events, %d cycles; want 100, 4006", m.TotalEvents, m.TotalSimCycles)
	}
	for _, rec := range m.Jobs {
		if rec.Status != "done" || rec.WallSeconds <= 0 || rec.EventsPerSec <= 0 {
			t.Errorf("job record missing observability fields: %+v", rec)
		}
	}
	if m.WallSeconds <= 0 || m.EventsPerSec <= 0 {
		t.Errorf("run-level observability missing: %+v", m)
	}
	if len(lines) != 4 {
		t.Errorf("progress lines = %d, want 4", len(lines))
	}
	var buf strings.Builder
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"workers": 2`, `"events_per_sec"`, `"wall_seconds"`, `"c0@p3"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("manifest JSON missing %s", want)
		}
	}
}
