package harness

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"time"
)

// JobRecord is the manifest entry for one job: identity, fate, and the
// observability counters sampled when it finished. Speculative points
// cancelled by early stop appear with Status "cancelled" and zero
// counters — they are part of the run's cost story even though their
// measurements are discarded.
type JobRecord struct {
	Label string `json:"label"`
	Curve int    `json:"curve"`
	Point int    `json:"point"`
	Seed  uint64 `json:"seed"`

	Status string `json:"status"` // "done", "cancelled", or "failed"
	Error  string `json:"error,omitempty"`

	// Cached marks a job whose result was not simulated by this job: it
	// was served from the checkpoint store, or shared from a concurrent
	// identical computation in another sweep (Flight dedup). Its counters
	// describe the run that actually produced the result.
	Cached bool `json:"cached,omitempty"`

	Saturated    bool    `json:"saturated,omitempty"`
	WallSeconds  float64 `json:"wall_seconds"`
	SimCycles    int64   `json:"sim_cycles"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Delivered    uint64  `json:"delivered"`
	Dropped      uint64  `json:"dropped,omitempty"`
}

// Manifest is the machine-readable record of one engine run: pool shape,
// wall time, aggregate simulation counters, and one JobRecord per job
// sorted by (curve, point). cmd/hxsweep writes it next to the CSV so a
// result file always has a companion saying how it was produced and what
// it cost.
type Manifest struct {
	Workers     int       `json:"workers"`
	StartedAt   time.Time `json:"started_at"`
	WallSeconds float64   `json:"wall_seconds"`

	NumJobs   int `json:"num_jobs"`
	Completed int `json:"completed"`
	Cancelled int `json:"cancelled"`
	Failed    int `json:"failed"`

	TotalSimCycles int64   `json:"total_sim_cycles"`
	TotalEvents    uint64  `json:"total_events"`
	EventsPerSec   float64 `json:"events_per_sec"` // aggregate across the pool

	// Faults records the injected link failures shared by every job of a
	// faulted sweep ("rA.pA<->rB.pB" per link); empty for pristine runs.
	// TotalDelivered / TotalDropped aggregate the per-job packet fates —
	// the headline "how much survived" numbers of a resilience run.
	Faults         []string `json:"faults,omitempty"`
	TotalDelivered uint64   `json:"total_delivered"`
	TotalDropped   uint64   `json:"total_dropped,omitempty"`

	// Provenance records how the results were produced beyond plain
	// cold-start simulation (warm forking, checkpoint resume); nil means
	// every job was simulated cold in this run. The facade fills it.
	Provenance *Provenance `json:"provenance,omitempty"`

	Jobs []JobRecord `json:"jobs"`
}

// Provenance is the auditability record for sweeps that reuse state:
// which fork methodology produced the numbers, the seed the shared warm
// phase ran under, where the fork point sat, and which checkpoint store
// cached results were served from. See docs/STATE.md for the methodology
// contract behind each mode.
type Provenance struct {
	Mode        string  `json:"mode"`                   // "cold", "pristine-fork", or "warm-fork"
	WarmSeed    uint64  `json:"warm_seed,omitempty"`    // seed of the shared warm phase (fork modes)
	ForkCycles  int     `json:"fork_cycles,omitempty"`  // fork point, cycles into the warm phase
	ForkLoad    float64 `json:"fork_load,omitempty"`    // offered load during the warm phase
	ForkSettle  int     `json:"fork_settle,omitempty"`  // post-fork settle cycles per point
	ResumedFrom string  `json:"resumed_from,omitempty"` // checkpoint directory serving cached jobs
	CachedJobs  int     `json:"cached_jobs,omitempty"`  // jobs served from the store this run
}

func buildManifest(rr *RunResult, workers int, started time.Time, wall time.Duration) *Manifest {
	m := &Manifest{
		Workers:     workers,
		StartedAt:   started.UTC(),
		WallSeconds: wall.Seconds(),
		NumJobs:     len(rr.Jobs),
	}
	for _, jr := range rr.Jobs {
		rec := JobRecord{
			Label: jr.Job.Label,
			Curve: jr.Job.Curve,
			Point: jr.Job.Point,
			Seed:  jr.Job.Seed,
		}
		switch {
		case jr.Done:
			m.Completed++
			rec.Status = "done"
			rec.Cached = jr.Outcome.Cached
			rec.Saturated = jr.Outcome.Saturated
			rec.WallSeconds = jr.wall.Seconds()
			rec.SimCycles = jr.Outcome.Cycles
			rec.Events = jr.Outcome.Events
			rec.EventsPerSec = float64(jr.Outcome.Events) / math.Max(jr.wall.Seconds(), 1e-9)
			rec.Delivered = jr.Outcome.Delivered
			rec.Dropped = jr.Outcome.Dropped
			m.TotalSimCycles += jr.Outcome.Cycles
			m.TotalEvents += jr.Outcome.Events
			m.TotalDelivered += jr.Outcome.Delivered
			m.TotalDropped += jr.Outcome.Dropped
		case jr.Err != nil:
			m.Failed++
			rec.Status = "failed"
			rec.Error = jr.Err.Error()
		default:
			m.Cancelled++
			rec.Status = "cancelled"
		}
		m.Jobs = append(m.Jobs, rec)
	}
	sort.SliceStable(m.Jobs, func(a, b int) bool {
		if m.Jobs[a].Curve != m.Jobs[b].Curve {
			return m.Jobs[a].Curve < m.Jobs[b].Curve
		}
		return m.Jobs[a].Point < m.Jobs[b].Point
	})
	m.EventsPerSec = float64(m.TotalEvents) / math.Max(wall.Seconds(), 1e-9)
	return m
}

// WriteJSON serializes the manifest, indented, to w.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
