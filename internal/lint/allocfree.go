package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// passAllocfree guards the data path's steady-state zero-allocation
// property. The simulator's paper-scale throughput rests on the event
// kernel, router arbitration, and candidate generation never touching the
// heap once warm (see the AllocsPerRun suites in internal/sim,
// internal/core, and internal/network); a single stray make() or a slice
// field that regrows per event silently reintroduces GC pressure that the
// benchmarks only catch after the fact. This pass makes the property
// reviewable at lint time. It flags, inside the allocation-sensitive
// packages:
//
//   - make() in any function that is not a construction function (a name
//     beginning with new/build/init, case-insensitively): steady-state
//     code has no business sizing fresh slices or maps per call.
//   - slice growth written back to longer-lived state,
//     x.f = append(x.f, elems…): when capacity is exceeded this
//     reallocates mid-simulation. The element-removal idiom
//     x.f = append(x.f[:i], x.f[i+1:]…) never grows and is not flagged.
//
// The pass is advisory in character: amortized pool refills (chunked
// free-list restock, calendar buckets growing to their high-water mark)
// are legitimate and expected — each carries an //hxlint:allow allocfree
// directive whose reason documents why the allocation amortizes to zero.
// What the pass prevents is the unreasoned kind.
//
// Test files are exempt: tests and benchmarks allocate freely.
func passAllocfree(p *pkgUnit) []Finding {
	var out []Finding
	report := func(pos token.Pos, msg string) {
		file, line, col := p.position(pos)
		out = append(out, Finding{File: file, Line: line, Col: col, Pass: "allocfree", Msg: msg})
	}
	for _, f := range p.files {
		if strings.HasSuffix(p.relFile(f.Pos()), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || constructionFunc(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isBuiltinCall(p, n, "make") {
						report(n.Pos(), "make in "+fd.Name.Name+", a steady-state path; allocate at build "+
							"time (New*/Build*/init*) or pool it, or annotate //hxlint:allow allocfree — <why this amortizes>")
					}
				case *ast.AssignStmt:
					if dst, ok := fieldAppendGrowth(p, n); ok {
						report(n.Pos(), dst+" = append(...) grows long-lived state and reallocates when capacity "+
							"is exceeded; pre-size the backing slab at build time, or annotate "+
							"//hxlint:allow allocfree — <why this amortizes>")
					}
				}
				return true
			})
		}
	}
	return out
}

// constructionFunc reports whether a function name marks build-time code,
// where allocation is the whole point: New*, Build*, init*, and their
// unexported forms.
func constructionFunc(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "new") || strings.HasPrefix(l, "build") || strings.HasPrefix(l, "init")
}

// isBuiltinCall reports whether call invokes the named builtin (not a
// shadowing declaration).
func isBuiltinCall(p *pkgUnit, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if obj, ok := p.info.Uses[id]; ok {
		_, builtin := obj.(*types.Builtin)
		return builtin
	}
	return true // unresolved (type-error file): assume the builtin
}

// fieldAppendGrowth matches `x.f = append(x.f, elems…)` — growth of slice
// state that outlives the call. It requires the append destination to
// syntactically equal the assignment target, at least one appended
// element, and no ellipsis (the removal idiom append(s[:i], s[i+1:]…)
// shrinks, it never grows).
func fieldAppendGrowth(p *pkgUnit, as *ast.AssignStmt) (dst string, ok bool) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	switch as.Lhs[0].(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return "", false
	}
	call, isCall := as.Rhs[0].(*ast.CallExpr)
	if !isCall || !isBuiltinCall(p, call, "append") || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return "", false
	}
	dst = types.ExprString(as.Lhs[0])
	if types.ExprString(call.Args[0]) != dst {
		return "", false
	}
	return dst, true
}
