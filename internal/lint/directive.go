package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// validPasses are the pass names an allow directive may reference.
// allowaudit is deliberately absent: it audits the directives themselves,
// so suppressing it would be circular.
var validPasses = map[string]bool{
	"nodeterm":   true,
	"seedflow":   true,
	"maporder":   true,
	"noconc":     true,
	"allocfree":  true,
	"stagesafe":  true,
	"statecover": true,
}

// validPassList renders the sorted pass list for the unknown-pass
// diagnostic.
func validPassList() string {
	names := make([]string, 0, len(validPasses))
	for n := range validPasses {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// directiveRec is one valid directive occurrence. used feeds the
// allowaudit pass: a directive that never suppresses a finding (allow) or
// never excuses an uncovered field (state/key) has gone stale.
type directiveRec struct {
	pass string // allow: target pass; state/key: the directive kind
	file string
	line int
	col  int
	used bool
}

// directiveIndex collects every valid hxlint directive in the module:
// allow suppressions (pass -> file -> line) plus the statecover exclusion
// grammars //hxlint:state ephemeral and //hxlint:key excluded
// (file -> line each). An allow directive covers findings on its own line
// (trailing form) and on the line directly below it (standalone form);
// state and key directives cover the field declaration the same way.
type directiveIndex struct {
	allows map[string]map[string]map[int]*directiveRec
	state  map[string]map[int]*directiveRec
	key    map[string]map[int]*directiveRec
}

func newDirectiveIndex() *directiveIndex {
	return &directiveIndex{
		allows: map[string]map[string]map[int]*directiveRec{},
		state:  map[string]map[int]*directiveRec{},
		key:    map[string]map[int]*directiveRec{},
	}
}

func (d *directiveIndex) addAllow(pass, file string, line, col int) {
	if d.allows[pass] == nil {
		d.allows[pass] = map[string]map[int]*directiveRec{}
	}
	if d.allows[pass][file] == nil {
		d.allows[pass][file] = map[int]*directiveRec{}
	}
	d.allows[pass][file][line] = &directiveRec{pass: pass, file: file, line: line, col: col}
}

// useAllow reports whether an allow directive for pass covers a finding
// at (file, line) — the directive's own line or the line directly above
// the finding — marking every matching directive as exercised.
func (d *directiveIndex) useAllow(pass, file string, line int) bool {
	lines := d.allows[pass][file]
	hit := false
	for _, l := range [2]int{line, line - 1} {
		if r := lines[l]; r != nil {
			r.used = true
			hit = true
		}
	}
	return hit
}

func addLineRec(m map[string]map[int]*directiveRec, kind, file string, line, col int) {
	if m[file] == nil {
		m[file] = map[int]*directiveRec{}
	}
	m[file][line] = &directiveRec{pass: kind, file: file, line: line, col: col}
}

func useLineRec(m map[string]map[int]*directiveRec, file string, line int) bool {
	lines := m[file]
	hit := false
	for _, l := range [2]int{line, line - 1} {
		if r := lines[l]; r != nil {
			r.used = true
			hit = true
		}
	}
	return hit
}

// useState reports (and records) whether a //hxlint:state ephemeral
// directive excuses the field declared at (file, line).
func (d *directiveIndex) useState(file string, line int) bool { return useLineRec(d.state, file, line) }

// useKey reports (and records) whether a //hxlint:key excluded directive
// excuses the field declared at (file, line).
func (d *directiveIndex) useKey(file string, line int) bool { return useLineRec(d.key, file, line) }

// auditStale turns every directive that suppressed or excluded nothing
// into an allowaudit finding: a stale directive is worse than none, since
// it reads as a live waiver while the code it excused has moved on.
func (d *directiveIndex) auditStale() []Finding {
	var out []Finding
	emit := func(r *directiveRec, msg string) {
		out = append(out, Finding{File: r.file, Line: r.line, Col: r.col, Pass: "allowaudit", Msg: msg})
	}
	for _, files := range d.allows {
		for _, lines := range files {
			for _, r := range lines {
				if !r.used {
					emit(r, "allow directive for "+r.pass+" suppresses no finding on this or the next line; delete it (or move it to the offending line)")
				}
			}
		}
	}
	for _, lines := range d.state {
		for _, r := range lines {
			if !r.used {
				emit(r, "state directive excludes no uncovered snapshot field; the field below is covered (or gone) — delete the directive")
			}
		}
	}
	for _, lines := range d.key {
		for _, r := range lines {
			if !r.used {
				emit(r, "key directive excludes no un-keyed field; the field below is keyed (or gone) — delete the directive")
			}
		}
	}
	return out
}

// cutDirective splits an hxlint comment into its kind and remainder.
// kind "" with ok=true means an unrecognized hxlint: directive.
func cutDirective(text string) (rest, kind string, ok bool) {
	body, isDirective := strings.CutPrefix(text, "//hxlint:")
	if !isDirective {
		return "", "", false
	}
	for _, k := range [3]string{"allow", "state", "key"} {
		r, hasKind := strings.CutPrefix(body, k)
		if hasKind && (r == "" || r[0] == ' ' || r[0] == '\t') {
			return r, k, true
		}
	}
	return "", "", true
}

// collectDirectives scans every comment of the unit for hxlint
// directives. Valid ones land in the shared index; malformed ones —
// unknown directive kind, unknown pass name, wrong verb, or a missing
// reason — become findings themselves, so a suppression can never
// silently decay into a blanket waiver.
func collectDirectives(p *pkgUnit, d *directiveIndex) []Finding {
	var findings []Finding
	bad := func(file string, line, col int, msg string) {
		findings = append(findings, Finding{File: file, Line: line, Col: col, Pass: "directive", Msg: msg})
	}
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, kind, ok := cutDirective(c.Text)
				if !ok {
					continue
				}
				file, line, col := p.position(c.Pos())
				verb, reason := splitDirective(rest)
				switch kind {
				case "allow":
					switch {
					case !validPasses[verb]:
						bad(file, line, col, "allow directive names unknown pass "+quoteOr(verb, "(none)")+
							"; valid passes: "+validPassList())
					case reason == "":
						bad(file, line, col, "allow directive for "+verb+" is missing its reason; write //hxlint:allow "+
							verb+" — <why this is safe>")
					default:
						d.addAllow(verb, file, line, col)
					}
				case "state":
					switch {
					case verb != "ephemeral":
						bad(file, line, col, "state directive has verb "+quoteOr(verb, "(none)")+
							"; write //hxlint:state ephemeral — <why the field needs no snapshot coverage>")
					case reason == "":
						bad(file, line, col, "state directive is missing its reason; write //hxlint:state ephemeral — <why the field needs no snapshot coverage>")
					default:
						addLineRec(d.state, "state", file, line, col)
					}
				case "key":
					switch {
					case verb != "excluded":
						bad(file, line, col, "key directive has verb "+quoteOr(verb, "(none)")+
							"; write //hxlint:key excluded — <why the field may be absent from the checkpoint key>")
					case reason == "":
						bad(file, line, col, "key directive is missing its reason; write //hxlint:key excluded — <why the field may be absent from the checkpoint key>")
					default:
						addLineRec(d.key, "key", file, line, col)
					}
				default:
					bad(file, line, col, "unknown hxlint directive; expected hxlint:allow, hxlint:state, or hxlint:key")
				}
			}
		}
	}
	return findings
}

// splitDirective parses the text after the directive kind into a verb
// (for allow: the pass name) and a reason. The reason is separated by an
// em-dash or a double hyphen.
func splitDirective(text string) (verb, reason string) {
	text = strings.TrimSpace(text)
	for _, sep := range []string{"—", "--"} {
		if before, after, ok := strings.Cut(text, sep); ok {
			return strings.TrimSpace(before), strings.TrimSpace(after)
		}
	}
	return text, ""
}

func quoteOr(s, empty string) string {
	if s == "" {
		return empty
	}
	return `"` + s + `"`
}

// fileIsTest reports whether the file holding the node is a _test.go file.
func fileIsTest(p *pkgUnit, n ast.Node) bool {
	return strings.HasSuffix(p.relFile(n.Pos()), "_test.go")
}
