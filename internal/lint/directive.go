package lint

import (
	"go/ast"
	"strings"
)

// validPasses are the pass names an allow directive may reference.
var validPasses = map[string]bool{
	"nodeterm":  true,
	"seedflow":  true,
	"maporder":  true,
	"noconc":    true,
	"allocfree": true,
}

// allowIndex records, per pass, the lines carrying a valid allow
// directive. A directive suppresses findings of its pass on its own line
// (trailing form) and on the line immediately below it (standalone form).
type allowIndex map[string]map[string]map[int]bool // pass -> file -> line

func (a allowIndex) add(pass, file string, line int) {
	if a[pass] == nil {
		a[pass] = map[string]map[int]bool{}
	}
	if a[pass][file] == nil {
		a[pass][file] = map[int]bool{}
	}
	a[pass][file][line] = true
}

func (a allowIndex) covers(pass, file string, line int) bool {
	lines := a[pass][file]
	return lines[line] || lines[line-1]
}

// collectDirectives scans every comment of the unit for hxlint:allow
// directives. Valid ones land in the returned index; malformed ones —
// unknown pass name or a missing reason — become findings themselves, so
// a suppression can never silently decay into a blanket waiver.
func collectDirectives(p *pkgUnit) (allowIndex, []Finding) {
	allowed := allowIndex{}
	var findings []Finding
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//hxlint:allow")
				if !ok {
					continue
				}
				file, line, col := p.position(c.Pos())
				pass, reason := splitDirective(text)
				switch {
				case !validPasses[pass]:
					findings = append(findings, Finding{
						File: file, Line: line, Col: col, Pass: "directive",
						Msg: "allow directive names unknown pass " + quoteOr(pass, "(none)") +
							"; valid passes: allocfree, maporder, nodeterm, noconc, seedflow",
					})
				case reason == "":
					findings = append(findings, Finding{
						File: file, Line: line, Col: col, Pass: "directive",
						Msg: "allow directive for " + pass + " is missing its reason; write //hxlint:allow " +
							pass + " — <why this is safe>",
					})
				default:
					allowed.add(pass, file, line)
				}
			}
		}
	}
	return allowed, findings
}

// splitDirective parses the text after "//hxlint:allow" into a pass name
// and a reason. The reason is separated by an em-dash or a double hyphen.
func splitDirective(text string) (pass, reason string) {
	text = strings.TrimSpace(text)
	for _, sep := range []string{"—", "--"} {
		if before, after, ok := strings.Cut(text, sep); ok {
			return strings.TrimSpace(before), strings.TrimSpace(after)
		}
	}
	return text, ""
}

func quoteOr(s, empty string) string {
	if s == "" {
		return empty
	}
	return `"` + s + `"`
}

// fileIsTest reports whether the file holding the node is a _test.go file.
func fileIsTest(p *pkgUnit, n ast.Node) bool {
	return strings.HasSuffix(p.relFile(n.Pos()), "_test.go")
}
