// Package lint is hxlint's engine: a stdlib-only static analyzer (go/ast,
// go/parser, go/token, go/types — no external modules) that enforces the
// simulator tree's determinism contract. Every headline result of this
// reproduction — the SC '19 load/latency curves, the -j 1 vs -j 8 sweep
// equality, the fault-injection delivery guarantees — rests on simulations
// being bit-identical for a fixed seed, and that property is only as
// strong as the absence of nondeterminism leaks. The passes here turn the
// conventions documented in internal/rng, internal/sim, and docs/STATE.md
// into mechanical checks that run at `make ci` time:
//
//   - nodeterm: no wall-clock (time.Now / time.Since / time.Sleep / …) and
//     no global math/rand calls inside the simulation packages. Wall-clock
//     belongs to internal/harness and cmd/, where it measures the run
//     rather than participating in it.
//   - seedflow: component RNGs are constructed through internal/rng, and
//     seeds are derived with rng.DeriveSeed rather than ad-hoc arithmetic
//     (seed+i, seed^i, …) that invites stream collisions. math/rand
//     construction (rand.New(rand.NewSource(…))) is flagged outright.
//   - maporder: no `for … range` over map-typed expressions in simulation
//     packages or in the CSV/manifest emission path — Go randomizes map
//     iteration order per process, so any map-order-dependent computation
//     or output breaks run-to-run reproducibility. Iterate sorted keys
//     instead (the key-gathering loop that feeds sort is recognized and
//     exempt), or annotate with an explicit allow directive.
//   - noconc: no `go` statements, channel operations, channel types, or
//     sync/sync-atomic primitives inside the single-threaded event-kernel
//     packages. Concurrency is the harness's job; inside a simulation
//     instance it would make event interleaving scheduler-dependent.
//   - allocfree: no make() outside construction functions (New*/Build*/
//     init*) and no `x.f = append(x.f, …)` slice-state growth inside the
//     per-event data-path packages (internal/sim, internal/network,
//     internal/core, internal/routing, internal/route). The steady-state
//     zero-allocation property those packages' AllocsPerRun suites assert
//     is easy to erode one innocent allocation at a time; this pass makes
//     every such site an explicit, reasoned decision. Amortized pool
//     refills stay, annotated with an allow directive.
//   - stagesafe (interprocedural): builds a call graph rooted at the
//     event-execution entry points — every Act/Execute method in the
//     determinism scope — and flags any reachable mutation of globally
//     visible state (counter writes on multi-shard actors, kernel
//     schedules, observer invocations) that is neither routed through the
//     ShardState staging API (stageFx/StageCount/StageBirth/sim.Stage)
//     nor guarded by the serial branch of the `sharded` idiom. It is the
//     static complement to the golden-trace shards-vs-serial equivalence
//     tests: a missed staging site fails the build before it ever runs.
//   - statecover (interprocedural): field-coverage analysis of the state
//     contracts in docs/STATE.md. Every field of a struct owning a
//     Snapshot/Restore method pair must be referenced on both the capture
//     and the restore path (same-package helpers are followed
//     transitively), and every field of a Config/RunOpts struct with a
//     configKey/optsKey partner must appear in that key function —
//     otherwise the field must carry a reasoned //hxlint:state or
//     //hxlint:key exclusion directive.
//   - allowaudit: flags stale directives — an allow that suppresses no
//     finding, or a state/key exclusion whose field is in fact covered.
//     Rot makes real suppressions invisible; a stale waiver fails the
//     build like any other finding.
//
// # Directives
//
// A finding can be suppressed — with a mandatory, human-readable reason —
// by a directive on the offending line or on the line directly above it:
//
//	//hxlint:allow maporder — emission order is re-sorted by the caller
//
// statecover has two dedicated exclusion grammars, placed on (or directly
// above) the field declaration they excuse:
//
//	//hxlint:state ephemeral — <why the field needs no snapshot coverage>
//	//hxlint:key excluded — <why the field may be absent from the key>
//
// The separator may be an em-dash ("—") or a double hyphen ("--"). A
// directive without a reason (or with an unknown kind, pass, or verb) is
// itself reported as a finding and suppresses nothing, and a directive
// that suppresses nothing is reported stale by allowaudit.
//
// # Scope
//
// The determinism scope (nodeterm, seedflow, noconc, stagesafe) is the
// simulation package set: internal/sim, internal/network, internal/core,
// internal/routing, internal/route, internal/traffic, internal/topology,
// internal/stats, plus internal/app (single-threaded workload code driven
// by the same kernel), internal/shard, and internal/serve. internal/shard
// and internal/serve are the two reasoned exceptions to noconc (see
// noconcExempt): the sharded executor exists to run one instance on
// several cores, and the sweep service's job queue and executor pool
// dispatch whole simulations concurrently from the harness side —
// goroutines and sync primitives are their point. Their determinism is
// enforced by the golden-trace shards-vs-serial equivalence tests and
// the httptest/stampede suite under -race instead, and nodeterm,
// seedflow, and maporder still apply to both. The maporder pass additionally
// covers the output path: the module root package, internal/harness
// (manifest emission), and every cmd/ binary. statecover runs over every
// loaded package (the checkpoint-key contract lives in the root package).
// seedflow, stagesafe, and statecover skip _test.go files — tests may
// build ad-hoc fixture seeds and mutate state directly — while nodeterm,
// maporder, and noconc apply to tests too: map-ordered subtest scheduling
// and output is exactly the kind of flake this suite exists to prevent.
//
// # Limitations
//
// Type resolution is per-package with imports resolved from source, so
// map detection is exact for anything declared in the module or the
// standard library. Files that fail to parse abort the run; files with
// type errors are analyzed on a best-effort basis (an expression whose
// type cannot be resolved is never flagged by maporder). stagesafe does
// not devirtualize interface calls and treats element writes into slice
// and map fields as shard-partitioned (the golden-trace suite covers
// those); statecover checks field references syntactically per named
// struct, not aliasing through copies.
package lint

import (
	"fmt"
	"sort"
)

// Finding is one diagnostic: a determinism-contract violation (or a
// malformed directive) at a specific line.
type Finding struct {
	File string `json:"file"` // path relative to the linted module root
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Pass string `json:"pass"` // pass name, "directive", or "allowaudit"
	Msg  string `json:"msg"`
	// Suppressed marks a finding waived by a valid allow directive. Run
	// drops suppressed findings; RunAll keeps them, flagged, so tooling
	// (hxlint -json) can expose the waiver trail.
	Suppressed bool `json:"suppressed"`
}

// String renders the finding in the canonical "file:line: [pass] message"
// form that cmd/hxlint prints and the golden tests assert.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Pass, f.Msg)
}

// Run lints the Go module rooted at root and returns the live findings
// sorted by (file, line, column, pass). A nil, nil return means the tree
// is clean. Run fails with an error only for structural problems —
// missing go.mod, unparsable source — never for findings.
func Run(root string) ([]Finding, error) {
	all, err := RunAll(root)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out, nil
}

// RunAll lints like Run but also returns suppressed findings, each
// carrying Suppressed=true, so consumers can audit what the allow
// directives are waiving.
func RunAll(root string) ([]Finding, error) {
	pkgs, err := load(root)
	if err != nil {
		return nil, err
	}
	dirs := newDirectiveIndex()
	var out []Finding
	for _, p := range pkgs {
		out = append(out, collectDirectives(p, dirs)...)
		out = append(out, lintUnit(p)...)
	}
	out = append(out, passStagesafe(pkgs)...)
	out = append(out, passStatecover(pkgs, dirs)...)
	for i := range out {
		f := &out[i]
		if f.Pass != "directive" && dirs.useAllow(f.Pass, f.File, f.Line) {
			f.Suppressed = true
		}
	}
	out = append(out, dirs.auditStale()...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Pass < out[j].Pass
	})
	return out, nil
}

// lintUnit runs every per-package pass that applies to the unit's scope.
// Suppression and the module-wide passes are Run's job.
func lintUnit(p *pkgUnit) []Finding {
	var raw []Finding
	if p.scope.determinism {
		raw = append(raw, passNodeterm(p)...)
		raw = append(raw, passSeedflow(p)...)
		if !noconcExempt[p.rel] {
			raw = append(raw, passNoconc(p)...)
		}
	}
	if p.scope.determinism || p.scope.emitter {
		raw = append(raw, passMaporder(p)...)
	}
	if p.scope.allocpath {
		raw = append(raw, passAllocfree(p)...)
	}
	return raw
}
