// Package lint is hxlint's engine: a stdlib-only static analyzer (go/ast,
// go/parser, go/token, go/types — no external modules) that enforces the
// simulator tree's determinism contract. Every headline result of this
// reproduction — the SC '19 load/latency curves, the -j 1 vs -j 8 sweep
// equality, the fault-injection delivery guarantees — rests on simulations
// being bit-identical for a fixed seed, and that property is only as
// strong as the absence of nondeterminism leaks. The passes here turn the
// conventions documented in internal/rng and internal/sim into mechanical
// checks that run at `make ci` time:
//
//   - nodeterm: no wall-clock (time.Now / time.Since / time.Sleep / …) and
//     no global math/rand calls inside the simulation packages. Wall-clock
//     belongs to internal/harness and cmd/, where it measures the run
//     rather than participating in it.
//   - seedflow: component RNGs are constructed through internal/rng, and
//     seeds are derived with rng.DeriveSeed rather than ad-hoc arithmetic
//     (seed+i, seed^i, …) that invites stream collisions. math/rand
//     construction (rand.New(rand.NewSource(…))) is flagged outright.
//   - maporder: no `for … range` over map-typed expressions in simulation
//     packages or in the CSV/manifest emission path — Go randomizes map
//     iteration order per process, so any map-order-dependent computation
//     or output breaks run-to-run reproducibility. Iterate sorted keys
//     instead (the key-gathering loop that feeds sort is recognized and
//     exempt), or annotate with an explicit allow directive.
//   - noconc: no `go` statements, channel operations, channel types, or
//     sync/sync-atomic primitives inside the single-threaded event-kernel
//     packages. Concurrency is the harness's job; inside a simulation
//     instance it would make event interleaving scheduler-dependent.
//   - allocfree: no make() outside construction functions (New*/Build*/
//     init*) and no `x.f = append(x.f, …)` slice-state growth inside the
//     per-event data-path packages (internal/sim, internal/network,
//     internal/core, internal/routing, internal/route). The steady-state
//     zero-allocation property those packages' AllocsPerRun suites assert
//     is easy to erode one innocent allocation at a time; this pass makes
//     every such site an explicit, reasoned decision. Amortized pool
//     refills stay, annotated with an allow directive.
//
// # Allow directives
//
// A finding can be suppressed — with a mandatory, human-readable reason —
// by a directive on the offending line or on the line directly above it:
//
//	//hxlint:allow maporder — emission order is re-sorted by the caller
//
// The separator may be an em-dash ("—") or a double hyphen ("--"). A
// directive without a reason is itself reported as a finding, and an
// invalid directive suppresses nothing.
//
// # Scope
//
// The determinism scope (nodeterm, seedflow, noconc) is the simulation
// package set: internal/sim, internal/network, internal/core,
// internal/routing, internal/route, internal/traffic, internal/topology,
// internal/stats, plus internal/app (single-threaded workload code driven
// by the same kernel) and internal/shard. internal/shard is the one
// reasoned exception to noconc (see noconcExempt): the sharded executor
// exists to run one instance on several cores, so goroutines and sync
// primitives are its point — its determinism is enforced by the
// golden-trace shards-vs-serial equivalence tests instead, and nodeterm,
// seedflow, and maporder still apply there. The maporder pass additionally
// covers the output path: the module root package, internal/harness
// (manifest emission), and every cmd/ binary. seedflow skips _test.go
// files — tests may build ad-hoc fixture seeds — while nodeterm, maporder,
// and noconc apply to tests too: map-ordered subtest scheduling and output
// is exactly the kind of flake this suite exists to prevent.
//
// # Limitations
//
// Type resolution is per-package with imports resolved from source, so
// map detection is exact for anything declared in the module or the
// standard library. Files that fail to parse abort the run; files with
// type errors are analyzed on a best-effort basis (an expression whose
// type cannot be resolved is never flagged by maporder).
package lint

import (
	"fmt"
	"sort"
)

// Finding is one diagnostic: a determinism-contract violation (or a
// malformed allow directive) at a specific line.
type Finding struct {
	File string // path relative to the linted module root
	Line int
	Col  int
	Pass string // "nodeterm", "seedflow", "maporder", "noconc", "allocfree", or "directive"
	Msg  string
}

// String renders the finding in the canonical "file:line: [pass] message"
// form that cmd/hxlint prints and the golden tests assert.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Pass, f.Msg)
}

// Run lints the Go module rooted at root and returns all findings sorted
// by (file, line, column, pass). A nil, nil return means the tree is
// clean. Run fails with an error only for structural problems — missing
// go.mod, unparsable source — never for findings.
func Run(root string) ([]Finding, error) {
	pkgs, err := load(root)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, p := range pkgs {
		out = append(out, lintPackage(p)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Pass < out[j].Pass
	})
	return out, nil
}

// lintPackage runs every pass that applies to the package's scope and
// filters the results through the file's allow directives.
func lintPackage(p *pkgUnit) []Finding {
	var raw []Finding
	allowed, dirFindings := collectDirectives(p)
	raw = append(raw, dirFindings...)
	if p.scope.determinism {
		raw = append(raw, passNodeterm(p)...)
		raw = append(raw, passSeedflow(p)...)
		if !noconcExempt[p.rel] {
			raw = append(raw, passNoconc(p)...)
		}
	}
	if p.scope.determinism || p.scope.emitter {
		raw = append(raw, passMaporder(p)...)
	}
	if p.scope.allocpath {
		raw = append(raw, passAllocfree(p)...)
	}
	out := raw[:0]
	for _, f := range raw {
		if f.Pass != "directive" && allowed.covers(f.Pass, f.File, f.Line) {
			continue
		}
		out = append(out, f)
	}
	return out
}
