package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/expect.txt from the current fixture findings")

// TestFixtureGolden runs the full suite over the seeded-violation fixture
// module and compares every finding — pass, position, message — against
// the golden file. This is the diagnostics contract: one line per
// finding, "file:line: [pass] message", covering all four passes, both
// exempt maporder idioms, a valid allow directive, a directive without a
// reason, and a directive naming an unknown pass.
func TestFixtureGolden(t *testing.T) {
	findings, err := Run(filepath.Join("testdata", "repo"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range findings {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	got := b.String()

	golden := filepath.Join("testdata", "expect.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("fixture findings diverge from %s (re-run with -update after intentional changes)\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestFixtureFindsEveryPass guards the golden file itself: if expect.txt
// ever decays to the point where some pass has no seeded violation, the
// golden test would still pass while proving nothing about that pass.
func TestFixtureFindsEveryPass(t *testing.T) {
	findings, err := Run(filepath.Join("testdata", "repo"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, f := range findings {
		seen[f.Pass]++
	}
	for _, pass := range []string{"nodeterm", "seedflow", "maporder", "noconc", "allocfree", "stagesafe", "statecover", "allowaudit", "directive"} {
		if seen[pass] == 0 {
			t.Errorf("fixture tree has no %s finding; the pass is untested", pass)
		}
	}
	if seen["directive"] < 2 {
		t.Errorf("want both malformed-directive cases (missing reason, unknown pass), got %d directive findings", seen["directive"])
	}
}

// TestDirectiveSuppression asserts the allow-directive mechanics on the
// fixture: the annotated select in conc.go and the annotated emission
// loop in emit.go must not be reported, while the reason-less directive's
// loop must be.
func TestDirectiveSuppression(t *testing.T) {
	findings, err := Run(filepath.Join("testdata", "repo"))
	if err != nil {
		t.Fatal(err)
	}
	lines := map[string]bool{}
	for _, f := range findings {
		lines[f.String()] = true
	}
	for l := range lines {
		// conc.go's only select is the annotated one; emit.go:44 is the
		// annotated emission loop.
		if strings.Contains(l, "conc.go") && strings.Contains(l, "select statement") {
			t.Errorf("allow directive failed to suppress: %s", l)
		}
		if strings.HasPrefix(l, "internal/stats/emit.go:44: [maporder]") {
			t.Errorf("allow directive failed to suppress: %s", l)
		}
	}
	var badDirectiveLoop bool
	for l := range lines {
		if strings.Contains(l, "emit.go:52: [maporder]") {
			badDirectiveLoop = true
		}
	}
	if !badDirectiveLoop {
		t.Error("reason-less directive suppressed its finding; it must not")
	}
}

// TestStagesafeGuards pins the guard semantics on the fixture: exactly
// the five parallel-path mutations in net.go are reported — four on the
// Act path plus one reachable from the Record root (the sim.Recorder
// entry point Stage.RunWindow dispatches into) — while the serial
// branches, the early-return schedule wrapper, the ShardState nil-check,
// and the coordinator-only merge (unreachable from any root) are exempt,
// without net.go appearing in any exemption list.
func TestStagesafeGuards(t *testing.T) {
	findings, err := Run(filepath.Join("testdata", "repo"))
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for _, f := range findings {
		if f.Pass == "stagesafe" && f.File == "internal/network/net.go" {
			got = append(got, f.Line)
		}
	}
	want := []int{34, 37, 52, 57, 80}
	if len(got) != len(want) {
		t.Fatalf("stagesafe lines in net.go = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stagesafe lines in net.go = %v, want %v", got, want)
		}
	}
}

// TestRunAllMarksSuppressed asserts the waiver trail RunAll exposes for
// hxlint -json: findings waived by a valid allow directive are returned
// with Suppressed=true and are absent from Run's live set.
func TestRunAllMarksSuppressed(t *testing.T) {
	all, err := RunAll(filepath.Join("testdata", "repo"))
	if err != nil {
		t.Fatal(err)
	}
	suppressed := map[string]bool{}
	for _, f := range all {
		if f.Suppressed {
			suppressed[f.String()] = true
		}
	}
	var haveEmit, haveSelect bool
	for l := range suppressed {
		if strings.HasPrefix(l, "internal/stats/emit.go:43: [maporder]") {
			haveEmit = true
		}
		if strings.Contains(l, "conc.go") && strings.Contains(l, "select statement") {
			haveSelect = true
		}
	}
	if !haveEmit || !haveSelect {
		t.Errorf("RunAll should surface the annotated emit.go:44 loop and conc.go select as suppressed; got %v", suppressed)
	}
	live, err := Run(filepath.Join("testdata", "repo"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range live {
		if f.Suppressed || suppressed[f.String()] {
			t.Errorf("suppressed finding leaked into Run: %s", f)
		}
	}
}

// TestSelfCheck lints the real repository: the tree this test ships in
// must be clean, so `make lint` (and `make ci`) stay green and every
// surviving irregularity is an annotated, reasoned exception. A failure
// here means a determinism-contract violation was introduced somewhere in
// the simulation packages or the output path.
func TestSelfCheck(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}
