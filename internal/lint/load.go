package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// scopeSet says which pass families apply to a package.
type scopeSet struct {
	determinism bool // nodeterm, seedflow, noconc (+ maporder)
	emitter     bool // maporder only: CSV/manifest emission path
	allocpath   bool // allocfree: steady-state zero-allocation data path
}

// allocPackages is the allocfree scope: the packages on the per-event data
// path — kernel, router pipeline, candidate generation — whose steady
// state must not allocate (see the AllocsPerRun suites they carry).
var allocPackages = map[string]bool{
	"internal/sim":     true,
	"internal/network": true,
	"internal/core":    true,
	"internal/routing": true,
	"internal/route":   true,
}

// simPackages is the determinism scope, as module-relative import paths.
// These packages run inside a simulation instance: single-threaded,
// seed-driven, and forbidden from touching wall-clock or global RNG state.
var simPackages = map[string]bool{
	"internal/sim":      true,
	"internal/network":  true,
	"internal/core":     true,
	"internal/routing":  true,
	"internal/route":    true,
	"internal/traffic":  true,
	"internal/topology": true,
	"internal/stats":    true,
	"internal/app":      true,
	"internal/shard":    true,
	"internal/serve":    true,
}

// noconcExempt carves packages out of the noconc pass while keeping the
// rest of the determinism scope (nodeterm, seedflow, maporder) in force.
// internal/shard is the barrier-synchronized sharded executor, whose
// entire purpose is in-instance concurrency. Its determinism rests on a
// replay contract — staged effects merge in global (router, seq) order
// at every cycle boundary — proven by the golden-trace equivalence
// suite (shards N byte-identical to shards 1) and the -race CI target,
// not by the absence of goroutines. internal/serve is the sweep
// service's job queue and executor pool: its goroutines and channels
// live on the harness side of the in-instance/no-concurrency line
// (they dispatch whole simulations, never run inside one), and its
// correctness is pinned by the httptest + stampede suite under -race.
// Wall-clock and global-RNG bans still apply to both in full — serve
// routes timestamps through an injectable clock for exactly this
// reason.
var noconcExempt = map[string]bool{
	"internal/shard": true,
	"internal/serve": true,
}

// scopeFor classifies a module-relative package path ("" is the root
// package). The emitter scope is everything that writes CSV or manifest
// output: the facade (root package), the harness (manifest), and the
// cmd binaries.
func scopeFor(rel string) scopeSet {
	var s scopeSet
	if simPackages[rel] {
		s.determinism = true
	}
	if allocPackages[rel] {
		s.allocpath = true
	}
	if rel == "" || rel == "internal/harness" || rel == "cmd" || strings.HasPrefix(rel, "cmd/") {
		s.emitter = true
	}
	return s
}

// pkgUnit is one type-checked compilation unit: either a package together
// with its in-package tests, or an external _test package.
type pkgUnit struct {
	importPath string
	rel        string // module-relative dir, "" for root
	module     string // module path, for mapping import paths back to rels
	scope      scopeSet
	fset       *token.FileSet
	files      []*ast.File
	names      map[string]string // absolute filename -> root-relative path
	info       *types.Info
	rngPath    string // import path of the module's rng package
}

// relFile returns the module-root-relative path of the file containing pos.
func (p *pkgUnit) relFile(pos token.Pos) string {
	name := p.fset.Position(pos).Filename
	if rel, ok := p.names[name]; ok {
		return rel
	}
	return name
}

// position returns (root-relative file, line, col) for pos.
func (p *pkgUnit) position(pos token.Pos) (string, int, int) {
	ps := p.fset.Position(pos)
	return p.relFile(pos), ps.Line, ps.Column
}

// load walks the module at root and type-checks every in-scope package,
// including its test files. Out-of-scope packages are only loaded on
// demand, as dependencies, via the module importer.
//
// In-scope directories are processed in dependency order (a cheap
// imports-only pre-parse builds the module-internal import graph), and
// each type-checked package is registered with the importer, so the
// module is type-checked once per run: a package already checked as a
// unit is never re-checked from source when a later unit imports it.
func load(root string) ([]*pkgUnit, error) {
	module, err := moduleName(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	im := newModuleImporter(root, module, fset)

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	type dirEntry struct {
		dir, rel string
		scope    scopeSet
	}
	var entries []dirEntry
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		scope := scopeFor(rel)
		if !scope.determinism && !scope.emitter {
			continue
		}
		entries = append(entries, dirEntry{dir: dir, rel: rel, scope: scope})
	}

	dirOf := map[string]string{}
	byRel := map[string]dirEntry{}
	for _, e := range entries {
		dirOf[e.rel] = e.dir
		byRel[e.rel] = e
	}
	order, err := dependencyOrder(module, dirOf)
	if err != nil {
		return nil, err
	}

	var out []*pkgUnit
	for _, rel := range order {
		e := byRel[rel]
		units, err := loadDir(root, e.dir, e.rel, module, e.scope, fset, im)
		if err != nil {
			return nil, err
		}
		out = append(out, units...)
	}
	return out, nil
}

// dependencyOrder topologically sorts the in-scope directories by their
// module-internal imports (imports-only parse, so it is cheap), with
// lexicographic tie-breaking for a deterministic order. Leaves come
// first, so by the time a unit is type-checked its module dependencies
// are already registered with the importer. Cycles — possible through
// test-file imports — fall back to lexicographic order for the remainder;
// those packages are merely re-checked by the importer as before.
func dependencyOrder(module string, dirOf map[string]string) ([]string, error) {
	deps := map[string]map[string]bool{}
	rels := make([]string, 0, len(dirOf))
	var firstErr error
	for rel := range dirOf {
		rels = append(rels, rel)
		deps[rel] = map[string]bool{}
	}
	sort.Strings(rels)
	for _, rel := range rels {
		files, err := os.ReadDir(dirOf[rel])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, e := range files {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dirOf[rel], e.Name()), nil, parser.ImportsOnly)
			if err != nil {
				continue // the full parse in loadDir reports this properly
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				var depRel string
				if path == module {
					depRel = ""
				} else if rest, ok := strings.CutPrefix(path, module+"/"); ok {
					depRel = rest
				} else {
					continue
				}
				if _, inScope := deps[depRel]; inScope && depRel != rel {
					deps[rel][depRel] = true
				}
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	var order []string
	done := map[string]bool{}
	for len(order) < len(rels) {
		progressed := false
		for _, rel := range rels {
			if done[rel] {
				continue
			}
			ready := true
			for dep := range deps[rel] {
				if !done[dep] {
					ready = false
					break
				}
			}
			if ready {
				order = append(order, rel)
				done[rel] = true
				progressed = true
			}
		}
		if !progressed { // import cycle: append the rest lexicographically
			for _, rel := range rels {
				if !done[rel] {
					order = append(order, rel)
					done[rel] = true
				}
			}
		}
	}
	return order, nil
}

// loadDir parses every .go file of dir and type-checks it as up to two
// units: the package proper (with in-package tests) and, when present,
// the external _test package.
func loadDir(root, dir, rel, module string, scope scopeSet, fset *token.FileSet, im *moduleImporter) ([]*pkgUnit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byPkg := map[string][]*ast.File{}
	names := map[string]string{}
	relOf := map[*ast.File]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
		relName, err := filepath.Rel(root, path)
		if err != nil {
			return nil, err
		}
		names[path] = filepath.ToSlash(relName)
		relOf[f] = filepath.ToSlash(relName)
	}

	importPath := module
	if rel != "" {
		importPath = module + "/" + rel
	}
	var pkgNames []string
	for name := range byPkg { // deterministic unit order for stable output
		pkgNames = append(pkgNames, name)
	}
	sort.Strings(pkgNames)

	var out []*pkgUnit
	for _, name := range pkgNames {
		files := byPkg[name]
		sort.Slice(files, func(i, j int) bool { return relOf[files[i]] < relOf[files[j]] })
		ipath := importPath
		if strings.HasSuffix(name, "_test") {
			ipath += "_test"
		}
		u := &pkgUnit{
			importPath: importPath,
			rel:        rel,
			module:     module,
			scope:      scope,
			fset:       fset,
			files:      files,
			names:      names,
			rngPath:    module + "/internal/rng",
			info: &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Uses:       map[*ast.Ident]types.Object{},
				Defs:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
			},
		}
		// Best-effort check: the Error hook makes the checker push past
		// type errors, leaving unresolvable expressions untyped rather
		// than aborting the lint run.
		conf := types.Config{Importer: im, Error: func(error) {}}
		pkg, _ := conf.Check(ipath, fset, files, u.info)
		if !strings.HasSuffix(name, "_test") && pkg != nil {
			// Register the unit so later units importing this package reuse
			// it instead of re-checking from source. The unit includes
			// in-package test files; importers see strictly more symbols,
			// which is harmless for best-effort resolution.
			im.adopt(ipath, pkg)
		}
		out = append(out, u)
	}
	return out, nil
}

// moduleName reads the module path from root/go.mod.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if name := strings.TrimSpace(rest); name != "" {
				return strings.Trim(name, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// moduleImporter resolves imports for the type checker: module-internal
// packages are type-checked from source inside the linted tree (test
// files excluded, as for a real build), everything else — in practice the
// standard library, since the simulator has no external dependencies —
// comes from the source importer over GOROOT.
type moduleImporter struct {
	root    string
	module  string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*types.Package
	loading map[string]bool
}

func newModuleImporter(root, module string, fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		root:    root,
		module:  module,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// adopt registers an already-checked package under its import path, so
// subsequent imports hit the cache instead of re-type-checking from
// source. First registration wins.
func (im *moduleImporter) adopt(path string, pkg *types.Package) {
	if _, ok := im.pkgs[path]; !ok {
		im.pkgs[path] = pkg
	}
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	if path != im.module && !strings.HasPrefix(path, im.module+"/") {
		p, err := im.std.Import(path)
		if err != nil {
			return nil, err
		}
		im.pkgs[path] = p
		return p, nil
	}
	if im.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	im.loading[path] = true
	defer delete(im.loading, path)

	dir := im.root
	if rel := strings.TrimPrefix(path, im.module); rel != "" {
		dir = filepath.Join(im.root, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: cannot import %s: %w", path, err)
	}
	var files []*ast.File
	var fnames []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		fnames = append(fnames, filepath.Join(dir, n))
	}
	sort.Strings(fnames)
	for _, fn := range fnames {
		f, err := parser.ParseFile(im.fset, fn, nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files for %s in %s", path, dir)
	}
	conf := types.Config{Importer: im, Error: func(error) {}}
	pkg, _ := conf.Check(path, im.fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s failed", path)
	}
	im.pkgs[path] = pkg
	return pkg, nil
}
