package lint

import (
	"go/ast"
	"go/types"
)

// passMaporder flags `for … range` over map-typed expressions. Go
// deliberately randomizes map iteration order per execution, so any
// computation, CSV row order, manifest field, or subtest schedule that
// ranges a map directly differs run to run — the exact nondeterminism the
// j=1 vs j=8 bit-identity guarantee cannot tolerate. The fix is to
// iterate sorted keys; the key-gathering loop that feeds sort (a body
// that only appends the key to a slice) is order-insensitive and exempt,
// as is a bodyless `for range m` counting loop that never binds key or
// value.
func passMaporder(p *pkgUnit) []Finding {
	var out []Finding
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rs.Key == nil && rs.Value == nil {
				return true // order-free: no binding, pure repetition
			}
			if isKeyGathering(rs) {
				return true
			}
			file, line, col := p.position(rs.Pos())
			out = append(out, Finding{
				File: file, Line: line, Col: col, Pass: "maporder",
				Msg: "range over map " + types.ExprString(rs.X) + " has nondeterministic iteration order; " +
					"iterate sorted keys, or annotate //hxlint:allow maporder — <reason>",
			})
			return true
		})
	}
	return out
}

// isKeyGathering recognizes the canonical sorted-iteration prologue
//
//	for k := range m { keys = append(keys, k) }
//
// whose result order is independent of map order once the caller sorts.
// The body must be exactly one append of the key variable back onto the
// destination slice, with no value variable bound.
func isKeyGathering(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	arg, ok2 := call.Args[1].(*ast.Ident)
	return ok && ok2 && src.Name == dst.Name && arg.Name == key.Name
}
