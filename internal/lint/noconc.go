package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// passNoconc forbids concurrency machinery inside the single-threaded
// event-kernel packages: go statements, channel types and operations,
// select, and sync / sync/atomic primitives. The kernel's determinism
// promise is that event order is a pure function of the schedule; any
// in-instance concurrency would make it a function of the Go scheduler
// too. Parallelism lives one level up, in internal/harness, which runs
// whole isolated instances side by side.
func passNoconc(p *pkgUnit) []Finding {
	var out []Finding
	report := func(pos token.Pos, what string) {
		file, line, col := p.position(pos)
		out = append(out, Finding{
			File: file, Line: line, Col: col, Pass: "noconc",
			Msg: what + " in a single-threaded simulation package; " +
				"concurrency belongs to internal/harness, which parallelizes whole instances",
		})
	}
	for _, f := range p.files {
		// Channel operations in a select's comm clauses are part of the
		// select finding, not findings of their own.
		covered := map[token.Pos]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				report(n.Pos(), "go statement")
			case *ast.SelectStmt:
				report(n.Pos(), "select statement")
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						ast.Inspect(cc.Comm, func(m ast.Node) bool {
							if m != nil {
								covered[m.Pos()] = true
							}
							return true
						})
					}
				}
			case *ast.SendStmt:
				if !covered[n.Pos()] {
					report(n.Pos(), "channel send")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !covered[n.Pos()] {
					report(n.Pos(), "channel receive")
				}
			case *ast.ChanType:
				report(n.Pos(), "channel type")
			case *ast.RangeStmt:
				if tv, ok := p.info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						report(n.Pos(), "range over channel")
					}
				}
			case *ast.SelectorExpr:
				if pkgPath, name := selectorTarget(p, n); pkgPath == "sync" || pkgPath == "sync/atomic" {
					report(n.Pos(), pkgPath+" primitive "+name)
				}
			}
			return true
		})
	}
	return out
}
