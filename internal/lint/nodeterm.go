package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package calls that read or depend on the
// wall clock. Pure value constructors (time.Duration arithmetic,
// time.Unix on a stored stamp) are not in the set: the contract bans the
// clock as an input, not the time types.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand package-level functions that draw
// from the shared global generator. rand.New / rand.NewSource are
// seedflow's concern; everything reading the process-global stream is a
// nodeterm violation because any draw perturbs every later draw in the
// process, across simulation instances.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32N": true, "Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// passNodeterm forbids wall-clock reads and global math/rand draws in the
// simulation packages. Either one makes a run a function of when and
// where it executed instead of a pure function of (config, seed), which
// breaks the bit-identity every published CSV depends on.
func passNodeterm(p *pkgUnit) []Finding {
	var out []Finding
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := selectorTarget(p, call.Fun)
			switch {
			case pkgPath == "time" && wallClockFuncs[name]:
				file, line, col := p.position(call.Pos())
				out = append(out, Finding{
					File: file, Line: line, Col: col, Pass: "nodeterm",
					Msg: "wall-clock call time." + name + " in a simulation package; " +
						"simulated time comes from the event kernel, wall-clock belongs to internal/harness and cmd/",
				})
			case isMathRand(pkgPath) && globalRandFuncs[name]:
				file, line, col := p.position(call.Pos())
				out = append(out, Finding{
					File: file, Line: line, Col: col, Pass: "nodeterm",
					Msg: "global math/rand call rand." + name + " in a simulation package; " +
						"draw from a component rng.Source derived via internal/rng instead",
				})
			}
			return true
		})
	}
	return out
}

func isMathRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// selectorTarget resolves expr as a qualified reference pkg.Name and
// returns the imported package path and selected name. It returns "" for
// anything else (method calls, locals, unresolved identifiers).
func selectorTarget(p *pkgUnit, expr ast.Expr) (pkgPath, name string) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
