package lint

import (
	"go/ast"
	"go/token"
)

// passSeedflow enforces the seed-derivation contract: component RNGs are
// built through internal/rng, and distinct streams are separated with
// rng.DeriveSeed rather than ad-hoc arithmetic. rand.New(rand.NewSource(…))
// bypasses the per-component stream scheme entirely; seed+i-style
// arithmetic invites stream collisions and silently couples streams that
// the determinism docs promise are independent. Skips _test.go files —
// tests may build fixture seeds however they like.
func passSeedflow(p *pkgUnit) []Finding {
	var out []Finding
	for _, f := range p.files {
		if fileIsTest(p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := selectorTarget(p, call.Fun)
			switch {
			case isMathRand(pkgPath) && (name == "New" || name == "NewSource" || name == "NewPCG" || name == "NewChaCha8"):
				file, line, col := p.position(call.Pos())
				out = append(out, Finding{
					File: file, Line: line, Col: col, Pass: "seedflow",
					Msg: "rand." + name + " constructs an RNG outside internal/rng; " +
						"use rng.New with a seed from rng.DeriveSeed so streams stay per-component and reproducible",
				})
			case pkgPath == p.rngPath && name == "New" && len(call.Args) == 1:
				if arith := findSeedArith(p, call.Args[0]); arith != nil {
					file, line, col := p.position(arith.Pos())
					out = append(out, Finding{
						File: file, Line: line, Col: col, Pass: "seedflow",
						Msg: "ad-hoc seed arithmetic in the rng.New argument; " +
							"fold labels into the seed with rng.DeriveSeed(base, labels...) instead",
					})
				}
			}
			return true
		})
	}
	return out
}

// seedArithOps are the operators that constitute ad-hoc seed derivation
// when they appear in a seed expression.
var seedArithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true, token.REM: true,
	token.XOR: true, token.OR: true, token.AND: true, token.AND_NOT: true,
	token.SHL: true, token.SHR: true,
}

// findSeedArith returns the first binary arithmetic expression inside a
// seed argument, without descending into rng.DeriveSeed calls — DeriveSeed
// is the blessed mixer, and label expressions inside it are its business.
func findSeedArith(p *pkgUnit, arg ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(arg, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if pkgPath, name := selectorTarget(p, call.Fun); pkgPath == p.rngPath && name == "DeriveSeed" {
				return false
			}
		}
		if b, ok := n.(*ast.BinaryExpr); ok && seedArithOps[b.Op] {
			found = b
			return false
		}
		return true
	})
	return found
}
