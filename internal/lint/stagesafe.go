package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// passStagesafe is the interprocedural staging-contract pass. The sharded
// executor (internal/shard) runs each cycle's events on several cores at
// once; the contract that keeps the run bit-identical to serial is that
// model code reached during event execution never mutates globally
// visible state directly — it either stages the effect through the
// ShardState API (stageFx/StageCount/StageBirth, sim.Stage schedules) or
// sits on the serial branch of the `sharded` guard idiom, which the
// parallel phase never executes.
//
// The pass mechanizes that contract:
//
//   - Roots: every Act, Execute, or Record method declared in a
//     determinism-scope package (Act/Execute are the sim.Actor entry
//     points the kernel and the shard executor dispatch into; Record is
//     the sim.Recorder entry point Stage.RunWindow invokes on the
//     parallel phase after every in-window event).
//   - Graph: call edges between module functions, resolved through
//     go/types and keyed by (package, receiver, name) so edges cross
//     package boundaries. An edge taken only inside a serial-guarded
//     region does not propagate reachability — the parallel phase cannot
//     take it.
//   - Guards: the serial branch of `if x.sharded { … } else { SERIAL }`,
//     the fall-through after an early-returning `if x.sharded { return … }`,
//     the `if !x.sharded { SERIAL }` form, and the *ShardState nil-check
//     idiom (`if sc == nil { SERIAL }` / `if sc != nil { … } else { SERIAL }`).
//   - Mutations, flagged when reachable outside any guard: scalar field
//     writes on a multi-shard actor (a type whose ShardOf consults the
//     event, so its state is visible to every shard — detected by ShardOf
//     declaring any named parameter), kernel schedules through
//     (*sim.Kernel).At/After/AtAct/AfterAct (Cancel is sanctioned: staged
//     handles honor same-shard cancels), and invocations of func-typed
//     observer fields on a multi-shard actor.
//
// Element writes into slice/map fields (slab[i] = …) are deliberately out
// of scope: their shard ownership depends on index provenance, which the
// golden-trace shards-vs-serial suite pins instead. Test files are
// excluded entirely — tests drive and mutate instances serially.
func passStagesafe(pkgs []*pkgUnit) []Finding {
	a := &ssAnalysis{
		funcs:      map[string]*ssFunc{},
		multiShard: map[string]bool{},
	}
	for _, p := range pkgs {
		if !p.scope.determinism {
			continue
		}
		a.indexActors(p)
	}
	for _, p := range pkgs {
		if !p.scope.determinism {
			continue
		}
		a.indexFuncs(p)
	}
	return a.report()
}

// ssFunc is one module function's stagesafe summary: its outgoing call
// edges and its mutation sites, each tagged with whether the site is
// serial-guarded.
type ssFunc struct {
	key   string
	unit  *pkgUnit
	edges []ssEdge
	muts  []ssMut
	root  bool
}

type ssEdge struct {
	callee  string
	guarded bool
}

type ssMut struct {
	pos     token.Pos
	what    string
	guarded bool
}

type ssAnalysis struct {
	funcs      map[string]*ssFunc
	multiShard map[string]bool // "<pkgRel>.<Type>" whose ShardOf consults the event
}

// funcKey identifies a function across compilation units: module-relative
// package path, receiver type name ("" for plain functions), and name.
func funcKey(rel, recv, name string) string { return rel + ":" + recv + "." + name }

// moduleRel maps an import path to its module-relative form; ok=false for
// packages outside the linted module.
func moduleRel(path, module string) (string, bool) {
	if path == module {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, module+"/"); ok {
		return rest, true
	}
	return "", false
}

// recvName extracts the receiver type name from a method declaration.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// indexActors records every multi-shard actor type: a ShardOf
// implementation with at least one named parameter consults the event to
// pick the shard, which means events touching the same receiver can land
// on different shards and the receiver's state is globally visible.
// (Single-shard actors — Router, Terminal — declare ShardOf with all
// parameters blank: their events always run on the owner's shard, so
// receiver-local writes are shard-private.)
func (a *ssAnalysis) indexActors(p *pkgUnit) {
	for _, f := range p.files {
		if fileIsTest(p, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "ShardOf" || fd.Recv == nil {
				continue
			}
			for _, param := range fd.Type.Params.List {
				for _, n := range param.Names {
					if n.Name != "_" {
						a.multiShard[p.rel+"."+recvName(fd)] = true
					}
				}
			}
		}
	}
}

// indexFuncs builds the per-function summaries for one unit.
func (a *ssAnalysis) indexFuncs(p *pkgUnit) {
	for _, f := range p.files {
		if fileIsTest(p, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &ssFunc{
				key:  funcKey(p.rel, recvName(fd), fd.Name.Name),
				unit: p,
				root: fd.Recv != nil && (fd.Name.Name == "Act" || fd.Name.Name == "Execute" || fd.Name.Name == "Record"),
			}
			a.block(p, fn, fd.Body.List, false)
			a.funcs[fn.key] = fn
		}
	}
}

// Guard classification of an if condition.
const (
	ssNoGuard    = iota
	ssParallelIf // cond true ⇒ sharded/parallel path (x.sharded, sc != nil)
	ssSerialIf   // cond true ⇒ serial path (!x.sharded, sc == nil)
)

func (a *ssAnalysis) guardCond(p *pkgUnit, e ast.Expr) int {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return a.guardCond(p, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.NOT && isShardedSel(e.X) {
			return ssSerialIf
		}
	case *ast.SelectorExpr:
		if isShardedSel(e) {
			return ssParallelIf
		}
	case *ast.BinaryExpr:
		if e.Op != token.NEQ && e.Op != token.EQL {
			break
		}
		operand := e.X
		if isNilIdent(e.X) {
			operand = e.Y
		} else if !isNilIdent(e.Y) {
			break
		}
		if !a.isShardStatePtr(p, operand) {
			break
		}
		if e.Op == token.NEQ {
			return ssParallelIf
		}
		return ssSerialIf
	}
	return ssNoGuard
}

// isShardedSel recognizes the guard selector `x.sharded` by field name —
// the idiom docs/STATE.md and internal/network/shard.go pin.
func isShardedSel(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "sharded"
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isShardStatePtr reports whether the expression's type is *T for a named
// type called ShardState — the per-shard staging context whose nil-ness
// encodes "not sharded" (the TerminalShard idiom).
func (a *ssAnalysis) isShardStatePtr(p *pkgUnit, e ast.Expr) bool {
	t := typeOf(p, e)
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "ShardState"
}

func typeOf(p *pkgUnit, e ast.Expr) types.Type {
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := p.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// blockReturns reports whether the block's last statement unconditionally
// leaves the function (the early-return guard shape `if x.sharded { …;
// return … }`).
func blockReturns(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// block walks one statement list. guarded=true means the statements can
// only execute on the serial path; the return value carries the upgraded
// guard for statements after an early-returning parallel branch.
func (a *ssAnalysis) block(p *pkgUnit, fn *ssFunc, stmts []ast.Stmt, guarded bool) {
	for _, s := range stmts {
		guarded = a.stmt(p, fn, s, guarded)
	}
}

func (a *ssAnalysis) stmt(p *pkgUnit, fn *ssFunc, s ast.Stmt, guarded bool) bool {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(p, fn, s.Init, guarded)
		}
		switch a.guardCond(p, s.Cond) {
		case ssParallelIf:
			a.block(p, fn, s.Body.List, guarded)
			if s.Else != nil {
				a.elseBranch(p, fn, s.Else, true)
			}
			if blockReturns(s.Body) {
				return true // the parallel path returned; the rest is serial
			}
		case ssSerialIf:
			a.block(p, fn, s.Body.List, true)
			if s.Else != nil {
				a.elseBranch(p, fn, s.Else, guarded)
			}
		default:
			a.expr(p, fn, s.Cond, guarded)
			a.block(p, fn, s.Body.List, guarded)
			if s.Else != nil {
				a.elseBranch(p, fn, s.Else, guarded)
			}
		}
	case *ast.BlockStmt:
		a.block(p, fn, s.List, guarded)
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(p, fn, s.Init, guarded)
		}
		if s.Cond != nil {
			a.expr(p, fn, s.Cond, guarded)
		}
		if s.Post != nil {
			a.stmt(p, fn, s.Post, guarded)
		}
		a.block(p, fn, s.Body.List, guarded)
	case *ast.RangeStmt:
		a.expr(p, fn, s.X, guarded)
		a.block(p, fn, s.Body.List, guarded)
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(p, fn, s.Init, guarded)
		}
		if s.Tag != nil {
			a.expr(p, fn, s.Tag, guarded)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					a.expr(p, fn, e, guarded)
				}
				a.block(p, fn, cc.Body, guarded)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(p, fn, s.Init, guarded)
		}
		a.stmt(p, fn, s.Assign, guarded)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.block(p, fn, cc.Body, guarded)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					a.stmt(p, fn, cc.Comm, guarded)
				}
				a.block(p, fn, cc.Body, guarded)
			}
		}
	case *ast.LabeledStmt:
		return a.stmt(p, fn, s.Stmt, guarded)
	case *ast.ExprStmt:
		a.expr(p, fn, s.X, guarded)
	case *ast.SendStmt:
		a.expr(p, fn, s.Chan, guarded)
		a.expr(p, fn, s.Value, guarded)
	case *ast.GoStmt:
		a.expr(p, fn, s.Call, guarded)
	case *ast.DeferStmt:
		a.expr(p, fn, s.Call, guarded)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			a.expr(p, fn, e, guarded)
		}
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			a.writeTarget(p, fn, l, guarded)
			a.expr(p, fn, l, guarded)
		}
		for _, r := range s.Rhs {
			a.expr(p, fn, r, guarded)
		}
	case *ast.IncDecStmt:
		a.writeTarget(p, fn, s.X, guarded)
		a.expr(p, fn, s.X, guarded)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						a.expr(p, fn, v, guarded)
					}
				}
			}
		}
	}
	return guarded
}

func (a *ssAnalysis) elseBranch(p *pkgUnit, fn *ssFunc, s ast.Stmt, guarded bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		a.block(p, fn, s.List, guarded)
	default: // else-if chain
		a.stmt(p, fn, s, guarded)
	}
}

// writeTarget records a mutation when the assignment target is a scalar
// field of a multi-shard actor (n.Delivered++, r.net.InjectedPackets = …).
// Element writes (slab[i] = …) are excluded by construction: the target
// must be the selector itself.
func (a *ssAnalysis) writeTarget(p *pkgUnit, fn *ssFunc, e ast.Expr, guarded bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s := p.info.Selections[sel]; s == nil || s.Kind() != types.FieldVal {
		return
	}
	owner, ok := a.multiShardOwner(p, sel.X)
	if !ok {
		return
	}
	fn.muts = append(fn.muts, ssMut{
		pos:     sel.Pos(),
		what:    "unstaged write to " + owner + "." + sel.Sel.Name + ", shared state visible to every shard",
		guarded: guarded,
	})
}

// multiShardOwner resolves an expression's (dereferenced) type and
// reports it as "pkg.Type" when it is a multi-shard actor.
func (a *ssAnalysis) multiShardOwner(p *pkgUnit, e ast.Expr) (string, bool) {
	t := typeOf(p, e)
	if t == nil {
		return "", false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	rel, ok := moduleRel(named.Obj().Pkg().Path(), p.module)
	if !ok || !a.multiShard[rel+"."+named.Obj().Name()] {
		return "", false
	}
	return pkgBase(rel) + "." + named.Obj().Name(), true
}

func pkgBase(rel string) string {
	if i := strings.LastIndexByte(rel, '/'); i >= 0 {
		return rel[i+1:]
	}
	if rel == "" {
		return "main"
	}
	return rel
}

// kernelSchedules are the (*sim.Kernel) methods that enqueue events.
// Cancel is sanctioned: staged events carry live handles precisely so
// same-shard cancels work unchanged during the parallel phase.
var kernelSchedules = map[string]bool{
	"At": true, "After": true, "AtAct": true, "AfterAct": true,
}

// expr inspects an expression tree for calls (edges and call-shaped
// mutations). Function literals are walked as statements so nested guard
// idioms keep their meaning.
func (a *ssAnalysis) expr(p *pkgUnit, fn *ssFunc, e ast.Expr, guarded bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.block(p, fn, n.Body.List, guarded)
			return false
		case *ast.CallExpr:
			a.call(p, fn, n, guarded)
		}
		return true
	})
}

func (a *ssAnalysis) call(p *pkgUnit, fn *ssFunc, call *ast.CallExpr, guarded bool) {
	fun := call.Fun
	for {
		if paren, ok := fun.(*ast.ParenExpr); ok {
			fun = paren.X
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if obj, ok := p.info.Uses[f].(*types.Func); ok && obj.Pkg() != nil {
			if rel, ok := moduleRel(obj.Pkg().Path(), p.module); ok {
				fn.edges = append(fn.edges, ssEdge{callee: funcKey(rel, "", f.Name), guarded: guarded})
			}
		}
	case *ast.SelectorExpr:
		if s := p.info.Selections[f]; s != nil {
			switch s.Kind() {
			case types.MethodVal:
				m, ok := s.Obj().(*types.Func)
				if !ok || m.Pkg() == nil {
					return
				}
				rel, ok := moduleRel(m.Pkg().Path(), p.module)
				if !ok {
					return
				}
				recv := methodRecvName(m)
				if rel == "internal/sim" && recv == "Kernel" && kernelSchedules[m.Name()] {
					fn.muts = append(fn.muts, ssMut{
						pos:     call.Pos(),
						what:    "unstaged kernel schedule (*sim.Kernel)." + m.Name() + ", which mutates the shared calendar",
						guarded: guarded,
					})
					return
				}
				fn.edges = append(fn.edges, ssEdge{callee: funcKey(rel, recv, m.Name()), guarded: guarded})
			case types.FieldVal:
				if _, isFunc := s.Type().Underlying().(*types.Signature); !isFunc {
					return
				}
				if owner, ok := a.multiShardOwner(p, f.X); ok {
					fn.muts = append(fn.muts, ssMut{
						pos:     call.Pos(),
						what:    "unstaged observer invocation " + owner + "." + f.Sel.Name + ", an effect every shard can see",
						guarded: guarded,
					})
				}
			}
			return
		}
		// Package-qualified call pkg.F(...).
		if id, ok := f.X.(*ast.Ident); ok {
			if pn, ok := p.info.Uses[id].(*types.PkgName); ok {
				if rel, ok := moduleRel(pn.Imported().Path(), p.module); ok {
					fn.edges = append(fn.edges, ssEdge{callee: funcKey(rel, "", f.Sel.Name), guarded: guarded})
				}
			}
		}
	}
}

func methodRecvName(m *types.Func) string {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// report runs the reachability sweep from the Act/Execute roots along
// unguarded edges and turns every reachable unguarded mutation into a
// finding naming the entry point that reaches it.
func (a *ssAnalysis) report() []Finding {
	var roots []string
	for key, fn := range a.funcs {
		if fn.root {
			roots = append(roots, key)
		}
	}
	sort.Strings(roots)

	rootOf := map[string]string{}
	queue := make([]string, 0, len(roots))
	for _, r := range roots {
		rootOf[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		fn := a.funcs[key]
		for _, e := range fn.edges {
			if e.guarded {
				continue
			}
			callee, ok := a.funcs[e.callee]
			if !ok {
				continue
			}
			if _, seen := rootOf[e.callee]; seen {
				continue
			}
			rootOf[e.callee] = rootOf[key]
			queue = append(queue, callee.key)
		}
	}

	var out []Finding
	for key, root := range rootOf {
		fn := a.funcs[key]
		for _, m := range fn.muts {
			if m.guarded {
				continue
			}
			file, line, col := fn.unit.position(m.pos)
			out = append(out, Finding{
				File: file, Line: line, Col: col, Pass: "stagesafe",
				Msg: m.what + ", is reachable from " + displayKey(root) +
					" during the parallel phase; stage it through the ShardState effect API (stageFx/StageCount/StageBirth, Stage.AtAct) or guard it with the serial (!sharded) branch",
			})
		}
	}
	return out
}

// displayKey renders a function key for diagnostics: "(network.Router).Act".
func displayKey(key string) string {
	rel, rest, _ := strings.Cut(key, ":")
	recv, name, _ := strings.Cut(rest, ".")
	if recv == "" {
		return pkgBase(rel) + "." + name
	}
	return "(" + pkgBase(rel) + "." + recv + ")." + name
}
