package lint

import (
	"go/ast"
	"go/types"
)

// passStatecover is the field-coverage half of the interprocedural suite:
// it mechanizes the docs/STATE.md "adding mutable state" checklist.
//
// Snapshot/Restore coverage: for every struct type that owns both a
// Snapshot and a Restore method, each of its fields must be referenced on
// the capture path (the Snapshot method plus every same-package function
// it transitively calls) AND on the restore path (likewise from Restore).
// A field that is legitimately outside the contract — an observer rebound
// by the caller, a pool rebuilt lazily, wiring that Build reconstructs —
// must say so on its declaration:
//
//	//hxlint:state ephemeral — <why the field needs no snapshot coverage>
//
// Key coverage: a package that declares a Config struct with a configKey
// function (or RunOpts with optsKey) promises that the checkpoint key is
// a complete fingerprint of the struct. Every field must be referenced in
// the key function (helpers followed transitively) or carry:
//
//	//hxlint:key excluded — <why the field may be absent from the key>
//
// A missed field in either contract is exactly the bug class that golden
// traces catch only after a divergent run: a restored instance silently
// resuming with stale state, or two different configs colliding on one
// cached result. Test files are excluded throughout.
func passStatecover(pkgs []*pkgUnit, dirs *directiveIndex) []Finding {
	var out []Finding
	for _, p := range pkgs {
		sc := &scUnit{p: p, decls: map[scDeclKey]*ast.FuncDecl{}, structs: map[string]*ast.StructType{}}
		sc.index()
		out = append(out, sc.checkSnapshots(dirs)...)
		out = append(out, sc.checkKeys(dirs)...)
	}
	return out
}

// scDeclKey identifies a function declaration within one package.
type scDeclKey struct {
	recv string // receiver type name, "" for plain functions
	name string
}

type scUnit struct {
	p       *pkgUnit
	decls   map[scDeclKey]*ast.FuncDecl
	structs map[string]*ast.StructType // named struct types of the package
}

func (sc *scUnit) index() {
	for _, f := range sc.p.files {
		if fileIsTest(sc.p, f) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					sc.decls[scDeclKey{recv: recvName(d), name: d.Name.Name}] = d
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						if st, ok := ts.Type.(*ast.StructType); ok {
							sc.structs[ts.Name.Name] = st
						}
					}
				}
			}
		}
	}
}

// fieldRefs walks the same-package call closure from the given
// declaration and collects every field of the named type referenced
// anywhere in it (r.now, inst.net, cfg.Seed — any selection whose
// receiver is the type, directly or through a pointer).
func (sc *scUnit) fieldRefs(start scDeclKey, typeName string) map[string]bool {
	refs := map[string]bool{}
	visited := map[scDeclKey]bool{}
	queue := []scDeclKey{start}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		if visited[key] {
			continue
		}
		visited[key] = true
		fd, ok := sc.decls[key]
		if !ok {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if s := sc.p.info.Selections[n]; s != nil && s.Kind() == types.FieldVal {
					if namedTypeName(s.Recv()) == typeName {
						refs[n.Sel.Name] = true
					}
				}
			case *ast.CallExpr:
				if callee, ok := sc.resolveCall(n); ok {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	return refs
}

// resolveCall maps a call expression to a same-package declaration key.
func (sc *scUnit) resolveCall(call *ast.CallExpr) (scDeclKey, bool) {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := sc.p.info.Uses[f].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == sc.p.importPath {
			return scDeclKey{name: f.Name}, true
		}
	case *ast.SelectorExpr:
		if s := sc.p.info.Selections[f]; s != nil && s.Kind() == types.MethodVal {
			if m, ok := s.Obj().(*types.Func); ok && m.Pkg() != nil && m.Pkg().Path() == sc.p.importPath {
				return scDeclKey{recv: methodRecvName(m), name: m.Name()}, true
			}
		}
	}
	return scDeclKey{}, false
}

func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkSnapshots enforces the Snapshot/Restore field contract for every
// struct of the unit owning both methods.
func (sc *scUnit) checkSnapshots(dirs *directiveIndex) []Finding {
	var out []Finding
	for typeName, st := range sc.structs {
		snap := scDeclKey{recv: typeName, name: "Snapshot"}
		rest := scDeclKey{recv: typeName, name: "Restore"}
		if sc.decls[snap] == nil || sc.decls[rest] == nil {
			continue
		}
		capture := sc.fieldRefs(snap, typeName)
		restore := sc.fieldRefs(rest, typeName)
		for _, field := range st.Fields.List {
			for _, name := range fieldNames(field) {
				inCap, inRest := capture[name], restore[name]
				if inCap && inRest {
					continue
				}
				file, line, col := sc.p.position(field.Pos())
				if dirs.useState(file, line) {
					continue
				}
				out = append(out, Finding{
					File: file, Line: line, Col: col, Pass: "statecover",
					Msg: "field " + typeName + "." + name + " is not referenced on " + missingSides(inCap, inRest) +
						" of the Snapshot/Restore pair; a restored instance would resume with stale state — cover it on both paths or annotate //hxlint:state ephemeral — <reason>",
				})
			}
		}
	}
	return out
}

// keyContracts maps a struct name to the key-building function that must
// fingerprint every one of its fields.
var keyContracts = map[string]string{
	"Config":  "configKey",
	"RunOpts": "optsKey",
}

// checkKeys enforces the checkpoint-key field contract for every
// Config/RunOpts struct whose package declares the partner key function.
func (sc *scUnit) checkKeys(dirs *directiveIndex) []Finding {
	var out []Finding
	for typeName, keyFn := range keyContracts {
		st := sc.structs[typeName]
		if st == nil || sc.decls[scDeclKey{name: keyFn}] == nil {
			continue
		}
		keyed := sc.fieldRefs(scDeclKey{name: keyFn}, typeName)
		for _, field := range st.Fields.List {
			for _, name := range fieldNames(field) {
				if keyed[name] {
					continue
				}
				file, line, col := sc.p.position(field.Pos())
				if dirs.useKey(file, line) {
					continue
				}
				out = append(out, Finding{
					File: file, Line: line, Col: col, Pass: "statecover",
					Msg: "field " + typeName + "." + name + " is absent from " + keyFn +
						"; two runs differing only in it would collide on one cached checkpoint — add it to the key or annotate //hxlint:key excluded — <reason>",
				})
			}
		}
	}
	return out
}

func fieldNames(f *ast.Field) []string {
	if len(f.Names) == 0 { // embedded field: named after its type
		t := f.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		switch t := t.(type) {
		case *ast.Ident:
			return []string{t.Name}
		case *ast.SelectorExpr:
			return []string{t.Sel.Name}
		}
		return nil
	}
	var names []string
	for _, n := range f.Names {
		if n.Name != "_" {
			names = append(names, n.Name)
		}
	}
	return names
}

func missingSides(inCap, inRest bool) string {
	switch {
	case !inCap && !inRest:
		return "either path"
	case !inCap:
		return "the capture path"
	default:
		return "the restore path"
	}
}
