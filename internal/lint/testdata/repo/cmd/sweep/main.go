// Fixture: cmd binaries are in the emitter scope — ranging a map into
// CSV output is a maporder violation, while wall-clock stays legal.
package main

import (
	"fmt"
	"time"
)

func main() {
	rows := map[string]float64{"UR": 0.98, "BC": 0.49}
	start := time.Now() // legal: cmd owns wall-clock
	for name, v := range rows {
		fmt.Printf("%s,%.2f\n", name, v)
	}
	fmt.Println(time.Since(start))
}
