module hyperx

go 1.22
