// Fixture: the harness owns wall-clock and concurrency, so nothing in
// this file is a finding — it pins the scope boundary.
package harness

import (
	"sync"
	"time"
)

// Stamp reads the wall clock, which is legal here.
func Stamp() time.Time { return time.Now() }

// Guarded uses a mutex, which is legal here.
type Guarded struct {
	Mu sync.Mutex
}
