// Fixture: seeded stagesafe violations — a multi-shard actor (ShardOf
// consults the event) whose Act-reachable helpers mutate shared state
// without staging, next to every guard idiom the pass must honor.
package network

import "hyperx/internal/sim"

type ShardState struct {
	Stage *sim.Stage
}

func (sc *ShardState) stageCount(delta uint64) {}

type Network struct {
	K         *sim.Kernel
	sc        *ShardState
	sharded   bool
	Delivered uint64
	Dropped   uint64
	OnDeliver func(uint64)
}

// ShardOf consults the event, so Network state is visible to every shard:
// direct writes on the Act path must be staged or serial-guarded.
func (n *Network) ShardOf(_ uint8, a, _, _ int32, _ any) int {
	return int(a) % 2
}

func (n *Network) Act(op uint8, a, b, c int32, p any) {
	n.deliver(a)
}

func (n *Network) deliver(a int32) {
	n.Delivered++ // violation: unstaged counter on the parallel path
	if n.sharded {
		n.sc.stageCount(1)
		n.Dropped++ // violation: direct write inside the sharded branch
	} else {
		n.Dropped++ // serial branch: exempt
	}
	n.notify()
	n.retry(a)
}

func (n *Network) notify() {
	if !n.sharded {
		if n.OnDeliver != nil {
			n.OnDeliver(n.Delivered) // serial branch: exempt
		}
		return
	}
	n.OnDeliver(n.Delivered) // violation: unstaged observer invocation
}

func (n *Network) retry(a int32) {
	n.schedule(a)
	n.K.AfterAct(1, n, 0, a, 0, 0, nil) // violation: unstaged kernel schedule
}

func (n *Network) schedule(a int32) *sim.Event {
	if n.sharded {
		return n.sc.Stage.AtAct(2, n, 0, a, 0, 0, nil)
	}
	return n.K.AtAct(2, n, 0, a, 0, 0, nil) // early-return guard: exempt
}

// merge runs only on the coordinator after the barrier; it is not
// reachable from Act, so its direct writes are exempt.
func (n *Network) merge(sc *ShardState) {
	n.Delivered++
	if sc == nil {
		n.Dropped++ // ShardState nil-check guard: exempt even when reached
	}
}

// Record is the sim.Recorder entry point Stage.RunWindow invokes per
// in-window event on the parallel phase: it is a root exactly like Act,
// so an unstaged mutation reachable from it must be flagged.
func (n *Network) Record(at sim.Time, seq uint64, ev *sim.Event) {
	n.Delivered++ // violation: unstaged counter on the Record path
}
