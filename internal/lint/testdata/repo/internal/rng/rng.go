// Package rng is a minimal stand-in for the real internal/rng, just
// enough surface for the fixtures to exercise the seedflow pass.
package rng

// Source is a deterministic stream.
type Source struct{ state uint64 }

// New returns a source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return s.state
}

// DeriveSeed deterministically folds labels into a base seed.
func DeriveSeed(base uint64, labels ...uint64) uint64 {
	for _, l := range labels {
		base = (base ^ l) * 0xbf58476d1ce4e5b9
	}
	return base
}
