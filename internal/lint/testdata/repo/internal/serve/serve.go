// Fixture: the serve carve-out. internal/serve is exempt from the
// noconc pass — the go statement, channel, and mutex below must produce
// NO findings — but it stays inside the determinism scope, so the
// wall-clock default and the global-RNG job ID below are violations.
// This pins that exempting the serving layer's concurrency never
// loosens the clock and RNG bans there.
package serve

import (
	"math/rand"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex // exempt: no sync-primitive finding here
	jobs  chan int   // exempt: no channel-type finding here
	count int
}

func (s *server) start() {
	go func() { // exempt: no go-statement finding here
		for j := range s.jobs {
			s.mu.Lock()
			s.count += j
			s.mu.Unlock()
		}
	}()
}

func (s *server) stamp() time.Time {
	return time.Now() // violation: wall-clock must flow through an injected clock
}

func (s *server) jobID() int {
	return rand.Int() // violation: global math/rand in a determinism-scope package
}
