// Fixture: the noconc carve-out. internal/shard is exempt from the
// noconc pass — the go statement and channel below must produce NO
// findings — but the rest of the determinism scope still applies, so
// the wall-clock call is a seeded nodeterm violation.
package shard

import "time"

func fanIn(n int) int {
	ch := make(chan int, n) // exempt: no channel-type finding here
	for i := 0; i < n; i++ {
		go func(v int) { // exempt: no go-statement finding here
			ch <- v
		}(i)
	}
	sum := 0
	for i := 0; i < n; i++ {
		sum += <-ch
	}
	return sum
}

func stamp() int64 {
	return time.Now().UnixNano() // violation: wall-clock in a simulation package
}
