// Fixture: heap traffic on the steady-state data path — seeded allocfree
// violations, one allowed amortized refill, and the exemptions the pass
// must honor (construction functions, the slice-removal idiom).
package sim

type queue struct {
	items []int
	free  []int
	tmp   []int
}

// NewQueue is construction: its allocations are exempt by name.
func NewQueue(n int) *queue {
	return &queue{items: make([]int, 0, n)}
}

// Push grows queue state per call.
func (q *queue) Push(v int) {
	q.items = append(q.items, v) // violation: state growth on the data path
}

// Scratch sizes a fresh slice per call.
func (q *queue) Scratch(n int) []int {
	q.tmp = make([]int, n) // violation: make outside construction
	return q.tmp
}

// Refill restocks the free list a chunk at a time; the allocation
// amortizes, so it carries a reasoned allow directive.
func (q *queue) Refill() {
	//hxlint:allow allocfree — fixture: chunked pool refill, amortizes to zero once warm
	chunk := make([]int, 16)
	for i := range chunk {
		//hxlint:allow allocfree — fixture: free list grows to its high-water mark, then recycles
		q.free = append(q.free, chunk[i])
	}
}

// Remove uses the shrinking append idiom, which must not be flagged.
func (q *queue) Remove(i int) {
	q.items = append(q.items[:i], q.items[i+1:]...)
}
