// Fixture: wall-clock reads inside a simulation package — every call in
// this file is a seeded nodeterm violation.
package sim

import "time"

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Elapsed depends on the wall clock.
func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// Wait blocks on real time.
func Wait(d time.Duration) { time.Sleep(d) }
