// Fixture: concurrency machinery inside the event-kernel package —
// seeded noconc violations, plus one allowed select.
package sim

import "sync"

type guard struct {
	mu sync.Mutex // violation: sync primitive
}

func fanout(g *guard, n int) int {
	ch := make(chan int, n) // violation: channel type
	for i := 0; i < n; i++ {
		go func(v int) { // violation: go statement
			ch <- v // violation: channel send
		}(i)
	}
	g.mu.Lock() // method call on a sync type; the field decl above is the finding
	defer g.mu.Unlock()
	return <-ch // violation: channel receive
}

func poll(done chan struct{}) bool { // violation: channel type
	//hxlint:allow noconc — fixture: sanctioned cancellation poll mirroring sim.Kernel.RunCtx
	select {
	case <-done:
		return true
	default:
		return false
	}
}
