// Fixture: a minimal event-kernel surface — just enough structure for the
// interprocedural passes to resolve kernel schedules, stage diversions,
// and actor entry points, mirroring the real internal/sim API shape.
// Deliberately finding-free.
package sim

type Time int64

type Actor interface {
	Act(op uint8, a, b, c int32, p any)
}

type Event struct {
	at Time
}

type Kernel struct {
	now Time
}

func (k *Kernel) AtAct(t Time, act Actor, op uint8, a, b, c int32, p any) *Event {
	return &Event{at: t}
}

func (k *Kernel) AfterAct(d Time, act Actor, op uint8, a, b, c int32, p any) *Event {
	return &Event{at: k.now + d}
}

func (k *Kernel) Cancel(e *Event) {}

type Stage struct {
	now Time
}

func (st *Stage) AtAct(t Time, act Actor, op uint8, a, b, c int32, p any) *Event {
	return &Event{at: t}
}
