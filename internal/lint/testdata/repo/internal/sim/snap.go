// Fixture: seeded statecover violations on a Snapshot/Restore pair — a
// field captured but never restored, a field on neither path, a reasoned
// exclusion the pass must honor, a reason-less exclusion it must reject,
// and a stale exclusion allowaudit must flag.
package sim

type Ticker struct {
	now   Time
	seq   uint64
	drift Time     // captured below but never restored: statecover finding
	marks []uint64 // on neither path: statecover finding
	//hxlint:state ephemeral — memo is rebuilt lazily on first post-restore use
	memo []uint64
	//hxlint:state ephemeral
	trace func(Time) // reason-less directive: rejected, field still reported
	//hxlint:state ephemeral — stale: flags is captured and restored below
	flags uint64
}

type TickerState struct {
	Now   Time
	Seq   uint64
	Flags uint64
}

func (t *Ticker) Snapshot() *TickerState {
	return &TickerState{Now: t.now + t.drift, Seq: t.seq, Flags: t.flags}
}

func (t *Ticker) Restore(s *TickerState) {
	t.now = s.Now
	t.applySeq(s)
	t.flags = s.Flags
}

// applySeq exercises the transitive closure: seq is restored only through
// this helper.
func (t *Ticker) applySeq(s *TickerState) {
	t.seq = s.Seq
}
