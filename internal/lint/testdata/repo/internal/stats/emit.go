// Fixture: map iteration in an output path — one seeded maporder
// violation, the two exempt idioms, a valid allow directive, and a
// directive with a missing reason (which is itself a finding and
// suppresses nothing).
package stats

import (
	"fmt"
	"sort"
)

// EmitUnsorted ranges a map straight into output: a maporder violation.
func EmitUnsorted(w func(string), counts map[string]int) {
	for k, v := range counts {
		w(fmt.Sprintf("%s,%d", k, v))
	}
}

// EmitSorted uses the key-gathering prologue, which is exempt.
func EmitSorted(w func(string), counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w(fmt.Sprintf("%s,%d", k, counts[k]))
	}
}

// Total binds neither key nor value, which is exempt.
func Total(counts map[string]int) int {
	n := 0
	for range counts {
		n++
	}
	return n
}

// EmitAllowed carries a valid directive and must stay clean.
func EmitAllowed(w func(string), counts map[string]int) {
	//hxlint:allow maporder — fixture: the caller re-sorts these lines before writing them out
	for k, v := range counts {
		w(fmt.Sprintf("%s,%d", k, v))
	}
}

// EmitBadDirective's directive has no reason: the directive is a finding
// and the range below it is still reported.
func EmitBadDirective(w func(string), counts map[string]int) {
	//hxlint:allow maporder
	for k, v := range counts {
		w(fmt.Sprintf("%s,%d", k, v))
	}
}
