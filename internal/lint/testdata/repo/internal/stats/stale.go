// Fixture: a stale allow directive — the emission loop below it was
// rewritten over sorted keys, so the suppression waives nothing and
// allowaudit must flag it.
package stats

import "sort"

func EmitSorted(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts { // key-gathering loop: maporder-exempt
		keys = append(keys, k)
	}
	sort.Strings(keys)
	//hxlint:allow maporder — stale: the loop below ranges a sorted slice now
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}
