// Fixture: the test-file policy. seedflow skips _test.go files (tests
// may build ad-hoc fixture seeds), but maporder still applies — a
// map-ordered subtest schedule is a real flake source.
package topology

import "hyperx/internal/rng"

// fixtureSeed's arithmetic is clean here because this is a test file.
func fixtureSeed(i int) *rng.Source {
	return rng.New(uint64(i) * 7)
}

// orderedNames ranges a map with the value bound: still a violation —
// and the directive below names an unknown pass, so it is a second
// finding and suppresses nothing.
func orderedNames(m map[string]bool) []string {
	var out []string
	//hxlint:allow sloppiness — not a real pass name
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	return out
}
