// Fixture: RNG construction outside the sanctioned seed flow — seeded
// seedflow violations (and one nodeterm global-rand draw), plus the
// blessed DeriveSeed form, which must stay clean.
package traffic

import (
	"math/rand"

	"hyperx/internal/rng"
)

// legacyStream builds a math/rand generator: two violations, one per
// constructor call.
func legacyStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// roll draws from the process-global generator: a nodeterm violation.
func roll() int { return rand.Intn(6) }

// adhoc derives a stream with naked seed arithmetic: a seedflow violation.
func adhoc(seed uint64, i int) *rng.Source {
	return rng.New(seed + uint64(i)*2654435761)
}

// good is the sanctioned form and must produce no findings.
func good(seed uint64, i int) *rng.Source {
	return rng.New(rng.DeriveSeed(seed, uint64(i)))
}
