// Fixture: seeded checkpoint-key violations — a RunOpts field absent from
// optsKey without a reasoned exclusion, one properly excluded field, and
// a wrong-verb directive the grammar must reject.
package hyperx

import "fmt"

type RunOpts struct {
	Warmup int
	Window int
	Shards int // violation: absent from optsKey, no exclusion directive
	//hxlint:key excluded — probe depth shapes reporting only, never simulated state
	Probe int
	//hxlint:key stale — wrong verb: rejected, field still reported
	Trace bool
}

func optsKey(o RunOpts) string {
	return fmt.Sprintf("warm=%d;win=%d", o.Warmup, o.Window)
}
