package network

// Steady-state allocation regression for the full router data path:
// injection, candidate generation, weighted selection, output arbitration,
// grants, credit returns, and delivery. Once the pools (packets, waiters,
// kernel events) and the high-water queue capacities are warm, a complete
// inject-to-drain cycle must not allocate at all — this is the property
// that makes paper-scale sweep points run at a steady heap size.

import (
	"testing"

	"hyperx/internal/core"
	"hyperx/internal/topology"
)

func steadyStateZeroAlloc(t *testing.T, mut func(*Config)) {
	h := topology.MustHyperX([]int{4, 4, 4}, 4)
	n := buildNet(t, h, core.NewDimWAR(h), mut)
	nt := h.NumTerminals()
	// The bursts below inject from every terminal on the same cycle, a far
	// spikier bucket occupancy than the build-time heuristic plans for;
	// reserve enough per-bucket capacity that the calendar never grows.
	n.K.Reserve(4096, 2*nt)
	burst := func(k int) {
		for src := 0; src < nt; src++ {
			n.Terminals[src].Send(n.NewPacket(src, (src*31+k)%nt, 1+k%16))
		}
		n.K.Run(0)
	}
	// Warm every pool and queue to its high-water mark: enough bursts that
	// packet/waiter/event pools and bucket capacities stop growing.
	for k := 0; k < 50; k++ {
		burst(k)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		i++
		burst(i)
	})
	if allocs != 0 {
		t.Fatalf("steady-state inject-route-arbitrate-drain cycle allocated %.1f objects/op, want 0", allocs)
	}
	if n.InFlight() != 0 {
		t.Fatal("network did not drain")
	}
}

// TestSteadyStateZeroAllocAge: the paper's configuration (age-based
// output arbitration).
func TestSteadyStateZeroAllocAge(t *testing.T) {
	steadyStateZeroAlloc(t, nil)
}

// TestSteadyStateZeroAllocRandom: random arbitration draws tie-break
// samples in the arbitration loop; those draws must be allocation-free
// too.
func TestSteadyStateZeroAllocRandom(t *testing.T) {
	steadyStateZeroAlloc(t, func(c *Config) { c.Arbiter = RandomArbiter })
}
