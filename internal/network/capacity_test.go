package network

// Candidate-scratch capacity tests. The router's reusable Cands buffer
// was historically a fixed 64-entry cap — comfortable at the 4x4x4
// development scale, an unchecked assumption at paper-scale radix and
// plain wrong for wide single-dimension shapes. The buffer is now sized
// from the topology's declared offered-port bound at build time; these
// tests pin that a full decision at large radix fits the build-time slab
// without a mid-decision grow.

import (
	"testing"

	"hyperx/internal/core"
	"hyperx/internal/topology"
)

// candScratch runs one full candidate generation on router 0 of a drained
// network and reports (candidates produced, scratch capacity before,
// scratch capacity after).
func candScratch(t *testing.T, n *Network, dstTerm int) (produced, capBefore, capAfter int) {
	t.Helper()
	r := n.Routers[0]
	capBefore = cap(r.ctx.Cands)
	p := n.NewPacket(0, dstTerm, 1)
	r.ctx.InPort = -1
	r.ctx.View = (*view)(r)
	cands := n.Cfg.Alg.Route(&r.ctx, p)
	produced = len(cands)
	r.ctx.Cands = cands[:0]
	capAfter = cap(r.ctx.Cands)
	n.freePacket(p)
	return produced, capBefore, capAfter
}

// TestCandScratchPaperScaleRadix: at the paper's 8x8x8 t=8 radix, the
// build-time scratch equals the topology's offered-port bound and a
// maximal OmniWAR decision (minimal + every lateral in every unaligned
// dimension) fits it without reallocation.
func TestCandScratchPaperScaleRadix(t *testing.T) {
	h := topology.MustHyperX([]int{8, 8, 8}, 8)
	n := buildNet(t, h, core.MustOmniWAR(h, 6, false), nil)
	want := h.OfferedPorts()
	dst := h.NumTerminals() - 1 // far corner: all three dimensions unaligned
	produced, before, after := candScratch(t, n, dst)
	if before != want {
		t.Fatalf("build-time scratch cap = %d, want OfferedPorts() = %d", before, want)
	}
	if produced != 21 { // 3 minimal + 3*6 laterals at full deroute budget
		t.Fatalf("maximal decision produced %d candidates, want 21", produced)
	}
	if after != before {
		t.Fatalf("scratch grew %d -> %d during a paper-scale decision", before, after)
	}
}

// TestCandScratchWideDimension: a 1-D width-70 HyperX offers 69 candidates
// in a single decision — past the historical fixed cap of 64. The shape-
// derived scratch absorbs it without growing.
func TestCandScratchWideDimension(t *testing.T) {
	h := topology.MustHyperX([]int{70}, 1)
	n := buildNet(t, h, core.MustOmniWAR(h, 2, false), nil)
	dst := h.NumTerminals() - 1
	produced, before, after := candScratch(t, n, dst)
	if before != h.OfferedPorts() {
		t.Fatalf("build-time scratch cap = %d, want OfferedPorts() = %d", before, h.OfferedPorts())
	}
	if produced <= 64 {
		t.Fatalf("wide-dimension decision produced %d candidates; test needs > 64 to exercise the old cap", produced)
	}
	if after != before {
		t.Fatalf("scratch grew %d -> %d; fixed-cap sizing would have reallocated here", before, after)
	}
	// The routed network still delivers: end-to-end sanity at wide radix.
	n.Terminals[0].Send(n.NewPacket(0, dst, 4))
	n.K.Run(0)
	if n.DeliveredPackets != 1 {
		t.Fatalf("wide-dimension network delivered %d packets, want 1", n.DeliveredPackets)
	}
}
