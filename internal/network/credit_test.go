package network

import (
	"testing"

	"hyperx/internal/core"
	"hyperx/internal/routing"
	"hyperx/internal/topology"
)

// TestCreditConservation: after the network fully drains, every output's
// credit count must be restored to exactly BufDepth — no credit is ever
// lost or duplicated.
func TestCreditConservation(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 2)
	algs := []struct {
		name string
		mk   func() *Network
	}{
		{"DimWAR", func() *Network { return buildNet(t, h, core.NewDimWAR(h), nil) }},
		{"OmniWAR", func() *Network { return buildNet(t, h, core.MustOmniWAR(h, 8, false), nil) }},
		{"UGAL", func() *Network { return buildNet(t, h, routing.NewUGAL(h), nil) }},
		{"DAL", func() *Network {
			return buildNet(t, h, routing.NewDAL(h), func(c *Config) { c.AtomicVCAlloc = true })
		}},
	}
	for _, tc := range algs {
		mk := tc.mk
		t.Run(tc.name, func(t *testing.T) {
			n := mk()
			for k := 0; k < 8; k++ {
				for src := 0; src < h.NumTerminals(); src++ {
					n.Terminals[src].Send(n.NewPacket(src, (src+5+k)%h.NumTerminals(), 1+k))
				}
			}
			n.K.Run(0)
			if n.InFlight() != 0 {
				t.Fatalf("network did not drain: %d in flight", n.InFlight())
			}
			for _, r := range n.Routers {
				for p := range r.out {
					o := &r.out[p]
					if o.peerRouter < 0 {
						continue
					}
					for vc, cr := range o.credits {
						if int(cr) != n.Cfg.BufDepth {
							t.Fatalf("router %d port %d vc %d: %d credits after drain, want %d",
								r.id, p, vc, cr, n.Cfg.BufDepth)
						}
					}
					if o.queuedFlits != 0 {
						t.Fatalf("router %d port %d: queuedFlits %d after drain", r.id, p, o.queuedFlits)
					}
					if len(o.waiters) != 0 {
						t.Fatalf("router %d port %d: %d stale waiters", r.id, p, len(o.waiters))
					}
				}
			}
			// Terminal injection credits restored too.
			for _, term := range n.Terminals {
				for vc, cr := range term.credits {
					if int(cr) != n.Cfg.BufDepth {
						t.Fatalf("terminal %d vc %d: %d credits after drain", term.id, vc, cr)
					}
				}
			}
		})
	}
}

// TestRerouteUnderBlockage: a head packet blocked long enough re-routes
// and still delivers (exercises the ReRouteInterval path).
func TestRerouteUnderBlockage(t *testing.T) {
	h := topology.MustHyperX([]int{4}, 2)
	n := buildNet(t, h, core.NewDimWAR(h), func(c *Config) {
		c.BufDepth = 16 // tiny buffers so blockage happens immediately
		c.ReRouteInterval = 20
	})
	// Flood one destination from all terminals; tiny buffers force long
	// waits and many reroute timer firings.
	for k := 0; k < 30; k++ {
		for src := 2; src < h.NumTerminals(); src++ {
			n.Terminals[src].Send(n.NewPacket(src, 0, 16))
		}
	}
	n.K.Run(0)
	want := uint64(30 * (h.NumTerminals() - 2))
	if n.DeliveredPackets != want {
		t.Fatalf("delivered %d of %d under blockage", n.DeliveredPackets, want)
	}
}

// TestSmallBufferDepthStillDelivers: the minimum legal buffer (one max
// packet) must remain live, just slow.
func TestSmallBufferDepthStillDelivers(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 1)
	n := buildNet(t, h, core.MustOmniWAR(h, 8, false), func(c *Config) {
		c.BufDepth = 16
	})
	for src := 0; src < h.NumTerminals(); src++ {
		for k := 0; k < 5; k++ {
			n.Terminals[src].Send(n.NewPacket(src, h.NumTerminals()-1-src, 16))
		}
	}
	n.K.Run(0)
	if n.DeliveredPackets != uint64(5*h.NumTerminals()) {
		t.Fatalf("delivered %d", n.DeliveredPackets)
	}
}
