package network

import (
	"reflect"
	"testing"

	"hyperx/internal/core"
	"hyperx/internal/route"
	"hyperx/internal/routing"
	"hyperx/internal/sim"
	"hyperx/internal/topology"
)

// TestFaultDropUnderDOR: a fault-oblivious algorithm whose only candidate
// is a dead link must have its packets dropped and counted — never
// panicked on — and the drop must recycle buffer credit so later packets
// keep flowing.
func TestFaultDropUnderDOR(t *testing.T) {
	h := topology.MustHyperX([]int{4}, 2)
	fs := topology.NewFaultSet()
	if err := fs.Add(h, 0, h.DimPort(0, 0, 3)); err != nil {
		t.Fatal(err)
	}
	n := buildNet(t, h, routing.NewDOR(h), func(c *Config) { c.Faults = fs })
	var drops int
	n.OnDrop = func(p *route.Packet, _ sim.Time) {
		drops++
		if p.DstRouter != 3 {
			t.Errorf("dropped packet bound for router %d, want 3", p.DstRouter)
		}
	}
	// Several packets across the dead link, plus one on a live route.
	for i := 0; i < 5; i++ {
		n.Terminals[0].Send(n.NewPacket(0, 6, 4)) // router 0 -> 3: dead under DOR
	}
	n.Terminals[0].Send(n.NewPacket(0, 4, 4)) // router 0 -> 2: alive
	n.K.Run(0)
	if drops != 5 || n.DroppedPackets != 5 || n.DroppedFlits != 20 {
		t.Errorf("drops=%d DroppedPackets=%d DroppedFlits=%d, want 5/5/20",
			drops, n.DroppedPackets, n.DroppedFlits)
	}
	if n.DeliveredPackets != 1 {
		t.Errorf("live route delivered %d packets, want 1", n.DeliveredPackets)
	}
}

// TestFaultedDimWARDeliversEverything: DimWAR with the fault set wired in
// routes every terminal pair around the dead links — zero drops on a
// connected surviving network.
func TestFaultedDimWARDeliversEverything(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 1)
	fs, err := topology.RandomConnectedFaults(h, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	alg := core.NewDimWAR(h)
	alg.SetFaults(fs)
	n := buildNet(t, h, alg, func(c *Config) { c.Faults = fs })
	sent := 0
	for s := 0; s < h.NumTerminals(); s++ {
		for d := 0; d < h.NumTerminals(); d++ {
			if s == d {
				continue
			}
			n.Terminals[s].Send(n.NewPacket(s, d, 2))
			sent++
		}
	}
	n.K.Run(0)
	if n.DroppedPackets != 0 {
		t.Errorf("DimWAR dropped %d packets on a connected fault set", n.DroppedPackets)
	}
	if int(n.DeliveredPackets) != sent {
		t.Errorf("delivered %d of %d", n.DeliveredPackets, sent)
	}
}

// TestEmptyFaultSetBitIdentical: a network built with an empty (non-nil)
// FaultSet must replay the fault-free event stream exactly — same
// delivery times, same event count.
func TestEmptyFaultSetBitIdentical(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 2)
	run := func(fs *topology.FaultSet) ([]sim.Time, uint64) {
		n := buildNet(t, h, core.NewDimWAR(h), func(c *Config) { c.Faults = fs })
		var times []sim.Time
		n.OnDeliver = func(p *route.Packet, at sim.Time) { times = append(times, at) }
		for s := 0; s < h.NumTerminals(); s++ {
			d := (s + h.NumTerminals()/2 + 1) % h.NumTerminals()
			n.Terminals[s].Send(n.NewPacket(s, d, 3))
			n.Terminals[s].Send(n.NewPacket(s, (d+5)%h.NumTerminals(), 1))
		}
		n.K.Run(0)
		return times, n.K.Executed()
	}
	tNil, eNil := run(nil)
	tEmpty, eEmpty := run(topology.NewFaultSet())
	if !reflect.DeepEqual(tNil, tEmpty) || eNil != eEmpty {
		t.Errorf("empty FaultSet perturbed the simulation: %d vs %d events", eNil, eEmpty)
	}
}
