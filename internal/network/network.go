// Package network turns a static topology plus a routing algorithm into a
// live event-driven simulation: routers with per-(port,VC) packet buffers
// and credit-based flow control, serializing channels with pipeline
// latency, and terminals with source queues.
//
// The model is a combined input/output-queued router with sufficient
// internal speedup (Chuang et al.), as in the paper's evaluation: the
// internal datapath is never the bottleneck, output channels serialize at
// one flit per cycle, and age-based arbitration orders competing packets.
// Packets move whole (packet-buffer flow control): a packet may cross to
// the next router only when the downstream (port,VC) buffer has space for
// all of its flits, and it then occupies the channel for exactly Len
// cycles. This reproduces flit-accurate bandwidth, serialization, and
// back-pressure behaviour while dispatching events per packet rather than
// per flit.
package network

import (
	"fmt"

	"hyperx/internal/rng"
	"hyperx/internal/route"
	"hyperx/internal/sim"
	"hyperx/internal/topology"
)

// Config parameterizes a network build. Zero fields take the defaults
// from the paper's evaluation (Section 6): 8 VCs, 50 ns crossbar, 50 ns
// router-to-router channels, 5 ns terminal channels.
type Config struct {
	Topo topology.Topology
	Alg  route.Algorithm

	NumVCs        int      // physical VCs per port (default 8)
	BufDepth      int      // flits of buffering per (port,VC) (default 256)
	XbarLat       sim.Time // crossbar traversal latency (default 50)
	RouterChanLat sim.Time // router-to-router channel latency (default 50)
	TermChanLat   sim.Time // router-to-terminal channel latency (default 5)
	MaxPktFlits   int      // largest packet (default 16)

	// AtomicVCAlloc grants an output VC only when the downstream queue is
	// completely empty — the atomic queue allocation of Section 4.2,
	// required to run DAL on a high-radix router.
	AtomicVCAlloc bool

	// ClassSense switches routing-weight congestion sensing from the
	// default per-port output-queue aggregate to per-resource-class
	// occupancy (see route.Ctx.ClassSense; ablation knob).
	ClassSense bool

	// Arbiter selects the output-port arbitration policy among eligible
	// competing packets (ablation knob; the paper uses age-based).
	Arbiter Arbiter

	// ReRouteInterval is how long a blocked head packet holds a routing
	// decision before re-evaluating it (default 100 cycles).
	ReRouteInterval sim.Time

	// Faults is the set of failed router-to-router links. A dead output
	// port holds zero credits and is excluded from arbitration, and a
	// packet whose algorithm offers no live candidate is dropped (and
	// counted) instead of panicking. Nil or empty means a pristine
	// network, bit-identical to builds that predate fault support.
	Faults *topology.FaultSet

	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.NumVCs == 0 {
		c.NumVCs = 8
	}
	if c.BufDepth == 0 {
		c.BufDepth = 256
	}
	if c.XbarLat == 0 {
		c.XbarLat = 50
	}
	if c.RouterChanLat == 0 {
		c.RouterChanLat = 50
	}
	if c.TermChanLat == 0 {
		c.TermChanLat = 5
	}
	if c.MaxPktFlits == 0 {
		c.MaxPktFlits = 16
	}
	if c.ReRouteInterval == 0 {
		c.ReRouteInterval = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Arbiter is an output-port arbitration policy.
type Arbiter uint8

const (
	// AgeArbiter grants the eligible packet with the oldest injection
	// time — the paper's configuration, which stabilizes adversarial
	// throughput.
	AgeArbiter Arbiter = iota
	// FIFOArbiter grants the eligible packet that has waited at this
	// output longest (registration order).
	FIFOArbiter
	// RandomArbiter grants a uniformly random eligible packet.
	RandomArbiter
)

// String implements fmt.Stringer.
func (a Arbiter) String() string {
	switch a {
	case FIFOArbiter:
		return "fifo"
	case RandomArbiter:
		return "random"
	default:
		return "age"
	}
}

// Network is a live simulated network.
type Network struct {
	K   *sim.Kernel
	Cfg Config

	Routers   []*Router
	Terminals []*Terminal

	//hxlint:state ephemeral — build-time wiring derived from Config; the restore target is built from the identical Config
	classVCs [][]int8 // resource class -> physical VCs

	// OnDeliver, if set, is invoked when a packet's head reaches its
	// destination terminal, before the packet is recycled.
	//hxlint:state ephemeral — measurement observer; every run point rebinds its own collector after restore
	OnDeliver func(p *route.Packet, at sim.Time)

	// OnHop, if set, observes every router-to-router grant: the packet
	// (with routing state already committed for this hop), the granting
	// router, and the chosen output port and VC. Used for path tracing
	// and hop statistics.
	//hxlint:state ephemeral — measurement observer; every run point rebinds its own collector after restore
	OnHop func(p *route.Packet, router, port int, vc int8)

	// OnDrop, if set, observes every packet discarded because routing
	// found no live candidate (fault-induced detect-and-drop), before the
	// packet is recycled.
	//hxlint:state ephemeral — measurement observer; every run point rebinds its own collector after restore
	OnDrop func(p *route.Packet, at sim.Time)

	//hxlint:state ephemeral — build-time wiring derived from Config.Faults; the restore target is built from the identical Config
	hasFaults bool

	//hxlint:state ephemeral — abandoned on restore (set nil; intrusive links may thread clobbered structs) and refilled lazily, see docs/STATE.md
	pool    *route.Packet // free list threaded through Packet.Next
	nextPkt uint64

	// Sharded-execution machinery (see shard.go): shards is built once by
	// ConfigureShards; sharded is true only inside the executor's parallel
	// phases, and is the single branch the hot path takes to divert
	// schedule calls and global side effects to the per-shard stages.
	//hxlint:state ephemeral — shard machinery is empty at every cycle boundary and Snapshot/Restore only run between cycles (docs/STATE.md)
	shards []*ShardState
	//hxlint:state ephemeral — true only inside the executor's parallel phases, never when a snapshot can be taken
	sharded bool

	// Snapshot plumbing (see snapshot.go / docs/STATE.md): the network
	// retains its whole-network slabs so Snapshot/Restore can bulk-copy
	// them, plus a reusable arena that restored live packets are rebuilt
	// into.
	streams      []rng.Source // per-router RNG streams (ctx.RNG points in)
	credSlab     []int32      // all routers' downstream credit counters
	termCredSlab []int32      // all terminals' injection credit counters
	//hxlint:state ephemeral — restore-owned arena the snapshot's packets are rebuilt into; capturing it would be circular
	restorePkts []route.Packet

	// Aggregate counters.
	InjectedPackets  uint64
	InjectedFlits    uint64
	DeliveredPackets uint64
	DeliveredFlits   uint64
	DroppedPackets   uint64
	DroppedFlits     uint64
}

// New assembles a network over a fresh or shared kernel.
func New(k *sim.Kernel, cfg Config) (*Network, error) {
	cfg.applyDefaults()
	if cfg.Topo == nil || cfg.Alg == nil {
		return nil, fmt.Errorf("network: Topo and Alg are required")
	}
	nc := cfg.Alg.NumClasses()
	if nc > cfg.NumVCs {
		return nil, fmt.Errorf("network: algorithm %s needs %d classes but only %d VCs configured",
			cfg.Alg.Name(), nc, cfg.NumVCs)
	}
	if cfg.MaxPktFlits > cfg.BufDepth {
		return nil, fmt.Errorf("network: MaxPktFlits %d exceeds BufDepth %d", cfg.MaxPktFlits, cfg.BufDepth)
	}
	n := &Network{K: k, Cfg: cfg, hasFaults: cfg.Faults.Size() > 0}

	// Partition physical VCs evenly among resource classes; spare VCs
	// widen the earlier classes (head-of-line-blocking reduction,
	// footnote 4 of the paper).
	n.classVCs = make([][]int8, nc)
	base, extra := cfg.NumVCs/nc, cfg.NumVCs%nc
	v := int8(0)
	for c := 0; c < nc; c++ {
		sz := base
		if c < extra {
			sz++
		}
		for i := 0; i < sz; i++ {
			n.classVCs[c] = append(n.classVCs[c], v)
			v++
		}
	}

	topo := cfg.Topo
	master := rng.New(cfg.Seed)
	np := topo.NumPorts()
	nv := cfg.NumVCs
	nr := topo.NumRouters()
	nt := topo.NumTerminals()

	// Candidate scratch bound: from the topology's own offered-port count
	// when it declares one, so paper-scale (or wider) radix can never
	// outgrow an assumed cap; the generic fallback is every port plus one.
	maxCands := np + 1
	if op, ok := topo.(interface{ OfferedPorts() int }); ok {
		maxCands = op.OfferedPorts()
	}

	// Router and terminal state lives in network-level slabs, subsliced
	// per owner: at paper scale (512 routers x radix 29 x 8 VCs) the
	// per-object layout this replaces was the footprint and locality
	// bottleneck — hundreds of thousands of separately-allocated queues
	// and credit arrays.
	routerSlab := make([]Router, nr)
	inSlab := make([]inputPort, nr*np)
	outSlab := make([]outputPort, nr*np)
	vcSlab := make([]inputVC, nr*np*nv)
	credSlab := make([]int32, nr*np*nv)
	waiterQSlab := make([]*waiter, nr*np*nv)
	wstockSlab := make([]waiter, nr*nv)
	wfreeSlab := make([]*waiter, nr*np*nv)
	candSlab := make([]route.Candidate, nr*maxCands)
	termSlab := make([]Terminal, nt)
	termCredSlab := make([]int32, nt*nv)

	streams := master.DeriveN(0, nr)
	n.streams = streams
	n.credSlab = credSlab
	n.termCredSlab = termCredSlab
	n.Routers = make([]*Router, nr)
	for r := range n.Routers {
		n.Routers[r] = &routerSlab[r]
		initRouter(&routerSlab[r], n, r, &streams[r], routerSlabs{
			in:      inSlab[r*np : (r+1)*np : (r+1)*np],
			out:     outSlab[r*np : (r+1)*np : (r+1)*np],
			vcs:     vcSlab[r*np*nv : (r+1)*np*nv],
			credits: credSlab[r*np*nv : (r+1)*np*nv],
			waiterQ: waiterQSlab[r*np*nv : (r+1)*np*nv],
			wstock:  wstockSlab[r*nv : (r+1)*nv],
			wfree:   wfreeSlab[r*np*nv : r*np*nv : (r+1)*np*nv],
			cands:   candSlab[r*maxCands : r*maxCands : (r+1)*maxCands],
		})
	}
	n.Terminals = make([]*Terminal, nt)
	for t := range n.Terminals {
		n.Terminals[t] = &termSlab[t]
		initTerminal(&termSlab[t], n, t, termCredSlab[t*nv:(t+1)*nv:(t+1)*nv])
	}

	// Pre-size the kernel for this model's steady-state event population
	// (in-flight channel crossings, credit returns, reroute timers): one
	// event per link plus a few per terminal is the observed high-water
	// shape. A low estimate only means on-demand growth, never misbehaviour.
	events := nr*np + 4*nt
	k.Reserve(events, max(4, events/4096))
	return n, nil
}

// Act implements sim.Actor: delivery completion is the one network-level
// typed event.
func (n *Network) Act(op uint8, _, _, _ int32, p any) {
	if op == opDeliver {
		n.deliver(p.(*route.Packet))
	}
}

// VCsForClass returns the physical VCs backing a resource class.
func (n *Network) VCsForClass(c int8) []int8 { return n.classVCs[c] }

// pktChunk is how many packets one pool refill allocates; the free list
// is intrusive (threaded through Packet.Next), so a refill is a single
// slab allocation and the steady state recycles without touching the heap.
const pktChunk = 256

// NewPacket takes a packet from the pool. In sharded mode the packet
// comes from the allocating (source-router) shard's private pool and its
// ID stays zero until the merge replays the staged assignment — nothing
// reads the ID within its birth cycle, and the merge order reproduces the
// serial nextPkt sequence exactly.
func (n *Network) NewPacket(src, dst, flits int) *route.Packet {
	sr, _ := n.Cfg.Topo.TerminalPort(src)
	dr, _ := n.Cfg.Topo.TerminalPort(dst)
	var p *route.Packet
	var id uint64
	if n.sharded {
		sc := n.Routers[sr].sc
		p = sc.takePacket()
		sc.stageFx(effect{kind: fxID, p: p})
	} else {
		if n.pool == nil {
			chunk := make([]route.Packet, pktChunk)
			for i := range chunk[:pktChunk-1] {
				chunk[i].Next = &chunk[i+1]
			}
			n.pool = &chunk[0]
		}
		p = n.pool
		n.pool = p.Next
		n.nextPkt++
		id = n.nextPkt
	}
	*p = route.Packet{ID: id, Src: src, Dst: dst, SrcRouter: sr, DstRouter: dr, Len: flits}
	p.Reset()
	return p
}

// freePacket returns a packet to the pool.
func (n *Network) freePacket(p *route.Packet) {
	p.Next = n.pool
	n.pool = p
}

// InFlight reports how many packets have been injected but not delivered.
func (n *Network) InFlight() uint64 {
	return n.InjectedPackets - n.DeliveredPackets
}
