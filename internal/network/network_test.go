package network

import (
	"sort"
	"testing"

	"hyperx/internal/core"
	"hyperx/internal/route"
	"hyperx/internal/routing"
	"hyperx/internal/sim"
	"hyperx/internal/topology"
)

func buildNet(t *testing.T, h *topology.HyperX, alg route.Algorithm, mut func(*Config)) *Network {
	t.Helper()
	cfg := Config{Topo: h, Alg: alg, Seed: 1}
	if mut != nil {
		mut(&cfg)
	}
	n, err := New(sim.NewKernel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSinglePacketLatency: one packet, one hop in each dimension — the
// end-to-end latency must equal the deterministic pipeline sum:
// injection channel + per-hop (crossbar + channel) + ejection
// (crossbar + terminal channel).
func TestSinglePacketLatency(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 2)
	n := buildNet(t, h, routing.NewDOR(h), nil)
	src, dst := 0, h.NumTerminals()-1
	var deliveredAt sim.Time
	n.OnDeliver = func(p *route.Packet, at sim.Time) { deliveredAt = at }
	p := n.NewPacket(src, dst, 1)
	n.Terminals[src].Send(p)
	n.K.Run(0)
	hops := sim.Time(h.MinHops(0, h.NumRouters()-1))
	want := n.Cfg.TermChanLat + // inject
		hops*(n.Cfg.XbarLat+n.Cfg.RouterChanLat) + // router hops
		n.Cfg.XbarLat + n.Cfg.TermChanLat // eject
	if deliveredAt != want {
		t.Errorf("delivery at %d, want %d", deliveredAt, want)
	}
	if n.DeliveredPackets != 1 || n.DeliveredFlits != 1 {
		t.Errorf("counters %d/%d", n.DeliveredPackets, n.DeliveredFlits)
	}
}

// TestSerialization: two max-size packets to the same destination share
// the ejection channel, so the second arrives at least Len cycles after
// the first.
func TestSerialization(t *testing.T) {
	h := topology.MustHyperX([]int{4}, 2)
	n := buildNet(t, h, routing.NewDOR(h), nil)
	var times []sim.Time
	n.OnDeliver = func(p *route.Packet, at sim.Time) { times = append(times, at) }
	for i := 0; i < 2; i++ {
		n.Terminals[0].Send(n.NewPacket(0, 7, 16))
	}
	n.K.Run(0)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if d := times[1] - times[0]; d < 16 {
		t.Errorf("second packet only %d cycles behind the first; channel serialization broken", d)
	}
}

// TestConservation: every injected packet is delivered exactly once, for
// every algorithm, under bursty all-to-all traffic.
func TestConservation(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 2)
	algs := []route.Algorithm{
		routing.NewDOR(h),
		routing.NewVAL(h),
		routing.NewUGAL(h),
		routing.NewClosAD(h),
		routing.NewMinAD(h),
		core.NewDimWAR(h),
		core.MustOmniWAR(h, 8, false),
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			n := buildNet(t, h, alg, nil)
			delivered := map[uint64]int{}
			n.OnDeliver = func(p *route.Packet, _ sim.Time) { delivered[p.ID]++ }
			sent := 0
			for src := 0; src < h.NumTerminals(); src++ {
				for k := 0; k < 5; k++ {
					dst := (src + k*7 + 1) % h.NumTerminals()
					if dst == src {
						continue
					}
					n.Terminals[src].Send(n.NewPacket(src, dst, 1+(src+k)%16))
					sent++
				}
			}
			n.K.Run(0)
			if int(n.DeliveredPackets) != sent {
				t.Fatalf("delivered %d of %d", n.DeliveredPackets, sent)
			}
			ids := make([]uint64, 0, len(delivered))
			for id := range delivered {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				if delivered[id] != 1 {
					t.Fatalf("packet %d delivered %d times", id, delivered[id])
				}
			}
		})
	}
}

// TestDeliveryToCorrectTerminal: packets arrive where addressed.
func TestDeliveryToCorrectTerminal(t *testing.T) {
	h := topology.MustHyperX([]int{3, 3, 3}, 2)
	n := buildNet(t, h, core.NewDimWAR(h), nil)
	want := map[uint64]int{}
	n.OnDeliver = func(p *route.Packet, _ sim.Time) {
		if want[p.ID] != p.Dst {
			t.Errorf("packet %d delivered to %d, want %d", p.ID, p.Dst, want[p.ID])
		}
		delete(want, p.ID)
	}
	for src := 0; src < h.NumTerminals(); src++ {
		dst := (src*17 + 5) % h.NumTerminals()
		if dst == src {
			continue
		}
		p := n.NewPacket(src, dst, 3)
		want[p.ID] = dst
		n.Terminals[src].Send(p)
	}
	n.K.Run(0)
	if len(want) != 0 {
		t.Errorf("%d packets undelivered", len(want))
	}
}

// TestDeterminism: identical configurations and seeds produce identical
// delivery traces.
func TestDeterminism(t *testing.T) {
	trace := func() []sim.Time {
		h := topology.MustHyperX([]int{4, 4}, 2)
		n := buildNet(t, h, core.MustOmniWAR(h, 8, false), nil)
		var out []sim.Time
		n.OnDeliver = func(p *route.Packet, at sim.Time) { out = append(out, at) }
		for src := 0; src < h.NumTerminals(); src++ {
			for k := 0; k < 3; k++ {
				dst := (src + 11*k + 3) % h.NumTerminals()
				if dst != src {
					n.Terminals[src].Send(n.NewPacket(src, dst, 1+k))
				}
			}
		}
		n.K.Run(0)
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestSaturationProgress is the deadlock-freedom test: drive heavy
// adversarial (complement) traffic far beyond saturation with every
// algorithm and assert the network keeps delivering throughout.
func TestSaturationProgress(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 2)
	algs := []route.Algorithm{
		routing.NewDOR(h),
		routing.NewVAL(h),
		routing.NewUGAL(h),
		routing.NewClosAD(h),
		routing.NewMinAD(h),
		core.NewDimWAR(h),
		core.MustOmniWAR(h, 8, false),
		core.MustOmniWAR(h, 8, true),
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			n := buildNet(t, h, alg, nil)
			nt := h.NumTerminals()
			// Saturating complement traffic: every terminal floods its
			// complement, the worst structural stress for VC cycles.
			for src := 0; src < nt; src++ {
				for k := 0; k < 40; k++ {
					n.Terminals[src].Send(n.NewPacket(src, nt-1-src, 16))
				}
			}
			last := uint64(0)
			for step := 0; step < 20; step++ {
				n.K.Run(n.K.Now() + 2000)
				if n.DeliveredPackets == uint64(40*nt) {
					return // all drained
				}
				if n.DeliveredPackets == last {
					t.Fatalf("no progress between %d and %d cycles (delivered %d/%d) — deadlock",
						n.K.Now()-2000, n.K.Now(), n.DeliveredPackets, 40*nt)
				}
				last = n.DeliveredPackets
			}
			if n.DeliveredPackets != uint64(40*nt) {
				t.Fatalf("only %d/%d delivered after %d cycles", n.DeliveredPackets, 40*nt, n.K.Now())
			}
		})
	}
}

// TestAtomicAllocSlows: atomic queue allocation (Section 4.2) sharply
// reduces link utilization versus normal credit flow control.
func TestAtomicAllocSlows(t *testing.T) {
	h := topology.MustHyperX([]int{4}, 1)
	run := func(atomic bool) sim.Time {
		n := buildNet(t, h, routing.NewDOR(h), func(c *Config) { c.AtomicVCAlloc = atomic })
		// A long single-VC stream across one link.
		for k := 0; k < 50; k++ {
			n.Terminals[0].Send(n.NewPacket(0, 3, 4))
		}
		var lastAt sim.Time
		n.OnDeliver = func(p *route.Packet, at sim.Time) { lastAt = at }
		n.K.Run(0)
		return lastAt
	}
	normal, atomic := run(false), run(true)
	if atomic < 2*normal {
		t.Errorf("atomic finish %d not much slower than normal %d", atomic, normal)
	}
}

// TestConfigValidation: bad configurations are rejected.
func TestConfigValidation(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 2)
	if _, err := New(sim.NewKernel(), Config{Topo: h}); err == nil {
		t.Error("missing algorithm accepted")
	}
	if _, err := New(sim.NewKernel(), Config{Topo: h, Alg: core.MustOmniWAR(h, 8, false), NumVCs: 4}); err == nil {
		t.Error("8 classes on 4 VCs accepted")
	}
	if _, err := New(sim.NewKernel(), Config{Topo: h, Alg: routing.NewDOR(h), BufDepth: 8, MaxPktFlits: 16}); err == nil {
		t.Error("packet larger than buffer accepted")
	}
}

// TestClassVCPartition: VCs are split evenly with spares to the earlier
// classes (footnote 4).
func TestClassVCPartition(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 2)
	n := buildNet(t, h, routing.NewUGAL(h), nil) // 2 classes, 8 VCs
	a, b := n.VCsForClass(0), n.VCsForClass(1)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("partition %d/%d, want 4/4", len(a), len(b))
	}
	seen := map[int8]bool{}
	for _, v := range append(append([]int8{}, a...), b...) {
		if seen[v] {
			t.Fatalf("VC %d in two classes", v)
		}
		seen[v] = true
	}
}

// TestPacketPoolReuse: the pool recycles without corrupting identity.
func TestPacketPoolReuse(t *testing.T) {
	h := topology.MustHyperX([]int{4}, 1)
	n := buildNet(t, h, routing.NewDOR(h), nil)
	p1 := n.NewPacket(0, 1, 4)
	id1 := p1.ID
	n.freePacket(p1)
	p2 := n.NewPacket(1, 2, 8)
	if p2.ID == id1 {
		t.Error("recycled packet kept its old ID")
	}
	if p2.Len != 8 || p2.Inter != -1 || p2.Hops != 0 {
		t.Errorf("recycled packet not reset: %+v", p2)
	}
}
