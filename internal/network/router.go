package network

import (
	"fmt"

	"hyperx/internal/rng"
	"hyperx/internal/route"
	"hyperx/internal/sim"
	"hyperx/internal/topology"
)

// Event op codes for the typed sim.Actor dispatch. Routers, terminals,
// the network, and the traffic generator each implement sim.Actor so the
// hot path schedules pre-bound events instead of closures; the op selects
// the handler within the receiver, and the meaning of (a, b, c, p) is
// per-op. Every op here replaced a closure that was allocated per packet
// or per arbitration attempt.
const (
	opArrive     uint8 = iota // Router: packet head reaches input (a=port, b=vc, p=*route.Packet)
	opAttempt                 // Router: retry output arbitration (a=port)
	opCredit                  // Router: upstream credit return (a=port, b=vc, c=flits)
	opReroute                 // Router: blocked-waiter re-route timer (p=*waiter)
	opDeliver                 // Network: packet reaches its terminal (p=*route.Packet)
	opTermRetry               // Terminal: injection-channel retry
	opTermCredit              // Terminal: injection credit return (a=vc, b=flits)
)

// inputVC is one per-(port,VC) packet buffer. Occupancy accounting lives
// at the sender as credits; the queue here holds the packets themselves,
// as an intrusive FIFO through Packet.Next — a packet sits in exactly one
// buffer, so queueing is pointer threading with no per-entry storage.
type inputVC struct {
	head, tail *route.Packet
	n          int32
}

func (iv *inputVC) empty() bool { return iv.n == 0 }

func (iv *inputVC) front() *route.Packet { return iv.head }

func (iv *inputVC) push(p *route.Packet) {
	p.Next = nil
	if iv.tail == nil {
		iv.head = p
	} else {
		iv.tail.Next = p
	}
	iv.tail = p
	iv.n++
}

func (iv *inputVC) pop() *route.Packet {
	p := iv.head
	iv.head = p.Next
	if iv.head == nil {
		iv.tail = nil
	}
	p.Next = nil
	iv.n--
	return p
}

// inputPort groups the VC buffers of one input and remembers where
// credits must be returned.
type inputPort struct {
	vcs []inputVC

	fromTerminal int // terminal id, or -1
	peerRouter   int // upstream router, or -1
	peerPort     int
	upLat        sim.Time // reverse-channel latency for credit return
}

// waiter is a head packet with a committed-pending routing choice,
// queued on its chosen output port.
type waiter struct {
	pkt    *route.Packet
	inPort int
	inVC   int8
	cand   route.Candidate // cand.Port == owning output
	eject  bool
	timer  *sim.Event
	active bool
}

// outputPort models an output channel (1 flit/cycle serialization, fixed
// pipeline latency) plus the credit state of the downstream buffer.
type outputPort struct {
	lat       sim.Time
	busyUntil sim.Time
	credits   []int32 // free flit slots downstream, per VC
	waiters   []*waiter

	toTerminal int // terminal id, or -1
	peerRouter int
	peerPort   int

	queuedFlits int // flits of packets waiting on this output (congestion signal)

	attemptAt sim.Time // time of the latest scheduled attempt, 0 = none

	busyAccum sim.Time // total cycles this channel has carried flits
	grants    uint64   // packets granted through this output

	dead bool // link failed: zero credits, excluded from routing and arbitration
}

// Router is the combined input/output-queued router model.
type Router struct {
	net   *Network
	id    int
	in    []inputPort
	out   []outputPort
	ctx   route.Ctx
	wfree []*waiter // waiter pool: zero steady-state allocation in routeHead

	// sc is this router's shard context, set once by ConfigureShards and
	// consulted (behind net.sharded) wherever the router schedules events
	// or touches global state. Nil until shards are configured.
	sc *ShardState
}

// schedAt schedules a typed event, diverting to the shard stage during a
// parallel phase so the merge can assign sequence numbers serially.
func (r *Router) schedAt(t sim.Time, act sim.Actor, op uint8, a, b, c int32, p any) *sim.Event {
	if r.net.sharded {
		return r.sc.Stage.AtAct(t, act, op, a, b, c, p)
	}
	return r.net.K.AtAct(t, act, op, a, b, c, p)
}

// schedAfter is schedAt relative to the executing event's time.
func (r *Router) schedAfter(d sim.Time, act sim.Actor, op uint8, a, b, c int32, p any) *sim.Event {
	return r.schedAt(r.now()+d, act, op, a, b, c, p)
}

// now returns the model clock: during a parallel phase the shard stage's
// clock, which tracks the event executing on this shard (the kernel
// clock is frozen at the window start then), the kernel clock otherwise.
func (r *Router) now() sim.Time {
	if r.net.sharded {
		return r.sc.Stage.Now()
	}
	return r.net.K.Now()
}

// Act implements sim.Actor: the typed-event entry point for all router
// work (arrivals, arbitration attempts, credit returns, re-route timers).
func (r *Router) Act(op uint8, a, b, c int32, p any) {
	switch op {
	case opArrive:
		r.arrive(p.(*route.Packet), int(a), int8(b))
	case opAttempt:
		port := int(a)
		o := &r.out[port]
		// The event fires exactly at its scheduled time, so now() is the
		// `t` this attempt was deduplicated under.
		if o.attemptAt == r.now() {
			o.attemptAt = 0
		}
		r.attempt(port)
	case opCredit:
		r.creditArrive(int(a), int8(b), int(c))
	case opReroute:
		r.reroute(p.(*waiter))
	}
}

// waiterChunk is how many waiter structs one pool refill allocates: the
// pool grows a slab at a time toward the router's high-water concurrency
// instead of one struct per miss.
const waiterChunk = 16

// getWaiter takes a waiter from the pool, initialized for a new decision.
func (r *Router) getWaiter(pkt *route.Packet, inPort int, inVC int8) *waiter {
	n := len(r.wfree)
	if n == 0 {
		//hxlint:allow allocfree — chunked pool refill: one slab per waiterChunk decisions, amortizing to zero at the router's high-water concurrency
		chunk := make([]waiter, waiterChunk)
		for i := range chunk {
			//hxlint:allow allocfree — the free list grows once, to the refill slab's size, then recycles in place
			r.wfree = append(r.wfree, &chunk[i])
		}
		n = len(r.wfree)
	}
	w := r.wfree[n-1]
	r.wfree = r.wfree[:n-1]
	*w = waiter{pkt: pkt, inPort: inPort, inVC: inVC, active: true}
	return w
}

// putWaiter recycles an unregistered waiter. Callers must copy any fields
// they still need first: the pool may hand the same struct straight back
// to the next routeHead.
func (r *Router) putWaiter(w *waiter) {
	w.pkt = nil
	w.timer = nil
	//hxlint:allow allocfree — returns capacity the pool already handed out; never exceeds the refill high-water mark
	r.wfree = append(r.wfree, w)
}

// routerSlabs hands a router its views into the network-level state
// slabs: the router owns the subslices exclusively, but the backing
// arrays are contiguous across all routers (see Network build).
type routerSlabs struct {
	in      []inputPort       // np ports
	out     []outputPort      // np ports
	vcs     []inputVC         // np*nv buffers
	credits []int32           // np*nv downstream counters
	waiterQ []*waiter         // np*nv pointer slots: cap nv per output
	wstock  []waiter          // initial waiter-pool stock
	wfree   []*waiter         // pool free-list backing, cap np*nv
	cands   []route.Candidate // candidate scratch, cap = offered-port bound
}

// initRouter wires a slab-allocated Router in place.
func initRouter(r *Router, n *Network, id int, rs *rng.Source, sl routerSlabs) {
	topo := n.Cfg.Topo
	np := topo.NumPorts()
	nv := n.Cfg.NumVCs
	*r = Router{net: n, id: id, in: sl.in, out: sl.out}
	r.ctx = route.Ctx{Router: id, RNG: rs, ClassSense: n.Cfg.ClassSense, Cands: sl.cands}
	r.wfree = sl.wfree
	for i := range sl.wstock {
		r.wfree = append(r.wfree, &sl.wstock[i])
	}
	for p := 0; p < np; p++ {
		ip := &r.in[p]
		op := &r.out[p]
		ip.vcs = sl.vcs[p*nv : (p+1)*nv : (p+1)*nv]
		ip.fromTerminal, ip.peerRouter, ip.peerPort = -1, -1, -1
		op.toTerminal, op.peerRouter, op.peerPort = -1, -1, -1
		op.credits = sl.credits[p*nv : (p+1)*nv : (p+1)*nv]
		op.waiters = sl.waiterQ[p*nv : p*nv : (p+1)*nv]
		switch topo.PortKind(id, p) {
		case topology.Terminal:
			t := topo.PortTerminal(id, p)
			ip.fromTerminal = t
			ip.upLat = n.Cfg.TermChanLat
			op.toTerminal = t
			op.lat = n.Cfg.TermChanLat
			for v := range op.credits {
				op.credits[v] = 1 << 30 // terminals always drain
			}
		case topology.Local, topology.Global:
			pr, pp := topo.Peer(id, p)
			ip.peerRouter, ip.peerPort = pr, pp
			ip.upLat = n.Cfg.RouterChanLat
			op.peerRouter, op.peerPort = pr, pp
			op.lat = n.Cfg.RouterChanLat
			if n.Cfg.Faults.Dead(id, p) {
				// Failed link: the output never accumulates credits, so
				// arbitration can never grant it even if a stale decision
				// lands here.
				op.dead = true
				continue
			}
			for v := range op.credits {
				op.credits[v] = int32(n.Cfg.BufDepth)
			}
		}
	}
}

// view adapts the router's output state to route.View.
type view Router

// ClassLoad implements route.View.
func (v *view) ClassLoad(port int, class int8) int {
	r := (*Router)(v)
	o := &r.out[port]
	depth := r.net.Cfg.BufDepth
	best := depth // max possible occupancy
	if o.toTerminal >= 0 {
		best = 0
	} else {
		for _, vc := range r.net.classVCs[class] {
			if occ := depth - int(o.credits[vc]); occ < best {
				best = occ
			}
		}
	}
	return best + o.queuedFlits + r.residual(o)
}

// PortLoad implements route.View.
func (v *view) PortLoad(port int) int {
	r := (*Router)(v)
	o := &r.out[port]
	total := 0
	if o.toTerminal < 0 {
		depth := r.net.Cfg.BufDepth
		for _, c := range o.credits {
			total += depth - int(c)
		}
	}
	return total + o.queuedFlits + r.residual(o)
}

// PortAlive implements route.View.
func (v *view) PortAlive(port int) bool {
	return !(*Router)(v).out[port].dead
}

func (r *Router) residual(o *outputPort) int {
	if d := o.busyUntil - r.now(); d > 0 {
		return int(d)
	}
	return 0
}

// arrive is called when a packet's head reaches input (port, vc).
func (r *Router) arrive(p *route.Packet, port int, vc int8) {
	iv := &r.in[port].vcs[vc]
	p.VC = vc
	iv.push(p)
	if iv.n == 1 { // became head
		r.routeHead(port, vc)
	}
}

// routeHead computes (or recomputes) the routing decision for the head
// packet of input (port, vc) and registers it on the chosen output.
func (r *Router) routeHead(port int, vc int8) {
	iv := &r.in[port].vcs[vc]
	p := iv.front()
	w := r.getWaiter(p, port, vc)
	if p.DstRouter == r.id {
		_, ejPort := r.net.Cfg.Topo.TerminalPort(p.Dst)
		w.eject = true
		w.cand = route.Candidate{Port: ejPort, Class: -1, HopsLeft: 0}
	} else {
		ctx := &r.ctx
		ctx.InPort = port
		ctx.View = (*view)(r)
		cands := r.net.Cfg.Alg.Route(ctx, p)
		ctx.Cands = cands // keep the grown buffer for reuse
		if r.net.hasFaults {
			// Drop candidates on dead ports in place. Fault-aware
			// algorithms never emit them; this is the safety net for the
			// fault-oblivious baselines (DOR, VAL, UGAL, ...), whose
			// dimension-ordered hops cannot route around a failed link.
			kept := cands[:0]
			for _, c := range cands {
				if !r.out[c.Port].dead {
					kept = append(kept, c)
				}
			}
			cands = kept
			ctx.Cands = cands
		}
		if len(cands) == 0 {
			if r.net.hasFaults {
				// Detect-and-drop: on a faulted network a packet with no
				// live candidate is discarded and counted rather than
				// wedging the VC (or panicking). See DESIGN notes on
				// graceful degradation semantics.
				r.putWaiter(w)
				r.drop(port, vc)
				return
			}
			panic(fmt.Sprintf("network: %s produced no route at router %d for packet %d->%d (hops=%d class=%d phase=%d inter=%d)",
				r.net.Cfg.Alg.Name(), r.id, p.Src, p.Dst, p.Hops, p.Class, p.Phase, p.Inter))
		}
		w.cand = cands[route.SelectMinWeight(ctx, cands)]
		// A blocked decision goes stale; re-evaluate periodically so
		// incremental adaptivity keeps responding to changing congestion.
		w.timer = r.schedAfter(r.net.Cfg.ReRouteInterval, r, opReroute, 0, 0, 0, w)
	}
	o := &r.out[w.cand.Port]
	//hxlint:allow allocfree — the waiter queue is slab-backed with capacity for one waiter per VC of the port, the registration invariant's maximum
	o.waiters = append(o.waiters, w)
	o.queuedFlits += p.Len
	r.attempt(w.cand.Port)
}

// reroute re-runs route computation for a still-blocked waiter.
func (r *Router) reroute(w *waiter) {
	if !w.active {
		return
	}
	port, vc := w.inPort, w.inVC
	r.unregister(w)
	r.putWaiter(w) // routeHead below may reuse it for the fresh decision
	r.routeHead(port, vc)
}

// unregister removes a waiter from its output's wait list.
func (r *Router) unregister(w *waiter) {
	w.active = false
	if w.timer != nil {
		r.net.K.Cancel(w.timer)
		w.timer = nil
	}
	o := &r.out[w.cand.Port]
	for i, x := range o.waiters {
		if x == w {
			last := len(o.waiters) - 1
			o.waiters[i] = o.waiters[last]
			o.waiters[last] = nil
			o.waiters = o.waiters[:last]
			break
		}
	}
	o.queuedFlits -= w.pkt.Len
}

// drop discards the head packet of input (port, vc) because routing
// found no live candidate: the packet is counted, its buffer space is
// freed (the credit crosses the reverse channel as usual), and the next
// packet of the VC is routed. Only reachable on faulted networks.
func (r *Router) drop(port int, vc int8) {
	iv := &r.in[port].vcs[vc]
	p := iv.pop()
	n := r.net
	if n.sharded {
		// Counters, the OnDrop observer, and the packet free replay at the
		// merge in serial order.
		r.sc.stageFx(effect{kind: fxDrop, p: p})
	} else {
		n.DroppedPackets++
		n.DroppedFlits += uint64(p.Len)
		if n.OnDrop != nil {
			n.OnDrop(p, n.K.Now())
		}
	}
	flits := p.Len
	ip := &r.in[port]
	if ip.fromTerminal >= 0 {
		term := n.Terminals[ip.fromTerminal]
		r.schedAt(r.now()+ip.upLat, term, opTermCredit, int32(vc), int32(flits), 0, nil)
	} else {
		up := n.Routers[ip.peerRouter]
		upPort := ip.peerPort
		r.schedAt(r.now()+ip.upLat, up, opCredit, int32(upPort), int32(vc), int32(flits), nil)
	}
	if !n.sharded {
		n.freePacket(p)
	}
	if !iv.empty() {
		r.routeHead(port, vc)
	}
}

// pickVC selects the physical VC for a grant: the most-credited VC of the
// resource class that can hold the whole packet (or, under atomic queue
// allocation, whose downstream buffer is completely empty). Returns -1 if
// none qualifies.
func (r *Router) pickVC(o *outputPort, class int8, flits int) int8 {
	if o.toTerminal >= 0 {
		return 0
	}
	need := int32(flits)
	if r.net.Cfg.AtomicVCAlloc {
		need = int32(r.net.Cfg.BufDepth)
	}
	best, bestCr := int8(-1), int32(0)
	for _, vc := range r.net.classVCs[class] {
		if cr := o.credits[vc]; cr >= need && cr > bestCr {
			best, bestCr = vc, cr
		}
	}
	return best
}

// attempt tries to grant the output channel of port to the oldest
// eligible waiter (age-based arbitration).
func (r *Router) attempt(port int) {
	o := &r.out[port]
	now := r.now()
	if o.busyUntil > now {
		r.scheduleAttempt(port, o.busyUntil)
		return
	}
	if len(o.waiters) == 0 {
		return
	}
	var best *waiter
	var bestVC int8
	eligible := 0
	for _, w := range o.waiters {
		vc := r.pickVC(o, w.cand.Class, w.pkt.Len)
		if vc < 0 {
			continue
		}
		eligible++
		switch r.net.Cfg.Arbiter {
		case FIFOArbiter:
			// Waiters register in arrival order; keep the first eligible.
			if best == nil {
				best, bestVC = w, vc
			}
		case RandomArbiter:
			// Reservoir-sample among the eligible.
			if best == nil || r.ctx.RNG.Intn(eligible) == 0 {
				best, bestVC = w, vc
			}
		default: // AgeArbiter
			if best == nil || w.pkt.Birth < best.pkt.Birth {
				best, bestVC = w, vc
			}
		}
	}
	if best == nil {
		return
	}
	r.grant(o, best, bestVC)
}

// scheduleAttempt schedules an attempt for port at time t, deduplicating.
func (r *Router) scheduleAttempt(port int, t sim.Time) {
	o := &r.out[port]
	if o.attemptAt > 0 && o.attemptAt <= t {
		return // an attempt at or before t is already pending
	}
	o.attemptAt = t
	r.schedAt(t, r, opAttempt, int32(port), 0, 0, nil)
}

// grant moves a packet from its input buffer across the crossbar and
// channel, reserving downstream space and returning upstream credits as
// the flits drain.
func (r *Router) grant(o *outputPort, w *waiter, vc int8) {
	now := r.now()
	// Copy the fields needed past unregister: the waiter goes back to the
	// pool and may be reissued by the routeHead call below.
	inPort, inVC, cand := w.inPort, w.inVC, w.cand
	iv := &r.in[inPort].vcs[inVC]
	p := iv.pop()
	r.unregister(w)
	r.putWaiter(w)

	flits := p.Len
	o.busyUntil = now + sim.Time(flits)
	o.busyAccum += sim.Time(flits)
	o.grants++

	if o.toTerminal >= 0 {
		r.schedAt(now+r.net.Cfg.XbarLat+o.lat, r.net, opDeliver, 0, 0, 0, p)
	} else {
		route.Commit(p, &cand)
		o.credits[vc] -= int32(flits)
		p.VC = vc
		if r.net.OnHop != nil {
			if r.net.sharded {
				// The packet is in flight for the rest of the cycle, so its
				// committed routing state is stable until the merge replays
				// the observer call.
				r.sc.stageFx(effect{kind: fxHop, p: p, a: int32(r.id), b: int32(cand.Port), c: int32(vc)})
			} else {
				r.net.OnHop(p, r.id, cand.Port, vc)
			}
		}
		dst := r.net.Routers[o.peerRouter]
		r.schedAt(now+r.net.Cfg.XbarLat+o.lat, dst, opArrive, int32(o.peerPort), int32(vc), 0, p)
	}

	// Upstream credit return: the last flit leaves our input buffer at
	// now+flits; the credit crosses the reverse channel after upLat.
	ip := &r.in[inPort]
	if ip.fromTerminal >= 0 {
		term := r.net.Terminals[ip.fromTerminal]
		r.schedAt(now+sim.Time(flits)+ip.upLat, term, opTermCredit, int32(inVC), int32(flits), 0, nil)
	} else {
		up := r.net.Routers[ip.peerRouter]
		r.schedAt(now+sim.Time(flits)+ip.upLat, up, opCredit, int32(ip.peerPort), int32(inVC), int32(flits), nil)
	}

	if !iv.empty() {
		r.routeHead(inPort, inVC)
	}
	if len(o.waiters) > 0 {
		r.scheduleAttempt(cand.Port, o.busyUntil)
	}
}

// creditArrive restores downstream space on (port, vc) and retries the
// output.
func (r *Router) creditArrive(port int, vc int8, flits int) {
	r.out[port].credits[vc] += int32(flits)
	r.attempt(port)
}

// deliver completes a packet at its destination terminal. In sharded mode
// the whole completion — counters, observer, packet free — is staged on
// the destination router's shard and replayed at the merge, preserving
// the serial order of observer calls and pool operations.
func (n *Network) deliver(p *route.Packet) {
	if n.sharded {
		n.shards[n.shardOfRouter(p.DstRouter)].stageFx(effect{kind: fxDeliver, p: p})
		return
	}
	n.DeliveredPackets++
	n.DeliveredFlits += uint64(p.Len)
	if n.OnDeliver != nil {
		n.OnDeliver(p, n.K.Now())
	}
	n.freePacket(p)
}
