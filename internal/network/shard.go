// Sharded-execution support: the model-side half of the barrier-
// synchronized parallel executor (internal/shard). See internal/sim/stage.go
// for the kernel-side contract and docs/STATE.md for the full determinism
// argument.
//
// Routers are partitioned into contiguous index blocks, one block per
// shard; a terminal belongs to its router's shard, and every typed event
// in the model resolves to the single shard whose slab state its callback
// touches (sim.Sharded). During a window's parallel phase each shard
// executes its slice of the window's events strictly in serial (time,
// seq) order — including events its own callbacks schedule back inside
// the window, which sim.Stage.RunWindow interleaves locally — with all
// globally-visible work (schedule calls, aggregate counters, observer
// callbacks, packet-ID assignment, packet frees) staged into
// shard-private logs instead of applied. The single-threaded merge then
// replays the logs in global (time, seq) order, so sequence-number
// assignment, counter updates, and observer call order are bit-identical
// to a serial run.
//
// Why the parallel phase is race-free (each bullet names the state and
// its owner during the phase):
//
//   - Router slab state (input VCs, output ports, credits, waiters,
//     candidate scratch, per-router RNG): touched only by events of the
//     owning router, all in one shard. route.View exposes only the
//     deciding router's own output state.
//   - Terminal state (source queue, injection credits): touched only by
//     the terminal's own events and by the generator's injection event
//     for that terminal — both map to the terminal's router's shard.
//   - Packets: a packet is owned by exactly one queue or in-flight event
//     at a time. A handoff that stays on the shard (terminal-to-router
//     injection, local arbitration) is ordered by the shard's own serial
//     execution; a handoff that crosses shards is a router-to-router
//     schedule, and every one of those crosses at least RouterChanLat
//     cycles — the executor caps the window width at the minimum
//     cross-shard latency, so a packet's cross-router move always lands
//     outside the window, where the merge re-partitions ownership. The
//     ownership lemma is mechanized: Stage.AtAct panics on any
//     cross-shard schedule landing inside its window.
//   - Kernel: the parallel phase reads time only through the shard's
//     Stage clock (pinned to the executing event). Kernel.Cancel writes
//     only the cancelled event's dead flag, and the model cancels only
//     its own router's reroute timer — same-shard by construction.
//     Drained and in-window staged events stay cancellable until they
//     are executed or recycled, and RunWindow reads deadness at
//     processing time, so a cancel aimed at a later event of the same
//     window lands under sharding exactly as it does serially, where
//     the target would still be sitting in the calendar.
//   - Everything else the phase reads (topology tables, algorithm state,
//     Config, FaultSet, classVCs) is immutable during a run.
package network

import (
	"fmt"

	"hyperx/internal/route"
	"hyperx/internal/sim"
)

// effect kinds: the globally-visible side effects a shard stages during
// the parallel phase for the merge to replay in serial order.
const (
	fxID      uint8 = iota // assign the next packet ID (p)
	fxInject               // injection counters (a=flits)
	fxBirth                // generator birth observer (birth fn, a=src b=dst c=flits)
	fxHop                  // OnHop observer (p, a=router b=port c=vc)
	fxDeliver              // delivery counters + OnDeliver + packet free (p)
	fxDrop                 // drop counters + OnDrop + packet free (p)
	fxCount                // increment an external counter (aux)
)

// effect is one staged side effect. Replay happens the same cycle it was
// staged, so pointer payloads (the packet, the observer closure) are
// stable between staging and replay: a packet in a deliver/drop effect is
// dead to the model, and an in-flight packet's fields cannot change again
// within the cycle.
type effect struct {
	kind    uint8
	a, b, c int32
	p       *route.Packet
	aux     *uint64
	birth   func(src, dst, flits int, at sim.Time)
}

// execRec records one live event a shard executed: its trace identity and
// the END offsets of its staged schedule calls and effects in the shard's
// logs (the start offsets are the previous record's ends). A drained
// event's (at, seq) are copied in (ev nil); an in-window staged event is
// recorded by handle instead — its seq exists only after the merge's
// replay reaches its staging record, which precedes this one in the same
// shard's stream, so the seq is always assigned by the time the merge
// reads it.
type execRec struct {
	at     sim.Time
	seq    uint64
	ev     *sim.Event
	opsEnd int32
	fxEnd  int32
}

// ShardState is one shard's private execution context. All fields are
// written only by the owning shard during the parallel phase and only by
// the coordinator during the merge.
type ShardState struct {
	// Stage collects the shard's schedule calls; exported so the traffic
	// generator (package traffic) can stage its self-reschedule through it.
	Stage *sim.Stage

	net  *Network
	idx  int
	pool *route.Packet // shard-local packet free list (intrusive via Next)

	fx    []effect
	recs  []execRec
	batch []*sim.Event // this shard's slice of the current window

	// merge cursors (coordinator-only)
	cur    int
	opsPos int32
	fxPos  int32
}

// Record implements sim.Recorder: called by this shard's Stage.RunWindow
// immediately after each live event's callback, it delimits the event's
// staged schedule calls and effects in the shard-private logs. Everything
// it touches is owned by the executing shard — the globally-visible
// replay happens at the merge.
func (sc *ShardState) Record(at sim.Time, seq uint64, ev *sim.Event) {
	//hxlint:allow allocfree — the exec-record log grows to the shard's per-window high-water live-event count and is reset every merge
	sc.recs = append(sc.recs, execRec{at: at, seq: seq, ev: ev, opsEnd: int32(sc.Stage.StagedLen()), fxEnd: int32(len(sc.fx))})
}

// stageFx appends a staged side effect.
func (sc *ShardState) stageFx(f effect) {
	//hxlint:allow allocfree — the effect log grows to the shard's per-cycle high-water effect count and is reset (not reallocated) every merge
	sc.fx = append(sc.fx, f)
}

// StageBirth stages a generator birth-observer call (package traffic
// cannot reach stageFx). The observer fires at the merge with the cycle's
// time, exactly as the serial call would have.
func (sc *ShardState) StageBirth(fn func(src, dst, flits int, at sim.Time), src, dst, flits int) {
	sc.stageFx(effect{kind: fxBirth, a: int32(src), b: int32(dst), c: int32(flits), birth: fn})
}

// StageCount stages an increment of an external uint64 counter (e.g. the
// generator's SelfRedirects).
func (sc *ShardState) StageCount(ctr *uint64) {
	sc.stageFx(effect{kind: fxCount, aux: ctr})
}

// takePacket pops a packet from the shard-local pool, refilling with a
// chunk when empty.
func (sc *ShardState) takePacket() *route.Packet {
	if sc.pool == nil {
		//hxlint:allow allocfree — chunked pool refill, identical to the serial pool's: one slab per pktChunk packets; steady state recycles shard-locally (a freed packet returns to its source router's shard) and never refills
		chunk := make([]route.Packet, pktChunk)
		for i := range chunk[:pktChunk-1] {
			chunk[i].Next = &chunk[i+1]
		}
		sc.pool = &chunk[0]
	}
	p := sc.pool
	sc.pool = p.Next
	return p
}

// ConfigureShards partitions the network's routers into nsh contiguous
// blocks and builds (or rebuilds) the per-shard execution contexts. It
// does not activate sharded mode — EnterSharded does, per executor run —
// so a configured network still runs serially, bit-identical to an
// unconfigured one. nsh must be in [1, NumRouters].
func (n *Network) ConfigureShards(nsh int) error {
	nr := len(n.Routers)
	if nsh < 1 || nsh > nr {
		return fmt.Errorf("network: shard count %d outside [1, %d routers]", nsh, nr)
	}
	if n.sharded {
		return fmt.Errorf("network: ConfigureShards while sharded mode is active")
	}
	//hxlint:allow allocfree — configuration-time path: runs once per executor (re)build, never inside the event loop
	n.shards = make([]*ShardState, nsh)
	for s := range n.shards {
		n.shards[s] = &ShardState{Stage: sim.NewStage(s), net: n, idx: s}
	}
	for _, r := range n.Routers {
		r.sc = n.shards[n.shardOfRouter(r.id)]
	}
	for _, t := range n.Terminals {
		t.sc = n.shards[n.shardOfRouter(t.router)]
	}
	return nil
}

// NumShards returns the configured shard count (1 when unconfigured).
func (n *Network) NumShards() int {
	if len(n.shards) == 0 {
		return 1
	}
	return len(n.shards)
}

// shardOfRouter maps a router index to its contiguous-block shard.
func (n *Network) shardOfRouter(r int) int {
	return r * len(n.shards) / len(n.Routers)
}

// ShardOfTerminal maps a terminal to its router's shard (used by the
// traffic generator's sim.Sharded implementation).
func (n *Network) ShardOfTerminal(t int) int {
	return n.shardOfRouter(n.Terminals[t].router)
}

// TerminalShard returns terminal t's active shard context, or nil when
// sharded mode is off — the branch the generator's staging hangs off.
func (n *Network) TerminalShard(t int) *ShardState {
	if !n.sharded {
		return nil
	}
	return n.Terminals[t].sc
}

// EnterSharded activates sharded mode: schedule calls and globally-
// visible side effects divert to the per-shard stages until ExitSharded.
// The executor brackets every parallel phase with this pair, dropping to
// serial mode for cycles that cannot be sharded.
func (n *Network) EnterSharded() { n.sharded = true }

// ExitSharded deactivates sharded mode.
func (n *Network) ExitSharded() { n.sharded = false }

// ShardOf implements sim.Sharded for the network actor: delivery
// completion (opDeliver) touches only staged aggregate state and is
// assigned to the destination router's shard.
func (n *Network) ShardOf(_ uint8, _, _, _ int32, p any) int {
	return n.shardOfRouter(p.(*route.Packet).DstRouter)
}

// ShardOf implements sim.Sharded: every router event (arrive, attempt,
// credit, reroute) touches only the receiving router's slab state.
func (r *Router) ShardOf(_ uint8, _, _, _ int32, _ any) int {
	return r.net.shardOfRouter(r.id)
}

// ShardOf implements sim.Sharded: terminal events (retry, credit) touch
// only the terminal, which lives with its router.
func (t *Terminal) ShardOf(_ uint8, _, _, _ int32, _ any) int {
	return t.net.shardOfRouter(t.router)
}

// PartitionWindow distributes one drained window's events to their
// shards' batch lists, preserving (time, seq) order within each shard
// (the input is globally (time, seq)-sorted), and opens every shard's
// stage for the window ending (exclusive) at winEnd. It returns false —
// with every batch list cleared — when any event cannot be sharded (a
// closure, or an actor outside the model); the executor then requeues
// the batch and falls back to serial execution.
func (n *Network) PartitionWindow(batch []*sim.Event, winEnd sim.Time) bool {
	for _, sc := range n.shards {
		sc.Stage.StartWindow(winEnd)
	}
	for _, e := range batch {
		s, ok := e.Shard()
		if !ok {
			for _, sc := range n.shards {
				clearBatch(sc)
			}
			return false
		}
		sc := n.shards[s]
		//hxlint:allow allocfree — the per-shard batch list grows to the shard's per-window high-water event count and is reset every window
		sc.batch = append(sc.batch, e)
	}
	return true
}

func clearBatch(sc *ShardState) {
	for i := range sc.batch {
		sc.batch[i] = nil
	}
	sc.batch = sc.batch[:0]
}

// BatchLen reports how many of the current window's events shard s owns.
func (n *Network) BatchLen(s int) int { return len(n.shards[s].batch) }

// RunShard executes shard s's slice of the current window, in serial
// (time, seq) order, entirely against shard-private state: the shard's
// Stage interleaves the drained batch with in-window staged events,
// recycles dead ones (the serial kernel recycles them unexecuted too),
// and reports each live event to Record above.
func (n *Network) RunShard(s int) {
	sc := n.shards[s]
	sc.Stage.RunWindow(sc.batch, sc)
	clearBatch(sc)
}

// MergeWindow replays the window's staged work into the kernel and the
// network in global serial order: a (nsh)-way merge over the shards'
// execution records (each already (time, seq)-sorted) drives, per
// executed event, the clock, the trace hook, the injection of its staged
// schedule calls (this is where sequence numbers are assigned, in
// exactly the serial order: executing-event order crossed with
// within-callback program order), and the replay of its staged side
// effects. It returns whether the window's (time, seq)-maximal processed
// event — live or dead — was dead, which the executor needs for the
// serial until-overshoot quirk. Coordinator-only, between parallel
// phases.
func (n *Network) MergeWindow() (lastDead bool) {
	k := n.K
	for _, sc := range n.shards {
		sc.cur, sc.opsPos, sc.fxPos = 0, 0, 0
	}
	var live uint64
	for {
		var pick *ShardState
		var pickAt sim.Time
		var pickSeq uint64
		for _, sc := range n.shards {
			if sc.cur >= len(sc.recs) {
				continue
			}
			rec := &sc.recs[sc.cur]
			at, seq := rec.at, rec.seq
			if rec.ev != nil {
				// Staged-exec record: its seq was assigned when the merge
				// replayed its stager, earlier in this same shard's stream.
				seq = rec.ev.Seq()
			}
			if pick == nil || at < pickAt || (at == pickAt && seq < pickSeq) {
				pick, pickAt, pickSeq = sc, at, seq
			}
		}
		if pick == nil {
			break
		}
		rec := &pick.recs[pick.cur]
		pick.cur++
		live++
		k.SetNow(pickAt)
		if k.TraceExec != nil {
			k.TraceExec(pickAt, pickSeq)
		}
		pick.Stage.ReplayOps(k, int(pick.opsPos), int(rec.opsEnd))
		pick.opsPos = rec.opsEnd
		n.replayFx(pick.fx[pick.fxPos:rec.fxEnd], pickAt)
		pick.fxPos = rec.fxEnd
	}
	k.AddExecuted(live)
	var tailAt sim.Time
	var tailSeq uint64
	var has bool
	for _, sc := range n.shards {
		at, seq, dead, ok := sc.Stage.Tail()
		if !ok {
			continue
		}
		if !has || at > tailAt || (at == tailAt && seq > tailSeq) {
			tailAt, tailSeq, lastDead, has = at, seq, dead, true
		}
	}
	for _, sc := range n.shards {
		sc.Stage.ResetOps()
		for i := range sc.fx {
			sc.fx[i] = effect{}
		}
		sc.fx = sc.fx[:0]
		for i := range sc.recs {
			sc.recs[i].ev = nil
		}
		sc.recs = sc.recs[:0]
	}
	n.rebalanceStages()
	return lastDead
}

// replayFx applies one event's staged side effects in program order.
// Runs at the merge, single-threaded, with the clock argument carrying
// the event's execution time, so observer callbacks see exactly the
// serial timestamps.
func (n *Network) replayFx(fx []effect, now sim.Time) {
	for i := range fx {
		f := &fx[i]
		switch f.kind {
		case fxID:
			n.nextPkt++
			f.p.ID = n.nextPkt
		case fxInject:
			n.InjectedPackets++
			n.InjectedFlits += uint64(f.a)
		case fxBirth:
			f.birth(int(f.a), int(f.b), int(f.c), now)
		case fxHop:
			if n.OnHop != nil {
				n.OnHop(f.p, int(f.a), int(f.b), int8(f.c))
			}
		case fxDeliver:
			n.DeliveredPackets++
			n.DeliveredFlits += uint64(f.p.Len)
			if n.OnDeliver != nil {
				n.OnDeliver(f.p, now)
			}
			n.shardFreePacket(f.p)
		case fxDrop:
			n.DroppedPackets++
			n.DroppedFlits += uint64(f.p.Len)
			if n.OnDrop != nil {
				n.OnDrop(f.p, now)
			}
			n.shardFreePacket(f.p)
		case fxCount:
			*f.aux++
		}
	}
}

// shardFreePacket returns a dead packet to the pool of the shard that
// allocated it — the source router's — closing the per-shard circulation:
// each shard's allocation rate equals its long-run free-return rate, so
// no pool grows without bound.
func (n *Network) shardFreePacket(p *route.Packet) {
	sc := n.shards[n.shardOfRouter(p.SrcRouter)]
	p.Next = sc.pool
	sc.pool = p
}

// rebalanceStages equalizes the shards' event-pool depths after a merge.
// Staged events migrate between shards through the calendar (shard A
// stages an event that shard B later drains and recycles), so asymmetric
// traffic would otherwise drain one stage's pool — forcing fresh chunk
// allocations — while growing another's forever.
func (n *Network) rebalanceStages() {
	nsh := len(n.shards)
	if nsh < 2 {
		return
	}
	total := 0
	for _, sc := range n.shards {
		total += sc.Stage.PoolLen()
	}
	target := total / nsh
	recv := 0
	for _, sc := range n.shards {
		for sc.Stage.PoolLen() > target+1 {
			for recv < nsh && n.shards[recv].Stage.PoolLen() >= target {
				recv++
			}
			if recv == nsh {
				return
			}
			dst := n.shards[recv].Stage
			move := sc.Stage.PoolLen() - target
			if deficit := target - dst.PoolLen(); deficit < move {
				move = deficit
			}
			sc.Stage.MoveFree(dst, move)
		}
	}
}
