// Sharded-execution support: the model-side half of the barrier-
// synchronized parallel executor (internal/shard). See internal/sim/stage.go
// for the kernel-side contract and docs/STATE.md for the full determinism
// argument.
//
// Routers are partitioned into contiguous index blocks, one block per
// shard; a terminal belongs to its router's shard, and every typed event
// in the model resolves to the single shard whose slab state its callback
// touches (sim.Sharded). During a cycle's parallel phase each shard
// executes its slice of the cycle's events strictly in sequence order,
// with all globally-visible work — schedule calls, aggregate counters,
// observer callbacks, packet-ID assignment, packet frees — staged into
// shard-private logs instead of applied. The single-threaded merge then
// replays the logs in global sequence order, so sequence-number
// assignment, counter updates, and observer call order are bit-identical
// to a serial run.
//
// Why the parallel phase is race-free (each bullet names the state and
// its owner during the phase):
//
//   - Router slab state (input VCs, output ports, credits, waiters,
//     candidate scratch, per-router RNG): touched only by events of the
//     owning router, all in one shard. route.View exposes only the
//     deciding router's own output state.
//   - Terminal state (source queue, injection credits): touched only by
//     the terminal's own events and by the generator's injection event
//     for that terminal — both map to the terminal's router's shard.
//   - Packets: a packet is owned by exactly one queue or in-flight event
//     at a time; every handoff crosses at least the terminal channel
//     latency, so no two same-cycle events touch the same packet.
//   - Kernel: the parallel phase only reads K.Now() (pinned for the
//     cycle). Kernel.Cancel writes only the cancelled event's dead flag,
//     and the model cancels only its own router's reroute timer —
//     same-shard by construction. Drained events stay cancellable until
//     they are executed or recycled (queued clears at recycle, not at
//     drain), so a cancel aimed at a later-seq event of the same cycle
//     lands under sharding exactly as it does serially, where the
//     target would still be sitting in the calendar.
//   - Everything else the phase reads (topology tables, algorithm state,
//     Config, FaultSet, classVCs) is immutable during a run.
package network

import (
	"fmt"

	"hyperx/internal/route"
	"hyperx/internal/sim"
)

// effect kinds: the globally-visible side effects a shard stages during
// the parallel phase for the merge to replay in serial order.
const (
	fxID      uint8 = iota // assign the next packet ID (p)
	fxInject               // injection counters (a=flits)
	fxBirth                // generator birth observer (birth fn, a=src b=dst c=flits)
	fxHop                  // OnHop observer (p, a=router b=port c=vc)
	fxDeliver              // delivery counters + OnDeliver + packet free (p)
	fxDrop                 // drop counters + OnDrop + packet free (p)
	fxCount                // increment an external counter (aux)
)

// effect is one staged side effect. Replay happens the same cycle it was
// staged, so pointer payloads (the packet, the observer closure) are
// stable between staging and replay: a packet in a deliver/drop effect is
// dead to the model, and an in-flight packet's fields cannot change again
// within the cycle.
type effect struct {
	kind    uint8
	a, b, c int32
	p       *route.Packet
	aux     *uint64
	birth   func(src, dst, flits int, at sim.Time)
}

// execRec records one live event a shard executed: its trace identity and
// the END offsets of its staged schedule calls and effects in the shard's
// logs (the start offsets are the previous record's ends).
type execRec struct {
	at     sim.Time
	seq    uint64
	opsEnd int32
	fxEnd  int32
}

// ShardState is one shard's private execution context. All fields are
// written only by the owning shard during the parallel phase and only by
// the coordinator during the merge.
type ShardState struct {
	// Stage collects the shard's schedule calls; exported so the traffic
	// generator (package traffic) can stage its self-reschedule through it.
	Stage *sim.Stage

	net  *Network
	idx  int
	pool *route.Packet // shard-local packet free list (intrusive via Next)

	fx    []effect
	recs  []execRec
	batch []*sim.Event // this shard's slice of the current cycle

	// merge cursors (coordinator-only)
	cur    int
	opsPos int32
	fxPos  int32
}

// stageFx appends a staged side effect.
func (sc *ShardState) stageFx(f effect) {
	//hxlint:allow allocfree — the effect log grows to the shard's per-cycle high-water effect count and is reset (not reallocated) every merge
	sc.fx = append(sc.fx, f)
}

// StageBirth stages a generator birth-observer call (package traffic
// cannot reach stageFx). The observer fires at the merge with the cycle's
// time, exactly as the serial call would have.
func (sc *ShardState) StageBirth(fn func(src, dst, flits int, at sim.Time), src, dst, flits int) {
	sc.stageFx(effect{kind: fxBirth, a: int32(src), b: int32(dst), c: int32(flits), birth: fn})
}

// StageCount stages an increment of an external uint64 counter (e.g. the
// generator's SelfRedirects).
func (sc *ShardState) StageCount(ctr *uint64) {
	sc.stageFx(effect{kind: fxCount, aux: ctr})
}

// takePacket pops a packet from the shard-local pool, refilling with a
// chunk when empty.
func (sc *ShardState) takePacket() *route.Packet {
	if sc.pool == nil {
		//hxlint:allow allocfree — chunked pool refill, identical to the serial pool's: one slab per pktChunk packets; steady state recycles shard-locally (a freed packet returns to its source router's shard) and never refills
		chunk := make([]route.Packet, pktChunk)
		for i := range chunk[:pktChunk-1] {
			chunk[i].Next = &chunk[i+1]
		}
		sc.pool = &chunk[0]
	}
	p := sc.pool
	sc.pool = p.Next
	return p
}

// ConfigureShards partitions the network's routers into nsh contiguous
// blocks and builds (or rebuilds) the per-shard execution contexts. It
// does not activate sharded mode — EnterSharded does, per executor run —
// so a configured network still runs serially, bit-identical to an
// unconfigured one. nsh must be in [1, NumRouters].
func (n *Network) ConfigureShards(nsh int) error {
	nr := len(n.Routers)
	if nsh < 1 || nsh > nr {
		return fmt.Errorf("network: shard count %d outside [1, %d routers]", nsh, nr)
	}
	if n.sharded {
		return fmt.Errorf("network: ConfigureShards while sharded mode is active")
	}
	//hxlint:allow allocfree — configuration-time path: runs once per executor (re)build, never inside the event loop
	n.shards = make([]*ShardState, nsh)
	for s := range n.shards {
		n.shards[s] = &ShardState{Stage: sim.NewStage(), net: n, idx: s}
	}
	for _, r := range n.Routers {
		r.sc = n.shards[n.shardOfRouter(r.id)]
	}
	for _, t := range n.Terminals {
		t.sc = n.shards[n.shardOfRouter(t.router)]
	}
	return nil
}

// NumShards returns the configured shard count (1 when unconfigured).
func (n *Network) NumShards() int {
	if len(n.shards) == 0 {
		return 1
	}
	return len(n.shards)
}

// shardOfRouter maps a router index to its contiguous-block shard.
func (n *Network) shardOfRouter(r int) int {
	return r * len(n.shards) / len(n.Routers)
}

// ShardOfTerminal maps a terminal to its router's shard (used by the
// traffic generator's sim.Sharded implementation).
func (n *Network) ShardOfTerminal(t int) int {
	return n.shardOfRouter(n.Terminals[t].router)
}

// TerminalShard returns terminal t's active shard context, or nil when
// sharded mode is off — the branch the generator's staging hangs off.
func (n *Network) TerminalShard(t int) *ShardState {
	if !n.sharded {
		return nil
	}
	return n.Terminals[t].sc
}

// EnterSharded activates sharded mode: schedule calls and globally-
// visible side effects divert to the per-shard stages until ExitSharded.
// The executor brackets every parallel phase with this pair, dropping to
// serial mode for cycles that cannot be sharded.
func (n *Network) EnterSharded() { n.sharded = true }

// ExitSharded deactivates sharded mode.
func (n *Network) ExitSharded() { n.sharded = false }

// ShardOf implements sim.Sharded for the network actor: delivery
// completion (opDeliver) touches only staged aggregate state and is
// assigned to the destination router's shard.
func (n *Network) ShardOf(_ uint8, _, _, _ int32, p any) int {
	return n.shardOfRouter(p.(*route.Packet).DstRouter)
}

// ShardOf implements sim.Sharded: every router event (arrive, attempt,
// credit, reroute) touches only the receiving router's slab state.
func (r *Router) ShardOf(_ uint8, _, _, _ int32, _ any) int {
	return r.net.shardOfRouter(r.id)
}

// ShardOf implements sim.Sharded: terminal events (retry, credit) touch
// only the terminal, which lives with its router.
func (t *Terminal) ShardOf(_ uint8, _, _, _ int32, _ any) int {
	return t.net.shardOfRouter(t.router)
}

// PartitionCycle distributes one drained cycle's events to their shards'
// batch lists, preserving sequence order within each shard (the input is
// globally sequence-sorted). It returns false — with every batch list
// cleared — when any event cannot be sharded (a closure, or an actor
// outside the model); the executor then runs that cycle serially.
func (n *Network) PartitionCycle(batch []*sim.Event) bool {
	for _, e := range batch {
		s, ok := e.Shard()
		if !ok {
			for _, sc := range n.shards {
				clearBatch(sc)
			}
			return false
		}
		sc := n.shards[s]
		//hxlint:allow allocfree — the per-shard batch list grows to the shard's per-cycle high-water event count and is reset every cycle
		sc.batch = append(sc.batch, e)
	}
	return true
}

func clearBatch(sc *ShardState) {
	for i := range sc.batch {
		sc.batch[i] = nil
	}
	sc.batch = sc.batch[:0]
}

// BatchLen reports how many of the current cycle's events shard s owns.
func (n *Network) BatchLen(s int) int { return len(n.shards[s].batch) }

// RunShard executes shard s's slice of the current cycle, in sequence
// order, entirely against shard-private state: dead events are recycled
// into the shard's event pool (the serial kernel recycles them unexecuted
// too), live events run through the shard's Stage, and each live event's
// staged-work end offsets are recorded for the merge.
func (n *Network) RunShard(s int) {
	sc := n.shards[s]
	sc.Stage.StartCycle(n.K.Now())
	for _, e := range sc.batch {
		if e.Dead() {
			sc.Stage.Recycle(e)
			continue
		}
		at, seq := e.At(), e.Seq()
		sc.Stage.Exec(e)
		//hxlint:allow allocfree — the exec-record log grows to the shard's per-cycle high-water live-event count and is reset every merge
		sc.recs = append(sc.recs, execRec{at: at, seq: seq, opsEnd: int32(sc.Stage.StagedLen()), fxEnd: int32(len(sc.fx))})
	}
	clearBatch(sc)
}

// MergeCycle replays the cycle's staged work into the kernel and the
// network in global sequence order: a (nsh)-way merge over the shards'
// execution records (each already sequence-sorted) drives, per executed
// event, the trace hook, the injection of its staged schedule calls (this
// is where sequence numbers are assigned, in exactly the serial order:
// executing-event order crossed with within-callback program order), and
// the replay of its staged side effects. Coordinator-only, between
// parallel phases.
func (n *Network) MergeCycle() {
	k := n.K
	for _, sc := range n.shards {
		sc.cur, sc.opsPos, sc.fxPos = 0, 0, 0
	}
	var live uint64
	for {
		var pick *ShardState
		for _, sc := range n.shards {
			if sc.cur >= len(sc.recs) {
				continue
			}
			if pick == nil || sc.recs[sc.cur].seq < pick.recs[pick.cur].seq {
				pick = sc
			}
		}
		if pick == nil {
			break
		}
		rec := &pick.recs[pick.cur]
		pick.cur++
		live++
		if k.TraceExec != nil {
			k.TraceExec(rec.at, rec.seq)
		}
		pick.Stage.ReplayOps(k, int(pick.opsPos), int(rec.opsEnd))
		pick.opsPos = rec.opsEnd
		n.replayFx(pick.fx[pick.fxPos:rec.fxEnd])
		pick.fxPos = rec.fxEnd
	}
	k.AddExecuted(live)
	for _, sc := range n.shards {
		sc.Stage.ResetOps()
		for i := range sc.fx {
			sc.fx[i] = effect{}
		}
		sc.fx = sc.fx[:0]
		sc.recs = sc.recs[:0]
	}
	n.rebalanceStages()
}

// replayFx applies one event's staged side effects in program order.
// Runs at the merge, single-threaded, with the kernel clock still at the
// cycle's time, so observer callbacks see exactly the serial timestamps.
func (n *Network) replayFx(fx []effect) {
	now := n.K.Now()
	for i := range fx {
		f := &fx[i]
		switch f.kind {
		case fxID:
			n.nextPkt++
			f.p.ID = n.nextPkt
		case fxInject:
			n.InjectedPackets++
			n.InjectedFlits += uint64(f.a)
		case fxBirth:
			f.birth(int(f.a), int(f.b), int(f.c), now)
		case fxHop:
			if n.OnHop != nil {
				n.OnHop(f.p, int(f.a), int(f.b), int8(f.c))
			}
		case fxDeliver:
			n.DeliveredPackets++
			n.DeliveredFlits += uint64(f.p.Len)
			if n.OnDeliver != nil {
				n.OnDeliver(f.p, now)
			}
			n.shardFreePacket(f.p)
		case fxDrop:
			n.DroppedPackets++
			n.DroppedFlits += uint64(f.p.Len)
			if n.OnDrop != nil {
				n.OnDrop(f.p, now)
			}
			n.shardFreePacket(f.p)
		case fxCount:
			*f.aux++
		}
	}
}

// shardFreePacket returns a dead packet to the pool of the shard that
// allocated it — the source router's — closing the per-shard circulation:
// each shard's allocation rate equals its long-run free-return rate, so
// no pool grows without bound.
func (n *Network) shardFreePacket(p *route.Packet) {
	sc := n.shards[n.shardOfRouter(p.SrcRouter)]
	p.Next = sc.pool
	sc.pool = p
}

// rebalanceStages equalizes the shards' event-pool depths after a merge.
// Staged events migrate between shards through the calendar (shard A
// stages an event that shard B later drains and recycles), so asymmetric
// traffic would otherwise drain one stage's pool — forcing fresh chunk
// allocations — while growing another's forever.
func (n *Network) rebalanceStages() {
	nsh := len(n.shards)
	if nsh < 2 {
		return
	}
	total := 0
	for _, sc := range n.shards {
		total += sc.Stage.PoolLen()
	}
	target := total / nsh
	recv := 0
	for _, sc := range n.shards {
		for sc.Stage.PoolLen() > target+1 {
			for recv < nsh && n.shards[recv].Stage.PoolLen() >= target {
				recv++
			}
			if recv == nsh {
				return
			}
			dst := n.shards[recv].Stage
			move := sc.Stage.PoolLen() - target
			if deficit := target - dst.PoolLen(); deficit < move {
				move = deficit
			}
			sc.Stage.MoveFree(dst, move)
		}
	}
}
