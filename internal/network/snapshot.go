package network

import (
	"fmt"

	"hyperx/internal/route"
	"hyperx/internal/sim"
)

// This file implements the network half of the warm-state snapshot
// contract (docs/STATE.md). A Snapshot is a complete, relocatable value
// copy of every piece of mutable simulation state the network owns:
// packets (in queues and in flight), per-(port,VC) buffer occupancy,
// credit counters, blocked-waiter registrations, channel busy times,
// per-router RNG streams, aggregate counters, and the kernel calendar.
// Restoring it — into the same instance or into a second instance built
// from the identical Config — resumes the simulation bit-identically:
// the resumed run executes the same events, draws the same random
// values, and produces the same statistics an uninterrupted run would.
//
// Everything is stored positionally (slab indices, not pointers), which
// is what makes the snapshot relocatable and serializable: packet
// references become indices into the snapshot's packet table, waiter
// references become indices into its waiter table, and actors become
// (kind, id) codes. The intrusive free pools (packets, waiters) are
// deliberately NOT captured — pool contents are unobservable, and
// Restore rebuilds pools lazily.
//
// Restore is not atomic: if it returns an error the network is in an
// unspecified intermediate state and must be discarded. Errors only
// arise from malformed or mismatched snapshots, never from a snapshot
// taken of an identically-configured network.

// Actor and payload code kinds (the high 32 bits of a code; the low 32
// bits are the index). Payload code 0 is "no payload" by the kernel's
// convention, so payload kinds start at 1.
const (
	actorNetwork  uint64 = 1 // the Network itself (opDeliver events)
	actorRouter   uint64 = 2 // index = router id
	actorTerminal uint64 = 3 // index = terminal id
	actorExternal uint64 = 4 // index into the ext slice (traffic generator)

	payloadPacket uint64 = 1 // index into Snapshot.Packets
	payloadWaiter uint64 = 2 // index into Snapshot.Waiters
)

// WaiterState is the relocatable form of one blocked-head registration.
type WaiterState struct {
	Pkt    int32           `json:"pkt"` // index into Snapshot.Packets
	InPort int32           `json:"in_port"`
	InVC   int8            `json:"in_vc"`
	Eject  bool            `json:"eject"`
	Cand   route.Candidate `json:"cand"`
}

// OutPortState is the mutable half of one output port; wiring (peer,
// latency, dead flag) is build-time state and deliberately excluded.
type OutPortState struct {
	BusyUntil   sim.Time `json:"busy_until"`
	AttemptAt   sim.Time `json:"attempt_at"`
	BusyAccum   sim.Time `json:"busy_accum"`
	Grants      uint64   `json:"grants"`
	QueuedFlits int32    `json:"queued_flits"`
}

// TermState is the mutable scalar state of one terminal; its source
// queue and credits live in the flat tables below.
type TermState struct {
	BusyUntil sim.Time `json:"busy_until"`
	RetryAt   sim.Time `json:"retry_at"`
}

// Counters are the network's aggregate statistics plus the packet ID
// allocator position.
type Counters struct {
	InjectedPackets  uint64 `json:"injected_packets"`
	InjectedFlits    uint64 `json:"injected_flits"`
	DeliveredPackets uint64 `json:"delivered_packets"`
	DeliveredFlits   uint64 `json:"delivered_flits"`
	DroppedPackets   uint64 `json:"dropped_packets"`
	DroppedFlits     uint64 `json:"dropped_flits"`
	NextPkt          uint64 `json:"next_pkt"`
}

// Snapshot is a complete warm-state checkpoint of a Network. All queue
// contents are flattened: lens[i] gives queue i's length and the packet
// indices follow contiguously in the corresponding flat table, in FIFO
// order. See docs/STATE.md for the full inventory and exclusions.
type Snapshot struct {
	// Packets is the table of every live packet: source-queued,
	// VC-buffered, or in flight as an event payload. Next links are nil;
	// position in a queue is encoded by the index tables below.
	Packets []route.Packet `json:"packets"`

	TermQLens []int32 `json:"term_q_lens"` // nt entries
	TermQPkts []int32 `json:"term_q_pkts"` // sum(TermQLens) packet indices

	VCQLens []int32 `json:"vc_q_lens"` // nr*np*nv entries
	VCQPkts []int32 `json:"vc_q_pkts"` // sum(VCQLens) packet indices

	WaiterLens []int32       `json:"waiter_lens"` // nr*np entries
	Waiters    []WaiterState `json:"waiters"`     // registration order per port

	Credits     []int32 `json:"credits"`      // nr*np*nv downstream credit counters
	TermCredits []int32 `json:"term_credits"` // nt*nv injection credit counters

	Outs  []OutPortState `json:"outs"`  // nr*np
	Terms []TermState    `json:"terms"` // nt

	RouterRNG []uint64 `json:"router_rng"` // nr stream resume tokens

	Counters Counters `json:"counters"`

	Kernel *sim.KernelState `json:"kernel"`
}

// snapCoder implements sim.EventCoder over a network plus the external
// actors (the traffic generator) that also schedule typed events on the
// shared kernel. On encode it interns in-flight packets into the
// snapshot's packet table; on decode it resolves indices against the
// restored packet arena and waiter table.
type snapCoder struct {
	n   *Network
	ext []sim.Actor

	// Encode side.
	snap   *Snapshot
	pktIdx map[*route.Packet]int32
	widx   map[*waiter]int32

	// Decode side.
	pkts    []*route.Packet
	waiters []*waiter
}

// internPacket returns the packet's table index, adding a value copy
// (with the intrusive link severed) on first sight. Live packets are in
// exactly one owner at a time, so each is interned exactly once.
func (c *snapCoder) internPacket(p *route.Packet) int32 {
	if i, ok := c.pktIdx[p]; ok {
		return i
	}
	i := int32(len(c.snap.Packets))
	cp := *p
	cp.Next = nil
	//hxlint:allow allocfree — snapshot capture runs off the simulation steady-state path, and the live-packet population is unknown until the walk completes
	c.snap.Packets = append(c.snap.Packets, cp)
	c.pktIdx[p] = i
	return i
}

// EncodeActor implements sim.EventCoder.
func (c *snapCoder) EncodeActor(a sim.Actor) (uint64, error) {
	switch x := a.(type) {
	case *Network:
		if x != c.n {
			return 0, fmt.Errorf("network: snapshot: event targets a different Network")
		}
		return actorNetwork << 32, nil
	case *Router:
		return actorRouter<<32 | uint64(uint32(x.id)), nil
	case *Terminal:
		return actorTerminal<<32 | uint64(uint32(x.id)), nil
	}
	for i, e := range c.ext {
		if e == a {
			return actorExternal<<32 | uint64(uint32(i)), nil
		}
	}
	return 0, fmt.Errorf("network: snapshot: event targets unknown actor %T (pass it in ext)", a)
}

// DecodeActor implements sim.EventCoder.
func (c *snapCoder) DecodeActor(code uint64) (sim.Actor, error) {
	kind, id := code>>32, int(uint32(code))
	switch kind {
	case actorNetwork:
		if id != 0 {
			return nil, fmt.Errorf("network: restore: malformed network actor code %#x", code)
		}
		return c.n, nil
	case actorRouter:
		if id >= len(c.n.Routers) {
			return nil, fmt.Errorf("network: restore: router %d out of range (%d routers)", id, len(c.n.Routers))
		}
		return c.n.Routers[id], nil
	case actorTerminal:
		if id >= len(c.n.Terminals) {
			return nil, fmt.Errorf("network: restore: terminal %d out of range (%d terminals)", id, len(c.n.Terminals))
		}
		return c.n.Terminals[id], nil
	case actorExternal:
		if id >= len(c.ext) {
			return nil, fmt.Errorf("network: restore: external actor %d out of range (%d provided)", id, len(c.ext))
		}
		return c.ext[id], nil
	}
	return nil, fmt.Errorf("network: restore: unknown actor code %#x", code)
}

// EncodePayload implements sim.EventCoder.
func (c *snapCoder) EncodePayload(_ uint8, p any) (uint64, error) {
	switch x := p.(type) {
	case nil:
		return 0, nil
	case *route.Packet:
		return payloadPacket<<32 | uint64(uint32(c.internPacket(x))), nil
	case *waiter:
		i, ok := c.widx[x]
		if !ok {
			// Every live re-route timer's waiter is queued on an output
			// port; the waiter walk runs before the kernel walk, so a miss
			// is a broken invariant, not a user error.
			return 0, fmt.Errorf("network: snapshot: re-route timer references an unregistered waiter")
		}
		return payloadWaiter<<32 | uint64(uint32(i)), nil
	default:
		return 0, fmt.Errorf("network: snapshot: unknown payload type %T", x)
	}
}

// DecodePayload implements sim.EventCoder.
func (c *snapCoder) DecodePayload(_ uint8, code uint64) (any, error) {
	kind, id := code>>32, int(uint32(code))
	switch kind {
	case 0:
		if code != 0 {
			return nil, fmt.Errorf("network: restore: malformed nil payload code %#x", code)
		}
		return nil, nil
	case payloadPacket:
		if id >= len(c.pkts) {
			return nil, fmt.Errorf("network: restore: packet %d out of range (%d packets)", id, len(c.pkts))
		}
		return c.pkts[id], nil
	case payloadWaiter:
		if id >= len(c.waiters) {
			return nil, fmt.Errorf("network: restore: waiter %d out of range (%d waiters)", id, len(c.waiters))
		}
		return c.waiters[id], nil
	}
	return nil, fmt.Errorf("network: restore: unknown payload code %#x", code)
}

// Snapshot captures the network's complete warm state. ext lists the
// external sim.Actor values (in a fixed, documented order — the facade
// passes the traffic generator) that schedule typed events on the shared
// kernel; their own internal state is snapshotted separately by their
// owners. The network is not modified and may keep running afterwards.
func (n *Network) Snapshot(ext ...sim.Actor) (*Snapshot, error) {
	return buildNetworkState(n, ext)
}

// buildNetworkState walks the slabs in canonical order (terminals, then
// routers ascending, ports ascending, VCs ascending) so that encode and
// decode agree on every table position without storing explicit keys.
func buildNetworkState(n *Network, ext []sim.Actor) (*Snapshot, error) {
	topo := n.Cfg.Topo
	nr, nt := topo.NumRouters(), topo.NumTerminals()
	np, nv := topo.NumPorts(), n.Cfg.NumVCs

	s := &Snapshot{
		TermQLens:   make([]int32, nt),
		VCQLens:     make([]int32, nr*np*nv),
		WaiterLens:  make([]int32, nr*np),
		Credits:     make([]int32, len(n.credSlab)),
		TermCredits: make([]int32, len(n.termCredSlab)),
		Outs:        make([]OutPortState, nr*np),
		Terms:       make([]TermState, nt),
		RouterRNG:   make([]uint64, nr),
		Counters: Counters{
			InjectedPackets:  n.InjectedPackets,
			InjectedFlits:    n.InjectedFlits,
			DeliveredPackets: n.DeliveredPackets,
			DeliveredFlits:   n.DeliveredFlits,
			DroppedPackets:   n.DroppedPackets,
			DroppedFlits:     n.DroppedFlits,
			NextPkt:          n.nextPkt,
		},
	}
	copy(s.Credits, n.credSlab)
	copy(s.TermCredits, n.termCredSlab)
	for r := range n.streams {
		s.RouterRNG[r] = n.streams[r].State()
	}

	c := &snapCoder{
		n: n, ext: ext, snap: s,
		pktIdx: make(map[*route.Packet]int32),
		widx:   make(map[*waiter]int32),
	}

	// Terminal source queues, FIFO order.
	for t, term := range n.Terminals {
		s.Terms[t] = TermState{BusyUntil: term.busyUntil, RetryAt: term.retryAt}
		cnt := int32(0)
		for p := term.qhead; p != nil; p = p.Next {
			s.TermQPkts = append(s.TermQPkts, c.internPacket(p))
			cnt++
		}
		if int(cnt) != term.qlen {
			return nil, fmt.Errorf("network: snapshot: terminal %d queue length %d != walked %d", t, term.qlen, cnt)
		}
		s.TermQLens[t] = cnt
	}

	// Router input-VC buffers, FIFO order.
	for ri, rt := range n.Routers {
		for pi := 0; pi < np; pi++ {
			for vi := 0; vi < nv; vi++ {
				iv := &rt.in[pi].vcs[vi]
				cnt := int32(0)
				for p := iv.head; p != nil; p = p.Next {
					s.VCQPkts = append(s.VCQPkts, c.internPacket(p))
					cnt++
				}
				if cnt != iv.n {
					return nil, fmt.Errorf("network: snapshot: router %d port %d vc %d queue length %d != walked %d", ri, pi, vi, iv.n, cnt)
				}
				s.VCQLens[(ri*np+pi)*nv+vi] = cnt
			}
		}
	}

	// Output-port state and waiter registrations, registration order.
	// Waiter packets are always input-VC heads, so they are interned above.
	for ri, rt := range n.Routers {
		for pi := 0; pi < np; pi++ {
			o := &rt.out[pi]
			s.Outs[ri*np+pi] = OutPortState{
				BusyUntil:   o.busyUntil,
				AttemptAt:   o.attemptAt,
				BusyAccum:   o.busyAccum,
				Grants:      o.grants,
				QueuedFlits: int32(o.queuedFlits),
			}
			s.WaiterLens[ri*np+pi] = int32(len(o.waiters))
			for _, w := range o.waiters {
				pk, ok := c.pktIdx[w.pkt]
				if !ok {
					return nil, fmt.Errorf("network: snapshot: router %d port %d waiter holds a packet not in any input buffer", ri, pi)
				}
				c.widx[w] = int32(len(s.Waiters))
				s.Waiters = append(s.Waiters, WaiterState{
					Pkt: pk, InPort: int32(w.inPort), InVC: w.inVC,
					Eject: w.eject, Cand: w.cand,
				})
			}
		}
	}

	// Kernel calendar last: in-flight packets (channel-crossing arrivals
	// and deliveries) are interned here; re-route timer payloads resolve
	// against the waiter table just built.
	ks, err := n.K.Snapshot(c)
	if err != nil {
		return nil, err
	}
	s.Kernel = ks
	return s, nil
}

// Restore rebuilds the network's warm state from a snapshot taken of an
// identically-configured network (same Config, including topology,
// algorithm, faults, and seed derivation). ext must list the same
// external actors, in the same order, as the Snapshot call. On success
// the kernel clock, all queues, credits, RNG streams, and counters match
// the snapshot exactly and the run resumes bit-identically. On error the
// network is in an unspecified state and must be discarded.
func (n *Network) Restore(s *Snapshot, ext ...sim.Actor) error {
	return initFromNetworkState(n, s, ext)
}

// validateShape rejects snapshots whose table dimensions cannot belong
// to this network before any state is mutated.
func validateShape(n *Network, s *Snapshot) error {
	topo := n.Cfg.Topo
	nr, nt := topo.NumRouters(), topo.NumTerminals()
	np, nv := topo.NumPorts(), n.Cfg.NumVCs
	switch {
	case s.Kernel == nil:
		return fmt.Errorf("network: restore: snapshot has no kernel state")
	case len(s.TermQLens) != nt || len(s.Terms) != nt:
		return fmt.Errorf("network: restore: snapshot has %d terminals, network has %d", len(s.TermQLens), nt)
	case len(s.VCQLens) != nr*np*nv || len(s.Credits) != nr*np*nv:
		return fmt.Errorf("network: restore: snapshot VC tables sized %d/%d, network needs %d", len(s.VCQLens), len(s.Credits), nr*np*nv)
	case len(s.WaiterLens) != nr*np || len(s.Outs) != nr*np:
		return fmt.Errorf("network: restore: snapshot port tables sized %d/%d, network needs %d", len(s.WaiterLens), len(s.Outs), nr*np)
	case len(s.TermCredits) != nt*nv:
		return fmt.Errorf("network: restore: snapshot terminal credits sized %d, network needs %d", len(s.TermCredits), nt*nv)
	case len(s.RouterRNG) != nr:
		return fmt.Errorf("network: restore: snapshot has %d router RNG streams, network has %d", len(s.RouterRNG), nr)
	}
	sum := func(lens []int32) (total int, bad bool) {
		for _, l := range lens {
			if l < 0 {
				return 0, true
			}
			total += int(l)
		}
		return total, false
	}
	if tq, bad := sum(s.TermQLens); bad || tq != len(s.TermQPkts) {
		return fmt.Errorf("network: restore: terminal queue table inconsistent (%d indices, lens sum elsewhere)", len(s.TermQPkts))
	}
	if vq, bad := sum(s.VCQLens); bad || vq != len(s.VCQPkts) {
		return fmt.Errorf("network: restore: VC queue table inconsistent (%d indices, lens sum elsewhere)", len(s.VCQPkts))
	}
	if wq, bad := sum(s.WaiterLens); bad || wq != len(s.Waiters) {
		return fmt.Errorf("network: restore: waiter table inconsistent (%d waiters, lens sum elsewhere)", len(s.Waiters))
	}
	for i, l := range s.WaiterLens {
		// Every waiter is the head of a distinct input VC on the same
		// router, so one output can accumulate at most all np*nv of them.
		if int(l) > np*nv {
			return fmt.Errorf("network: restore: output %d has %d waiters, max is %d (one per input VC)", i, l, np*nv)
		}
	}
	npk := int32(len(s.Packets))
	for _, i := range s.TermQPkts {
		if i < 0 || i >= npk {
			return fmt.Errorf("network: restore: terminal queue packet index %d out of range (%d packets)", i, npk)
		}
	}
	for _, i := range s.VCQPkts {
		if i < 0 || i >= npk {
			return fmt.Errorf("network: restore: VC queue packet index %d out of range (%d packets)", i, npk)
		}
	}
	for wi := range s.Waiters {
		w := &s.Waiters[wi]
		if w.Pkt < 0 || w.Pkt >= npk {
			return fmt.Errorf("network: restore: waiter %d packet index %d out of range (%d packets)", wi, w.Pkt, npk)
		}
		if w.InPort < 0 || int(w.InPort) >= np || w.InVC < 0 || int(w.InVC) >= nv {
			return fmt.Errorf("network: restore: waiter %d input (%d,%d) out of range", wi, w.InPort, w.InVC)
		}
		if w.Cand.Port < 0 || w.Cand.Port >= np {
			return fmt.Errorf("network: restore: waiter %d candidate port %d out of range", wi, w.Cand.Port)
		}
	}
	return nil
}

// initFromNetworkState does the rebuild; all allocation (the packet
// arena, the coder's decode tables) lives here, off the steady-state
// simulation path.
func initFromNetworkState(n *Network, s *Snapshot, ext []sim.Actor) error {
	if err := validateShape(n, s); err != nil {
		return err
	}
	topo := n.Cfg.Topo
	np, nv := topo.NumPorts(), n.Cfg.NumVCs

	// Packet arena: live packets are rebuilt by value into a reusable
	// network-owned slab. The free pool is abandoned wholesale — its
	// intrusive links may thread through structs the copy below clobbers —
	// and refills lazily on the next NewPacket.
	n.pool = nil
	if cap(n.restorePkts) < len(s.Packets) {
		n.restorePkts = make([]route.Packet, len(s.Packets))
	}
	n.restorePkts = n.restorePkts[:len(s.Packets)]
	copy(n.restorePkts, s.Packets)

	c := &snapCoder{
		n: n, ext: ext,
		pkts:    make([]*route.Packet, len(s.Packets)),
		waiters: make([]*waiter, len(s.Waiters)),
	}
	for i := range n.restorePkts {
		n.restorePkts[i].Next = nil
		c.pkts[i] = &n.restorePkts[i]
	}

	copy(n.credSlab, s.Credits)
	copy(n.termCredSlab, s.TermCredits)
	for r := range n.streams {
		n.streams[r].SetState(s.RouterRNG[r])
	}

	// Terminals: scalars and source queues.
	qi := 0
	for t, term := range n.Terminals {
		term.busyUntil = s.Terms[t].BusyUntil
		term.retryAt = s.Terms[t].RetryAt
		term.qhead, term.qtail, term.qlen = nil, nil, 0
		for k := int32(0); k < s.TermQLens[t]; k++ {
			p := c.pkts[s.TermQPkts[qi]]
			qi++
			if term.qtail == nil {
				term.qhead = p
			} else {
				term.qtail.Next = p
			}
			term.qtail = p
			term.qlen++
		}
	}

	// Routers: output scalars, input-VC queues, then waiter registrations.
	vi := 0
	wi := 0
	for ri, rt := range n.Routers {
		for pi := 0; pi < np; pi++ {
			o := &rt.out[pi]
			os := &s.Outs[ri*np+pi]
			o.busyUntil = os.BusyUntil
			o.attemptAt = os.AttemptAt
			o.busyAccum = os.BusyAccum
			o.grants = os.Grants
			o.queuedFlits = int(os.QueuedFlits)
			// Recycle the old registrations before rebuilding; their timer
			// events are discarded wholesale by the kernel restore below.
			for k := range o.waiters {
				rt.putWaiter(o.waiters[k])
				o.waiters[k] = nil
			}
			o.waiters = o.waiters[:0]
			for v := 0; v < nv; v++ {
				iv := &rt.in[pi].vcs[v]
				iv.head, iv.tail, iv.n = nil, nil, 0
				for k := int32(0); k < s.VCQLens[(ri*np+pi)*nv+v]; k++ {
					iv.push(c.pkts[s.VCQPkts[vi]])
					vi++
				}
			}
		}
		for pi := 0; pi < np; pi++ {
			o := &rt.out[pi]
			cnt := int(s.WaiterLens[ri*np+pi])
			// The build-time slab gives each port capacity nv, but a
			// congested port can have registered up to np*nv waiters (one
			// per input VC) and grown off-slab; match that growth here.
			if cnt <= cap(o.waiters) {
				o.waiters = o.waiters[:cnt]
			} else {
				o.waiters = make([]*waiter, cnt)
			}
			for k := 0; k < cnt; k++ {
				ws := &s.Waiters[wi]
				w := rt.getWaiter(c.pkts[ws.Pkt], int(ws.InPort), ws.InVC)
				w.cand = ws.Cand
				w.eject = ws.Eject
				o.waiters[k] = w
				c.waiters[wi] = w
				wi++
			}
		}
	}

	n.InjectedPackets = s.Counters.InjectedPackets
	n.InjectedFlits = s.Counters.InjectedFlits
	n.DeliveredPackets = s.Counters.DeliveredPackets
	n.DeliveredFlits = s.Counters.DeliveredFlits
	n.DroppedPackets = s.Counters.DroppedPackets
	n.DroppedFlits = s.Counters.DroppedFlits
	n.nextPkt = s.Counters.NextPkt

	// Kernel calendar last: payload decoding resolves against the arena
	// and waiter tables built above, and the restored callback rewires
	// each waiter's cancellation handle to its recreated re-route timer.
	err := n.K.Restore(s.Kernel, c, func(es sim.EventState, e *sim.Event) {
		if es.Op == opReroute && es.Payload>>32 == payloadWaiter {
			c.waiters[uint32(es.Payload)].timer = e
		}
	})
	if err != nil {
		return err
	}

	// Every non-eject waiter must have found its timer: a registered
	// blocked decision without a live re-route event can never make
	// progress if its output stays congested.
	for i, w := range c.waiters {
		if !w.eject && w.timer == nil {
			return fmt.Errorf("network: restore: waiter %d has no re-route timer event in the snapshot", i)
		}
	}
	return nil
}
