package network

import (
	"fmt"
	"reflect"
	"testing"

	"hyperx/internal/rng"
	"hyperx/internal/route"
	"hyperx/internal/routing"
	"hyperx/internal/sim"
	"hyperx/internal/topology"
)

// snapTestNet builds a congested deterministic scenario: every terminal
// bursts a fixed set of randomly-addressed max-size packets at t=0, so
// the drain phase exercises deep source queues, blocked waiters,
// re-route timers, credit stalls, and RNG tie-breaks.
func snapTestNet(t *testing.T) *Network {
	t.Helper()
	h := topology.MustHyperX([]int{4, 4}, 2)
	n := buildNet(t, h, routing.NewDAL(h), func(c *Config) {
		c.BufDepth = 32
		c.MaxPktFlits = 16
		c.ReRouteInterval = 60
	})
	src := rng.New(7)
	nt := h.NumTerminals()
	for term := 0; term < nt; term++ {
		for i := 0; i < 20; i++ {
			dst := src.Intn(nt - 1)
			if dst >= term {
				dst++
			}
			n.Terminals[term].Send(n.NewPacket(term, dst, 16))
		}
	}
	return n
}

// snapTrace records deliveries as "id@t" strings.
func snapTrace(n *Network, into *[]string) {
	n.OnDeliver = func(p *route.Packet, at sim.Time) {
		*into = append(*into, fmt.Sprintf("%d@%d", p.ID, at))
	}
}

// TestNetworkSnapshotRestoreResumesIdentically is the core warm-state
// contract at the network level: snapshot mid-drain, finish the run,
// then restore — into the same instance AND into a freshly built one —
// and the resumed halves must replay the identical delivery sequence
// and end in deep-equal final state (credits, channel accumulators, RNG
// streams, counters, kernel clock and sequence counter).
func TestNetworkSnapshotRestoreResumesIdentically(t *testing.T) {
	n := snapTestNet(t)
	var trace []string
	snapTrace(n, &trace)

	n.K.Run(400)
	snap, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Packets) == 0 || len(snap.Kernel.Events) == 0 {
		t.Fatalf("implausible mid-drain snapshot: %d packets, %d events", len(snap.Packets), len(snap.Kernel.Events))
	}

	mark := len(trace)
	n.K.Run(0)
	want := append([]string(nil), trace[mark:]...)
	if len(want) == 0 || n.InFlight() != 0 {
		t.Fatalf("scenario too small: %d post-snapshot deliveries, %d in flight", len(want), n.InFlight())
	}
	final, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Same-instance restore.
	if err := n.Restore(snap); err != nil {
		t.Fatal(err)
	}
	trace = trace[:0]
	n.K.Run(0)
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("same-instance resume diverged: %d deliveries vs %d", len(trace), len(want))
	}
	refinal, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refinal, final) {
		t.Fatal("same-instance resume ended in different final state")
	}

	// Cross-instance restore: a fresh, identically-configured network
	// (no traffic injected) adopts the warm state wholesale.
	n2 := snapTestNet(t)
	n2.K = sim.NewKernel() // discard the burst; restore rebuilds everything
	var trace2 []string
	snapTrace(n2, &trace2)
	if err := n2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	n2.K.Run(0)
	if !reflect.DeepEqual(trace2, want) {
		t.Fatalf("cross-instance resume diverged: %d deliveries vs %d", len(trace2), len(want))
	}
	refinal2, err := n2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refinal2, final) {
		t.Fatal("cross-instance resume ended in different final state")
	}
}

// TestNetworkRestoreRejectsMismatchedShape: a snapshot of one topology
// must not restore into another.
func TestNetworkRestoreRejectsMismatchedShape(t *testing.T) {
	n := snapTestNet(t)
	n.K.Run(500)
	snap, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	h2 := topology.MustHyperX([]int{3, 3}, 2)
	other := buildNet(t, h2, routing.NewDAL(h2), nil)
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore of a 4x4 snapshot into a 3x3 network succeeded")
	}

	// Internally inconsistent tables must also be rejected.
	snap.TermQPkts = append(snap.TermQPkts, 1<<30)
	if err := n.Restore(snap); err == nil {
		t.Fatal("restore of an out-of-range packet index succeeded")
	}
}

// TestRestoreKeepsSteadyStateZeroAlloc: restoring a snapshot abandons
// the packet free list (restored packets live in a network-owned arena)
// and recycles waiters and kernel events, so the pools re-fill lazily as
// the restored traffic drains. Once they have, the steady-state
// inject-route-arbitrate-drain cycle must be allocation-free again —
// restore must not break the zero-alloc property the sweep fast path
// depends on (see alloc_test.go for the cold-path version).
func TestRestoreKeepsSteadyStateZeroAlloc(t *testing.T) {
	n := snapTestNet(t)
	n.K.Run(400)
	snap, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	n.K.Run(0) // finish the captured run
	if err := n.Restore(snap); err != nil {
		t.Fatal(err)
	}
	n.K.Run(0) // drain the restored traffic: arena packets refill the pools

	nt := len(n.Terminals)
	n.K.Reserve(2048, 2*nt)
	burst := func(k int) {
		for src := 0; src < nt; src++ {
			n.Terminals[src].Send(n.NewPacket(src, (src*31+k)%nt, 1+k%16))
		}
		n.K.Run(0)
	}
	for k := 0; k < 50; k++ {
		burst(k)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		i++
		burst(i)
	})
	if allocs != 0 {
		t.Fatalf("post-restore steady state allocated %.1f objects/op, want 0", allocs)
	}
}
