package network

import (
	"hyperx/internal/route"
	"hyperx/internal/sim"
)

// Terminal is a network endpoint: an unbounded source queue feeding the
// injection channel, plus the ejection side handled by Network.deliver.
// Source queueing time counts toward packet latency, so saturation shows
// up as unbounded latency growth exactly as in the paper's methodology.
type Terminal struct {
	net    *Network
	id     int
	router int
	rport  int

	lat       sim.Time
	busyUntil sim.Time
	credits   []int32

	// Source queue: intrusive FIFO through Packet.Next (unbounded).
	qhead, qtail *route.Packet
	qlen         int

	retryAt sim.Time

	// sc is the shard context of the terminal's router, set once by
	// ConfigureShards (see Router.sc).
	sc *ShardState
}

// schedAt schedules a typed event, diverting to the shard stage during a
// parallel phase (see Router.schedAt).
func (t *Terminal) schedAt(at sim.Time, act sim.Actor, op uint8, a, b, c int32, p any) *sim.Event {
	if t.net.sharded {
		return t.sc.Stage.AtAct(at, act, op, a, b, c, p)
	}
	return t.net.K.AtAct(at, act, op, a, b, c, p)
}

// now returns the model clock (see Router.now).
func (t *Terminal) now() sim.Time {
	if t.net.sharded {
		return t.sc.Stage.Now()
	}
	return t.net.K.Now()
}

// initTerminal wires a slab-allocated Terminal in place; credits is the
// terminal's subslice of the network-level credit slab.
func initTerminal(t *Terminal, n *Network, id int, credits []int32) {
	r, p := n.Cfg.Topo.TerminalPort(id)
	*t = Terminal{net: n, id: id, router: r, rport: p, lat: n.Cfg.TermChanLat, credits: credits}
	for v := range t.credits {
		t.credits[v] = int32(n.Cfg.BufDepth)
	}
}

// ID returns the terminal's index.
func (t *Terminal) ID() int { return t.id }

// Act implements sim.Actor: injection-channel retries and credit returns.
func (t *Terminal) Act(op uint8, a, b, _ int32, _ any) {
	switch op {
	case opTermRetry:
		// The event fires exactly at its scheduled time, so now() is the
		// `at` this retry was deduplicated under.
		if t.retryAt == t.now() {
			t.retryAt = 0
		}
		t.tryInject()
	case opTermCredit:
		t.creditArrive(int8(a), int(b))
	}
}

// QueueLen returns the number of packets waiting in the source queue.
func (t *Terminal) QueueLen() int { return t.qlen }

// Send enqueues a packet created by Network.NewPacket for injection. The
// packet's Birth is stamped with the current time.
func (t *Terminal) Send(p *route.Packet) {
	p.Birth = t.now()
	p.Next = nil
	if t.qtail == nil {
		t.qhead = p
	} else {
		t.qtail.Next = p
	}
	t.qtail = p
	t.qlen++
	t.tryInject()
}

// tryInject pushes queued packets into the injection channel while
// credits and channel bandwidth allow.
func (t *Terminal) tryInject() {
	for t.qhead != nil {
		now := t.now()
		if t.busyUntil > now {
			t.scheduleRetry(t.busyUntil)
			return
		}
		p := t.qhead
		vc := t.pickVC(p.Len)
		if vc < 0 {
			return // wait for a credit event
		}
		t.qhead = p.Next
		if t.qhead == nil {
			t.qtail = nil
		}
		p.Next = nil
		t.qlen--
		t.credits[vc] -= int32(p.Len)
		t.busyUntil = now + sim.Time(p.Len)
		p.Inject = now
		if t.net.sharded {
			t.sc.stageFx(effect{kind: fxInject, a: int32(p.Len)})
		} else {
			t.net.InjectedPackets++
			t.net.InjectedFlits += uint64(p.Len)
		}
		rt := t.net.Routers[t.router]
		t.schedAt(now+t.lat, rt, opArrive, int32(t.rport), int32(vc), 0, p)
	}
}

// pickVC picks the most-credited VC that can hold the packet, or -1.
// Injection channels carry no deadlock constraint (terminals always
// drain), so any VC is admissible.
func (t *Terminal) pickVC(flits int) int8 {
	need := int32(flits)
	if t.net.Cfg.AtomicVCAlloc {
		need = int32(t.net.Cfg.BufDepth)
	}
	best, bestCr := -1, int32(0)
	for vc, cr := range t.credits {
		if cr >= need && cr > bestCr {
			best, bestCr = vc, cr
		}
	}
	return int8(best)
}

func (t *Terminal) scheduleRetry(at sim.Time) {
	if t.retryAt > 0 && t.retryAt <= at {
		return
	}
	t.retryAt = at
	t.schedAt(at, t, opTermRetry, 0, 0, 0, nil)
}

// creditArrive restores injection credits.
func (t *Terminal) creditArrive(vc int8, flits int) {
	t.credits[vc] += int32(flits)
	t.tryInject()
}
