package network

import (
	"sort"

	"hyperx/internal/route"
	"hyperx/internal/sim"
)

// LinkStat describes the utilization of one router-to-router channel
// since the start of the simulation.
type LinkStat struct {
	Router, Port int
	Utilization  float64 // busy cycles / elapsed cycles
	Grants       uint64  // packets carried
}

// LinkUtilization returns per-link utilization for every router-to-router
// channel, sorted hottest first. Terminal channels are excluded. It is a
// diagnostic for locating bottlenecks (e.g. the DCR funnel link under
// dimension-order routing).
func (n *Network) LinkUtilization() []LinkStat {
	now := n.K.Now()
	if now == 0 {
		return nil
	}
	var out []LinkStat
	for _, r := range n.Routers {
		for p := range r.out {
			o := &r.out[p]
			if o.peerRouter < 0 {
				continue
			}
			out = append(out, LinkStat{
				Router:      r.id,
				Port:        p,
				Utilization: float64(o.busyAccum) / float64(now),
				Grants:      o.grants,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Utilization > out[j].Utilization })
	return out
}

// MaxLinkUtilization returns the utilization of the hottest
// router-to-router channel.
func (n *Network) MaxLinkUtilization() float64 {
	ls := n.LinkUtilization()
	if len(ls) == 0 {
		return 0
	}
	return ls[0].Utilization
}

// MeanLinkUtilization returns the average utilization across all
// router-to-router channels.
func (n *Network) MeanLinkUtilization() float64 {
	ls := n.LinkUtilization()
	if len(ls) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range ls {
		sum += l.Utilization
	}
	return sum / float64(len(ls))
}

// PathStats accumulates per-hop statistics through the Network.OnHop and
// OnDeliver hooks: hop-count distribution and deroute fraction.
type PathStats struct {
	Hops      uint64 // router-to-router hops observed
	Deroutes  uint64
	Delivered uint64
	HopSum    uint64 // sum of per-packet hop counts at delivery
}

// Attach registers the collector on a network. It chains any existing
// OnDeliver hook.
func (s *PathStats) Attach(n *Network) {
	prevDeliver := n.OnDeliver
	n.OnHop = func(p *route.Packet, _ int, _ int, _ int8) {
		s.Hops++
		if p.LastDerDim >= 0 {
			s.Deroutes++
		}
	}
	n.OnDeliver = func(p *route.Packet, at sim.Time) {
		s.Delivered++
		s.HopSum += uint64(p.Hops)
		if prevDeliver != nil {
			prevDeliver(p, at)
		}
	}
}

// MeanHops returns the average router-to-router hops per delivered
// packet.
func (s *PathStats) MeanHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.HopSum) / float64(s.Delivered)
}

// DerouteRate returns the fraction of hops that were deroutes.
func (s *PathStats) DerouteRate() float64 {
	if s.Hops == 0 {
		return 0
	}
	return float64(s.Deroutes) / float64(s.Hops)
}
