package network

import (
	"testing"

	"hyperx/internal/core"
	"hyperx/internal/route"
	"hyperx/internal/routing"
	"hyperx/internal/sim"
	"hyperx/internal/topology"
)

// TestPathStatsDOR: DOR paths average exactly the mean minimal hop count
// and never deroute.
func TestPathStatsDOR(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 2)
	n := buildNet(t, h, routing.NewDOR(h), nil)
	var ps PathStats
	ps.Attach(n)
	sent := 0
	for src := 0; src < h.NumTerminals(); src++ {
		dst := (src + 13) % h.NumTerminals()
		if dst == src {
			continue
		}
		n.Terminals[src].Send(n.NewPacket(src, dst, 2))
		sent++
	}
	n.K.Run(0)
	if int(ps.Delivered) != sent {
		t.Fatalf("delivered %d of %d", ps.Delivered, sent)
	}
	if ps.DerouteRate() != 0 {
		t.Errorf("DOR deroute rate %v", ps.DerouteRate())
	}
	// Mean hops must equal the average MinHops of the sent pairs.
	want := 0.0
	for src := 0; src < h.NumTerminals(); src++ {
		dst := (src + 13) % h.NumTerminals()
		if dst == src {
			continue
		}
		want += float64(h.MinHops(src/h.Terms, dst/h.Terms))
	}
	want /= float64(sent)
	if got := ps.MeanHops(); got != want {
		t.Errorf("mean hops %v, want %v", got, want)
	}
}

// TestPathStatsVALDoubles: VAL's mean path length is roughly twice
// minimal.
func TestPathStatsVALDoubles(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 2)
	dor := func() float64 {
		n := buildNet(t, h, routing.NewDOR(h), nil)
		var ps PathStats
		ps.Attach(n)
		for src := 0; src < h.NumTerminals(); src++ {
			n.Terminals[src].Send(n.NewPacket(src, (src+77)%h.NumTerminals(), 2))
		}
		n.K.Run(0)
		return ps.MeanHops()
	}()
	val := func() float64 {
		n := buildNet(t, h, routing.NewVAL(h), nil)
		var ps PathStats
		ps.Attach(n)
		for src := 0; src < h.NumTerminals(); src++ {
			n.Terminals[src].Send(n.NewPacket(src, (src+77)%h.NumTerminals(), 2))
		}
		n.K.Run(0)
		return ps.MeanHops()
	}()
	if val < 1.4*dor || val > 2.6*dor {
		t.Errorf("VAL mean hops %.2f not ~2x DOR's %.2f", val, dor)
	}
}

// TestLinkUtilizationFunnel: under a complement pattern in one dimension,
// DOR concentrates all traffic of a row onto single links, so max link
// utilization far exceeds the mean.
func TestLinkUtilizationFunnel(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 2)
	n := buildNet(t, h, routing.NewDOR(h), nil)
	for k := 0; k < 20; k++ {
		for src := 0; src < h.NumTerminals(); src++ {
			n.Terminals[src].Send(n.NewPacket(src, h.NumTerminals()-1-src, 8))
		}
	}
	n.K.Run(0)
	max, mean := n.MaxLinkUtilization(), n.MeanLinkUtilization()
	if max <= 2*mean {
		t.Errorf("complement+DOR: max utilization %.3f not >> mean %.3f", max, mean)
	}
	ls := n.LinkUtilization()
	if len(ls) == 0 || ls[0].Utilization != max {
		t.Fatal("LinkUtilization not sorted hottest-first")
	}
	if ls[0].Grants == 0 {
		t.Error("hottest link has no grants")
	}
}

// TestArbiterPolicies: all three arbitration policies deliver everything;
// age arbitration bounds worst-case latency no worse than random.
func TestArbiterPolicies(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 2)
	run := func(a Arbiter) (worst sim.Time) {
		n := buildNet(t, h, core.NewDimWAR(h), func(c *Config) { c.Arbiter = a })
		n.OnDeliver = func(p *route.Packet, at sim.Time) {
			if l := at - p.Birth; l > worst {
				worst = l
			}
		}
		for k := 0; k < 10; k++ {
			for src := 0; src < h.NumTerminals(); src++ {
				n.Terminals[src].Send(n.NewPacket(src, h.NumTerminals()-1-src, 8))
			}
		}
		n.K.Run(0)
		if n.DeliveredPackets != uint64(10*h.NumTerminals()) {
			t.Fatalf("arbiter %v: delivered %d", a, n.DeliveredPackets)
		}
		return worst
	}
	age := run(AgeArbiter)
	fifo := run(FIFOArbiter)
	rnd := run(RandomArbiter)
	t.Logf("worst-case latency: age=%d fifo=%d random=%d", age, fifo, rnd)
	if age > rnd*3/2 {
		t.Errorf("age arbitration worst case (%d) much worse than random (%d)", age, rnd)
	}
}

// TestArbiterString covers the policy names.
func TestArbiterString(t *testing.T) {
	if AgeArbiter.String() != "age" || FIFOArbiter.String() != "fifo" || RandomArbiter.String() != "random" {
		t.Error("arbiter names wrong")
	}
}
