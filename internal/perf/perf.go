// Package perf hosts the simulator's CPU benchmarks: wall-clock cost of
// the event kernel, the router pipeline, and a whole facade-level sweep
// point. The benchmark bodies live here (not in _test.go files) so that
// cmd/hxbench can drive them through testing.Benchmark and emit
// BENCH_kernel.json, while internal/perf's own test file wraps the same
// bodies for `go test -bench`.
//
// Every body reports an "events/sec" metric — kernel events executed per
// wall-second — which is the simulator's headline throughput number: it is
// what bounds how fast paper-scale sweeps run, and it is the quantity the
// `make bench` JSON tracks across PRs.
//
// The scenarios deliberately use only stable public APIs (closure
// scheduling, the facade build path) so that numbers stay comparable
// across internal rewrites of the kernel and router: a baseline captured
// before an optimization can be diffed against the optimized tree.
package perf

import (
	"context"
	"runtime"
	"testing"

	"hyperx"
	"hyperx/internal/shard"
	"hyperx/internal/sim"
	"hyperx/internal/stats"
	"hyperx/internal/traffic"
)

// BenchKernelSchedule measures raw queue cost: 64 self-rescheduling event
// chains whose deltas mix the dominant schedule-at-now+1..+4 case with
// occasional medium (+50) and far (+600) targets, mirroring the delay
// spectrum of the network model (flit serialization, channel latency,
// reroute timers, drain-loop horizons). The chain closures are allocated
// once, so steady-state cost is pure kernel: schedule + dispatch.
func BenchKernelSchedule(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	deltas := [...]sim.Time{1, 2, 1, 3, 1, 4, 2, 1, 1, 2, 50, 1, 3, 1, 2, 600}
	executed := 0
	const chains = 64
	for c := 0; c < chains; c++ {
		c := c
		i := c
		var step func()
		step = func() {
			executed++
			if executed >= b.N {
				return
			}
			i++
			k.After(deltas[i&(len(deltas)-1)], step)
		}
		k.At(sim.Time(c%4), step)
	}
	k.Run(0)
	if executed < b.N {
		b.Fatalf("executed %d events, want >= %d", executed, b.N)
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "events/sec")
}

// benchConfig is the shared network scenario: the reduced 4x4x4 t=4 scale
// with the paper's DimWAR under uniform random traffic.
func benchConfig() hyperx.Config {
	cfg := hyperx.DefaultScale()
	cfg.Algorithm = "DimWAR"
	return cfg
}

// BenchRouterStep measures the steady-state router pipeline: a warmed
// 256-terminal network under open-loop UR injection at 0.7 load, advanced
// 100 simulated cycles per benchmark iteration. The cost per op is
// dominated by router-path work — candidate generation, arbitration,
// grants, credit returns — plus the kernel events that carry it.
func BenchRouterStep(b *testing.B) {
	b.ReportAllocs()
	inst, err := hyperx.Build(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	pat, err := hyperx.NewPattern("UR", inst.Topo)
	if err != nil {
		b.Fatal(err)
	}
	gen := &traffic.Generator{
		Net:     inst.Net,
		Pattern: pat,
		Sizes:   traffic.UniformSize{Min: 1, Max: 16},
		Load:    0.7,
	}
	gen.Start(inst.Cfg.Seed)
	inst.K.Run(1000) // fill to steady state outside the timer
	b.ResetTimer()
	start := inst.K.Executed()
	for i := 0; i < b.N; i++ {
		inst.K.Run(inst.K.Now() + 100)
	}
	events := inst.K.Executed() - start
	if events == 0 {
		b.Fatal("no events executed")
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// sweepPoint runs one complete load-sweep point end to end — build,
// warmup, measured window, drain — and returns the kernel events executed.
// This is exactly the unit of work the parallel sweep harness schedules.
func sweepPoint(b *testing.B, cfg hyperx.Config, load float64, warmup, window sim.Time) uint64 {
	inst, err := hyperx.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pat, err := hyperx.NewPattern("UR", inst.Topo)
	if err != nil {
		b.Fatal(err)
	}
	end := warmup + window
	col := stats.NewCollector(warmup, end)
	inst.Net.OnDeliver = col.OnDeliver
	gen := &traffic.Generator{
		Net:     inst.Net,
		Pattern: pat,
		Sizes:   traffic.UniformSize{Min: 1, Max: 16},
		Load:    load,
		OnBirth: func(_, _, _ int, at sim.Time) { col.CountBirth(at) },
	}
	gen.Start(inst.Cfg.Seed)
	inst.K.Run(end)
	deadline := end + 10*window
	for !col.Done() && inst.K.Now() < deadline {
		inst.K.Run(inst.K.Now() + 2000)
	}
	gen.Stop()
	if inst.Net.DeliveredPackets == 0 {
		b.Fatal("sweep point delivered nothing")
	}
	return inst.K.Executed()
}

// BenchSweepPoint measures one complete load-sweep point end to end —
// build, warmup, measured window, drain — exactly the unit of work the
// parallel sweep harness schedules, at a reduced window so one iteration
// stays around a hundred milliseconds. This is the number that predicts
// paper-scale sweep wall time.
func BenchSweepPoint(b *testing.B) {
	b.ReportAllocs()
	const (
		load   = 0.6
		warmup = 2000
		window = 2000
	)
	var events uint64
	for i := 0; i < b.N; i++ {
		events += sweepPoint(b, benchConfig(), load, warmup, window)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchPaperScaleSweepPoint is BenchSweepPoint at the paper's true
// evaluation scale — the 4,096-node 8x8x8 t=8 HyperX of Section 6 — with a
// shortened measured window so one op stays around a second. Its
// events/sec is the throughput that bounds full paper-figure regeneration;
// its allocs/op is the whole-point heap traffic (dominated by the one-time
// build, since the steady-state data path does not allocate).
func BenchPaperScaleSweepPoint(b *testing.B) {
	b.ReportAllocs()
	const (
		load   = 0.6
		warmup = 500
		window = 500
	)
	cfg := hyperx.PaperScale()
	cfg.Algorithm = "DimWAR"
	var events uint64
	for i := 0; i < b.N; i++ {
		events += sweepPoint(b, cfg, load, warmup, window)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// sweepPointSharded mirrors sweepPoint through the window-barrier
// sharded executor (internal/shard): identical scenario, identical event
// sequence — the sharded contract — with each barrier window's work
// fanned out over shards worth of workers.
func sweepPointSharded(b *testing.B, cfg hyperx.Config, load float64, warmup, window sim.Time, shards int) uint64 {
	inst, err := hyperx.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.Net.ConfigureShards(shards); err != nil {
		b.Fatal(err)
	}
	// Default window width, mirroring the facade's derivation: the most
	// conservative of the configured latencies.
	win := inst.Net.Cfg.XbarLat
	if inst.Net.Cfg.RouterChanLat < win {
		win = inst.Net.Cfg.RouterChanLat
	}
	if inst.Net.Cfg.TermChanLat < win {
		win = inst.Net.Cfg.TermChanLat
	}
	x := shard.New(inst.K, inst.Net, win)
	defer x.Close()
	run := func(until sim.Time) {
		if _, err := x.RunCtx(context.Background(), until); err != nil {
			b.Fatal(err)
		}
	}
	pat, err := hyperx.NewPattern("UR", inst.Topo)
	if err != nil {
		b.Fatal(err)
	}
	end := warmup + window
	col := stats.NewCollector(warmup, end)
	inst.Net.OnDeliver = col.OnDeliver
	gen := &traffic.Generator{
		Net:     inst.Net,
		Pattern: pat,
		Sizes:   traffic.UniformSize{Min: 1, Max: 16},
		Load:    load,
		OnBirth: func(_, _, _ int, at sim.Time) { col.CountBirth(at) },
	}
	gen.Start(inst.Cfg.Seed)
	run(end)
	deadline := end + 10*window
	for !col.Done() && inst.K.Now() < deadline {
		run(inst.K.Now() + 2000)
	}
	gen.Stop()
	if inst.Net.DeliveredPackets == 0 {
		b.Fatal("sharded sweep point delivered nothing")
	}
	return inst.K.Executed()
}

// BenchShardedSweepPoint is BenchPaperScaleSweepPoint through the sharded
// executor at 4 shards and the default barrier window: the same
// 4,096-node 8x8x8 t=8 point, the same (bit-identical) event sequence,
// executed window-by-window on the persistent worker pool. Its events/sec
// against BenchmarkPaperScaleSweepPoint is the measured shard speedup; on
// a single-core host it instead bounds the synchronization overhead
// (windowed barrier, staging, batched merge). The checked-in baseline
// entry for this benchmark is deliberately the SERIAL paper-scale
// events/sec, so `make bench`'s 0.9x gate enforces the acceptance floor:
// sharded-at-1-core must stay within 10% of serial.
func BenchShardedSweepPoint(b *testing.B) {
	b.ReportAllocs()
	const (
		load   = 0.6
		warmup = 500
		window = 500
		shards = 4
	)
	cfg := hyperx.PaperScale()
	cfg.Algorithm = "DimWAR"
	var events uint64
	for i := 0; i < b.N; i++ {
		events += sweepPointSharded(b, cfg, load, warmup, window, shards)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchSnapshotRestore measures the warm-state fork primitive at the
// paper's true evaluation scale — the 4,096-node 8x8x8 t=8 HyperX —
// under steady 0.6-load UR traffic: each op snapshots the instance
// (network slabs, in-flight packets, RNG streams, kernel calendar,
// generator streams), restores the snapshot back into it, and resumes
// for 100 simulated cycles to prove the restored state executes. This is
// the per-point cost a warm-fork sweep pays instead of a full rebuild
// plus warmup; its events/sec (kernel events resumed per wall-second,
// snapshot and restore overhead included) is the number `make bench`
// gates so the fork path cannot silently regress.
func BenchSnapshotRestore(b *testing.B) {
	b.ReportAllocs()
	cfg := hyperx.PaperScale()
	cfg.Algorithm = "DimWAR"
	inst, err := hyperx.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pat, err := hyperx.NewPattern("UR", inst.Topo)
	if err != nil {
		b.Fatal(err)
	}
	gen := &traffic.Generator{
		Net:     inst.Net,
		Pattern: pat,
		Sizes:   traffic.UniformSize{Min: 1, Max: 16},
		Load:    0.6,
	}
	gen.Start(inst.Cfg.Seed)
	inst.K.Run(500) // reach a loaded steady state outside the timer
	b.ResetTimer()
	start := inst.K.Executed()
	pkts := 0
	for i := 0; i < b.N; i++ {
		// Restore rewinds the clock and counters to the fork point the
		// snapshot captured, so the 100-cycle resume advances the state
		// each op and Executed() never rewinds below start.
		s, err := inst.Snapshot(gen)
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.Restore(s, gen); err != nil {
			b.Fatal(err)
		}
		inst.K.Run(inst.K.Now() + 100)
		pkts = len(s.Net.Packets)
	}
	events := inst.K.Executed() - start
	if events == 0 || pkts == 0 {
		b.Fatalf("restored run executed %d events over %d in-flight packets; scenario degenerate", events, pkts)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(pkts), "packets/snapshot")
}

// BenchPaperScaleFootprint measures the memory cost of standing up the
// paper-scale model: bytes/op is the total heap allocated to build the
// 4,096-node network (routers, slab-backed queues and credit state, tables,
// kernel reservation), and bytes/terminal normalizes it per node. This is
// the build footprint a sweep worker pays per point before steady state.
func BenchPaperScaleFootprint(b *testing.B) {
	b.ReportAllocs()
	cfg := hyperx.PaperScale()
	cfg.Algorithm = "DimWAR"
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	start := ms.TotalAlloc
	terms := 0
	for i := 0; i < b.N; i++ {
		inst, err := hyperx.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		terms = inst.Topo.NumTerminals()
	}
	runtime.ReadMemStats(&ms)
	perBuild := float64(ms.TotalAlloc-start) / float64(b.N)
	b.ReportMetric(perBuild/float64(terms), "bytes/terminal")
}
