package perf

// `go test -bench` entry points for the shared benchmark bodies; see
// cmd/hxbench for the JSON-emitting driver behind `make bench`.

import "testing"

func BenchmarkKernelSchedule(b *testing.B) { BenchKernelSchedule(b) }

func BenchmarkRouterStep(b *testing.B) { BenchRouterStep(b) }

func BenchmarkSweepPoint(b *testing.B) { BenchSweepPoint(b) }

func BenchmarkPaperScaleSweepPoint(b *testing.B) { BenchPaperScaleSweepPoint(b) }

func BenchmarkShardedSweepPoint(b *testing.B) { BenchShardedSweepPoint(b) }

func BenchmarkSnapshotRestore(b *testing.B) { BenchSnapshotRestore(b) }

func BenchmarkPaperScaleFootprint(b *testing.B) { BenchPaperScaleFootprint(b) }
