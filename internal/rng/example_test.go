package rng_test

import (
	"fmt"

	"hyperx/internal/rng"
)

// Example_streams demonstrates the determinism contract the experiment
// harness relies on: streams are pure functions of (seed, label), so a
// component rebuilt anywhere — another goroutine, another process,
// another machine — replays exactly the same sequence, while distinct
// labels give unrelated sequences.
func Example_streams() {
	// A simulation instance seeded with 7 derives one stream per
	// component (here: per terminal).
	term3 := rng.New(7).Derive(3)

	// A second instance built from the same seed — say, the same sweep
	// point re-run by a different harness worker — sees the identical
	// stream for the identical component...
	replay := rng.New(7).Derive(3)
	fmt.Println("same seed, same label:", term3.Uint64() == replay.Uint64())

	// ...while a different component draws from an unrelated stream, and
	// deriving does not advance the parent, so the order in which
	// components are built is immaterial.
	parent := rng.New(7)
	a := parent.Derive(4).Uint64()
	parent.Derive(99) // unrelated derivation in between
	b := parent.Derive(4).Uint64()
	fmt.Println("derivation is side-effect free:", a == b)

	// DeriveSeed extends the same property to whole instances: trial k of
	// a sweep gets a reproducible seed of its own.
	fmt.Println("trial seeds reproducible:",
		rng.DeriveSeed(1, 2) == rng.DeriveSeed(1, 2),
		"and distinct:", rng.DeriveSeed(1, 2) != rng.DeriveSeed(1, 3))

	// Output:
	// same seed, same label: true
	// derivation is side-effect free: true
	// trial seeds reproducible: true and distinct: true
}
