// Package rng provides small, fast, deterministic random number generators
// for simulation components. Each component owns its own stream so that
// adding or removing one component never perturbs the random sequence seen
// by another — a requirement for reproducible experiments.
//
// # Determinism guarantees
//
// What a seed covers: every random decision inside one simulation instance
// — traffic destinations, packet sizes, exponential interarrival gaps,
// arbitration tie-breaks, random process placement — is drawn from streams
// rooted at the instance's single Config.Seed. Two instances built from
// the same configuration and seed therefore make identical decisions and
// produce bit-identical results, on any host, at any optimization level.
//
// Per-component stream derivation: components never share a Source.
// Instead each derives its own via Derive(label), a pure function of
// (parent state, label) that does not advance the parent. The traffic
// generator, for example, derives one stream per terminal, so terminal 17
// sees the same interarrival sequence whether the network has congestion
// callbacks attached or not, and regardless of the order in which other
// terminals inject.
//
// Why parallel and serial experiment runs agree: the sweep harness
// (internal/harness) runs each experiment point as an isolated simulation
// instance whose entire random universe is derived, via the scheme above,
// from that job's own seed. No RNG state is shared across jobs, so worker
// count, scheduling order, and speculative cancellation cannot perturb any
// job's stream — a parallel sweep is bit-identical to the same sweep run
// serially. See Example (streams) for the property in miniature.
package rng

import "math"

// Source is a splitmix64 generator. It is tiny, allocation free, passes
// BigCrush when used as a seeder, and is more than adequate for driving
// traffic patterns and tie-breaking.
type Source struct {
	state uint64
}

// New returns a source seeded with seed. Two sources with the same seed
// produce identical sequences.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Derive returns a new independent source whose seed is a mix of this
// source's current state and the given stream label. It does not advance
// the parent stream, and it is a pure function: deriving the same label
// from sources in the same state always yields the same stream. Use one
// label per component (terminal index, router index, …) so streams are
// statistically independent and structurally stable — removing one
// component's draws never shifts another's.
func (s *Source) Derive(label uint64) *Source {
	return New(mix(s.state ^ mix(label)))
}

// DeriveN derives n independent streams with labels base..base+n-1 into a
// single backing slab; element i equals *Derive(base + i). Large models
// (one stream per router or terminal) use this to keep stream derivation
// a single allocation.
func (s *Source) DeriveN(base uint64, n int) []Source {
	out := make([]Source, n)
	for i := range out {
		out[i].state = mix(s.state ^ mix(base+uint64(i)))
	}
	return out
}

// State returns the generator's current internal state. Together with
// SetState it makes a stream checkpointable: capturing State and later
// restoring it resumes the stream at exactly the same position, so a
// restored simulation draws the same values an uninterrupted one would
// have. The value is opaque — treat it as a resume token, not a seed.
func (s *Source) State() uint64 { return s.state }

// SetState rewinds (or fast-forwards) the generator to a state previously
// captured with State. It is the restore half of the snapshot contract
// documented in docs/STATE.md: streams are checkpointed by value, never
// re-derived, so a restore never changes which sequence a component sees.
func (s *Source) SetState(v uint64) { s.state = v }

// DeriveSeed deterministically folds labels into a base seed, yielding a
// new seed suitable for an independent simulation instance. With no
// labels it returns base unchanged. Use it to give repeated trials or
// sweep replicas distinct but reproducible random universes:
//
//	cfg.Seed = rng.DeriveSeed(baseSeed, uint64(trial))
func DeriveSeed(base uint64, labels ...uint64) uint64 {
	for _, l := range labels {
		base = mix(base ^ mix(l))
	}
	return base
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= -bound%bound { // lo >= (2^64 - bound) mod bound
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	ah, al := a>>32, a&mask
	bh, bl := b>>32, b&mask
	t := ah*bl + (al * bl >> 32)
	hi = ah*bh + t>>32 + (t&mask+al*bh)>>32
	lo = a * b
	return
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm fills p with a random permutation of [0, len(p)).
func (s *Source) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Exponential returns an exponentially distributed value with the given
// mean, using inversion sampling. Used for interarrival gaps.
func (s *Source) Exponential(mean float64) float64 {
	u := s.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = 0.9999999999999999
	}
	return -mean * math.Log(1-u)
}
