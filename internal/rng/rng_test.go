package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	s := New(7)
	a, b := s.Derive(1), s.Derive(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams collided %d times", same)
	}
	// Derive must not advance the parent.
	s2 := New(7)
	s2.Derive(1)
	if s.Uint64() != s2.Uint64() {
		t.Fatal("Derive advanced parent state")
	}
}

func TestDeriveSeed(t *testing.T) {
	if got := DeriveSeed(42); got != 42 {
		t.Errorf("DeriveSeed with no labels = %d, want base 42", got)
	}
	if DeriveSeed(42, 1) == DeriveSeed(42, 2) {
		t.Error("different labels produced the same seed")
	}
	if DeriveSeed(42, 1, 2) == DeriveSeed(42, 2, 1) {
		t.Error("label order should matter")
	}
	// Folding matches the equivalent Derive chain's seeding.
	if DeriveSeed(42, 5) == 42 {
		t.Error("label 5 left the seed unchanged")
	}
}

// TestIntnBounds: values always land in [0, n).
func TestIntnBounds(t *testing.T) {
	s := New(1)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// TestIntnUniformity: chi-squared-ish check over 8 buckets.
func TestIntnUniformity(t *testing.T) {
	s := New(99)
	const buckets, n = 8, 80000
	var c [buckets]int
	for i := 0; i < n; i++ {
		c[s.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, got := range c {
		if math.Abs(float64(got)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d vs expected %.0f", i, got, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(10)
	}
	mean := sum / n
	if mean < 9.8 || mean > 10.2 {
		t.Errorf("exponential mean %.3f, want ~10", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := make([]int, 257)
	s.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

// TestMul64 against the stdlib's 128-bit multiply identity via known
// cases.
func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
