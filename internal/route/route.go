// Package route defines the routing-algorithm contract shared by the
// router model and every routing algorithm: packets, routing candidates,
// the local congestion view, and the weighted selection rule
// (weight = congestion x hopcount) from the paper.
package route

import (
	"hyperx/internal/rng"
	"hyperx/internal/sim"
)

// Packet is the unit of transfer. The simulator moves whole packets with
// flit-accurate timing: a packet of Len flits occupies a channel for Len
// cycles. Routing state lives in the packet only where the corresponding
// real algorithm requires packet fields (Table 1); DimWAR and OmniWAR
// derive everything from the VC identifier, which the simulator mirrors in
// Class/Hops for bookkeeping.
type Packet struct {
	ID  uint64
	Src int // source terminal
	Dst int // destination terminal

	SrcRouter int
	DstRouter int

	Len int // flits, 1..MaxPacketFlits

	Birth  sim.Time // creation time at the source terminal
	Inject sim.Time // head departed the source terminal

	// Routing state.
	Inter      int    // intermediate router for two-phase algorithms, -1 none
	Phase      int8   // algorithm-defined phase counter
	Hops       int8   // router-to-router hops taken
	Class      int8   // current resource class (mirrors the VC identifier)
	VC         int8   // physical VC currently occupied
	Derouted   uint32 // bitmask of dimensions derouted (DAL-style tracking)
	LastDerDim int8   // dimension of immediately preceding deroute, -1 none

	// Tag carries application-model identification (message, phase, round).
	Tag uint64

	// Next is an intrusive link for whoever currently owns the packet —
	// an input-VC buffer, a terminal source queue, or the free pool. A
	// packet is in exactly one queue at a time (ownership transfers whole),
	// so one link suffices and the queues need no per-entry allocation.
	Next *Packet
}

// Reset clears routing state for (re)injection.
func (p *Packet) Reset() {
	p.Inter = -1
	p.Phase = 0
	p.Hops = 0
	p.Class = 0
	p.VC = -1
	p.Derouted = 0
	p.LastDerDim = -1
}

// Candidate is one admissible output for a packet at a router.
type Candidate struct {
	Port     int   // output port
	Class    int8  // resource class for the next hop
	HopsLeft int8  // hops to destination if this output is taken (>= 1)
	Deroute  bool  // true if this is a non-minimal (lateral) hop
	Dim      int8  // dimension of the hop, -1 if not applicable
	NewPhase int8  // packet phase after taking this hop
	SetInter bool  // if true, packet's Inter becomes Inter below on commit
	Inter    int32 // new intermediate router, -1 clears
}

// View exposes purely local congestion information, the only input the
// paper's algorithms are allowed: occupancy of the downstream buffer
// reachable through an output, plus residual busy time of the output
// channel.
type View interface {
	// ClassLoad returns the congestion estimate, in flits, for sending on
	// the given output port within the given resource class: the minimum
	// downstream occupancy over the class's VCs plus the channel's residual
	// busy time.
	ClassLoad(port int, class int8) int
	// PortLoad returns the aggregate congestion estimate for an output
	// port across all VCs (used by source-adaptive algorithms that weigh
	// whole ports).
	PortLoad(port int) int
	// PortAlive reports whether the output port's link is usable. A dead
	// (faulted) port holds zero credits and is excluded from arbitration;
	// algorithms and the weight selection must never choose it.
	PortAlive(port int) bool
}

// Ctx is the per-decision routing context handed to Algorithm.Route.
type Ctx struct {
	Router int // current router
	InPort int // arrival port, -1 for injection
	View   View
	RNG    *rng.Source

	// ClassSense selects per-resource-class congestion sensing for the
	// weight computation instead of the default per-port output-queue
	// sensing. Real routers observe their output queues, which aggregate
	// all VCs of a port — and that aggregation is precisely why source-
	// adaptive algorithms cannot escape remote congestion (Figure 6d):
	// their own blocked minimal packets inflate every candidate port
	// equally, and hopcount then keeps selecting the minimal path. Kept
	// as an option for the sensing-ablation benchmark.
	ClassSense bool

	// Cands is a reusable candidate buffer; Route appends to Cands[:0].
	Cands []Candidate
}

// Meta describes an algorithm's implementation properties (Table 1).
type Meta struct {
	DimOrdered   bool
	Style        string // "source", "incremental", "oblivious"
	VCsRequired  string
	Deadlock     string // deadlock-avoidance scheme
	ArchRequires string
	PktContents  string // extra per-packet state the protocol must carry
}

// Algorithm computes routing candidates for packets at routers.
//
// Route must append all currently admissible candidates to ctx.Cands[:0]
// and return the slice. The router selects among them with SelectMinWeight
// and commits the winner. Implementations must not retain ctx or the
// returned slice.
type Algorithm interface {
	Name() string
	// NumClasses returns how many resource classes the algorithm needs;
	// the router partitions its physical VCs evenly among classes.
	NumClasses() int
	Route(ctx *Ctx, p *Packet) []Candidate
	Meta() Meta
}

// SelectMinWeight implements the paper's selection rule: for each
// candidate compute weight = congestion x hopcount and choose the minimum.
// The congestion term carries a +1 offset so that at zero load the weight
// degenerates to pure hop count and minimal paths win — without it, any
// transient flit on the minimal path would divert packets onto idle
// deroutes. Ties prefer fewer hops, then break uniformly at random so
// equal-cost paths load-balance. Candidates on dead (faulted) ports are
// never selected; if every candidate is dead the result is -1.
func SelectMinWeight(ctx *Ctx, cands []Candidate) int {
	best := -1
	bestW, bestH := int64(0), int8(0)
	nTies := 0
	for i := range cands {
		c := &cands[i]
		if !ctx.View.PortAlive(c.Port) {
			continue
		}
		var load int
		if ctx.ClassSense {
			load = ctx.View.ClassLoad(c.Port, c.Class)
		} else {
			load = ctx.View.PortLoad(c.Port)
		}
		w := int64(load+1) * int64(c.HopsLeft)
		switch {
		case best < 0 || w < bestW || (w == bestW && c.HopsLeft < bestH):
			best, bestW, bestH = i, w, c.HopsLeft
			nTies = 1
		case w == bestW && c.HopsLeft == bestH:
			// Reservoir-sample among exact ties.
			nTies++
			if ctx.RNG.Intn(nTies) == 0 {
				best = i
			}
		}
	}
	return best
}

// Commit applies a chosen candidate's state transitions to the packet.
// The router calls this exactly once per hop, at grant time.
func Commit(p *Packet, c *Candidate) {
	p.Hops++
	p.Class = c.Class
	p.Phase = c.NewPhase
	if c.Deroute {
		if c.Dim >= 0 {
			p.Derouted |= 1 << uint(c.Dim)
		}
		p.LastDerDim = c.Dim
	} else {
		p.LastDerDim = -1
	}
	if c.SetInter {
		p.Inter = int(c.Inter)
	}
}
