package route

import (
	"testing"

	"hyperx/internal/rng"
)

// tableView returns fixed loads per (port, class-agnostic); ports listed
// in dead are reported faulted.
type tableView struct {
	port  map[int]int
	class map[[2]int]int
	dead  map[int]bool
}

func (v tableView) PortLoad(p int) int          { return v.port[p] }
func (v tableView) ClassLoad(p int, c int8) int { return v.class[[2]int{p, int(c)}] }
func (v tableView) PortAlive(p int) bool        { return !v.dead[p] }

func ctxWith(v View, classSense bool) *Ctx {
	return &Ctx{View: v, RNG: rng.New(1), ClassSense: classSense}
}

func TestSelectMinWeightPrefersLowCongestion(t *testing.T) {
	v := tableView{port: map[int]int{0: 100, 1: 2}}
	cands := []Candidate{
		{Port: 0, HopsLeft: 3},
		{Port: 1, HopsLeft: 4, Deroute: true},
	}
	// (100+1)*3 = 303 vs (2+1)*4 = 12: the longer, colder path wins.
	if got := SelectMinWeight(ctxWith(v, false), cands); got != 1 {
		t.Errorf("selected %d, want the cold deroute", got)
	}
}

func TestSelectMinWeightZeroLoadPrefersMinimal(t *testing.T) {
	v := tableView{port: map[int]int{}}
	cands := []Candidate{
		{Port: 0, HopsLeft: 4, Deroute: true},
		{Port: 1, HopsLeft: 3},
		{Port: 2, HopsLeft: 4, Deroute: true},
	}
	// All loads zero: the +1 offset makes weight = hopcount, minimal wins.
	if got := SelectMinWeight(ctxWith(v, false), cands); got != 1 {
		t.Errorf("selected %d, want the minimal candidate at zero load", got)
	}
}

func TestSelectMinWeightTieBreaksUniformly(t *testing.T) {
	v := tableView{port: map[int]int{}}
	cands := []Candidate{
		{Port: 0, HopsLeft: 3},
		{Port: 1, HopsLeft: 3},
		{Port: 2, HopsLeft: 3},
	}
	counts := make([]int, 3)
	ctx := ctxWith(v, false)
	for i := 0; i < 3000; i++ {
		counts[SelectMinWeight(ctx, cands)]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("tie-break skewed: candidate %d chosen %d/3000", i, c)
		}
	}
}

func TestSelectMinWeightClassSense(t *testing.T) {
	v := tableView{
		port:  map[int]int{0: 50, 1: 50}, // ports look identical
		class: map[[2]int]int{{0, 0}: 50, {1, 1}: 0},
	}
	cands := []Candidate{
		{Port: 0, Class: 0, HopsLeft: 3},
		{Port: 1, Class: 1, HopsLeft: 6},
	}
	// Port sensing: (50+1)*3 < (50+1)*6 -> minimal (index 0).
	if got := SelectMinWeight(ctxWith(v, false), cands); got != 0 {
		t.Errorf("port sensing selected %d, want 0", got)
	}
	// Class sensing sees the empty class-1 buffers: (0+1)*6 < (50+1)*3.
	if got := SelectMinWeight(ctxWith(v, true), cands); got != 1 {
		t.Errorf("class sensing selected %d, want 1", got)
	}
}

func TestCommitMinimalHop(t *testing.T) {
	p := &Packet{}
	p.Reset()
	Commit(p, &Candidate{Class: 1, NewPhase: 1})
	if p.Hops != 1 || p.Class != 1 || p.Phase != 1 || p.LastDerDim != -1 {
		t.Errorf("after minimal commit: %+v", p)
	}
	if p.Derouted != 0 {
		t.Errorf("minimal hop set deroute mask")
	}
}

func TestCommitDeroute(t *testing.T) {
	p := &Packet{}
	p.Reset()
	Commit(p, &Candidate{Deroute: true, Dim: 2, Class: 1})
	if p.Derouted != 1<<2 || p.LastDerDim != 2 {
		t.Errorf("after deroute commit: %+v", p)
	}
	// A following minimal hop clears LastDerDim but keeps the mask.
	Commit(p, &Candidate{Class: 0})
	if p.LastDerDim != -1 || p.Derouted != 1<<2 {
		t.Errorf("after subsequent minimal: %+v", p)
	}
	if p.Hops != 2 {
		t.Errorf("hops = %d", p.Hops)
	}
}

func TestCommitIntermediate(t *testing.T) {
	p := &Packet{}
	p.Reset()
	Commit(p, &Candidate{SetInter: true, Inter: 42})
	if p.Inter != 42 {
		t.Errorf("inter = %d", p.Inter)
	}
	Commit(p, &Candidate{}) // no SetInter: unchanged
	if p.Inter != 42 {
		t.Errorf("inter clobbered: %d", p.Inter)
	}
	Commit(p, &Candidate{SetInter: true, Inter: -1})
	if p.Inter != -1 {
		t.Errorf("inter not cleared: %d", p.Inter)
	}
}

func TestPacketReset(t *testing.T) {
	p := &Packet{Inter: 9, Phase: 2, Hops: 5, Class: 3, VC: 4, Derouted: 7, LastDerDim: 1}
	p.Reset()
	if p.Inter != -1 || p.Phase != 0 || p.Hops != 0 || p.Class != 0 || p.VC != -1 ||
		p.Derouted != 0 || p.LastDerDim != -1 {
		t.Errorf("reset left state: %+v", p)
	}
}
