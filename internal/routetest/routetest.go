// Package routetest provides a topology-level walker for unit-testing
// routing algorithms without the full router model: it repeatedly calls
// the algorithm, selects by weight under a synthetic congestion view, and
// teleports the packet across the chosen link.
package routetest

import (
	"fmt"

	"hyperx/internal/rng"
	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// StubView is a congestion view with settable per-(router,port) loads
// and an optional fault set supplying port liveness.
type StubView struct {
	Loads  map[[2]int]int // (router, port) -> load
	Faults *topology.FaultSet
	r      int
}

// ClassLoad implements route.View.
func (v *StubView) ClassLoad(port int, _ int8) int { return v.Loads[[2]int{v.r, port}] }

// PortLoad implements route.View.
func (v *StubView) PortLoad(port int) int { return v.Loads[[2]int{v.r, port}] }

// PortAlive implements route.View.
func (v *StubView) PortAlive(port int) bool { return !v.Faults.Dead(v.r, port) }

// SetRouter positions the view at a router, for tests that call an
// algorithm's Route directly instead of going through Walk.
func (v *StubView) SetRouter(r int) { v.r = r }

// Hop records one step of a walk.
type Hop struct {
	Router int
	Cand   route.Candidate
}

// Walk drives a packet from srcRouter to dstRouter, committing the
// weight-selected candidate at every hop. It returns the hop sequence or
// an error if the algorithm emits no candidates or exceeds maxHops.
func Walk(topo topology.Topology, alg route.Algorithm, srcRouter, dstRouter, maxHops int, seed uint64, view *StubView) ([]Hop, *route.Packet, error) {
	if view == nil {
		view = &StubView{}
	}
	p := &route.Packet{Src: -1, Dst: -1, SrcRouter: srcRouter, DstRouter: dstRouter, Len: 1}
	p.Reset()
	ctx := &route.Ctx{RNG: rng.New(seed), View: view, InPort: -1}
	cur := srcRouter
	var hops []Hop
	for cur != dstRouter {
		if len(hops) > maxHops {
			return hops, p, fmt.Errorf("exceeded %d hops from %d to %d", maxHops, srcRouter, dstRouter)
		}
		ctx.Router = cur
		view.r = cur
		cands := alg.Route(ctx, p)
		ctx.Cands = cands
		if len(cands) == 0 {
			return hops, p, fmt.Errorf("no candidates at router %d (hops=%d class=%d phase=%d inter=%d)",
				cur, p.Hops, p.Class, p.Phase, p.Inter)
		}
		sel := route.SelectMinWeight(ctx, cands)
		if sel < 0 {
			return hops, p, fmt.Errorf("every candidate at router %d is on a dead port (hops=%d class=%d)",
				cur, p.Hops, p.Class)
		}
		c := cands[sel]
		if view.Faults.Dead(cur, c.Port) {
			return hops, p, fmt.Errorf("algorithm chose dead link at router %d port %d", cur, c.Port)
		}
		if topo.PortKind(cur, c.Port) != topology.Local && topo.PortKind(cur, c.Port) != topology.Global {
			return hops, p, fmt.Errorf("candidate port %d at router %d is not a router link", c.Port, cur)
		}
		route.Commit(p, &c)
		hops = append(hops, Hop{Router: cur, Cand: c})
		cur, _ = topo.Peer(cur, c.Port)
		ctx.InPort = 0 // arbitrary non-injection marker
	}
	return hops, p, nil
}
