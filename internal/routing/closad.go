package routing

import (
	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// ClosAD is the Adaptive Clos algorithm of the Flattened Butterfly paper
// (Kim et al., ISCA '07), labeled UGAL+ in the evaluation plots: UGAL with
// least-common-ancestor intermediate selection. At the source router it
// weighs every output port in every unaligned dimension — the minimal port
// of each such dimension and all lateral ports — and if a non-minimal port
// wins, draws a random intermediate router consistent with that port that
// never moves the packet away in an already-aligned dimension.
//
// Per Section 4.1 the sequential-allocation optimization is architecturally
// infeasible in high-radix routers and is deliberately not implemented,
// matching the paper's evaluation configuration.
type ClosAD struct {
	topo *topology.HyperX
}

// NewClosAD returns a Clos-AD instance for the given HyperX.
func NewClosAD(h *topology.HyperX) *ClosAD { return &ClosAD{topo: h} }

// Name implements route.Algorithm.
func (a *ClosAD) Name() string { return "UGAL+" }

// NumClasses implements route.Algorithm.
func (a *ClosAD) NumClasses() int { return 2 }

// Meta implements route.Algorithm.
func (a *ClosAD) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   true,
		Style:        "source",
		VCsRequired:  "2",
		Deadlock:     "restricted routes + resource classes",
		ArchRequires: "sequential allocation (omitted, §4.1)",
		PktContents:  "int. addr.",
	}
}

// Route implements route.Algorithm.
func (a *ClosAD) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	h := a.topo
	r, dst := ctx.Router, p.DstRouter

	if p.Hops == 0 && p.Phase == 0 && p.Inter < 0 {
		minHops := int8(h.MinHops(r, dst))
		firstDim := h.FirstUnalignedDim(r, dst)
		cands := ctx.Cands[:0]
		for d, w := range h.Widths {
			own := h.CoordDigit(r, d)
			dstV := h.CoordDigit(dst, d)
			if own == dstV {
				continue // LCA restriction: never leave an aligned dimension
			}
			dim := int8(d)
			for v := 0; v < w; v++ {
				if v == own {
					continue
				}
				if v == dstV {
					// Minimal port. If it follows dimension order it joins
					// the phase-1 DOR class directly; otherwise it rides
					// class 0 as a one-hop phase 0 (with the next router as
					// its own intermediate) so that class-1 channels only
					// ever carry ascending dimension-order traffic.
					c := route.Candidate{
						Port:     h.DimPort(r, d, v),
						Class:    1,
						HopsLeft: minHops,
						Dim:      dim,
						NewPhase: 1,
						SetInter: true,
						Inter:    -1,
					}
					if d != firstDim {
						c.Class = 0
						c.NewPhase = 0
						c.Inter = int32(h.WithDigit(r, d, v))
					}
					cands = append(cands, c)
					continue
				}
				inter := a.drawIntermediate(ctx, p, d, v)
				hops := int8(h.MinHops(r, inter) + h.MinHops(inter, dst))
				cands = append(cands, route.Candidate{
					Port:     h.DimPort(r, d, v),
					Class:    0,
					HopsLeft: hops,
					Deroute:  true,
					Dim:      dim,
					NewPhase: 0,
					SetInter: true,
					Inter:    int32(inter),
				})
			}
		}
		return cands
	}
	if p.Phase == 0 {
		if r == p.Inter {
			return dorStep(h, ctx, p, dst, 1, true, -1)
		}
		return dorStep(h, ctx, p, p.Inter, 0, false, 0)
	}
	return dorStep(h, ctx, p, dst, 1, false, 0)
}

// drawIntermediate picks a random intermediate router such that (a) the
// weighed output port (dimension d toward value v) is the first
// dimension-order hop toward it, (b) it matches the destination in every
// dimension where source and destination are already aligned (the
// least-common-ancestor rule), and (c) it matches the source in unaligned
// dimensions below d. Constraint (c) keeps every phase-0 path a pure
// ascending dimension-order walk, which is what makes two resource classes
// sufficient; those low dimensions are resolved minimally in phase 1.
func (a *ClosAD) drawIntermediate(ctx *route.Ctx, p *route.Packet, d, v int) int {
	h := a.topo
	inter := p.DstRouter // start from dst: aligned dims automatically match
	for e, w := range h.Widths {
		switch {
		case e == d:
			inter = h.WithDigit(inter, e, v)
		case h.CoordDigit(ctx.Router, e) != h.CoordDigit(p.DstRouter, e):
			if e < d {
				inter = h.WithDigit(inter, e, h.CoordDigit(ctx.Router, e))
			} else {
				inter = h.WithDigit(inter, e, ctx.RNG.Intn(w))
			}
		}
	}
	return inter
}
