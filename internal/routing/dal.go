package routing

import (
	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// DAL is Dimensionally Adaptive Load-balancing, the original HyperX
// routing algorithm (Ahn et al., SC '09), reproduced here as prior work
// for the Section 4.2 analysis. At every hop a packet may move minimally
// in any unaligned dimension or deroute laterally in an unaligned
// dimension it has not yet derouted in (tracked by an N-bit field carried
// in the packet); once derouted in every dimension it must route
// minimally.
//
// DAL's deadlock avoidance requires Duato-style escape paths, which — as
// Section 4.2 argues — modern high-radix router architectures can only
// support through atomic queue allocation: a packet may be forwarded only
// into a completely empty downstream queue. Pair this algorithm with the
// router's AtomicVCAlloc option to model that configuration; the resulting
// throughput ceiling of PktSize x NumVCs / CreditRoundTrip is what the
// paper quantifies as 8% (single-flit) and 68% (random 1-16 flit) for the
// evaluated network.
type DAL struct {
	topo *topology.HyperX
}

// NewDAL returns a DAL instance for the given HyperX.
func NewDAL(h *topology.HyperX) *DAL { return &DAL{topo: h} }

// Name implements route.Algorithm.
func (a *DAL) Name() string { return "DAL" }

// NumClasses implements route.Algorithm: class 0 carries the fully
// adaptive traffic and class 1 is the escape network (the "+1e" of
// Table 1), where routing degenerates to deadlock-free dimension order.
// A packet that moves to the escape class stays there to its destination.
func (a *DAL) NumClasses() int { return 2 }

// Meta implements route.Algorithm.
func (a *DAL) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   false,
		Style:        "incremental",
		VCsRequired:  "1+1e",
		Deadlock:     "escape paths (atomic queue allocation)",
		ArchRequires: "escape paths",
		PktContents:  "N-bit deroute field",
	}
}

// Route implements route.Algorithm.
func (a *DAL) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	h := a.topo
	r, dst := ctx.Router, p.DstRouter
	minRem := int8(h.MinHops(r, dst))
	if minRem == 0 {
		return ctx.Cands[:0]
	}
	cands := ctx.Cands[:0]
	// Escape path: the dimension-order hop on the escape class. Once a
	// packet occupies the escape network it must remain there (restricted
	// routes keep the escape network acyclic).
	fd := h.FirstUnalignedDim(r, dst)
	cands = append(cands, route.Candidate{
		Port:     h.DimPort(r, fd, h.CoordDigit(dst, fd)),
		Class:    1,
		HopsLeft: minRem,
		Dim:      int8(fd),
	})
	if p.Class == 1 {
		return cands
	}
	for d := range h.Widths {
		own := h.CoordDigit(r, d)
		dstV := h.CoordDigit(dst, d)
		if own == dstV {
			continue
		}
		dim := int8(d)
		minPort := h.DimPort(r, d, dstV)
		cands = append(cands, route.Candidate{
			Port:     minPort,
			Class:    0,
			HopsLeft: minRem,
			Dim:      dim,
		})
		if p.Derouted&(1<<uint(d)) != 0 {
			continue // one deroute per dimension
		}
		// Laterals via the dimension's port block (peer digit ascending,
		// own skipped; the minimal port is v == dstV).
		base, n := h.DimPortBlock(d)
		for port := base; port < base+n; port++ {
			if port == minPort {
				continue
			}
			cands = append(cands, route.Candidate{
				Port:     port,
				Class:    0,
				HopsLeft: minRem + 1,
				Deroute:  true,
				Dim:      dim,
			})
		}
	}
	return cands
}
