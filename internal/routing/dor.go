// Package routing implements the baseline routing algorithms the paper
// evaluates against (Table 2) — DOR, VAL, UGAL, Clos-AD (UGAL+) — plus the
// prior-work DAL algorithm of Section 4.2, minimal-adaptive routing, and
// the routing algorithms of the comparison topologies (fat tree and
// Dragonfly) used by the motivation experiments.
//
// Fault semantics: the dimension-ordered baselines (DOR, VAL, UGAL,
// UGAL+, DAL) have exactly one admissible hop per dimension step, so they
// cannot route around a failed link; on a faulted network the router's
// detect-and-drop path discards (and counts) any packet whose next
// dimension-ordered hop is dead. MinAD is fault-aware (SetFaults) to the
// extent its minimal candidate set allows. Only the paper's incremental
// adaptive algorithms (internal/core) degrade gracefully by derouting.
package routing

import (
	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// DOR is deterministic dimension-order routing on HyperX: resolve each
// unaligned dimension in ascending order with the single direct hop.
// Restricted routes make it deadlock free with one resource class.
type DOR struct {
	topo *topology.HyperX
}

// NewDOR returns a DOR instance for the given HyperX.
func NewDOR(h *topology.HyperX) *DOR { return &DOR{topo: h} }

// Name implements route.Algorithm.
func (a *DOR) Name() string { return "DOR" }

// NumClasses implements route.Algorithm.
func (a *DOR) NumClasses() int { return 1 }

// Meta implements route.Algorithm.
func (a *DOR) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   true,
		Style:        "oblivious",
		VCsRequired:  "1",
		Deadlock:     "restricted routes",
		ArchRequires: "none",
		PktContents:  "none",
	}
}

// Route implements route.Algorithm.
func (a *DOR) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	h := a.topo
	d := h.FirstUnalignedDim(ctx.Router, p.DstRouter)
	if d < 0 {
		return ctx.Cands[:0]
	}
	return append(ctx.Cands[:0], route.Candidate{
		Port:     h.DimPort(ctx.Router, d, h.CoordDigit(p.DstRouter, d)),
		Class:    0,
		HopsLeft: int8(h.MinHops(ctx.Router, p.DstRouter)),
		Dim:      int8(d),
	})
}
