package routing

import (
	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// DragonflyUGAL is UGAL on the Dragonfly (Kim et al., ISCA '08): at the
// source router it weighs the minimal (local, global, local) path against
// a Valiant path through a random intermediate group, then follows the
// chosen path minimally. Hop-indexed distance classes (at most five hops
// on a Valiant path) provide deadlock freedom.
//
// The valiantOnly and minimalOnly flags degrade the algorithm to pure VAL
// or pure MIN, used by the Figure 4 comparison harness.
type DragonflyUGAL struct {
	topo        *topology.Dragonfly
	valiantOnly bool
	minimalOnly bool
}

// NewDragonflyUGAL returns Dragonfly UGAL routing.
func NewDragonflyUGAL(d *topology.Dragonfly) *DragonflyUGAL {
	return &DragonflyUGAL{topo: d}
}

// NewDragonflyMIN returns minimal Dragonfly routing.
func NewDragonflyMIN(d *topology.Dragonfly) *DragonflyUGAL {
	return &DragonflyUGAL{topo: d, minimalOnly: true}
}

// NewDragonflyVAL returns Valiant Dragonfly routing (random intermediate
// group).
func NewDragonflyVAL(d *topology.Dragonfly) *DragonflyUGAL {
	return &DragonflyUGAL{topo: d, valiantOnly: true}
}

// Name implements route.Algorithm.
func (a *DragonflyUGAL) Name() string {
	switch {
	case a.valiantOnly:
		return "DF-VAL"
	case a.minimalOnly:
		return "DF-MIN"
	default:
		return "DF-UGAL"
	}
}

// NumClasses implements route.Algorithm: five distance classes cover the
// longest (Valiant) path l-g-l-g-l.
func (a *DragonflyUGAL) NumClasses() int { return 5 }

// Meta implements route.Algorithm.
func (a *DragonflyUGAL) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   false,
		Style:        "source",
		VCsRequired:  "5",
		Deadlock:     "distance classes",
		ArchRequires: "none",
		PktContents:  "int. group",
	}
}

// Route implements route.Algorithm. Phase 0 is the walk to the
// intermediate group (Valiant only), phase 1 the minimal walk to the
// destination. p.Inter stores the intermediate group.
func (a *DragonflyUGAL) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	d := a.topo
	r, dst := ctx.Router, p.DstRouter

	if p.Hops == 0 && p.Phase == 0 && p.Inter < 0 {
		cands := ctx.Cands[:0]
		if !a.valiantOnly {
			if c, ok := a.minStep(ctx, p, dst, 1, true, -1); ok {
				cands = append(cands, c)
			}
		}
		if !a.minimalOnly {
			gi := ctx.RNG.Intn(d.G)
			if gi != d.Group(r) && gi != d.Group(dst) {
				if c, ok := a.valStep(ctx, p, gi); ok {
					cands = append(cands, c)
				}
			} else if a.valiantOnly {
				// Degenerate draw: go minimally this time.
				if c, ok := a.minStep(ctx, p, dst, 1, true, -1); ok {
					cands = append(cands, c)
				}
			}
		}
		return cands
	}
	if p.Phase == 0 {
		if d.Group(r) == p.Inter {
			if c, ok := a.minStep(ctx, p, dst, 1, true, -1); ok {
				return append(ctx.Cands[:0], c)
			}
			return ctx.Cands[:0]
		}
		if c, ok := a.valStep(ctx, p, p.Inter); ok {
			return append(ctx.Cands[:0], c)
		}
		return ctx.Cands[:0]
	}
	if c, ok := a.minStep(ctx, p, dst, 1, false, 0); ok {
		return append(ctx.Cands[:0], c)
	}
	return ctx.Cands[:0]
}

// minStep builds the next minimal hop toward target router.
func (a *DragonflyUGAL) minStep(ctx *route.Ctx, p *route.Packet, target int, phase int8, setInter bool, inter int32) (route.Candidate, bool) {
	d := a.topo
	r := ctx.Router
	if r == target {
		return route.Candidate{}, false
	}
	c := route.Candidate{
		Class:    p.Hops, // distance class = hop index
		HopsLeft: int8(d.MinHops(r, target)),
		NewPhase: phase,
		SetInter: setInter,
		Inter:    inter,
	}
	if d.Group(r) == d.Group(target) {
		c.Port = d.LocalPort(r, d.LocalIndex(target))
		return c, true
	}
	gw, gp := d.GlobalPortTo(d.Group(r), d.Group(target))
	if r == gw {
		c.Port = gp
	} else {
		c.Port = d.LocalPort(r, d.LocalIndex(gw))
	}
	return c, true
}

// valStep builds the next hop toward intermediate group gi (phase 0).
func (a *DragonflyUGAL) valStep(ctx *route.Ctx, p *route.Packet, gi int) (route.Candidate, bool) {
	d := a.topo
	r := ctx.Router
	g := d.Group(r)
	if g == gi {
		return route.Candidate{}, false
	}
	gw, gp := d.GlobalPortTo(g, gi)
	arrival, _ := d.GlobalPortTo(gi, g)
	hops := int8(1 + d.MinHops(arrival, p.DstRouter))
	c := route.Candidate{
		Class:    p.Hops,
		Deroute:  true,
		NewPhase: 0,
		SetInter: true,
		Inter:    int32(gi),
	}
	if r == gw {
		c.Port = gp
		c.HopsLeft = hops
	} else {
		c.Port = d.LocalPort(r, d.LocalIndex(gw))
		c.HopsLeft = hops + 1
	}
	return c, true
}
