package routing

import (
	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// FatTreeAdaptive is adaptive nearest-common-ancestor routing on the
// 3-level folded Clos: on the way up, every port reaching a common
// ancestor of source and destination is a candidate and the
// least-congested wins; the way down is deterministic. Up*/down* ordering
// makes it deadlock free with a single resource class.
type FatTreeAdaptive struct {
	topo *topology.FatTree
}

// NewFatTreeAdaptive returns the adaptive Clos routing for a fat tree.
func NewFatTreeAdaptive(f *topology.FatTree) *FatTreeAdaptive {
	return &FatTreeAdaptive{topo: f}
}

// Name implements route.Algorithm.
func (a *FatTreeAdaptive) Name() string { return "Clos-Adaptive" }

// NumClasses implements route.Algorithm.
func (a *FatTreeAdaptive) NumClasses() int { return 1 }

// Meta implements route.Algorithm.
func (a *FatTreeAdaptive) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   false,
		Style:        "incremental",
		VCsRequired:  "1",
		Deadlock:     "up*/down* restricted routes",
		ArchRequires: "none",
		PktContents:  "none",
	}
}

// Route implements route.Algorithm.
func (a *FatTreeAdaptive) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	f := a.topo
	r, dst := ctx.Router, p.DstRouter // dst is always an edge switch
	half := f.K / 2
	cands := ctx.Cands[:0]
	switch f.Level(r) {
	case 0: // edge, not destination: all up ports are candidates
		hops := int8(2)
		if f.Pod(r) != f.Pod(dst) {
			hops = 4
		}
		for p := half; p < f.K; p++ {
			cands = append(cands, route.Candidate{Port: p, Class: 0, HopsLeft: hops})
		}
	case 1: // aggregation
		if f.Pod(r) == f.Pod(dst) {
			// Deterministic down to the destination edge.
			cands = append(cands, route.Candidate{Port: dst % half, Class: 0, HopsLeft: 1})
		} else {
			for p := half; p < f.K; p++ {
				cands = append(cands, route.Candidate{Port: p, Class: 0, HopsLeft: 3})
			}
		}
	default: // core: deterministic down to the destination pod
		cands = append(cands, route.Candidate{Port: f.Pod(dst), Class: 0, HopsLeft: 2})
	}
	return cands
}
