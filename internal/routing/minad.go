package routing

import (
	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// MinAD is minimal adaptive routing on HyperX: at every hop choose the
// least-congested output among the minimal ports of all unaligned
// dimensions. Distance classes (one per dimension) make it deadlock free.
// Like all minimal algorithms it cannot load-balance adversarial traffic
// (Section 2.2) — included as an ablation baseline.
type MinAD struct {
	topo   *topology.HyperX
	faults *topology.FaultSet
}

// NewMinAD returns a MinAD instance for the given HyperX.
func NewMinAD(h *topology.HyperX) *MinAD { return &MinAD{topo: h} }

// SetFaults omits dead minimal hops from candidate generation. MinAD has
// no deroutes, so it tolerates a fault only while another unaligned
// dimension offers a live minimal hop; a packet whose every remaining
// minimal hop is dead is dropped by the router (detect-and-drop).
func (a *MinAD) SetFaults(fs *topology.FaultSet) { a.faults = fs }

// Name implements route.Algorithm.
func (a *MinAD) Name() string { return "MinAD" }

// NumClasses implements route.Algorithm: one distance class per dimension.
func (a *MinAD) NumClasses() int { return a.topo.NumDims() }

// Meta implements route.Algorithm.
func (a *MinAD) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   false,
		Style:        "incremental",
		VCsRequired:  "N",
		Deadlock:     "distance classes",
		ArchRequires: "none",
		PktContents:  "none",
	}
}

// Route implements route.Algorithm.
func (a *MinAD) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	h := a.topo
	r, dst := ctx.Router, p.DstRouter
	minRem := int8(h.MinHops(r, dst))
	cands := ctx.Cands[:0]
	for d := range h.Widths {
		own := h.CoordDigit(r, d)
		dstV := h.CoordDigit(dst, d)
		if own == dstV {
			continue
		}
		port := h.DimPort(r, d, dstV)
		if a.faults.Dead(r, port) {
			continue
		}
		cands = append(cands, route.Candidate{
			Port:     port,
			Class:    p.Hops, // distance class = hop index
			HopsLeft: minRem,
			Dim:      int8(d),
		})
	}
	return cands
}
