package routing

import (
	"testing"
	"testing/quick"

	"hyperx/internal/rng"
	"hyperx/internal/route"
	"hyperx/internal/routetest"
	"hyperx/internal/topology"
)

func newCtx(r int, view route.View) *route.Ctx {
	return &route.Ctx{Router: r, InPort: -1, View: view, RNG: rng.New(1)}
}

func flatView() *routetest.StubView { return &routetest.StubView{} }

// TestDORSingleCandidate: DOR always emits exactly one candidate, in the
// first unaligned dimension, on class 0.
func TestDORSingleCandidate(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := NewDOR(h)
	for src := 0; src < h.NumRouters(); src += 7 {
		for dst := 0; dst < h.NumRouters(); dst += 11 {
			if src == dst {
				continue
			}
			p := &route.Packet{SrcRouter: src, DstRouter: dst}
			p.Reset()
			cands := a.Route(newCtx(src, flatView()), p)
			if len(cands) != 1 {
				t.Fatalf("DOR candidates = %d", len(cands))
			}
			c := cands[0]
			if c.Class != 0 || c.Deroute {
				t.Fatalf("DOR candidate %+v", c)
			}
			if d, v := h.PortDim(src, c.Port); d != h.FirstUnalignedDim(src, dst) || v != h.CoordDigit(dst, d) {
				t.Fatalf("DOR hop not dimension-ordered minimal")
			}
		}
	}
}

// TestDORWalkLength: DOR paths are exactly MinHops long.
func TestDORWalkLength(t *testing.T) {
	h := topology.MustHyperX([]int{3, 4, 5}, 1)
	a := NewDOR(h)
	f := func(s, d uint32) bool {
		src := int(s) % h.NumRouters()
		dst := int(d) % h.NumRouters()
		if src == dst {
			return true
		}
		hops, _, err := routetest.Walk(h, a, src, dst, 3, 1, nil)
		return err == nil && len(hops) == h.MinHops(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestVALTwoPhases: VAL walks DOR to some intermediate on class 0/phase 0
// and then DOR to the destination on class 1/phase 1.
func TestVALTwoPhases(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := NewVAL(h)
	f := func(s, d uint32, seed uint64) bool {
		src := int(s) % h.NumRouters()
		dst := int(d) % h.NumRouters()
		if src == dst {
			return true
		}
		hops, p, err := routetest.Walk(h, a, src, dst, 2*h.NumDims(), seed, nil)
		if err != nil {
			t.Logf("%v", err)
			return false
		}
		phase := int8(0)
		for _, hp := range hops {
			if hp.Cand.Class != hp.Cand.NewPhase {
				return false // class mirrors phase
			}
			if hp.Cand.NewPhase < phase {
				return false // phases never go backward
			}
			phase = hp.Cand.NewPhase
		}
		// A packet that passes through its destination router during
		// phase 0 ejects early (as in the router model), so ending in
		// phase 0 is legal; otherwise it must have flipped to phase 1.
		_ = p
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestUGALSourceChoice: an uncongested network routes minimally; heavy
// congestion on the minimal first hop diverts to Valiant.
func TestUGALSourceChoice(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := NewUGAL(h)
	src := h.RouterAt([]int{0, 0, 0})
	dst := h.RouterAt([]int{2, 2, 2})

	hops, _, err := routetest.Walk(h, a, src, dst, 6, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != h.MinHops(src, dst) {
		t.Errorf("uncongested UGAL path length %d, want minimal %d", len(hops), h.MinHops(src, dst))
	}

	// Congest every port of the source toward dst's first-dim coordinate.
	view := &routetest.StubView{Loads: map[[2]int]int{}}
	view.Loads[[2]int{src, h.DimPort(src, 0, 2)}] = 10000
	nonMin := 0
	for seed := uint64(0); seed < 20; seed++ {
		hops, _, err := routetest.Walk(h, a, src, dst, 6, seed, view)
		if err != nil {
			t.Fatal(err)
		}
		if len(hops) > h.MinHops(src, dst) {
			nonMin++
		}
	}
	if nonMin < 15 {
		t.Errorf("UGAL went non-minimal only %d/20 times under heavy first-hop congestion", nonMin)
	}
}

// TestUGALPacketCarriesIntermediate: Table 1 — UGAL needs the
// intermediate address in the packet.
func TestUGALPacketCarriesIntermediate(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	if NewUGAL(h).Meta().PktContents != "int. addr." {
		t.Error("UGAL meta must declare intermediate address storage")
	}
}

// TestClosADSourceCandidates: at the source, one candidate per non-self
// coordinate value in every unaligned dimension.
func TestClosADSourceCandidates(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := NewClosAD(h)
	src := h.RouterAt([]int{0, 0, 0})
	dst := h.RouterAt([]int{1, 2, 0}) // dims 0,1 unaligned
	p := &route.Packet{SrcRouter: src, DstRouter: dst}
	p.Reset()
	p.Inter = -1
	cands := a.Route(newCtx(src, flatView()), p)
	if len(cands) != 2*3 {
		t.Fatalf("candidates = %d, want 6 (2 unaligned dims x (W-1))", len(cands))
	}
	for _, c := range cands {
		d, _ := h.PortDim(src, c.Port)
		if d == 2 {
			t.Errorf("Clos-AD offered a port in aligned dimension 2 (LCA violation)")
		}
		if c.Deroute {
			inter := int(c.Inter)
			if h.CoordDigit(inter, 2) != h.CoordDigit(dst, 2) {
				t.Errorf("intermediate leaves aligned dimension: %d", inter)
			}
		}
	}
}

// TestClosADWalkDelivers under random congestion, within 2N+1 hops.
func TestClosADWalkDelivers(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := NewClosAD(h)
	f := func(s, d uint32, seed uint64, hotR, hotP uint32) bool {
		src := int(s) % h.NumRouters()
		dst := int(d) % h.NumRouters()
		if src == dst {
			return true
		}
		view := &routetest.StubView{Loads: map[[2]int]int{
			{int(hotR) % h.NumRouters(), h.Terms + int(hotP)%(h.NumPorts()-h.Terms)}: 800,
		}}
		_, _, err := routetest.Walk(h, a, src, dst, 2*h.NumDims()+1, seed, view)
		if err != nil {
			t.Logf("%v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestMinADStaysMinimal: every hop reduces distance; path length is
// exactly MinHops regardless of congestion.
func TestMinADStaysMinimal(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := NewMinAD(h)
	f := func(s, d uint32, seed uint64, hotR, hotP uint32) bool {
		src := int(s) % h.NumRouters()
		dst := int(d) % h.NumRouters()
		if src == dst {
			return true
		}
		view := &routetest.StubView{Loads: map[[2]int]int{
			{int(hotR) % h.NumRouters(), h.Terms + int(hotP)%(h.NumPorts()-h.Terms)}: 800,
		}}
		hops, _, err := routetest.Walk(h, a, src, dst, h.NumDims(), seed, view)
		return err == nil && len(hops) == h.MinHops(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestDALDerouteOncePerDim: DAL tracks deroutes in the packet's N-bit
// field and never deroutes twice in a dimension; the escape class only
// ever moves dimension-ordered minimal.
func TestDALDerouteOncePerDim(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := NewDAL(h)
	src := h.RouterAt([]int{0, 0, 0})
	dst := h.RouterAt([]int{1, 1, 1})
	p := &route.Packet{SrcRouter: src, DstRouter: dst}
	p.Reset()
	p.Derouted = 1 << 0 // already derouted in dim 0
	for _, c := range a.Route(newCtx(src, flatView()), p) {
		if c.Deroute && c.Dim == 0 {
			t.Errorf("second deroute in dim 0 offered")
		}
	}
	// Escape class: only the DOR hop.
	p.Class = 1
	cands := a.Route(newCtx(src, flatView()), p)
	if len(cands) != 1 || cands[0].Class != 1 || cands[0].Deroute {
		t.Fatalf("escape-class candidates %+v", cands)
	}
}

// TestDALWalkDelivers within 2N+? hops under congestion.
func TestDALWalkDelivers(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	a := NewDAL(h)
	f := func(s, d uint32, seed uint64) bool {
		src := int(s) % h.NumRouters()
		dst := int(d) % h.NumRouters()
		if src == dst {
			return true
		}
		_, _, err := routetest.Walk(h, a, src, dst, 2*h.NumDims(), seed, nil)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestFatTreeWalk: adaptive Clos routing delivers between any two edge
// switches within 4 hops, up then down.
func TestFatTreeWalk(t *testing.T) {
	f := topology.MustFatTree(8)
	a := NewFatTreeAdaptive(f)
	check := func(src, dst uint32, seed uint64) bool {
		s := int(src) % (f.K * f.K / 2) // edge switches only
		d := int(dst) % (f.K * f.K / 2)
		if s == d {
			return true
		}
		hops, _, err := routetest.Walk(f, a, s, d, 4, seed, nil)
		if err != nil {
			t.Logf("%v", err)
			return false
		}
		// Up hops precede down hops.
		wentDown := false
		prev := s
		for _, hp := range hops {
			next, _ := f.Peer(hp.Router, hp.Cand.Port)
			up := f.Level(next) > f.Level(prev)
			if up && wentDown {
				return false
			}
			if !up {
				wentDown = true
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestDragonflyWalks: MIN stays within 3 hops, VAL within 5, UGAL within
// 5, all with strictly increasing distance classes.
func TestDragonflyWalks(t *testing.T) {
	d := topology.MustDragonfly(2, 4, 2)
	for _, tc := range []struct {
		alg route.Algorithm
		max int
	}{
		{NewDragonflyMIN(d), 3},
		{NewDragonflyVAL(d), 5},
		{NewDragonflyUGAL(d), 5},
	} {
		tc := tc
		t.Run(tc.alg.Name(), func(t *testing.T) {
			f := func(s, dd uint32, seed uint64) bool {
				src := int(s) % d.NumRouters()
				dst := int(dd) % d.NumRouters()
				if src == dst {
					return true
				}
				hops, _, err := routetest.Walk(d, tc.alg, src, dst, tc.max, seed, nil)
				if err != nil {
					t.Logf("%v", err)
					return false
				}
				for i, hp := range hops {
					if int(hp.Cand.Class) != i {
						return false
					}
				}
				return len(hops) <= tc.max
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDragonflyMINLength: minimal routing length equals MinHops.
func TestDragonflyMINLength(t *testing.T) {
	d := topology.MustDragonfly(2, 4, 2)
	a := NewDragonflyMIN(d)
	for src := 0; src < d.NumRouters(); src += 3 {
		for dst := 0; dst < d.NumRouters(); dst += 5 {
			if src == dst {
				continue
			}
			hops, _, err := routetest.Walk(d, a, src, dst, 3, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(hops) != d.MinHops(src, dst) {
				t.Fatalf("MIN path %d->%d length %d, want %d", src, dst, len(hops), d.MinHops(src, dst))
			}
		}
	}
}

// TestMetaTable spot-checks Table 1 fields of the baselines.
func TestMetaTable(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 1)
	if m := NewDOR(h).Meta(); m.Style != "oblivious" || m.VCsRequired != "1" {
		t.Errorf("DOR meta %+v", m)
	}
	if m := NewVAL(h).Meta(); m.PktContents != "int. addr." {
		t.Errorf("VAL meta %+v", m)
	}
	if m := NewDAL(h).Meta(); m.VCsRequired != "1+1e" || m.ArchRequires != "escape paths" {
		t.Errorf("DAL meta %+v", m)
	}
	if m := NewClosAD(h).Meta(); m.Style != "source" {
		t.Errorf("ClosAD meta %+v", m)
	}
}
