package routing

import (
	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// UGAL is Universal Global Adaptive Load-balancing (Singh '05) on HyperX:
// a source-adaptive algorithm. At the source router it weighs the minimal
// dimension-order path against a Valiant path through one random
// intermediate router, using only local congestion, and commits to the
// winner for the packet's entire lifetime. Minimal packets ride resource
// class 1 (the second DOR phase); Valiant packets ride class 0 to the
// intermediate and class 1 afterward.
type UGAL struct {
	topo *topology.HyperX
}

// NewUGAL returns a UGAL instance for the given HyperX.
func NewUGAL(h *topology.HyperX) *UGAL { return &UGAL{topo: h} }

// Name implements route.Algorithm.
func (a *UGAL) Name() string { return "UGAL" }

// NumClasses implements route.Algorithm.
func (a *UGAL) NumClasses() int { return 2 }

// Meta implements route.Algorithm.
func (a *UGAL) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   true,
		Style:        "source",
		VCsRequired:  "2",
		Deadlock:     "restricted routes + resource classes",
		ArchRequires: "none",
		PktContents:  "int. addr.",
	}
}

// Route implements route.Algorithm.
func (a *UGAL) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	h := a.topo
	r, dst := ctx.Router, p.DstRouter

	if p.Hops == 0 && p.Phase == 0 && p.Inter < 0 {
		// Source router: offer the minimal first hop and one random
		// Valiant first hop; the weighted selection (congestion x
		// hopcount) picks between them, which is exactly UGAL.
		cands := dorStep(h, ctx, p, dst, 1, true, -1)
		inter := ctx.RNG.Intn(h.NumRouters())
		if inter != r && inter != dst {
			d := h.FirstUnalignedDim(r, inter)
			hops := int8(h.MinHops(r, inter) + h.MinHops(inter, dst))
			cands = append(cands, route.Candidate{
				Port:     h.DimPort(r, d, h.CoordDigit(inter, d)),
				Class:    0,
				HopsLeft: hops,
				Deroute:  true,
				Dim:      int8(d),
				NewPhase: 0,
				SetInter: true,
				Inter:    int32(inter),
			})
		}
		return cands
	}
	if p.Phase == 0 {
		if r == p.Inter {
			return dorStep(h, ctx, p, dst, 1, true, -1)
		}
		return dorStep(h, ctx, p, p.Inter, 0, false, 0)
	}
	return dorStep(h, ctx, p, dst, 1, false, 0)
}
