package routing

import (
	"hyperx/internal/route"
	"hyperx/internal/topology"
)

// VAL is Valiant's randomized routing on HyperX: every packet is first
// dimension-order routed to a uniformly random intermediate router (phase
// 0, resource class 0), then dimension-order routed to its destination
// (phase 1, resource class 1). It perfectly load-balances any admissible
// traffic at the cost of 2x bandwidth and latency.
type VAL struct {
	topo *topology.HyperX
}

// NewVAL returns a VAL instance for the given HyperX.
func NewVAL(h *topology.HyperX) *VAL { return &VAL{topo: h} }

// Name implements route.Algorithm.
func (a *VAL) Name() string { return "VAL" }

// NumClasses implements route.Algorithm.
func (a *VAL) NumClasses() int { return 2 }

// Meta implements route.Algorithm.
func (a *VAL) Meta() route.Meta {
	return route.Meta{
		DimOrdered:   true,
		Style:        "oblivious",
		VCsRequired:  "2",
		Deadlock:     "restricted routes + resource classes",
		ArchRequires: "none",
		PktContents:  "int. addr.",
	}
}

// Route implements route.Algorithm.
func (a *VAL) Route(ctx *route.Ctx, p *route.Packet) []route.Candidate {
	h := a.topo
	r, dst := ctx.Router, p.DstRouter

	if p.Hops == 0 && p.Phase == 0 && p.Inter < 0 {
		// Source router: draw the intermediate. Not committed until the
		// packet actually wins allocation, so redraws on retry are harmless.
		inter := ctx.RNG.Intn(h.NumRouters())
		if inter == r || inter == dst {
			return dorStep(h, ctx, p, dst, 1, true, -1) // degenerate: go direct on phase 1
		}
		return dorStep(h, ctx, p, inter, 0, true, int32(inter))
	}
	if p.Phase == 0 {
		if r == p.Inter {
			return dorStep(h, ctx, p, dst, 1, true, -1)
		}
		return dorStep(h, ctx, p, p.Inter, 0, false, 0)
	}
	return dorStep(h, ctx, p, dst, 1, false, 0)
}

// dorStep appends the single dimension-order hop toward target, tagged
// with the given phase/class, to ctx.Cands. The resource class equals the
// phase: phase-0 hops ride class 0, phase-1 hops class 1.
func dorStep(h *topology.HyperX, ctx *route.Ctx, p *route.Packet, target int, phase int8, setInter bool, inter int32) []route.Candidate {
	d := h.FirstUnalignedDim(ctx.Router, target)
	if d < 0 {
		// Already at the target of this phase (can only be the intermediate
		// equal to current router before the phase flip); emit nothing.
		return ctx.Cands[:0]
	}
	hops := int8(h.MinHops(ctx.Router, target))
	if target != p.DstRouter {
		hops += int8(h.MinHops(target, p.DstRouter))
	}
	return append(ctx.Cands[:0], route.Candidate{
		Port:     h.DimPort(ctx.Router, d, h.CoordDigit(target, d)),
		Class:    phase,
		HopsLeft: hops,
		Dim:      int8(d),
		NewPhase: phase,
		SetInter: setInter,
		Inter:    inter,
	})
}
