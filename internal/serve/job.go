package serve

import (
	"context"
	"sync"
	"time"

	"hyperx"
	"hyperx/internal/harness"
)

// Job lifecycle: queued → running → done | failed, or queued →
// cancelled (graceful shutdown drains the queue without starting new
// work). A terminal job stays in the registry — its results ARE the
// serving layer's hot cache — and a resubmission of the same canonical
// key attaches to it instead of recomputing.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

func terminal(state string) bool {
	return state == stateDone || state == stateFailed || state == stateCancelled
}

// job is one submitted experiment: its canonical identity, its place in
// the lifecycle, the structured progress events accumulated so far, and
// — once done — its results. All mutable fields are guarded by mu;
// notify is closed and replaced on every change so event streamers can
// wait without polling.
type job struct {
	id  string
	key string
	req *Request

	mu     sync.Mutex
	state  string
	errMsg string
	events []harness.Event
	notify chan struct{}

	created  time.Time
	started  time.Time
	finished time.Time

	curves   []hyperx.Curve
	grid     *hyperx.ThroughputGrid
	points   []hyperx.ResiliencePoint
	manifest *hyperx.Manifest
}

func newJob(id, key string, req *Request, now time.Time) *job {
	return &job{
		id:      id,
		key:     key,
		req:     req,
		state:   stateQueued,
		notify:  make(chan struct{}),
		created: now,
	}
}

// wake must be called with j.mu held: it releases every waiter and arms
// a fresh notification channel.
func (j *job) wake() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendEvent receives one structured harness progress event (the
// SweepOpts.OnEvent hook).
func (j *job) appendEvent(e harness.Event) {
	j.mu.Lock()
	j.events = append(j.events, e)
	j.wake()
	j.mu.Unlock()
}

// take transitions queued → running; it reports false when the job was
// cancelled while waiting in the queue.
func (j *job) take(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateQueued {
		return false
	}
	j.state = stateRunning
	j.started = now
	j.wake()
	return true
}

// cancelQueued marks a still-queued job cancelled (graceful shutdown).
func (j *job) cancelQueued(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateQueued {
		return
	}
	j.state = stateCancelled
	j.errMsg = "cancelled: server shutting down before the job started"
	j.finished = now
	j.wake()
}

// finish records the outcome of a run.
func (j *job) finish(curves []hyperx.Curve, grid *hyperx.ThroughputGrid, points []hyperx.ResiliencePoint, m *hyperx.Manifest, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.curves, j.grid, j.points, j.manifest = curves, grid, points, m
	if err != nil {
		j.state = stateFailed
		j.errMsg = err.Error()
	} else {
		j.state = stateDone
	}
	j.finished = now
	j.wake()
}

// eventsSince returns the events not yet seen by a streamer positioned
// at idx, the current state/error, and the channel that will be closed
// on the next change.
func (j *job) eventsSince(idx int) (evs []harness.Event, state, errMsg string, notify <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if idx < len(j.events) {
		evs = append(evs, j.events[idx:]...)
	}
	return evs, j.state, j.errMsg, j.notify
}

// runJob executes one job through the facade against the server's
// shared store and singleflight group. The run context is the server's
// base context: graceful shutdown deliberately does NOT cancel it —
// draining means running jobs complete and persist their cells.
func (s *Server) runJob(ctx context.Context, j *job) {
	if s.opts.BeforeRun != nil {
		s.opts.BeforeRun(j.req.Kind)
	}
	po := hyperx.SweepOpts{
		Workers: s.opts.Workers,
		Store:   s.store,
		Flight:  s.flight,
		OnEvent: j.appendEvent,
	}
	opts := j.req.Opts
	if opts.Shards == 0 {
		opts.Shards = s.opts.Shards
	}
	var (
		curves   []hyperx.Curve
		grid     *hyperx.ThroughputGrid
		points   []hyperx.ResiliencePoint
		manifest *hyperx.Manifest
		err      error
	)
	switch j.req.Kind {
	case "sweep":
		po.Fork = j.req.Fork
		curves, manifest, err = hyperx.RunLoadSweepParallel(ctx, j.req.Config, j.req.Patterns, j.req.Algorithms, j.req.Loads, opts, po)
	case "throughput":
		grid, manifest, err = hyperx.RunThroughputGrid(ctx, j.req.Config, j.req.Patterns, j.req.Algorithms, opts, po)
	case "resilience":
		points, manifest, err = hyperx.RunResilienceSweep(ctx, j.req.Config, j.req.Patterns[0], j.req.Algorithms, j.req.MaxFaults, j.req.Load, opts, po)
	}
	j.finish(curves, grid, points, manifest, err, s.now())
}
