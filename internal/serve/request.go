package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"hyperx"
)

// Request is the body of POST /v1/sweeps: one experiment specification,
// mirroring the cmd/hxsweep flag surface. Nested Config/RunOpts/ForkOpts
// use their Go field names as JSON keys (case-insensitive), e.g.
// {"config": {"Widths": [4,4,4], "Algorithm": "DimWAR", "Seed": 7}}.
// Unknown fields anywhere in the body are rejected with a 400 — a typoed
// field silently falling back to a default would silently change which
// experiment runs.
type Request struct {
	// Kind selects the experiment: "sweep" (default; one load-latency
	// panel), "throughput" (the Figure 6g saturated grid), or
	// "resilience" (algorithm × fault-count cells at one fixed load).
	Kind string `json:"kind,omitempty"`

	Config hyperx.Config `json:"config"`

	// Patterns and Algorithms span the experiment grid; both default to
	// the cmd/hxsweep defaults for the kind. Resilience takes exactly
	// one pattern.
	Patterns   []string `json:"patterns,omitempty"`
	Algorithms []string `json:"algorithms,omitempty"`

	// Loads is the explicit sweep grid; Step generates one via
	// hyperx.LoadRange (default 0.05). Mutually exclusive; sweep only.
	Loads []float64 `json:"loads,omitempty"`
	Step  float64   `json:"step,omitempty"`

	Opts hyperx.RunOpts `json:"opts"`

	// Fork switches a sweep to warm-fork execution (see hyperx.ForkOpts);
	// sweep only.
	Fork *hyperx.ForkOpts `json:"fork,omitempty"`

	// MaxFaults and Load parameterize the resilience experiment:
	// k = 0..MaxFaults failed links at offered load Load (default 0.5).
	MaxFaults int     `json:"max_faults,omitempty"`
	Load      float64 `json:"load,omitempty"`
}

// The hxsweep defaults, reused so a request that says nothing runs the
// same experiment the bare CLI would.
var (
	defaultAlgorithms   = []string{"DOR", "VAL", "UGAL", "UGAL+", "DimWAR", "OmniWAR"}
	defaultThptPatterns = []string{"UR", "BC", "URBx", "URBy", "URBz", "S2", "DCR"}
)

// parseRequest decodes, validates, and canonicalizes one submission.
// Every error it returns is a client error (HTTP 400).
func parseRequest(r io.Reader) (*Request, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	req := &Request{}
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("parsing request body: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("request body has trailing data after the JSON object")
	}
	if err := req.normalize(); err != nil {
		return nil, err
	}
	return req, nil
}

// normalize applies the kind's defaults and validates the request, so
// two submissions meaning the same experiment canonicalize to the same
// key() regardless of which defaults they spelled out.
func (r *Request) normalize() error {
	switch r.Kind {
	case "":
		r.Kind = "sweep"
	case "sweep", "throughput", "resilience":
	default:
		return fmt.Errorf("unknown kind %q (have sweep, throughput, resilience)", r.Kind)
	}

	if len(r.Algorithms) == 0 {
		r.Algorithms = append([]string(nil), defaultAlgorithms...)
	}
	for _, a := range r.Algorithms {
		if !contains(hyperx.Algorithms, a) {
			return fmt.Errorf("unknown algorithm %q (have %v)", a, hyperx.Algorithms)
		}
	}
	if len(r.Patterns) == 0 {
		if r.Kind == "throughput" {
			r.Patterns = append([]string(nil), defaultThptPatterns...)
		} else {
			r.Patterns = []string{"UR"}
		}
	}
	for _, p := range r.Patterns {
		if !contains(hyperx.Patterns, p) {
			return fmt.Errorf("unknown pattern %q (have %v)", p, hyperx.Patterns)
		}
	}
	for _, w := range r.Config.Widths {
		if w <= 0 {
			return fmt.Errorf("config widths must be positive, got %v", r.Config.Widths)
		}
	}
	if r.Config.Terms < 0 || r.Config.Faults < 0 {
		return fmt.Errorf("config terms and faults must be non-negative")
	}

	switch r.Kind {
	case "sweep":
		if r.MaxFaults != 0 || r.Load != 0 {
			return fmt.Errorf("max_faults and load apply to kind resilience only")
		}
		if len(r.Loads) > 0 && r.Step != 0 {
			return fmt.Errorf("loads and step are mutually exclusive")
		}
		if len(r.Loads) == 0 {
			if r.Step < 0 {
				return fmt.Errorf("step must be positive, got %v", r.Step)
			}
			if r.Step == 0 {
				r.Step = 0.05
			}
			r.Loads = hyperx.LoadRange(r.Step)
			r.Step = 0 // canonical form carries the grid, not its generator
		}
		for _, l := range r.Loads {
			if l <= 0 {
				return fmt.Errorf("loads must be positive, got %v", l)
			}
		}
	case "throughput":
		if len(r.Loads) > 0 || r.Step != 0 {
			return fmt.Errorf("throughput runs at offered load 1.0; loads/step do not apply")
		}
		if r.Fork != nil {
			return fmt.Errorf("fork applies to kind sweep only")
		}
		if r.MaxFaults != 0 || r.Load != 0 {
			return fmt.Errorf("max_faults and load apply to kind resilience only")
		}
	case "resilience":
		if len(r.Loads) > 0 || r.Step != 0 {
			return fmt.Errorf("resilience runs at the fixed load field; loads/step do not apply")
		}
		if r.Fork != nil {
			return fmt.Errorf("fork applies to kind sweep only")
		}
		if len(r.Patterns) != 1 {
			return fmt.Errorf("resilience takes exactly one pattern, got %v", r.Patterns)
		}
		if r.MaxFaults < 1 {
			return fmt.Errorf("resilience needs max_faults >= 1, got %d", r.MaxFaults)
		}
		if r.Load < 0 {
			return fmt.Errorf("load must be positive, got %v", r.Load)
		}
		if r.Load == 0 {
			r.Load = 0.5
		}
	}
	return nil
}

// key is the canonical content address of the whole job: the
// concatenation of every cell's checkpoint key (hyperx.PointKey /
// ThptKey / CurveKey — the same strings the result cache files cells
// under), so two submissions get the same key exactly when they request
// the same computation. Identical concurrent submissions dedup on it at
// the registry, and its fnv-64a hash is the job ID.
func (r *Request) key() string {
	var parts []string
	switch r.Kind {
	case "sweep":
		mode := "cold"
		var fk hyperx.ForkOpts
		if r.Fork != nil {
			mode = "fork"
			fk = *r.Fork
		}
		for _, pat := range r.Patterns {
			for _, alg := range r.Algorithms {
				cfg := r.Config
				cfg.Algorithm = alg
				parts = append(parts, hyperx.CurveKey(cfg, pat, r.Loads, r.Opts, fk))
			}
		}
		return "job|sweep|" + mode + "|" + strings.Join(parts, "||")
	case "throughput":
		for _, pat := range r.Patterns {
			for _, alg := range r.Algorithms {
				cfg := r.Config
				cfg.Algorithm = alg
				parts = append(parts, hyperx.ThptKey(cfg, pat, r.Opts))
			}
		}
		return "job|thpt|" + strings.Join(parts, "||")
	case "resilience":
		for _, alg := range r.Algorithms {
			for k := 0; k <= r.MaxFaults; k++ {
				cfg := r.Config
				cfg.Algorithm = alg
				cfg.Faults = k
				parts = append(parts, hyperx.PointKey(cfg, r.Patterns[0], r.Load, r.Opts))
			}
		}
		return "job|res|" + strings.Join(parts, "||")
	}
	panic("serve: key on unnormalized request kind " + r.Kind)
}

// jobID derives the compact job identifier from a canonical job key.
// Collisions are guarded at the registry, which compares full keys.
func jobID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x", h.Sum64())
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}
