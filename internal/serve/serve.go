// Package serve is the persistent sweep service behind cmd/hxserved: an
// HTTP API in front of the parallel harness, with the checkpoint store
// (PR 6) as a content-addressed result cache.
//
// The API surface:
//
//	POST /v1/sweeps            submit an experiment; returns a job ID
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/events  structured progress stream (NDJSON)
//	GET  /v1/jobs/{id}/result.csv   finished results, byte-identical to hxsweep
//	GET  /v1/jobs/{id}/result.json  finished results + run manifest
//	GET  /v1/cache/stats       store / singleflight / job-registry counters
//
// Identity is content-addressed end to end: a job's ID is the hash of
// the concatenated checkpoint keys of every cell it computes, so
// resubmitting a finished experiment attaches to the completed job (or,
// after a restart, replays cell-by-cell out of the store in
// microseconds, with the manifest's provenance saying so), and N
// concurrent submissions of the same experiment dedup to one
// computation — first at the registry (same job), then per cell at the
// harness singleflight group (hyperx.SweepOpts.Flight) for jobs that
// merely overlap.
//
// Concurrency discipline: this package is in the determinism scope but
// carries the noconc carve-out (like internal/shard) — its goroutines
// and channels are the serving layer, on the harness side of the
// in-instance/no-concurrency line. Wall-clock and global-RNG bans apply
// in full: job timestamps flow through an injectable clock (Options.Now)
// with the single real-time default waived explicitly, and simulation
// results never depend on either.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"hyperx"
	"hyperx/internal/harness"
)

// Options configures a Server. The zero value serves with no persistent
// cache, GOMAXPROCS harness workers, and two job executors.
type Options struct {
	// Store is the content-addressed result cache shared by every job.
	// When nil, CheckpointDir (if set) is opened as the store; when both
	// are empty the service still dedups in memory (registry +
	// singleflight) but cold-starts empty on restart.
	Store         *hyperx.CheckpointStore
	CheckpointDir string

	// Workers is the harness pool size per job (0 = GOMAXPROCS); Shards
	// is the default per-simulation shard count applied when a request
	// leaves Opts.Shards at 0. Shards is excluded from cache keys, so
	// this server-side default never changes a job's identity.
	Workers int
	Shards  int

	// QueueDepth bounds the submit queue (default 32): submissions
	// beyond it are refused with 503 rather than accepted into an
	// unbounded backlog. Executors is the number of jobs run
	// concurrently (default 2).
	QueueDepth int
	Executors  int

	// Now is the clock for job timestamps; nil means real time. Tests
	// inject a fake so the package stays off the wall clock.
	Now func() time.Time

	// BeforeRun, when non-nil, is called synchronously by an executor
	// after a job transitions to running and before its computation
	// starts. It is a test seam: the suite parks the executor here to
	// observe queued/running states and drain semantics without timing
	// assumptions (the simulations are far too fast to race against).
	// Production servers leave it nil.
	BeforeRun func(kind string)
}

// Server owns the job registry, the bounded queue, and the executor
// pool. Create with New, mount Handler, and Shutdown to drain.
type Server struct {
	opts   Options
	store  *hyperx.CheckpointStore
	flight *harness.Flight

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job // by ID
	byKey    map[string]*job // by full canonical key (collision-proof)
	jobList  []*job          // insertion order — the iterable view (no map ranges)
	queue    chan *job

	wg sync.WaitGroup
}

// New builds a Server and starts its executors. The executors run until
// Shutdown; jobs they execute use context.Background() deliberately —
// draining means running jobs finish and persist their cells.
func New(opts Options) (*Server, error) {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 32
	}
	if opts.Executors <= 0 {
		opts.Executors = 2
	}
	store := opts.Store
	if store == nil && opts.CheckpointDir != "" {
		var err error
		store, err = hyperx.OpenCheckpointDir(opts.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("serve: opening checkpoint store: %w", err)
		}
	}
	s := &Server{
		opts:   opts,
		store:  store,
		flight: harness.NewFlight(),
		jobs:   map[string]*job{},
		byKey:  map[string]*job{},
		queue:  make(chan *job, opts.QueueDepth),
	}
	for i := 0; i < opts.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

func (s *Server) now() time.Time {
	if s.opts.Now != nil {
		return s.opts.Now()
	}
	return time.Now() //hxlint:allow nodeterm — serving-layer timestamps only; results never depend on them, and tests inject Options.Now
}

func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		if !j.take(s.now()) {
			continue // cancelled while queued
		}
		s.runJob(context.Background(), j)
	}
}

// Shutdown drains the service: no new submissions, still-queued jobs
// report cancelled, running jobs complete (and persist their cells to
// the store, so a restart serves them from cache). It returns when the
// executors are idle or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
	drain:
		for {
			select {
			case j := <-s.queue:
				j.cancelQueued(s.now())
			default:
				break drain
			}
		}
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submit registers a request, deduplicating on the canonical job key: a
// live or completed job with the same key is returned as-is (the cache
// hit path), a failed or cancelled one is replaced by a fresh attempt.
func (s *Server) submit(req *Request) (*job, int, error) {
	key := req.key()
	id := jobID(key)

	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.byKey[key]; j != nil {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state != stateFailed && state != stateCancelled {
			return j, http.StatusOK, nil // same experiment: attach, never recompute
		}
	}
	if s.draining {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is draining; not accepting jobs")
	}
	for { // fnv collision guard: distinct keys must get distinct IDs
		prev := s.jobs[id]
		if prev == nil || prev.key == key {
			break
		}
		id += "x"
	}
	j := newJob(id, key, req, s.now())
	select {
	case s.queue <- j:
	default:
		return nil, http.StatusServiceUnavailable, fmt.Errorf("job queue is full (depth %d); retry later", cap(s.queue))
	}
	if prev := s.byKey[key]; prev != nil {
		// Replacing a failed/cancelled attempt: swap it out of the
		// iterable view so registry counts describe current jobs.
		for i, old := range s.jobList {
			if old == prev {
				s.jobList[i] = j
				break
			}
		}
	} else {
		s.jobList = append(s.jobList, j)
	}
	s.jobs[j.id] = j
	s.byKey[key] = j
	return j, http.StatusAccepted, nil
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result.csv", s.handleResultCSV)
	mux.HandleFunc("GET /v1/jobs/{id}/result.json", s.handleResultJSON)
	mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	return mux
}

type errBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// JobStatus is the GET /v1/jobs/{id} body (and the submit response).
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	// JobsDone/JobsTotal track harness progress (cells resolved so far);
	// CachedJobs counts cells served from the store or shared via
	// singleflight rather than simulated by this job.
	JobsDone   int `json:"jobs_done"`
	JobsTotal  int `json:"jobs_total"`
	CachedJobs int `json:"cached_jobs"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Kind:      j.req.Kind,
		State:     j.state,
		Error:     j.errMsg,
		CreatedAt: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	for i := range j.events {
		if j.events[i].Cached {
			st.CachedJobs++
		}
	}
	if n := len(j.events); n > 0 {
		st.JobsDone = j.events[n-1].Done
		st.JobsTotal = j.events[n-1].Total
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	j, code, err := s.submit(req)
	if err != nil {
		writeErr(w, code, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, code, j.status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// streamLine is one NDJSON record on the events stream: either a
// progress event (Event set) or a state transition (State set). The
// stream ends with the terminal state line.
type streamLine struct {
	State string         `json:"state,omitempty"`
	Error string         `json:"error,omitempty"`
	Event *harness.Event `json:"event,omitempty"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	idx := 0
	lastState := ""
	for {
		evs, state, errMsg, notify := j.eventsSince(idx)
		for i := range evs {
			enc.Encode(streamLine{Event: &evs[i]})
		}
		idx += len(evs)
		if state != lastState {
			enc.Encode(streamLine{State: state, Error: errMsg})
			lastState = state
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal(state) {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// resultReady returns the job if it is done, otherwise writes the
// appropriate error: 404 unknown, 409 still pending/running, 500 failed.
func (s *Server) resultReady(w http.ResponseWriter, r *http.Request) *job {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return nil
	}
	j.mu.Lock()
	state, errMsg := j.state, j.errMsg
	j.mu.Unlock()
	switch state {
	case stateDone:
		return j
	case stateFailed:
		writeErr(w, http.StatusInternalServerError, "job failed: "+errMsg)
	case stateCancelled:
		writeErr(w, http.StatusGone, "job cancelled: "+errMsg)
	default:
		writeErr(w, http.StatusConflict, "job is "+state+"; result not ready")
	}
	return nil
}

func (s *Server) handleResultCSV(w http.ResponseWriter, r *http.Request) {
	j := s.resultReady(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	// Terminal jobs are immutable; no lock needed to read results.
	switch j.req.Kind {
	case "sweep":
		hyperx.WriteSweepCSV(w, j.curves)
	case "throughput":
		hyperx.WriteThroughputCSV(w, j.grid)
	case "resilience":
		hyperx.WriteResilienceCSV(w, j.points)
	}
}

// ResultJSON is the GET /v1/jobs/{id}/result.json body: the structured
// results for the job's kind plus the harness manifest (whose provenance
// block records cached_jobs / resumed_from for cache-served runs).
type ResultJSON struct {
	ID       string                   `json:"id"`
	Kind     string                   `json:"kind"`
	Curves   []hyperx.Curve           `json:"curves,omitempty"`
	Grid     *hyperx.ThroughputGrid   `json:"grid,omitempty"`
	Points   []hyperx.ResiliencePoint `json:"points,omitempty"`
	Manifest *hyperx.Manifest         `json:"manifest,omitempty"`
}

func (s *Server) handleResultJSON(w http.ResponseWriter, r *http.Request) {
	j := s.resultReady(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, ResultJSON{
		ID:       j.id,
		Kind:     j.req.Kind,
		Curves:   j.curves,
		Grid:     j.grid,
		Points:   j.points,
		Manifest: j.manifest,
	})
}

// CacheStatsBody is the GET /v1/cache/stats body: the persistent store
// (nil when serving without one), the in-process singleflight counters,
// and the job registry broken down by state.
type CacheStatsBody struct {
	Store  *hyperx.CacheStats `json:"store,omitempty"`
	Flight FlightStats        `json:"flight"`
	Jobs   JobCounts          `json:"jobs"`
}

// FlightStats reports the singleflight group: Computes is the number of
// cell computations that actually ran, Shared the number served by
// joining one in flight.
type FlightStats struct {
	Computes uint64 `json:"computes"`
	Shared   uint64 `json:"shared"`
}

// JobCounts is the registry by state.
type JobCounts struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	body := CacheStatsBody{
		Flight: FlightStats{Computes: s.flight.Computes(), Shared: s.flight.Shared()},
	}
	if s.store != nil {
		st, err := s.store.Stats()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "reading store: "+err.Error())
			return
		}
		body.Store = &st
	}
	s.mu.Lock()
	for _, j := range s.jobList {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case stateQueued:
			body.Jobs.Queued++
		case stateRunning:
			body.Jobs.Running++
		case stateDone:
			body.Jobs.Done++
		case stateFailed:
			body.Jobs.Failed++
		case stateCancelled:
			body.Jobs.Cancelled++
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}
