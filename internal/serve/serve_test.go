package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperx"
	"hyperx/internal/serve"
)

// clock is the injected test clock (the package is in the determinism
// scope: tests never read the wall clock). Every call advances one
// second from a fixed epoch.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1700000000, 0).UTC()} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

// service spins up a Server (with a persistent store at dir when
// non-empty) behind an httptest listener, torn down with the test.
func service(t *testing.T, dir string, mutate func(*serve.Options)) (*serve.Server, *httptest.Server) {
	t.Helper()
	opts := serve.Options{CheckpointDir: dir, Now: newClock().Now}
	if mutate != nil {
		mutate(&opts)
	}
	srv, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

// testConfig is the small fast network every serve test sweeps: 16
// routers, 32 terminals, short windows.
func testConfig() hyperx.Config {
	return hyperx.Config{Widths: []int{4, 4}, Terms: 2, Seed: 1}
}

func testOpts() hyperx.RunOpts {
	return hyperx.RunOpts{Warmup: 1000, Window: 1000}
}

// sweepRequest is the canonical small sweep (4 cells) used across the
// suite; its expected CSV comes straight from the facade.
func sweepRequest() *serve.Request {
	return &serve.Request{
		Kind:       "sweep",
		Config:     testConfig(),
		Patterns:   []string{"UR"},
		Algorithms: []string{"DOR", "DimWAR"},
		Loads:      []float64{0.1, 0.2},
		Opts:       testOpts(),
	}
}

func submitJSON(t *testing.T, ts *httptest.Server, body []byte) (serve.JobStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return st, resp.StatusCode
}

func submit(t *testing.T, ts *httptest.Server, req *serve.Request) (serve.JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return submitJSON(t, ts, body)
}

// eventLine mirrors one NDJSON record of GET /v1/jobs/{id}/events.
type eventLine struct {
	State string `json:"state"`
	Error string `json:"error"`
	Event *struct {
		Label  string `json:"label"`
		Status string `json:"status"`
		Cached bool   `json:"cached"`
		Done   int    `json:"done"`
		Total  int    `json:"total"`
	} `json:"event"`
}

// streamUntil consumes the events stream, handing each line to fn,
// until fn returns true or the stream ends; it returns the last state
// line seen. The stream blocks server-side between events, so this is
// the suite's deterministic, sleep-free way to wait on a job.
func streamUntil(t *testing.T, ts *httptest.Server, id string, fn func(eventLine) bool) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	last := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var line eventLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.State != "" {
			last = line.State
		}
		if fn != nil && fn(line) {
			return last
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return last
}

func terminalState(s string) bool { return s == "done" || s == "failed" || s == "cancelled" }

// waitDone blocks until the job reaches a terminal state and returns it.
func waitDone(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	return streamUntil(t, ts, id, nil)
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func getJSON(t *testing.T, ts *httptest.Server, path string, into any) {
	t.Helper()
	code, body := get(t, ts, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, code, body)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

// TestSweepEndToEndMatchesCLI is the tentpole contract: the daemon's
// result.csv for a sweep is byte-identical to what cmd/hxsweep prints
// (both render RunLoadSweepParallel through WriteSweepCSV).
func TestSweepEndToEndMatchesCLI(t *testing.T) {
	_, ts := service(t, t.TempDir(), nil)
	req := sweepRequest()

	st, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if st.ID == "" || st.Kind != "sweep" {
		t.Fatalf("submit status: %+v", st)
	}
	if got := waitDone(t, ts, st.ID); got != "done" {
		t.Fatalf("job state %q, want done", got)
	}

	code, body := get(t, ts, "/v1/jobs/"+st.ID+"/result.csv")
	if code != http.StatusOK {
		t.Fatalf("result.csv: status %d: %s", code, body)
	}

	curves, _, err := hyperx.RunLoadSweepParallel(context.Background(), req.Config,
		req.Patterns, req.Algorithms, req.Loads, req.Opts, hyperx.SweepOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := hyperx.WriteSweepCSV(&want, curves); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("served CSV differs from CLI CSV:\nserved:\n%s\ncli:\n%s", body, want.Bytes())
	}

	var final serve.JobStatus
	getJSON(t, ts, "/v1/jobs/"+st.ID, &final)
	if final.State != "done" || final.JobsTotal != 4 || final.JobsDone != 4 {
		t.Errorf("final status: %+v, want done 4/4", final)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Errorf("final status missing timestamps: %+v", final)
	}

	var res serve.ResultJSON
	getJSON(t, ts, "/v1/jobs/"+st.ID+"/result.json", &res)
	if res.Kind != "sweep" || len(res.Curves) != 2 || res.Manifest == nil {
		t.Errorf("result.json: kind=%q curves=%d manifest=%v", res.Kind, len(res.Curves), res.Manifest != nil)
	}
}

// TestResilienceEndToEndMatchesCLI: same contract for the resilience
// experiment (kind "resilience" ≙ hxsweep -resilience).
func TestResilienceEndToEndMatchesCLI(t *testing.T) {
	_, ts := service(t, t.TempDir(), nil)
	req := &serve.Request{
		Kind:       "resilience",
		Config:     testConfig(),
		Patterns:   []string{"UR"},
		Algorithms: []string{"DimWAR"},
		MaxFaults:  2,
		Load:       0.3,
		Opts:       testOpts(),
	}
	st, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if got := waitDone(t, ts, st.ID); got != "done" {
		t.Fatalf("job state %q, want done", got)
	}
	code, body := get(t, ts, "/v1/jobs/"+st.ID+"/result.csv")
	if code != http.StatusOK {
		t.Fatalf("result.csv: status %d", code)
	}

	points, _, err := hyperx.RunResilienceSweep(context.Background(), req.Config,
		"UR", req.Algorithms, req.MaxFaults, req.Load, req.Opts, hyperx.SweepOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := hyperx.WriteResilienceCSV(&want, points); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("served resilience CSV differs from CLI:\nserved:\n%s\ncli:\n%s", body, want.Bytes())
	}
}

// TestThroughputEndToEndMatchesCLI: same contract for the Figure 6g
// grid (kind "throughput" ≙ hxsweep -throughput).
func TestThroughputEndToEndMatchesCLI(t *testing.T) {
	_, ts := service(t, t.TempDir(), nil)
	req := &serve.Request{
		Kind:       "throughput",
		Config:     testConfig(),
		Patterns:   []string{"UR", "BC"},
		Algorithms: []string{"DOR"},
		Opts:       testOpts(),
	}
	st, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if got := waitDone(t, ts, st.ID); got != "done" {
		t.Fatalf("job state %q, want done", got)
	}
	code, body := get(t, ts, "/v1/jobs/"+st.ID+"/result.csv")
	if code != http.StatusOK {
		t.Fatalf("result.csv: status %d", code)
	}

	grid, _, err := hyperx.RunThroughputGrid(context.Background(), req.Config,
		req.Patterns, req.Algorithms, req.Opts, hyperx.SweepOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := hyperx.WriteThroughputCSV(&want, grid); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("served throughput CSV differs from CLI:\nserved:\n%s\ncli:\n%s", body, want.Bytes())
	}
}

// TestMalformedRequests: every way a submission can be wrong is a 400
// with a JSON error body, never a 500 and never a silently-started job.
func TestMalformedRequests(t *testing.T) {
	_, ts := service(t, "", nil)
	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{"invalid json", `{"kind"`, "parsing request body"},
		{"unknown field", `{"confg": {}}`, "unknown field"},
		{"trailing data", `{} {}`, "trailing data"},
		{"unknown kind", `{"kind": "experiment"}`, "unknown kind"},
		{"unknown algorithm", `{"algorithms": ["QUANTUM"]}`, "unknown algorithm"},
		{"unknown pattern", `{"patterns": ["nope"]}`, "unknown pattern"},
		{"loads and step", `{"loads": [0.1], "step": 0.05}`, "mutually exclusive"},
		{"negative load", `{"loads": [-0.1]}`, "loads must be positive"},
		{"negative width", `{"config": {"Widths": [4, -4]}}`, "widths must be positive"},
		{"negative step", `{"step": -0.1}`, "step must be positive"},
		{"max_faults on sweep", `{"max_faults": 3}`, "kind resilience only"},
		{"fork on throughput", `{"kind": "throughput", "fork": {}}`, "kind sweep only"},
		{"loads on throughput", `{"kind": "throughput", "loads": [0.5]}`, "do not apply"},
		{"resilience without max_faults", `{"kind": "resilience"}`, "max_faults >= 1"},
		{"resilience two patterns", `{"kind": "resilience", "max_faults": 1, "patterns": ["UR", "BC"]}`, "exactly one pattern"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
			}
			var eb struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("error body %q is not {\"error\": ...}: %v", body, err)
			}
			if !strings.Contains(eb.Error, tc.want) {
				t.Errorf("error %q does not mention %q", eb.Error, tc.want)
			}
		})
	}
}

// TestUnknownJobRoutes: every per-job route 404s for an unknown ID.
func TestUnknownJobRoutes(t *testing.T) {
	_, ts := service(t, "", nil)
	for _, path := range []string{
		"/v1/jobs/feedfacefeedface",
		"/v1/jobs/feedfacefeedface/events",
		"/v1/jobs/feedfacefeedface/result.csv",
		"/v1/jobs/feedfacefeedface/result.json",
	} {
		if code, _ := get(t, ts, path); code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, code)
		}
	}
}

// TestResultNotReadyConflicts: fetching the result of a job that is
// still queued or running is a 409, not a hang or an empty 200. The
// single executor is parked on the BeforeRun seam while the checks run,
// so both states are observed deterministically.
func TestResultNotReadyConflicts(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	_, ts := service(t, "", func(o *serve.Options) {
		o.Executors = 1
		o.BeforeRun = func(string) {
			entered <- struct{}{}
			<-release
		}
	})

	first, code := submit(t, ts, sweepRequest())
	if code != http.StatusAccepted {
		t.Fatalf("submit first: status %d", code)
	}
	<-entered // the first job is now running and parked

	second := sweepRequest()
	second.Config.Seed = 99 // a different experiment, behind it in the queue
	secondSt, code := submit(t, ts, second)
	if code != http.StatusAccepted {
		t.Fatalf("submit second: status %d", code)
	}

	if code, body := get(t, ts, "/v1/jobs/"+secondSt.ID+"/result.csv"); code != http.StatusConflict {
		t.Errorf("queued job result: status %d, want 409; body %s", code, body)
	}
	if code, body := get(t, ts, "/v1/jobs/"+first.ID+"/result.csv"); code != http.StatusConflict {
		t.Errorf("running job result: status %d, want 409; body %s", code, body)
	}

	close(release) // unpark the first job and every later one
	<-entered      // the second follows through the seam
	for _, id := range []string{first.ID, secondSt.ID} {
		if got := waitDone(t, ts, id); got != "done" {
			t.Errorf("job %s: state %q, want done", id, got)
		}
	}
}

// TestResubmitAttachesWithoutRecompute: resubmitting a completed
// experiment returns the same job (HTTP 200, same ID) and triggers no
// new computation — the compute counter and the result bytes are
// untouched.
func TestResubmitAttachesWithoutRecompute(t *testing.T) {
	_, ts := service(t, t.TempDir(), nil)
	req := sweepRequest()

	st, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if got := waitDone(t, ts, st.ID); got != "done" {
		t.Fatalf("job state %q, want done", got)
	}
	_, firstCSV := get(t, ts, "/v1/jobs/"+st.ID+"/result.csv")

	var before serve.CacheStatsBody
	getJSON(t, ts, "/v1/cache/stats", &before)
	if before.Flight.Computes != 4 {
		t.Fatalf("computes after first run = %d, want 4", before.Flight.Computes)
	}

	again, code := submit(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200 (attached)", code)
	}
	if again.ID != st.ID || again.State != "done" {
		t.Fatalf("resubmit attached to %+v, want done job %s", again, st.ID)
	}

	var after serve.CacheStatsBody
	getJSON(t, ts, "/v1/cache/stats", &after)
	if after.Flight.Computes != before.Flight.Computes {
		t.Errorf("resubmit recomputed: computes %d -> %d", before.Flight.Computes, after.Flight.Computes)
	}
	if after.Jobs.Done != 1 {
		t.Errorf("registry done jobs = %d, want 1 (attached, not duplicated)", after.Jobs.Done)
	}
	_, secondCSV := get(t, ts, "/v1/jobs/"+again.ID+"/result.csv")
	if !bytes.Equal(firstCSV, secondCSV) {
		t.Errorf("resubmitted CSV differs from original")
	}
}

// TestCacheStatsShape: the stats endpoint reports the store when one is
// configured and omits it when serving memory-only.
func TestCacheStatsShape(t *testing.T) {
	dir := t.TempDir()
	_, ts := service(t, dir, nil)
	var body serve.CacheStatsBody
	getJSON(t, ts, "/v1/cache/stats", &body)
	if body.Store == nil || body.Store.Dir != dir {
		t.Errorf("stats store = %+v, want dir %q", body.Store, dir)
	}

	_, tsNoStore := service(t, "", nil)
	var noStore serve.CacheStatsBody
	getJSON(t, tsNoStore, "/v1/cache/stats", &noStore)
	if noStore.Store != nil {
		t.Errorf("memory-only stats reported a store: %+v", noStore.Store)
	}
}
