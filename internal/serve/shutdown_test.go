package serve_test

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"hyperx/internal/serve"
)

// TestGracefulShutdownDrainsRunningCancelsQueued is the drain contract:
// on shutdown the running job completes (and persists its cells), the
// queued job reports cancelled, new submissions are refused, and a
// restart against the same checkpoint directory serves the finished
// experiment entirely from the store — the same bytes, zero computes.
func TestGracefulShutdownDrainsRunningCancelsQueued(t *testing.T) {
	dir := t.TempDir()
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, ts := service(t, dir, func(o *serve.Options) {
		o.Executors = 1
		o.BeforeRun = func(string) {
			entered <- struct{}{}
			<-release
		}
	})

	running, code := submit(t, ts, sweepRequest())
	if code != http.StatusAccepted {
		t.Fatalf("submit running job: status %d", code)
	}
	<-entered // the job is running, parked before its computation

	queuedReq := sweepRequest()
	queuedReq.Config.Seed = 7
	queued, code := submit(t, ts, queuedReq)
	if code != http.StatusAccepted {
		t.Fatalf("submit queued job: status %d", code)
	}

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(context.Background()) }()

	// The queued job's cancellation happens during the drain; its event
	// stream delivers the terminal state without polling.
	if got := waitDone(t, ts, queued.ID); got != "cancelled" {
		t.Fatalf("queued job state %q, want cancelled", got)
	}
	var qs serve.JobStatus
	getJSON(t, ts, "/v1/jobs/"+queued.ID, &qs)
	if !strings.Contains(qs.Error, "shutting down") {
		t.Errorf("queued job error %q does not say why it was cancelled", qs.Error)
	}
	if code, _ := get(t, ts, "/v1/jobs/"+queued.ID+"/result.csv"); code != http.StatusGone {
		t.Errorf("cancelled job result: status %d, want 410", code)
	}

	// Submissions during (and after) the drain are refused.
	late := sweepRequest()
	late.Config.Seed = 11
	if _, code := submit(t, ts, late); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", code)
	}

	close(release) // unpark the running job; the drain completes with it
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := waitDone(t, ts, running.ID); got != "done" {
		t.Fatalf("running job state %q after drain, want done", got)
	}
	code, firstCSV := get(t, ts, "/v1/jobs/"+running.ID+"/result.csv")
	if code != http.StatusOK {
		t.Fatalf("drained job result: status %d", code)
	}

	// Restart against the same directory: the same submission is a new
	// job in a fresh registry (same content-addressed ID), but every
	// cell replays out of the store — no computation, provenance says
	// cached.
	_, ts2 := service(t, dir, nil)
	resub, code := submit(t, ts2, sweepRequest())
	if code != http.StatusAccepted {
		t.Fatalf("resubmit after restart: status %d", code)
	}
	if resub.ID != running.ID {
		t.Errorf("restarted job ID %s, want the content-addressed %s", resub.ID, running.ID)
	}
	if got := waitDone(t, ts2, resub.ID); got != "done" {
		t.Fatalf("restarted job state %q, want done", got)
	}
	code, secondCSV := get(t, ts2, "/v1/jobs/"+resub.ID+"/result.csv")
	if code != http.StatusOK {
		t.Fatalf("restarted result: status %d", code)
	}
	if !bytes.Equal(firstCSV, secondCSV) {
		t.Errorf("cache-served CSV differs from the computed one:\nfirst:\n%s\nsecond:\n%s", firstCSV, secondCSV)
	}

	var res serve.ResultJSON
	getJSON(t, ts2, "/v1/jobs/"+resub.ID+"/result.json", &res)
	if res.Manifest == nil || res.Manifest.Provenance == nil {
		t.Fatal("restarted result has no provenance")
	}
	prov := res.Manifest.Provenance
	if prov.CachedJobs != len(res.Manifest.Jobs) || prov.CachedJobs != 4 {
		t.Errorf("provenance cached_jobs = %d of %d, want all 4 served from cache", prov.CachedJobs, len(res.Manifest.Jobs))
	}
	if prov.ResumedFrom != dir {
		t.Errorf("provenance resumed_from = %q, want %q", prov.ResumedFrom, dir)
	}

	var stats serve.CacheStatsBody
	getJSON(t, ts2, "/v1/cache/stats", &stats)
	if stats.Flight.Computes != 0 {
		t.Errorf("restarted server computed %d cells, want 0 (all from store)", stats.Flight.Computes)
	}
	if stats.Store == nil || stats.Store.Hits != 4 {
		t.Errorf("restarted store stats = %+v, want 4 hits", stats.Store)
	}
}

// TestShutdownIdempotentAndEmpty: shutting down an idle server returns
// immediately, and a second Shutdown is a no-op rather than a panic on
// a closed queue.
func TestShutdownIdempotentAndEmpty(t *testing.T) {
	srv, err := serve.New(serve.Options{Now: newClock().Now})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
