package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"hyperx/internal/serve"
)

// TestConcurrentIdenticalSubmissionsComputeOnce is the stampede
// acceptance test: N goroutines submit the same config at once, exactly
// one computation runs (the registry collapses them to one job; the
// compute counter stays at the job's cell count), and every client
// reads the same bytes.
func TestConcurrentIdenticalSubmissionsComputeOnce(t *testing.T) {
	const n = 8
	_, ts := service(t, t.TempDir(), nil)
	body, err := json.Marshal(sweepRequest())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	ids := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st serve.JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			ids[i], codes[i] = st.ID, resp.StatusCode
		}()
	}
	wg.Wait()

	accepted := 0
	for i := 0; i < n; i++ {
		switch codes[i] {
		case http.StatusAccepted:
			accepted++
		case http.StatusOK:
		default:
			t.Fatalf("submission %d: status %d", i, codes[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got job %s, submission 0 got %s — identical configs must share a job", i, ids[i], ids[0])
		}
	}
	if accepted != 1 {
		t.Errorf("%d submissions created a job, want exactly 1", accepted)
	}

	if got := waitDone(t, ts, ids[0]); got != "done" {
		t.Fatalf("job state %q, want done", got)
	}

	// Every client reads the same bytes, concurrently.
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, csv := get(t, ts, "/v1/jobs/"+ids[0]+"/result.csv")
			if code != http.StatusOK {
				t.Errorf("reader %d: status %d", i, code)
			}
			results[i] = csv
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Errorf("reader %d saw different bytes than reader 0", i)
		}
	}

	// Exactly one computation per cell: 2 algorithms x 2 loads = 4
	// computes, 4 store saves, no sharing needed (one job ran), one job
	// in the registry.
	var stats serve.CacheStatsBody
	getJSON(t, ts, "/v1/cache/stats", &stats)
	if stats.Flight.Computes != 4 {
		t.Errorf("flight computes = %d, want 4 (one per cell)", stats.Flight.Computes)
	}
	if stats.Store == nil || stats.Store.Saves != 4 {
		t.Errorf("store stats = %+v, want 4 saves", stats.Store)
	}
	if stats.Jobs.Done != 1 || stats.Jobs.Queued+stats.Jobs.Running+stats.Jobs.Failed+stats.Jobs.Cancelled != 0 {
		t.Errorf("registry = %+v, want exactly one done job", stats.Jobs)
	}
}

// TestOverlappingJobsComputeSharedCellsOnce: two different jobs that
// share cells (both sweep DOR, plus one private algorithm each) run
// concurrently, and each distinct cell is computed exactly once —
// served to the other job by the singleflight group or the store,
// whichever its timing hits.
func TestOverlappingJobsComputeSharedCellsOnce(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	_, ts := service(t, t.TempDir(), func(o *serve.Options) {
		o.Executors = 2
		o.BeforeRun = func(string) {
			entered <- struct{}{}
			<-release
		}
	})

	a := sweepRequest()
	a.Algorithms = []string{"DOR", "DimWAR"}
	b := sweepRequest()
	b.Algorithms = []string{"DOR", "VAL"}

	aSt, code := submit(t, ts, a)
	if code != http.StatusAccepted {
		t.Fatalf("submit a: status %d", code)
	}
	bSt, code := submit(t, ts, b)
	if code != http.StatusAccepted {
		t.Fatalf("submit b: status %d", code)
	}
	if aSt.ID == bSt.ID {
		t.Fatalf("different experiments share job %s", aSt.ID)
	}
	<-entered // both jobs are running before either computes a cell,
	<-entered // so their DOR cells genuinely overlap
	close(release)

	for _, id := range []string{aSt.ID, bSt.ID} {
		if got := waitDone(t, ts, id); got != "done" {
			t.Fatalf("job %s: state %q, want done", id, got)
		}
	}

	// 3 distinct algorithms x 2 loads = 6 distinct cells across 8
	// requested: exactly 6 computes and 6 saves, in every interleaving
	// (the two DOR cells reach the second job via flight sharing or a
	// store hit, never a recompute).
	var stats serve.CacheStatsBody
	getJSON(t, ts, "/v1/cache/stats", &stats)
	if stats.Flight.Computes != 6 {
		t.Errorf("flight computes = %d, want 6 (one per distinct cell)", stats.Flight.Computes)
	}
	if stats.Store == nil || stats.Store.Saves != 6 {
		t.Errorf("store stats = %+v, want 6 saves", stats.Store)
	}
	if total := stats.Flight.Shared + stats.Store.Hits; total != 2 {
		t.Errorf("shared(%d) + store hits(%d) = %d, want 2 (the overlapping DOR cells)", stats.Flight.Shared, stats.Store.Hits, total)
	}
}
