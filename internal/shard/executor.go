// Package shard runs one simulation across multiple cores while keeping
// the executed event sequence bit-identical to a serial run.
//
// The executor advances the kernel one timestamp at a time: it drains
// every event of the earliest cycle (already globally sequence-sorted),
// partitions them across the model's shards, executes the shards in
// parallel workers, and then has the model merge the staged schedule
// calls and side effects back into the kernel in global sequence order.
// Determinism therefore never depends on goroutine scheduling: the
// parallel phase touches only shard-private state (see
// internal/network/shard.go for the ownership argument), and everything
// order-sensitive happens in the single-threaded merge. The barrier is
// the conservative synchronization window — every model latency is at
// least one cycle, so an event can only be scheduled by a strictly
// earlier cycle (or staged within its own, which the merge re-drains).
//
// This package is the concurrency carve-out of the simulator: it is the
// only determinism-scoped package allowed to use goroutines (hxlint's
// noconc pass exempts exactly this package), and it contains no model
// logic — just fan-out, barrier, and the serial-equivalence edge cases
// of Kernel.Run's until-boundary.
//
// Unsupported in sharded mode: Kernel.Halt from inside an event (the
// halt flag is only checked at cycle boundaries, so the rest of the
// halting event's cycle still executes; the facade never halts mid-run).
// Context cancellation is polled per cycle rather than every few
// thousand events; a cancelled run has executed a strict prefix of the
// serial schedule either way and is discarded by its caller.
package shard

import (
	"context"
	"sync"

	"hyperx/internal/sim"
)

// Model is the sharded simulation model (implemented by
// network.Network). The executor calls EnterSharded/ExitSharded around
// parallel execution, PartitionCycle/RunShard for the parallel phase,
// and MergeCycle for the deterministic replay.
type Model interface {
	NumShards() int
	EnterSharded()
	ExitSharded()
	// PartitionCycle distributes a drained cycle to the shards' batches,
	// returning false (with batches cleared) if the cycle holds an event
	// that cannot be sharded and must run serially.
	PartitionCycle(batch []*sim.Event) bool
	// BatchLen reports shard s's share of the current cycle.
	BatchLen(s int) int
	// RunShard executes shard s's batch against shard-private state.
	RunShard(s int)
	// MergeCycle replays all shards' staged work in global seq order.
	MergeCycle()
}

// Executor drives one kernel/model pair. Not safe for concurrent use;
// create one per simulation instance and call RunCtx from one goroutine.
type Executor struct {
	k   *sim.Kernel
	m   Model
	buf []*sim.Event
}

// New returns an executor over the kernel and model. The model must have
// its shards configured already (network.Network.ConfigureShards).
func New(k *sim.Kernel, m Model) *Executor {
	return &Executor{k: k, m: m}
}

// RunCtx executes events until the queue is empty, the clock passes
// until (when until > 0), Halt is observed at a cycle boundary, or ctx
// is cancelled. The executed event sequence — and every observable model
// state — is bit-identical to sim.Kernel.RunCtx over the same schedule,
// including Run's two historical boundary quirks: a live event directly
// after a dead seq-tail executes past until, and the boundary stop can
// rewind the clock to until afterwards.
func (x *Executor) RunCtx(ctx context.Context, until sim.Time) (sim.Time, error) {
	k := x.k
	k.ClearHalt()
	nsh := x.m.NumShards()
	x.m.EnterSharded()
	defer x.m.ExitSharded()

	// Per-run worker pool: nsh-1 workers plus the coordinator (which runs
	// the first nonempty shard inline) cover all shards each cycle. The
	// channel send/receive pair and the WaitGroup give the happens-before
	// edges between the coordinator and every shard execution.
	work := make(chan int, nsh)
	var cycle sync.WaitGroup
	var workers sync.WaitGroup
	for w := 0; w < nsh-1; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for s := range work {
				x.m.RunShard(s)
				cycle.Done()
			}
		}()
	}
	defer func() {
		close(work)
		workers.Wait()
	}()

	for {
		if k.Halted() {
			return k.Now(), nil
		}
		select {
		case <-ctx.Done():
			return k.Now(), ctx.Err()
		default:
		}
		t, ok := k.PeekTime()
		if !ok {
			return k.Now(), nil
		}
		if until > 0 && t > until {
			k.SetNow(until)
			return k.Now(), nil
		}
		_, batch := k.DrainCycle(x.buf)
		x.buf = batch
		lastDead := batch[len(batch)-1].Dead()
		if x.m.PartitionCycle(batch) {
			inline := -1
			for s := 0; s < nsh; s++ {
				if x.m.BatchLen(s) == 0 {
					continue
				}
				if inline < 0 {
					inline = s
					continue
				}
				cycle.Add(1)
				work <- s
			}
			if inline >= 0 {
				x.m.RunShard(inline)
			}
			cycle.Wait()
			x.m.MergeCycle()
		} else {
			// Unshardable cycle (closure event or foreign actor): run it
			// serially with sharded mode off. Events it schedules for this
			// same cycle land in the calendar and are re-drained next
			// iteration, exactly as the serial pop loop would order them.
			x.m.ExitSharded()
			for _, e := range batch {
				k.ExecDrained(e)
			}
			x.m.EnterSharded()
		}
		if lastDead && until > 0 {
			// Serial Run's pop-until-live chain: dead events skip the until
			// recheck, so when a cycle's seq-tail is dead and the next event
			// lies beyond the boundary, serial executes one more live event
			// (however far ahead) before stopping. Reproduce it with one
			// serial Step, then stop at the boundary as serial does.
			if t2, ok2 := k.PeekTime(); ok2 && t2 > until {
				x.m.ExitSharded()
				k.Step()
				x.m.EnterSharded()
			}
		}
	}
}
