// Package shard runs one simulation across multiple cores while keeping
// the executed event sequence bit-identical to a serial run.
//
// The executor advances the kernel one conservative time window at a
// time: it drains every event scheduled before the window boundary
// (already globally (time, seq)-sorted), partitions them across the
// model's shards, executes the shards in parallel workers — each shard
// interleaving events its own callbacks schedule back inside the window
// — and then has the model merge the staged schedule calls and side
// effects back into the kernel in global serial order. Determinism
// therefore never depends on goroutine scheduling: the parallel phase
// touches only shard-private state (see internal/network/shard.go for
// the ownership argument), and everything order-sensitive happens in the
// single-threaded merge.
//
// The window width is the lookahead bound: a cross-shard schedule always
// crosses a router-to-router channel, so it lands at least the model's
// minimum cross-shard latency after the event that issued it. For any
// window no wider than that latency, an event drained at the window
// start can only receive cross-shard work beyond the window end — which
// is exactly what lets every shard run its whole slice between barriers.
// Same-shard schedules may land arbitrarily close (back-to-back
// arbitration retries), so those execute locally on their shard, in
// serial order (sim.Stage.RunWindow). A width of 1 degenerates to the
// per-cycle barrier of the original executor.
//
// Workers are a persistent pool created by New and shared by every
// RunCtx call (fork-per-point sweeps would otherwise respawn them per
// point); per-window imbalance is absorbed by per-participant deques
// with work stealing. Call Close when the executor is retired to stop
// the pool.
//
// This package is the concurrency carve-out of the simulator: it is the
// only determinism-scoped package allowed to use goroutines (hxlint's
// noconc pass exempts exactly this package), and it contains no model
// logic — just fan-out, barrier, and the serial-equivalence edge cases
// of Kernel.Run's until-boundary.
//
// Unsupported in sharded mode: Kernel.Halt from inside an event (the
// halt flag is only checked at window boundaries, so the rest of the
// halting event's window still executes; the facade never halts mid-run,
// and its collector closures force the single-cycle serial fallback).
// Context cancellation is polled per window rather than every few
// thousand events; a cancelled run has executed a strict prefix of the
// serial schedule either way and is discarded by its caller.
package shard

import (
	"context"
	"sync"

	"hyperx/internal/sim"
)

// Model is the sharded simulation model (implemented by
// network.Network). The executor calls EnterSharded/ExitSharded around
// parallel execution, PartitionWindow/RunShard for the parallel phase,
// and MergeWindow for the deterministic replay.
type Model interface {
	NumShards() int
	EnterSharded()
	ExitSharded()
	// PartitionWindow distributes a drained window to the shards' batches
	// and opens their stages for the window ending at winEnd (exclusive),
	// returning false (with batches cleared) if the window holds an event
	// that cannot be sharded and must run serially.
	PartitionWindow(batch []*sim.Event, winEnd sim.Time) bool
	// BatchLen reports shard s's share of the current window.
	BatchLen(s int) int
	// RunShard executes shard s's batch against shard-private state.
	RunShard(s int)
	// MergeWindow replays all shards' staged work in global (time, seq)
	// order and reports whether the window's serially-last processed
	// event was dead (the until-overshoot quirk's trigger).
	MergeWindow() (lastDead bool)
}

// deque is one participant's task queue: the owner pops LIFO from the
// bottom, thieves pop FIFO from the top. All pushes happen on the
// coordinator before any worker wakes, so only the pops need the lock.
type deque struct {
	mu   sync.Mutex
	q    []int
	head int
}

func (d *deque) reset() {
	d.q = d.q[:0]
	d.head = 0
}

// push appends a task. Coordinator-only, before the dispatch wakes any
// worker (the wake channel send publishes it).
func (d *deque) push(s int) {
	d.q = append(d.q, s)
}

// popBottom takes the owner's next task (LIFO keeps it on the tasks it
// was dealt).
func (d *deque) popBottom() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.q) {
		return 0, false
	}
	s := d.q[len(d.q)-1]
	d.q = d.q[:len(d.q)-1]
	return s, true
}

// popTop steals the victim's oldest task.
func (d *deque) popTop() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.q) {
		return 0, false
	}
	s := d.q[d.head]
	d.head++
	return s, true
}

// Executor drives one kernel/model pair. Not safe for concurrent use;
// create one per simulation instance, call RunCtx from one goroutine,
// and Close it when retired (Close stops the persistent worker pool).
type Executor struct {
	k   *sim.Kernel
	m   Model
	win sim.Time
	buf []*sim.Event
	nsh int

	// Persistent worker pool: nsh-1 parked workers plus the coordinator.
	// Participant i owns parts[i]; the coordinator is participant 0,
	// worker w is participant w+1 and parks on wake[w]. nparts is the
	// current dispatch's participant count (published to workers by the
	// wake send).
	parts    []deque
	nparts   int
	wake     []chan struct{}
	quit     chan struct{}
	workers  sync.WaitGroup
	shardsWG sync.WaitGroup // one count per RunShard still outstanding
	idleWG   sync.WaitGroup // one count per woken worker not yet re-parked
}

// New returns an executor over the kernel and model with the given
// window width in cycles (widths below 1 are treated as 1; the caller —
// the facade — derives and caps the width from the model's latencies).
// The model must have its shards configured already
// (network.Network.ConfigureShards). The worker pool starts immediately;
// pair every New with a Close.
func New(k *sim.Kernel, m Model, window sim.Time) *Executor {
	if window < 1 {
		window = 1
	}
	nsh := m.NumShards()
	x := &Executor{
		k:     k,
		m:     m,
		win:   window,
		nsh:   nsh,
		parts: make([]deque, nsh),
		wake:  make([]chan struct{}, nsh-1),
		quit:  make(chan struct{}),
	}
	for w := range x.wake {
		x.wake[w] = make(chan struct{}, 1)
		x.workers.Add(1)
		go func(w int) {
			defer x.workers.Done()
			for {
				select {
				case <-x.quit:
					return
				case <-x.wake[w]:
					x.scan(w + 1)
					x.idleWG.Done()
				}
			}
		}(w)
	}
	return x
}

// Close stops the persistent worker pool and waits for the workers to
// exit. The executor must be idle (no RunCtx in flight). Close is
// idempotent.
func (x *Executor) Close() {
	if x.quit == nil {
		return
	}
	close(x.quit)
	x.workers.Wait()
	x.quit = nil
}

// scan runs tasks as participant id: first the participant's own deque
// (LIFO), then steals from the others (FIFO), returning when every deque
// is empty. Tasks are only pushed before the dispatch wakes the workers,
// so an empty sweep means the window's fan-out is fully claimed.
func (x *Executor) scan(id int) {
	for {
		s, ok := x.parts[id].popBottom()
		for v := 0; !ok && v < x.nparts; v++ {
			if v != id {
				s, ok = x.parts[v].popTop()
			}
		}
		if !ok {
			return
		}
		x.m.RunShard(s)
		x.shardsWG.Done()
	}
}

// runShards executes every nonempty shard of the current window: inline
// when only one shard has work, otherwise dealt round-robin across the
// coordinator and up to nonempty-1 woken workers, with stealing evening
// out imbalanced deals. Returns with every RunShard complete and every
// woken worker re-parked (the next window's deal must not race a
// straggling thief).
func (x *Executor) runShards() {
	n, only := 0, 0
	for s := 0; s < x.nsh; s++ {
		if x.m.BatchLen(s) > 0 {
			n++
			only = s
		}
	}
	if n == 0 {
		return
	}
	if n == 1 {
		x.m.RunShard(only)
		return
	}
	nparts := 1 + len(x.wake)
	if n < nparts {
		nparts = n
	}
	x.nparts = nparts
	for i := 0; i < nparts; i++ {
		x.parts[i].reset()
	}
	i := 0
	for s := 0; s < x.nsh; s++ {
		if x.m.BatchLen(s) == 0 {
			continue
		}
		x.parts[i%nparts].push(s)
		i++
	}
	x.shardsWG.Add(n)
	x.idleWG.Add(nparts - 1)
	for w := 0; w < nparts-1; w++ {
		x.wake[w] <- struct{}{}
	}
	x.scan(0)
	x.shardsWG.Wait()
	x.idleWG.Wait()
}

// RunCtx executes events until the queue is empty, the clock passes
// until (when until > 0), Halt is observed at a window boundary, or ctx
// is cancelled. The executed event sequence — and every observable model
// state — is bit-identical to sim.Kernel.RunCtx over the same schedule,
// including Run's two historical boundary quirks: a live event directly
// after a dead seq-tail executes past until, and the boundary stop can
// rewind the clock to until afterwards.
func (x *Executor) RunCtx(ctx context.Context, until sim.Time) (sim.Time, error) {
	k := x.k
	k.ClearHalt()
	x.m.EnterSharded()
	defer x.m.ExitSharded()

	for {
		if k.Halted() {
			return k.Now(), nil
		}
		select {
		case <-ctx.Done():
			return k.Now(), ctx.Err()
		default:
		}
		t, ok := k.PeekTime()
		if !ok {
			return k.Now(), nil
		}
		if until > 0 && t > until {
			k.SetNow(until)
			return k.Now(), nil
		}
		winEnd := t + x.win
		if until > 0 && winEnd > until+1 {
			// Clamp so no live event beyond until executes mid-window; the
			// dead-tail overshoot below is the only sanctioned excursion.
			winEnd = until + 1
		}
		batch := k.DrainWindow(winEnd, x.buf)
		x.buf = batch
		var lastDead bool
		if x.m.PartitionWindow(batch, winEnd) {
			x.runShards()
			lastDead = x.m.MergeWindow()
		} else {
			// Unshardable window (closure event or foreign actor): put the
			// batch back — stamps intact — and run ONE cycle serially with
			// sharded mode off. A whole-window serial pass would be wrong:
			// events this cycle schedules inside the window must interleave
			// with the requeued remainder, which the next iteration's drain
			// (or re-partition) orders correctly.
			k.Requeue(batch)
			x.m.ExitSharded()
			_, cyc := k.DrainCycle(x.buf)
			x.buf = cyc
			for _, e := range cyc {
				// Read deadness per event before ExecDrained: the recycled
				// struct can be handed straight back to a same-cycle
				// reschedule, clobbering the flag.
				d := e.Dead()
				k.ExecDrained(e)
				lastDead = d
			}
			x.m.EnterSharded()
		}
		if lastDead && until > 0 {
			// Serial Run's pop-until-live chain: dead events skip the until
			// recheck, so when the window's seq-tail is dead and the next
			// event lies beyond the boundary, serial executes one more live
			// event (however far ahead) before stopping. Reproduce it with
			// one serial Step, then stop at the boundary as serial does.
			if t2, ok2 := k.PeekTime(); ok2 && t2 > until {
				x.m.ExitSharded()
				k.Step()
				x.m.EnterSharded()
			}
		}
	}
}
