package shard

// Executor tests against a toy sharded model, independent of the network:
// a ring of counter slots where each event increments its slot and
// schedules follow-on events, sometimes across shards. The toy implements
// the same staging discipline as internal/network (stage into the
// executing shard, window-local execution via Stage.RunWindow, merge
// replays in global (time, seq) order), so these tests pin the executor's
// serial-equivalence edge cases — until boundaries, dead seq-tails,
// closure fallback, windowed cancellation — with exact expectations
// computed from a serial kernel running the identical schedule.
//
// Toy latencies: same-slot ticks re-arm at +3 (same-shard), pokes cross
// to the next slot at +5 — the toy's minimum cross-shard latency — so
// window widths up to 5 are safe, and the tests sweep {1, 2, 3, 5}.

import (
	"context"
	"testing"

	"hyperx/internal/sim"
)

// toyWindows are the widths every serial-equivalence test sweeps: the
// degenerate per-cycle barrier, partial windows, and the toy's full
// cross-shard latency bound.
var toyWindows = []sim.Time{1, 2, 3, 5}

// toyRec mirrors network.execRec: one executed event's replay window. A
// drained event carries its (at, seq); an in-window staged event carries
// its handle (seq assigned at replay).
type toyRec struct {
	at     sim.Time
	seq    uint64
	ev     *sim.Event
	opsEnd int
}

// toyShardRec is shard s's sim.Recorder.
type toyShardRec struct {
	m *toy
	s int
}

func (r *toyShardRec) Record(at sim.Time, seq uint64, ev *sim.Event) {
	m, s := r.m, r.s
	m.recs[s] = append(m.recs[s], toyRec{at: at, seq: seq, ev: ev, opsEnd: m.stages[s].StagedLen()})
}

// toy is a sharded model over nsh counter slots; slot i lives on shard
// i%nsh. Each event increments slot a and, while below limit, schedules
// the slot's next tick at +3; every third tick also pokes slot a+1 at +5
// — cross-shard traffic whose ordering the merge must serialize.
type toy struct {
	k       *sim.Kernel
	stages  []*sim.Stage
	srecs   []*toyShardRec
	batches [][]*sim.Event
	recs    [][]toyRec
	cur     []int
	opsPos  []int
	slots   []int64
	sharded bool
	limit   sim.Time
}

func newToy(k *sim.Kernel, nsh, slots int, limit sim.Time) *toy {
	m := &toy{k: k, slots: make([]int64, slots), limit: limit}
	for s := 0; s < nsh; s++ {
		m.stages = append(m.stages, sim.NewStage(s))
		m.srecs = append(m.srecs, &toyShardRec{m: m, s: s})
		m.batches = append(m.batches, nil)
		m.recs = append(m.recs, nil)
		m.cur = append(m.cur, 0)
		m.opsPos = append(m.opsPos, 0)
	}
	return m
}

func (m *toy) shardOf(slot int32) int { return int(slot) % len(m.stages) }

// ShardOf implements sim.Sharded.
func (m *toy) ShardOf(_ uint8, a, _, _ int32, _ any) int { return m.shardOf(a) }

// Act implements sim.Actor: op 0 is a tick, op 1 a one-shot poke.
func (m *toy) Act(op uint8, a, b, _ int32, _ any) {
	m.slots[a]++
	if op != 0 {
		return
	}
	sched := func(at sim.Time, op uint8, slot, gen int32) {
		if m.sharded {
			// Stage into the EXECUTING shard (slot a's), whatever shard the
			// new event will run on — the merge replays it from here.
			m.stages[m.shardOf(a)].AtAct(at, m, op, slot, gen, 0, nil)
		} else {
			m.k.AtAct(at, m, op, slot, gen, 0, nil)
		}
	}
	now := m.now(a)
	if now+3 <= m.limit {
		sched(now+3, 0, a, b+1)
	}
	if b%3 == 0 {
		sched(now+5, 1, (a+1)%int32(len(m.slots)), 0)
	}
}

// now reads the model clock: the executing shard's stage clock during a
// parallel phase (the kernel clock is frozen at the window start then),
// the kernel clock otherwise — the same contract the network model uses.
func (m *toy) now(slot int32) sim.Time {
	if m.sharded {
		return m.stages[m.shardOf(slot)].Now()
	}
	return m.k.Now()
}

func (m *toy) NumShards() int { return len(m.stages) }
func (m *toy) EnterSharded()  { m.sharded = true }
func (m *toy) ExitSharded()   { m.sharded = false }

func (m *toy) PartitionWindow(batch []*sim.Event, winEnd sim.Time) bool {
	for s := range m.stages {
		m.stages[s].StartWindow(winEnd)
	}
	for _, e := range batch {
		s, ok := e.Shard()
		if !ok {
			for i := range m.batches {
				m.batches[i] = m.batches[i][:0]
			}
			return false
		}
		m.batches[s] = append(m.batches[s], e)
	}
	return true
}

func (m *toy) BatchLen(s int) int { return len(m.batches[s]) }

func (m *toy) RunShard(s int) {
	m.stages[s].RunWindow(m.batches[s], m.srecs[s])
	m.batches[s] = m.batches[s][:0]
}

func (m *toy) MergeWindow() bool {
	var live uint64
	for {
		pick := -1
		var pAt sim.Time
		var pSeq uint64
		for s := range m.recs {
			if m.cur[s] >= len(m.recs[s]) {
				continue
			}
			rec := &m.recs[s][m.cur[s]]
			at, seq := rec.at, rec.seq
			if rec.ev != nil {
				seq = rec.ev.Seq() // assigned by this shard's earlier replay
			}
			if pick < 0 || at < pAt || (at == pAt && seq < pSeq) {
				pick, pAt, pSeq = s, at, seq
			}
		}
		if pick < 0 {
			break
		}
		rec := &m.recs[pick][m.cur[pick]]
		m.cur[pick]++
		live++
		m.k.SetNow(pAt)
		if tr := m.k.TraceExec; tr != nil {
			tr(pAt, pSeq)
		}
		m.stages[pick].ReplayOps(m.k, m.opsPos[pick], rec.opsEnd)
		m.opsPos[pick] = rec.opsEnd
	}
	m.k.AddExecuted(live)
	var tAt sim.Time
	var tSeq uint64
	var dead, has bool
	for s := range m.stages {
		at, seq, d, ok := m.stages[s].Tail()
		if !ok {
			continue
		}
		if !has || at > tAt || (at == tAt && seq > tSeq) {
			tAt, tSeq, dead, has = at, seq, d, true
		}
	}
	for s := range m.stages {
		m.stages[s].ResetOps()
		m.recs[s] = m.recs[s][:0]
		m.cur[s] = 0
		m.opsPos[s] = 0
	}
	return dead
}

// trace captures the executed (time, seq) stream of a kernel.
func trace(k *sim.Kernel) *[][2]uint64 {
	var tr [][2]uint64
	k.TraceExec = func(at sim.Time, seq uint64) { tr = append(tr, [2]uint64{uint64(at), seq}) }
	return &tr
}

// seedToy schedules the initial ticks: one per slot at staggered times.
func seedToy(k *sim.Kernel, m *toy) {
	for i := range m.slots {
		k.AtAct(sim.Time(1+i%4), m, 0, int32(i), 0, 0, nil)
	}
}

func runPair(t *testing.T, nsh int, win sim.Time, slots int, limit, until sim.Time, mutate func(serial, sharded *sim.Kernel, sm, xm *toy)) {
	t.Helper()
	sk := sim.NewKernel()
	sm := newToy(sk, nsh, slots, limit)
	seedToy(sk, sm)
	xk := sim.NewKernel()
	xm := newToy(xk, nsh, slots, limit)
	seedToy(xk, xm)
	if mutate != nil {
		mutate(sk, xk, sm, xm)
	}
	str, xtr := trace(sk), trace(xk)

	sk.Run(until)
	x := New(xk, xm, win)
	defer x.Close()
	if _, err := x.RunCtx(context.Background(), until); err != nil {
		t.Fatal(err)
	}

	if len(*str) != len(*xtr) {
		t.Fatalf("nsh=%d win=%d: executor ran %d events, serial %d", nsh, win, len(*xtr), len(*str))
	}
	for i := range *str {
		if (*str)[i] != (*xtr)[i] {
			t.Fatalf("nsh=%d win=%d: event %d diverged: executor (t=%d seq=%d), serial (t=%d seq=%d)",
				nsh, win, i, (*xtr)[i][0], (*xtr)[i][1], (*str)[i][0], (*str)[i][1])
		}
	}
	for i := range sm.slots {
		if sm.slots[i] != xm.slots[i] {
			t.Fatalf("nsh=%d win=%d: slot %d: executor %d, serial %d", nsh, win, i, xm.slots[i], sm.slots[i])
		}
	}
	if sk.Now() != xk.Now() || sk.Executed() != xk.Executed() {
		t.Fatalf("nsh=%d win=%d: end state: executor (now=%d exec=%d), serial (now=%d exec=%d)",
			nsh, win, xk.Now(), xk.Executed(), sk.Now(), sk.Executed())
	}
}

func TestExecutorMatchesSerial(t *testing.T) {
	for _, nsh := range []int{1, 2, 3, 4} {
		for _, win := range toyWindows {
			runPair(t, nsh, win, 8, 400, 0, nil)
		}
	}
}

// TestExecutorWorkStealing: a wide fan-out (8 shards, 7 pool workers)
// over a long run keeps the deques busy enough that thieves routinely
// outrun the round-robin deal. Serial equivalence must survive arbitrary
// steal interleavings; `go test -race ./internal/shard` is the memory-
// model half of this claim.
func TestExecutorWorkStealing(t *testing.T) {
	runPair(t, 8, 5, 32, 2000, 0, nil)
}

// TestExecutorUntilBoundary: stopping at an until that falls between,
// on, and just before event times matches Kernel.Run's boundary behavior
// (including the clock assignment to until) at every window width.
func TestExecutorUntilBoundary(t *testing.T) {
	for _, until := range []sim.Time{1, 2, 7, 100, 101, 399, 400, 1000} {
		for _, win := range toyWindows {
			runPair(t, 3, win, 8, 400, until, nil)
		}
	}
}

// TestExecutorDeadTailOvershoot: when the boundary window's seq-tail is
// dead and the next live event lies beyond until, serial Run executes
// that one extra event before stopping (and the subsequent boundary stop
// rewinds the clock to until); the executor must reproduce both quirks
// at every window width.
func TestExecutorDeadTailOvershoot(t *testing.T) {
	for _, win := range toyWindows {
		mutate := func(sk, xk *sim.Kernel, sm, xm *toy) {
			// A lone dead event at the boundary cycle, nothing else there: the
			// pop-until-live chain skips past it into the next cycle.
			sk.Cancel(sk.AtAct(50, sm, 1, 0, 0, 0, nil))
			xk.Cancel(xk.AtAct(50, xm, 1, 0, 0, 0, nil))
		}
		runPair(t, 2, win, 4, 400, 50, mutate)
	}
}

// TestExecutorClosureFallback: closure events carry no shard, forcing
// their cycle through the serial fallback; with windows > 1 the rest of
// the drained window is requeued first, so events the closure schedules
// for its own cycle — and for later in-window cycles — interleave with
// the requeued remainder exactly as the serial pop loop orders them.
func TestExecutorClosureFallback(t *testing.T) {
	for _, win := range toyWindows {
		mutate := func(sk, xk *sim.Kernel, sm, xm *toy) {
			for _, pair := range []struct {
				k *sim.Kernel
				m *toy
			}{{sk, sm}, {xk, xm}} {
				k, m := pair.k, pair.m
				k.At(20, func() {
					m.slots[0] += 100
					// Same-cycle schedule from inside the fallback: must land
					// after the current batch, exactly as the serial pop loop
					// orders it.
					k.AtAct(20, m, 1, 1, 0, 0, nil)
					// And one landing mid-window, among requeued events.
					k.AtAct(22, m, 1, 2, 0, 0, nil)
				})
			}
		}
		runPair(t, 3, win, 6, 400, 0, mutate)
	}
}

// TestExecutorSameWindowCancel: an event cancelling a later event of the
// SAME window — a drained one on another shard, and an in-window staged
// one on its own shard — must see the cancel land exactly as serially,
// where the target would still be in the calendar. Deadness is read at
// processing time, which this pins.
func TestExecutorSameWindowCancel(t *testing.T) {
	for _, win := range toyWindows {
		mutate := func(sk, xk *sim.Kernel, sm, xm *toy) {
			for _, pair := range []struct {
				k *sim.Kernel
				m *toy
			}{{sk, sm}, {xk, xm}} {
				k, m := pair.k, pair.m
				// Victim: a poke at t=43 on slot 1. Canceller: a closure at
				// t=41 (forces the fallback cycle, which requeues the rest of
				// the window; the victim must still die before it runs).
				victim := k.AtAct(43, m, 1, 1, 0, 0, nil)
				k.At(41, func() { k.Cancel(victim) })
			}
		}
		runPair(t, 2, win, 4, 400, 0, mutate)
	}
}

// TestExecutorEmptyAndHalt: an empty calendar returns immediately; a
// mid-run Halt is observed at the next window boundary (the documented
// sharded-mode contract), stopping with later events still queued; and a
// fresh RunCtx clears the flag and resumes, exactly as Kernel.Run does.
func TestExecutorEmptyAndHalt(t *testing.T) {
	for _, win := range toyWindows {
		k := sim.NewKernel()
		m := newToy(k, 2, 4, 100)
		x := New(k, m, win)
		if now, err := x.RunCtx(context.Background(), 0); err != nil || now != 0 {
			t.Fatalf("win=%d: empty run = (%d, %v), want (0, nil)", win, now, err)
		}
		seedToy(k, m)
		k.At(10, func() { k.Halt() })
		if _, err := x.RunCtx(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		if !k.Halted() {
			t.Fatalf("win=%d: halt flag not observed", win)
		}
		if k.Now() > 10 {
			t.Fatalf("win=%d: executor ran past the halting cycle: now=%d", win, k.Now())
		}
		if _, ok := k.PeekTime(); !ok {
			t.Fatalf("win=%d: halted run drained the calendar; later events must stay queued", win)
		}
		// Resuming clears the flag (as Kernel.Run does) and drains the rest.
		if _, err := x.RunCtx(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		if _, ok := k.PeekTime(); ok {
			t.Fatalf("win=%d: resumed run left events queued", win)
		}
		x.Close()
	}
}

// TestExecutorContextCancel: cancellation stops the run with ctx.Err()
// after a strict prefix of the serial schedule.
func TestExecutorContextCancel(t *testing.T) {
	k := sim.NewKernel()
	m := newToy(k, 2, 4, 100000)
	seedToy(k, m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := New(k, m, 5)
	defer x.Close()
	if _, err := x.RunCtx(ctx, 0); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestExecutorContextCancelMidRunWindowed: cancelling from inside an
// event (a closure both kernels share, so the schedules stay identical)
// stops the windowed executor at the next window boundary, having
// executed a strict — and non-empty — prefix of the serial schedule.
func TestExecutorContextCancelMidRunWindowed(t *testing.T) {
	for _, win := range []sim.Time{2, 3, 5} {
		sk := sim.NewKernel()
		sm := newToy(sk, 3, 8, 100000)
		seedToy(sk, sm)
		xk := sim.NewKernel()
		xm := newToy(xk, 3, 8, 100000)
		seedToy(xk, xm)
		ctx, cancel := context.WithCancel(context.Background())
		// The closure exists in both schedules; only the executor's context
		// observes the cancel.
		sk.At(500, func() {})
		xk.At(500, func() { cancel() })
		str, xtr := trace(sk), trace(xk)

		sk.Run(2000)
		x := New(xk, xm, win)
		if _, err := x.RunCtx(context.Background(), 0); err != nil {
			// First drive the pair to the cancel point sanity-free: not
			// expected to error.
			t.Fatal(err)
		}
		x.Close()
		_ = ctx
		if len(*xtr) == 0 {
			t.Fatalf("win=%d: executor executed nothing", win)
		}
		// Rebuild and run under the cancellable context for the real check.
		xk2 := sim.NewKernel()
		xm2 := newToy(xk2, 3, 8, 100000)
		seedToy(xk2, xm2)
		ctx2, cancel2 := context.WithCancel(context.Background())
		xk2.At(500, func() { cancel2() })
		xtr2 := trace(xk2)
		x2 := New(xk2, xm2, win)
		if _, err := x2.RunCtx(ctx2, 2000); err != context.Canceled {
			t.Fatalf("win=%d: cancelled run returned %v, want context.Canceled", win, err)
		}
		x2.Close()
		if len(*xtr2) == 0 || len(*xtr2) >= len(*str) {
			t.Fatalf("win=%d: cancelled run executed %d events, serial full run %d — want a non-empty strict prefix",
				win, len(*xtr2), len(*str))
		}
		for i := range *xtr2 {
			if (*xtr2)[i] != (*str)[i] {
				t.Fatalf("win=%d: cancelled run diverged at event %d: executor (t=%d seq=%d), serial (t=%d seq=%d)",
					win, i, (*xtr2)[i][0], (*xtr2)[i][1], (*str)[i][0], (*str)[i][1])
			}
		}
	}
}
