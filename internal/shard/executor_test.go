package shard

// Executor tests against a toy sharded model, independent of the network:
// a ring of counter slots where each event increments its slot and
// schedules follow-on events, sometimes across shards. The toy implements
// the same staging discipline as internal/network (stage into the
// executing shard, merge replays in global seq order), so these tests pin
// the executor's serial-equivalence edge cases — until boundaries, dead
// seq-tails, closure fallback — with exact expectations computed from a
// serial kernel running the identical schedule.

import (
	"context"
	"testing"

	"hyperx/internal/sim"
)

// toyRec mirrors network.execRec: one executed event's replay window.
type toyRec struct {
	at      sim.Time
	seq     uint64
	opsEnd  int
	dead    bool
	hasDead bool
}

// toy is a sharded model over nsh counter slots; slot i lives on shard
// i%nsh. Each event increments slot a and, while below limit, schedules
// the slot's next tick at +step; every third tick also pokes slot a+1 —
// cross-shard traffic whose ordering the merge must serialize.
type toy struct {
	k       *sim.Kernel
	stages  []*sim.Stage
	batches [][]*sim.Event
	recs    [][]toyRec
	opsPos  []int
	slots   []int64
	sharded bool
	limit   sim.Time
}

func newToy(k *sim.Kernel, nsh, slots int, limit sim.Time) *toy {
	m := &toy{k: k, slots: make([]int64, slots), limit: limit}
	for s := 0; s < nsh; s++ {
		m.stages = append(m.stages, sim.NewStage())
		m.batches = append(m.batches, nil)
		m.recs = append(m.recs, nil)
		m.opsPos = append(m.opsPos, 0)
	}
	return m
}

func (m *toy) shardOf(slot int32) int { return int(slot) % len(m.stages) }

// ShardOf implements sim.Sharded.
func (m *toy) ShardOf(_ uint8, a, _, _ int32, _ any) int { return m.shardOf(a) }

// Act implements sim.Actor: op 0 is a tick, op 1 a one-shot poke.
func (m *toy) Act(op uint8, a, b, _ int32, _ any) {
	m.slots[a]++
	if op != 0 {
		return
	}
	sched := func(at sim.Time, op uint8, slot, gen int32) {
		if m.sharded {
			// Stage into the EXECUTING shard (slot a's), whatever shard the
			// new event will run on — the merge replays it from here.
			m.stages[m.shardOf(a)].AtAct(at, m, op, slot, gen, 0, nil)
		} else {
			m.k.AtAct(at, m, op, slot, gen, 0, nil)
		}
	}
	now := m.now()
	if now+3 <= m.limit {
		sched(now+3, 0, a, b+1)
	}
	if b%3 == 0 {
		sched(now+5, 1, (a+1)%int32(len(m.slots)), 0)
	}
}

// now reads the kernel clock: pinned by DrainCycle for the whole cycle,
// it is safe to read from parallel shards (the same contract the network
// model relies on).
func (m *toy) now() sim.Time { return m.k.Now() }

func (m *toy) NumShards() int { return len(m.stages) }
func (m *toy) EnterSharded()  { m.sharded = true }
func (m *toy) ExitSharded()   { m.sharded = false }

func (m *toy) PartitionCycle(batch []*sim.Event) bool {
	for _, e := range batch {
		s, ok := e.Shard()
		if !ok {
			for i := range m.batches {
				m.batches[i] = m.batches[i][:0]
			}
			return false
		}
		m.batches[s] = append(m.batches[s], e)
	}
	return true
}

func (m *toy) BatchLen(s int) int { return len(m.batches[s]) }

func (m *toy) RunShard(s int) {
	st := m.stages[s]
	st.StartCycle(m.k.Now())
	for _, e := range m.batches[s] {
		if e.Dead() {
			m.recs[s] = append(m.recs[s], toyRec{at: e.At(), seq: e.Seq(), dead: true})
			st.Recycle(e)
			continue
		}
		at, seq := e.At(), e.Seq()
		st.Exec(e)
		m.recs[s] = append(m.recs[s], toyRec{at: at, seq: seq, opsEnd: st.StagedLen()})
	}
	m.batches[s] = m.batches[s][:0]
}

func (m *toy) MergeCycle() {
	var live uint64
	for {
		pick := -1
		for s := range m.recs {
			if len(m.recs[s]) == 0 {
				continue
			}
			if pick < 0 || m.recs[s][0].seq < m.recs[pick][0].seq {
				pick = s
			}
		}
		if pick < 0 {
			break
		}
		rec := m.recs[pick][0]
		m.recs[pick] = m.recs[pick][1:]
		if rec.dead {
			continue
		}
		live++
		if tr := m.k.TraceExec; tr != nil {
			tr(rec.at, rec.seq)
		}
		m.stages[pick].ReplayOps(m.k, m.opsPos[pick], rec.opsEnd)
		m.opsPos[pick] = rec.opsEnd
	}
	m.k.AddExecuted(live)
	for s := range m.stages {
		m.stages[s].ResetOps()
		m.recs[s] = m.recs[s][:0]
		m.opsPos[s] = 0
	}
}

// trace captures the executed (time, seq) stream of a kernel.
func trace(k *sim.Kernel) *[][2]uint64 {
	var tr [][2]uint64
	k.TraceExec = func(at sim.Time, seq uint64) { tr = append(tr, [2]uint64{uint64(at), seq}) }
	return &tr
}

// seedToy schedules the initial ticks: one per slot at staggered times.
func seedToy(k *sim.Kernel, m *toy) {
	for i := range m.slots {
		k.AtAct(sim.Time(1+i%4), m, 0, int32(i), 0, 0, nil)
	}
}

func runPair(t *testing.T, nsh, slots int, limit, until sim.Time, mutate func(serial, sharded *sim.Kernel, sm, xm *toy)) {
	t.Helper()
	sk := sim.NewKernel()
	sm := newToy(sk, nsh, slots, limit)
	seedToy(sk, sm)
	xk := sim.NewKernel()
	xm := newToy(xk, nsh, slots, limit)
	seedToy(xk, xm)
	if mutate != nil {
		mutate(sk, xk, sm, xm)
	}
	str, xtr := trace(sk), trace(xk)

	sk.Run(until)
	if _, err := New(xk, xm).RunCtx(context.Background(), until); err != nil {
		t.Fatal(err)
	}

	if len(*str) != len(*xtr) {
		t.Fatalf("executor ran %d events, serial %d", len(*xtr), len(*str))
	}
	for i := range *str {
		if (*str)[i] != (*xtr)[i] {
			t.Fatalf("event %d diverged: executor (t=%d seq=%d), serial (t=%d seq=%d)",
				i, (*xtr)[i][0], (*xtr)[i][1], (*str)[i][0], (*str)[i][1])
		}
	}
	for i := range sm.slots {
		if sm.slots[i] != xm.slots[i] {
			t.Fatalf("slot %d: executor %d, serial %d", i, xm.slots[i], sm.slots[i])
		}
	}
	if sk.Now() != xk.Now() || sk.Executed() != xk.Executed() {
		t.Fatalf("end state: executor (now=%d exec=%d), serial (now=%d exec=%d)",
			xk.Now(), xk.Executed(), sk.Now(), sk.Executed())
	}
}

func TestExecutorMatchesSerial(t *testing.T) {
	for _, nsh := range []int{1, 2, 3, 4} {
		runPair(t, nsh, 8, 400, 0, nil)
	}
}

// TestExecutorUntilBoundary: stopping at an until that falls between,
// on, and just before event times matches Kernel.Run's boundary behavior
// (including the clock assignment to until).
func TestExecutorUntilBoundary(t *testing.T) {
	for _, until := range []sim.Time{1, 2, 7, 100, 101, 399, 400, 1000} {
		runPair(t, 3, 8, 400, until, nil)
	}
}

// TestExecutorDeadTailOvershoot: when the boundary cycle's seq-tail is
// dead and the next live event lies beyond until, serial Run executes
// that one extra event before stopping; the executor must reproduce it.
func TestExecutorDeadTailOvershoot(t *testing.T) {
	mutate := func(sk, xk *sim.Kernel, sm, xm *toy) {
		// A lone dead event at the boundary cycle, nothing else there: the
		// pop-until-live chain skips past it into the next cycle.
		sk.Cancel(sk.AtAct(50, sm, 1, 0, 0, 0, nil))
		xk.Cancel(xk.AtAct(50, xm, 1, 0, 0, 0, nil))
	}
	runPair(t, 2, 4, 400, 50, mutate)
}

// TestExecutorClosureFallback: closure events carry no shard, forcing
// their whole cycle through the serial fallback; execution stays
// bit-identical including events the closure schedules for its own cycle.
func TestExecutorClosureFallback(t *testing.T) {
	mutate := func(sk, xk *sim.Kernel, sm, xm *toy) {
		for _, pair := range []struct {
			k *sim.Kernel
			m *toy
		}{{sk, sm}, {xk, xm}} {
			k, m := pair.k, pair.m
			k.At(20, func() {
				m.slots[0] += 100
				// Same-cycle schedule from inside the fallback: must land
				// after the current batch, exactly as the serial pop loop
				// orders it.
				k.AtAct(20, m, 1, 1, 0, 0, nil)
			})
		}
	}
	runPair(t, 3, 6, 400, 0, mutate)
}

// TestExecutorEmptyAndHalt: an empty calendar returns immediately; a
// mid-run Halt is observed at the next cycle boundary (the documented
// sharded-mode contract), stopping with later events still queued; and a
// fresh RunCtx clears the flag and resumes, exactly as Kernel.Run does.
func TestExecutorEmptyAndHalt(t *testing.T) {
	k := sim.NewKernel()
	m := newToy(k, 2, 4, 100)
	x := New(k, m)
	if now, err := x.RunCtx(context.Background(), 0); err != nil || now != 0 {
		t.Fatalf("empty run = (%d, %v), want (0, nil)", now, err)
	}
	seedToy(k, m)
	k.At(10, func() { k.Halt() })
	if _, err := x.RunCtx(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if !k.Halted() {
		t.Fatal("halt flag not observed")
	}
	if k.Now() > 10 {
		t.Fatalf("executor ran past the halting cycle: now=%d", k.Now())
	}
	if _, ok := k.PeekTime(); !ok {
		t.Fatal("halted run drained the calendar; later events must stay queued")
	}
	// Resuming clears the flag (as Kernel.Run does) and drains the rest.
	if _, err := x.RunCtx(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.PeekTime(); ok {
		t.Fatal("resumed run left events queued")
	}
}

// TestExecutorContextCancel: cancellation stops the run with ctx.Err()
// after a strict prefix of the serial schedule.
func TestExecutorContextCancel(t *testing.T) {
	k := sim.NewKernel()
	m := newToy(k, 2, 4, 100000)
	seedToy(k, m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(k, m).RunCtx(ctx, 0); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}
