package sim

// Allocation regression tests for the kernel hot path. The calendar-queue
// rewrite exists to make steady-state scheduling free of per-event heap
// work; these tests pin that property so it cannot silently rot. They use
// testing.AllocsPerRun, which reports the average over many runs, and
// demand exactly zero.

import "testing"

// countActor is a minimal sim.Actor that records its invocations.
type countActor struct {
	n    int
	last [3]int32
	op   uint8
	p    any
}

func (a *countActor) Act(op uint8, x, y, z int32, p any) {
	a.n++
	a.op = op
	a.last = [3]int32{x, y, z}
	a.p = p
}

// warmKernel cycles enough typed events through k to warm every ring
// bucket and stock the event free list, so subsequent scheduling exercises
// only the steady-state path.
func warmKernel(k *Kernel, act Actor) {
	for i := 0; i < 4*ringSize; i++ {
		k.AtAct(k.Now()+Time(i%7)+1, act, 0, 0, 0, 0, nil)
	}
	k.Run(0)
}

// TestTypedScheduleDispatchZeroAlloc: one AtAct plus its dispatch allocates
// nothing once the pool and ring are warm — the invariant that makes the
// router pipeline's per-flit events free.
func TestTypedScheduleDispatchZeroAlloc(t *testing.T) {
	k := NewKernel()
	act := &countActor{}
	warmKernel(k, act)
	allocs := testing.AllocsPerRun(2000, func() {
		k.AtAct(k.Now()+1, act, 3, 7, -1, 9, nil)
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("typed schedule+dispatch allocated %.1f objects/op, want 0", allocs)
	}
}

// TestClosureScheduleDispatchZeroAlloc: scheduling a pre-existing closure
// is also allocation-free; only constructing a fresh capturing closure
// costs, which is why the hot path moved to typed events.
func TestClosureScheduleDispatchZeroAlloc(t *testing.T) {
	k := NewKernel()
	n := 0
	fn := func() { n++ }
	for i := 0; i < 4*ringSize; i++ {
		k.At(k.Now()+Time(i%7)+1, fn)
	}
	k.Run(0)
	allocs := testing.AllocsPerRun(2000, func() {
		k.At(k.Now()+1, fn)
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("closure schedule+dispatch allocated %.1f objects/op, want 0", allocs)
	}
}

// TestReserveColdScheduleZeroAlloc: a kernel pre-sized with Reserve
// schedules and dispatches without any warm-up traffic — the build-time
// path the network model uses so a sweep point's first cycles don't pay
// pool-growth allocations.
func TestReserveColdScheduleZeroAlloc(t *testing.T) {
	k := NewKernel()
	act := &countActor{}
	k.Reserve(1024, 8)
	allocs := testing.AllocsPerRun(2000, func() {
		k.AtAct(k.Now()+1, act, 0, 0, 0, 0, nil)
		k.AtAct(k.Now()+3, act, 0, 0, 0, 0, nil)
		k.Step()
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("reserved kernel schedule+dispatch allocated %.1f objects/op, want 0", allocs)
	}
}

// TestReservePreservesPendingOrder: Reserve re-slabs buckets that already
// hold events; their FIFO order must survive the copy.
func TestReservePreservesPendingOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 40; i++ {
		i := i
		k.At(Time(1+i%5), func() { got = append(got, i) })
	}
	k.Reserve(512, 16)
	k.Run(0)
	if len(got) != 40 {
		t.Fatalf("executed %d events, want 40", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		// Same-time events (equal i%5) must keep schedule order.
		if a%5 == b%5 && a > b {
			t.Fatalf("FIFO violated after Reserve: %d before %d", a, b)
		}
	}
}

// TestTypedEventDelivery: AtAct passes the op code, arguments, and payload
// through to the actor unchanged, at the scheduled time.
func TestTypedEventDelivery(t *testing.T) {
	k := NewKernel()
	act := &countActor{}
	payload := &struct{ v int }{v: 42}
	k.AtAct(5, act, 9, 1, -2, 3, payload)
	k.Run(0)
	if act.n != 1 || act.op != 9 || act.last != [3]int32{1, -2, 3} || act.p != payload {
		t.Fatalf("typed event delivered wrong values: n=%d op=%d args=%v p=%v",
			act.n, act.op, act.last, act.p)
	}
	if k.Now() != 5 {
		t.Fatalf("Now() = %d, want 5", k.Now())
	}
}

// TestTypedEventCancel: typed events honour Cancel like closures do.
func TestTypedEventCancel(t *testing.T) {
	k := NewKernel()
	act := &countActor{}
	e := k.AfterAct(10, act, 0, 0, 0, 0, nil)
	k.Cancel(e)
	k.Run(0)
	if act.n != 0 {
		t.Fatal("cancelled typed event ran")
	}
}

// TestFIFOAcrossTiers: events landing in the far-future heap and then
// migrating into the calendar window keep FIFO order among equal
// timestamps relative to events scheduled directly into the window.
func TestFIFOAcrossTiers(t *testing.T) {
	k := NewKernel()
	var got []int
	const at = ringSize + 500 // beyond the initial window: lands in the far heap
	for i := 0; i < 50; i++ {
		i := i
		k.At(at, func() { got = append(got, i) })
	}
	// Drag the window forward so the far events migrate, then add more at
	// the same timestamp directly into the ring.
	k.At(at-100, func() {
		for i := 50; i < 100; i++ {
			i := i
			k.At(at, func() { got = append(got, i) })
		}
	})
	k.Run(0)
	if len(got) != 100 {
		t.Fatalf("executed %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("cross-tier FIFO violated at %d: got %v", i, got[:i+1])
		}
	}
}
