// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a time-ordered queue of events. Events scheduled for
// the same time execute in the order they were scheduled (FIFO within a
// timestamp), which makes simulations fully deterministic for a fixed seed:
// two kernels fed the same schedule execute the same events in the same
// order, regardless of wall-clock timing, host, or how Run is chunked.
// This determinism is what lets the parallel sweep harness
// (internal/harness) promise results bit-identical to serial runs — each
// simulation instance owns one kernel, and nothing outside the instance
// can perturb its event order.
//
// # Queue structure
//
// The queue is a two-tier calendar: a ring of ringSize per-cycle FIFO
// buckets covering the near-future window [winStart, winStart+ringSize),
// plus a binary heap for the far future. The network model schedules
// almost exclusively a few cycles ahead (flit serialization, channel
// latency, credit return), so the common case is an O(1) bucket append
// and an O(1) bucket pop; the heap only sees long-delay events (reroute
// timers at low load, drain horizons, idle-source injection gaps). The
// (time, seq) FIFO contract is preserved exactly: a bucket receives its
// heap refugees the moment its cycle enters the window — strictly before
// any direct append for that cycle can occur, and in (time, seq) heap
// order — so every bucket is sequence-sorted by construction. The golden-
// trace test (repo root) pins this equivalence against the historical
// single-heap kernel.
//
// # Event representation
//
// Events carry either a closure (At/After) or a pre-bound typed callback
// (AtAct/AfterAct): an Actor receiver plus a small fixed argument set.
// The typed form exists for the simulator hot path — router arrivals,
// arbitration attempts, credit returns, injections — where per-event
// closures were the dominant allocation source. Event structs themselves
// are pooled; the steady-state schedule/dispatch path allocates nothing
// (asserted by internal/perf's zero-alloc regression tests).
//
// Cancellation: RunCtx is Run with a cooperative context check every few
// thousand events. Cancelling never reorders events — an interrupted run
// has executed a strict prefix of the serial schedule — so a job aborted
// by the harness's early-stop logic can simply be discarded.
//
// Time is measured in cycles; the network model defines 1 cycle = 1 ns.
package sim

import (
	"context"
)

// Time is the simulation clock value in cycles (1 cycle = 1 ns in the
// network model built on top of this kernel).
type Time int64

// Actor handles typed events. The kernel invokes Act with the op code and
// arguments given to AtAct; their meaning is entirely the actor's. Using a
// pointer-typed Actor and a pointer payload keeps scheduling allocation-
// free (storing pointers in interfaces does not heap-allocate).
type Actor interface {
	Act(op uint8, a, b, c int32, p any)
}

// Event is a unit of scheduled work.
type Event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal timestamps

	// Exactly one of fn (closure form) or act (typed form) is set.
	fn      func()
	act     Actor
	p       any
	a, b, c int32
	op      uint8

	dead   bool // cancelled; skipped and recycled at pop time
	queued bool // allocated and not yet executed/recycled: still cancellable
	done   bool // staged event already executed inside its window (see stage.go)
}

const (
	// ringBits sizes the near-future window. 1024 cycles covers every
	// fixed delay in the network model (crossbar 50, channels 5/50,
	// packets up to 16 flits, reroute interval 100, drain steps 2000 are
	// split by until-boundaries) while keeping the per-kernel footprint
	// at a few tens of kilobytes.
	ringBits = 10
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
)

// bucket is one calendar cell: the FIFO of events for a single cycle.
type bucket struct {
	q    []*Event
	head int
}

// Kernel is a discrete-event simulator. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now   Time
	seq   uint64
	nexec uint64
	npend int

	// Near-future calendar ring: cycle t lives in ring[t&ringMask],
	// valid for t in [winStart, winStart+ringSize).
	ring     []bucket
	winStart Time
	//hxlint:state ephemeral — derived ring-occupancy count; restore rebuilds it by re-enqueueing every captured event
	nring int

	// Far-future overflow, ordered by (at, seq).
	far farHeap

	// late holds events scheduled behind winStart. Reachable only after
	// Run's until-boundary has rewound the clock below an already-executed
	// event (a quirk preserved from the original single-heap kernel);
	// practically always empty.
	late []*Event

	//hxlint:state ephemeral — capacity detail, never serialized; the pool refills lazily after restore (see docs/STATE.md)
	free []*Event // recycled events: zero steady-state allocation

	//hxlint:state ephemeral — run-loop latch consumed before Run returns; restore only clears it
	halted bool // set by Halt; Run returns at the next event boundary

	// TraceExec, when non-nil, observes every executed (live) event as
	// (time, seq) immediately before its callback runs. It exists for the
	// golden-trace regression test, which folds the exact execution order
	// into a pinned hash; production runs leave it nil.
	//hxlint:state ephemeral — observer hook, rebound by the caller after restore if wanted
	TraceExec func(at Time, seq uint64)
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{ring: make([]bucket, ringSize)}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Executed returns the total number of events executed so far. Useful for
// progress assertions in deadlock tests.
func (k *Kernel) Executed() uint64 { return k.nexec }

// Pending returns the number of events currently queued (cancelled events
// count until they are popped and recycled).
func (k *Kernel) Pending() int { return k.npend }

// eventChunk is how many Event structs one pool refill allocates. Growing
// the pool a chunk at a time turns the warm-up phase's per-event heap
// allocations into one slab per 256 events; the steady state never
// refills at all.
const eventChunk = 256

// refill stocks the free list with a fresh chunk of events.
func (k *Kernel) refill() {
	//hxlint:allow allocfree — chunked pool refill: one slab per eventChunk events, amortizing to zero once the pool reaches its high-water mark
	chunk := make([]Event, eventChunk)
	for i := range chunk {
		//hxlint:allow allocfree — the free list grows once, to the refill slab's size, then recycles in place
		k.free = append(k.free, &chunk[i])
	}
}

// Reserve pre-sizes the kernel's pools for a model of known scale:
// nEvents pooled Event structs and perBucket slots of calendar-bucket
// capacity, each backed by a single slab instead of incremental append
// growth. Purely a capacity hint — event order is unaffected — so models
// call it once at build time with their high-water estimate; the pools
// still grow on demand if the estimate is low.
func (k *Kernel) Reserve(nEvents, perBucket int) {
	if n := nEvents - len(k.free); n > 0 {
		//hxlint:allow allocfree — Reserve is the explicit build-time pre-sizing hook; models call it before steady state
		chunk := make([]Event, n)
		for i := range chunk {
			//hxlint:allow allocfree — build-time stocking of the free list, see above
			k.free = append(k.free, &chunk[i])
		}
	}
	if perBucket <= 0 {
		return
	}
	//hxlint:allow allocfree — build-time bucket slab, carved up below; this is what makes enqueue growth-free afterwards
	slab := make([]*Event, ringSize*perBucket)
	for i := range k.ring {
		b := &k.ring[i]
		pending := len(b.q) - b.head
		if cap(b.q) >= perBucket || pending > perBucket {
			continue
		}
		q := slab[i*perBucket : i*perBucket+pending : (i+1)*perBucket]
		copy(q, b.q[b.head:])
		b.q = q
		b.head = 0
	}
}

// alloc takes an event from the pool and stamps its (time, seq).
func (k *Kernel) alloc(t Time) *Event {
	if t < k.now {
		panic("sim: event scheduled in the past")
	}
	n := len(k.free)
	if n == 0 {
		k.refill()
		n = len(k.free)
	}
	e := k.free[n-1]
	k.free = k.free[:n-1]
	e.at = t
	e.seq = k.seq
	e.dead = false
	e.queued = true
	e.done = false
	k.seq++
	k.npend++
	return e
}

// enqueue places an allocated event into the tier its time belongs to.
func (k *Kernel) enqueue(e *Event) {
	switch {
	case e.at >= k.winStart+ringSize:
		k.far.push(e)
	case e.at >= k.winStart:
		b := &k.ring[int(e.at)&ringMask]
		//hxlint:allow allocfree — bucket capacity grows to the model's high-water occupancy and is then reused forever; Reserve pre-sizes it for spiky schedules
		b.q = append(b.q, e)
		k.nring++
	default:
		//hxlint:allow allocfree — the late list is practically always empty; only the pathological behind-window path ever grows it
		k.late = append(k.late, e)
	}
}

// recycle returns a popped event to the pool, dropping its references.
// Clearing queued here — not at pop time — keeps drained-but-unexecuted
// events cancellable: the sharded executor pops a whole cycle up front,
// and a same-cycle cancel from an earlier-seq event must still land
// (serially the target would still be in the calendar at that point).
func (k *Kernel) recycle(e *Event) {
	e.queued = false
	e.done = false
	e.fn = nil
	e.act = nil
	e.p = nil
	//hxlint:allow allocfree — returns capacity the pool already handed out; never exceeds the refill high-water mark
	k.free = append(k.free, e)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug. The returned handle may be passed to
// Cancel.
func (k *Kernel) At(t Time, fn func()) *Event {
	e := k.alloc(t)
	e.fn = fn
	k.enqueue(e)
	return e
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) *Event {
	return k.At(k.now+d, fn)
}

// AtAct schedules a typed event: at time t the kernel calls
// act.Act(op, a, b, c, p). Equivalent to At with a closure over the same
// values, but allocation-free — the hot-path form for the network model.
func (k *Kernel) AtAct(t Time, act Actor, op uint8, a, b, c int32, p any) *Event {
	e := k.alloc(t)
	e.act = act
	e.op = op
	e.a, e.b, e.c = a, b, c
	e.p = p
	k.enqueue(e)
	return e
}

// AfterAct schedules a typed event d cycles from now.
func (k *Kernel) AfterAct(d Time, act Actor, op uint8, a, b, c int32, p any) *Event {
	return k.AtAct(k.now+d, act, op, a, b, c, p)
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// has already run or was already cancelled is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.dead || !e.queued {
		return
	}
	e.dead = true
}

// Halt requests that Run return before executing the next event.
func (k *Kernel) Halt() { k.halted = true }

// Halted reports whether Halt has been called during the current (or most
// recent) Run; starting a new Run clears it.
func (k *Kernel) Halted() bool { return k.halted }

// advanceWindow slides the calendar window forward so it starts at `to`,
// migrating far-heap events that the move brings inside the window into
// their buckets. Migration happens exactly when a cycle enters the window
// — before any direct append for that cycle is possible — and the heap
// yields equal-time events in seq order, so bucket FIFO order remains
// globally correct. Calls with to <= winStart are no-ops: the window never
// moves backward.
func (k *Kernel) advanceWindow(to Time) {
	if to <= k.winStart {
		return
	}
	k.winStart = to
	horizon := to + ringSize
	for len(k.far.h) > 0 && k.far.h[0].at < horizon {
		e := k.far.pop()
		b := &k.ring[int(e.at)&ringMask]
		//hxlint:allow allocfree — far-heap migration lands inside the bucket's retained high-water capacity
		b.q = append(b.q, e)
		k.nring++
	}
}

// peek returns the earliest queued event (live or cancelled) without
// removing it, or nil when the queue is empty. As a side effect it slides
// the window up to the event's bucket, so the subsequent pop is O(1).
func (k *Kernel) peek() *Event {
	if len(k.late) > 0 {
		return k.peekLate()
	}
	if k.nring == 0 {
		if len(k.far.h) == 0 {
			return nil
		}
		// Ring drained: jump the window to the far heap's minimum.
		k.advanceWindow(k.far.h[0].at)
	}
	for s := k.winStart; ; s++ {
		b := &k.ring[int(s)&ringMask]
		if b.head < len(b.q) {
			k.advanceWindow(s)
			return b.q[b.head]
		}
		if len(b.q) > 0 {
			b.q = b.q[:0]
			b.head = 0
		}
	}
}

// peekLate returns the (time, seq)-minimal late event; the late list is
// tiny (practically always empty), so a linear scan is fine.
func (k *Kernel) peekLate() *Event {
	best := k.late[0]
	for _, e := range k.late[1:] {
		if e.at < best.at || (e.at == best.at && e.seq < best.seq) {
			best = e
		}
	}
	return best
}

// popPeeked removes e, which must be the event peek just returned: the
// (time, seq)-minimal queued event, already windowed into its bucket.
// Splitting peek from removal lets Run inspect the head against its until-
// boundary and then remove it without a second calendar scan.
func (k *Kernel) popPeeked(e *Event) {
	if len(k.late) > 0 {
		for i, x := range k.late {
			if x == e {
				k.late = append(k.late[:i], k.late[i+1:]...)
				break
			}
		}
	} else {
		b := &k.ring[int(e.at)&ringMask]
		b.q[b.head] = nil
		b.head++
		if b.head == len(b.q) {
			b.q = b.q[:0]
			b.head = 0
		}
		k.nring--
	}
	k.npend--
}

// pop removes and returns the earliest queued event, or nil when empty.
func (k *Kernel) pop() *Event {
	e := k.peek()
	if e == nil {
		return nil
	}
	k.popPeeked(e)
	return e
}

// exec advances the clock to e and runs its callback, recycling e first so
// the callback can immediately reschedule from a warm pool.
func (k *Kernel) exec(e *Event) {
	k.now = e.at
	k.nexec++
	if k.TraceExec != nil {
		k.TraceExec(e.at, e.seq)
	}
	if fn := e.fn; fn != nil {
		k.recycle(e)
		fn()
	} else {
		act, op, a, b, c, p := e.act, e.op, e.a, e.b, e.c, e.p
		k.recycle(e)
		act.Act(op, a, b, c, p)
	}
}

// Step executes the next pending event. It returns false when the queue is
// empty.
func (k *Kernel) Step() bool {
	for {
		e := k.pop()
		if e == nil {
			return false
		}
		if e.dead {
			k.recycle(e)
			continue
		}
		k.exec(e)
		return true
	}
}

// Run executes events until the queue is empty, the clock passes until
// (when until > 0), or Halt is called. It returns the time of the last
// executed event. The halt flag is checked at the event boundary: an event
// that calls Halt is the last event to execute.
func (k *Kernel) Run(until Time) Time {
	k.halted = false
	for !k.halted {
		e := k.peek()
		if e == nil {
			break
		}
		if until > 0 && e.at > until {
			k.now = until
			break
		}
		// Pop until a live event executes. Dead events skip straight to the
		// next one without rechecking the until-boundary — the historical
		// Step-loop behaviour the golden trace pins.
		for {
			k.popPeeked(e)
			if !e.dead {
				k.exec(e)
				break
			}
			k.recycle(e)
			if e = k.peek(); e == nil {
				return k.now
			}
		}
	}
	return k.now
}

// pollEvery is how many events RunCtx executes between context checks:
// frequent enough that a cancelled sweep job stops within microseconds,
// rare enough that the check never shows up in profiles.
const pollEvery = 8192

// RunCtx is Run with cooperative cancellation: every pollEvery executed
// events it checks ctx and, when cancelled, returns ctx.Err() with the
// clock at the last executed event. The event sequence of an uncancelled
// RunCtx is identical to Run's — the poll only adds an exit point, never
// reorders work — so callers may freely mix the two.
func (k *Kernel) RunCtx(ctx context.Context, until Time) (Time, error) {
	k.halted = false
	n := 0
	for !k.halted {
		if n++; n >= pollEvery {
			n = 0
			//hxlint:allow noconc — cooperative cancellation poll, the kernel's one sanctioned channel op: it only adds an exit point, so an interrupted run executes a strict prefix of the serial schedule and event order never depends on the scheduler
			select {
			case <-ctx.Done():
				return k.now, ctx.Err()
			default:
			}
		}
		e := k.peek()
		if e == nil {
			break
		}
		if until > 0 && e.at > until {
			k.now = until
			break
		}
		// Mirror Run's pop-until-live loop (see there for why dead events
		// skip the until recheck).
		for {
			k.popPeeked(e)
			if !e.dead {
				k.exec(e)
				break
			}
			k.recycle(e)
			if e = k.peek(); e == nil {
				return k.now, nil
			}
		}
	}
	return k.now, nil
}

// farHeap is a hand-rolled binary min-heap over (at, seq) for events
// beyond the calendar window. Hand-rolled rather than container/heap to
// keep pops free of interface dispatch.
type farHeap struct {
	h []*Event
}

func (f *farHeap) less(i, j int) bool {
	a, b := f.h[i], f.h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (f *farHeap) push(e *Event) {
	//hxlint:allow allocfree — the far heap holds the rare beyond-window tail and keeps its high-water capacity across pushes
	f.h = append(f.h, e)
	i := len(f.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !f.less(i, parent) {
			break
		}
		f.h[i], f.h[parent] = f.h[parent], f.h[i]
		i = parent
	}
}

func (f *farHeap) pop() *Event {
	h := f.h
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	f.h = h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && f.less(l, small) {
			small = l
		}
		if r < n && f.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		f.h[i], f.h[small] = f.h[small], f.h[i]
		i = small
	}
	return e
}
