// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a time-ordered queue of events. Events scheduled for
// the same time execute in the order they were scheduled (FIFO within a
// timestamp), which makes simulations fully deterministic for a fixed seed:
// two kernels fed the same schedule execute the same events in the same
// order, regardless of wall-clock timing, host, or how Run is chunked.
// This determinism is what lets the parallel sweep harness
// (internal/harness) promise results bit-identical to serial runs — each
// simulation instance owns one kernel, and nothing outside the instance
// can perturb its event order.
//
// Cancellation: RunCtx is Run with a cooperative context check every few
// thousand events. Cancelling never reorders events — an interrupted run
// has executed a strict prefix of the serial schedule — so a job aborted
// by the harness's early-stop logic can simply be discarded.
//
// Time is measured in cycles; the network model defines 1 cycle = 1 ns.
package sim

import (
	"container/heap"
	"context"
)

// Time is the simulation clock value in cycles (1 cycle = 1 ns in the
// network model built on top of this kernel).
type Time int64

// Event is a unit of scheduled work.
type Event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	fn   func()
	idx  int // heap index, -1 when not queued
	dead bool
}

// Kernel is a discrete-event simulator. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nexec  uint64
	free   []*Event // recycled events to reduce allocation churn
	Halted bool     // set by Halt; Run returns at the next event boundary
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Executed returns the total number of events executed so far. Useful for
// progress assertions in deadlock tests.
func (k *Kernel) Executed() uint64 { return k.nexec }

// Pending returns the number of events currently queued.
func (k *Kernel) Pending() int { return k.queue.Len() }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug. The returned handle may be passed to
// Cancel.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic("sim: event scheduled in the past")
	}
	var e *Event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at = t
	e.seq = k.seq
	e.fn = fn
	e.dead = false
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) *Event {
	return k.At(k.now+d, fn)
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// has already run or was already cancelled is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.dead || e.idx < 0 {
		return
	}
	e.dead = true
}

// Halt requests that Run return before executing the next event.
func (k *Kernel) Halt() { k.Halted = true }

// Step executes the next pending event. It returns false when the queue is
// empty.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.dead {
			e.fn = nil
			k.free = append(k.free, e)
			continue
		}
		k.now = e.at
		fn := e.fn
		e.fn = nil
		k.free = append(k.free, e)
		k.nexec++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty, the clock passes until
// (when until > 0), or Halt is called. It returns the time of the last
// executed event.
func (k *Kernel) Run(until Time) Time {
	k.Halted = false
	for !k.Halted {
		if until > 0 && k.queue.Len() > 0 && k.queue[0].at > until {
			k.now = until
			break
		}
		if !k.Step() {
			break
		}
	}
	return k.now
}

// pollEvery is how many events RunCtx executes between context checks:
// frequent enough that a cancelled sweep job stops within microseconds,
// rare enough that the check never shows up in profiles.
const pollEvery = 8192

// RunCtx is Run with cooperative cancellation: every pollEvery executed
// events it checks ctx and, when cancelled, returns ctx.Err() with the
// clock at the last executed event. The event sequence of an uncancelled
// RunCtx is identical to Run's — the poll only adds an exit point, never
// reorders work — so callers may freely mix the two.
func (k *Kernel) RunCtx(ctx context.Context, until Time) (Time, error) {
	k.Halted = false
	n := 0
	for !k.Halted {
		if n++; n >= pollEvery {
			n = 0
			//hxlint:allow noconc — cooperative cancellation poll, the kernel's one sanctioned channel op: it only adds an exit point, so an interrupted run executes a strict prefix of the serial schedule and event order never depends on the scheduler
			select {
			case <-ctx.Done():
				return k.now, ctx.Err()
			default:
			}
		}
		if until > 0 && k.queue.Len() > 0 && k.queue[0].at > until {
			k.now = until
			break
		}
		if !k.Step() {
			break
		}
	}
	return k.now, nil
}

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}
