package sim

import (
	"context"
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", k.Now())
	}
}

// TestKernelFIFOWithinTimestamp: events at the same time run in schedule
// order (determinism requirement).
func TestKernelFIFOWithinTimestamp(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events reordered: %v at %d", v, i)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 10 {
			k.After(7, step)
		}
	}
	k.At(0, step)
	k.Run(0)
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if k.Now() != 63 {
		t.Fatalf("Now() = %d, want 63", k.Now())
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	e := k.At(10, func() { ran = true })
	k.Cancel(e)
	k.Run(0)
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double-cancel and cancel-after-run are no-ops.
	k.Cancel(e)
	e2 := k.At(20, func() {})
	k.Run(0)
	k.Cancel(e2)
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run(10)
	if len(got) != 1 || k.Now() != 10 {
		t.Fatalf("after Run(10): got=%v now=%d", got, k.Now())
	}
	k.Run(0)
	if len(got) != 3 {
		t.Fatalf("remaining events not run: %v", got)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {})
	k.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(5, func() {})
}

func TestKernelHalt(t *testing.T) {
	k := NewKernel()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n == 5 {
			k.Halt()
		}
		k.After(1, reschedule)
	}
	k.At(0, reschedule)
	k.Run(0)
	if n != 5 {
		t.Fatalf("halted after %d events, want 5", n)
	}
}

// TestKernelHaltInsideEvent: Halt called during an event stops the run
// before ANY further event executes — including one already queued at the
// same timestamp — and leaves the remainder runnable.
func TestKernelHaltInsideEvent(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(10, func() { got = append(got, 1); k.Halt() })
	k.At(10, func() { got = append(got, 2) })
	k.At(20, func() { got = append(got, 3) })
	k.Run(0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("events after Halt ran in the same Run: %v", got)
	}
	if !k.Halted() {
		t.Fatal("Halted() = false immediately after a halted Run")
	}
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	// A fresh Run clears the flag and executes the remainder in order.
	k.Run(0)
	if k.Halted() {
		t.Fatal("Halted() still true after an unhalted Run")
	}
	if len(got) != 3 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("remainder ran out of order: %v", got)
	}
}

// TestKernelHeapProperty: random schedules always execute in
// nondecreasing time order.
func TestKernelHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		k := NewKernel()
		var seen []Time
		for _, at := range times {
			at := Time(at)
			k.At(at, func() { seen = append(seen, at) })
		}
		k.Run(0)
		if len(seen) != len(times) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRunCtxMatchesRun: an uncancelled RunCtx executes exactly the same
// schedule as Run, including the until-boundary clock behaviour.
func TestRunCtxMatchesRun(t *testing.T) {
	build := func() (*Kernel, *[]Time) {
		k := NewKernel()
		var got []Time
		for _, at := range []Time{5, 15, 25, 25, 40} {
			at := at
			k.At(at, func() { got = append(got, at) })
		}
		return k, &got
	}
	ka, seenA := build()
	kb, seenB := build()
	ka.Run(20)
	ka.Run(0)
	if now, err := kb.RunCtx(context.Background(), 20); err != nil || now != 20 {
		t.Fatalf("RunCtx(20) = %d, %v", now, err)
	}
	if _, err := kb.RunCtx(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if len(*seenA) != len(*seenB) || ka.Now() != kb.Now() || ka.Executed() != kb.Executed() {
		t.Fatalf("RunCtx diverged from Run: %v vs %v", *seenA, *seenB)
	}
	for i := range *seenA {
		if (*seenA)[i] != (*seenB)[i] {
			t.Fatalf("event order diverged at %d: %v vs %v", i, *seenA, *seenB)
		}
	}
}

// TestRunCtxCancel: a cancelled context stops the run within the poll
// interval and reports ctx.Err; the executed prefix is a prefix of the
// serial schedule.
func TestRunCtxCancel(t *testing.T) {
	k := NewKernel()
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n == 3*pollEvery {
			cancel()
		}
		k.After(1, reschedule)
	}
	k.At(0, reschedule)
	if _, err := k.RunCtx(ctx, 0); err != context.Canceled {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
	if n < 3*pollEvery || n > 4*pollEvery {
		t.Fatalf("stopped after %d events, want within one poll interval of %d", n, 3*pollEvery)
	}
}

func TestKernelExecutedAndPending(t *testing.T) {
	k := NewKernel()
	k.At(1, func() {})
	k.At(2, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d", k.Pending())
	}
	k.Run(0)
	if k.Executed() != 2 || k.Pending() != 0 {
		t.Fatalf("executed=%d pending=%d", k.Executed(), k.Pending())
	}
}
