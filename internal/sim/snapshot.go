package sim

import (
	"fmt"
	"sort"
)

// This file implements the kernel half of the warm-state snapshot
// contract (docs/STATE.md): capturing the complete calendar — every live
// queued event plus the clock, sequence counter, and window position — in
// a relocatable form, and restoring it so that a resumed run executes
// exactly the event sequence an uninterrupted run would have.
//
// Events reference live model objects (an Actor receiver and an arbitrary
// payload pointer), which a snapshot cannot hold directly: the model keeps
// mutating and recycling those objects after the snapshot is taken. The
// kernel therefore delegates endpoint translation to an EventCoder owned
// by the model (internal/network), which maps actors and payloads to
// stable numeric codes on capture and back to (possibly reconstructed)
// objects on restore. Closure events (At/After) have no relocatable form
// and make Snapshot fail — the network model schedules exclusively typed
// events, so any facade-level snapshot boundary satisfies this.
//
// Cancelled (dead) events are deliberately not captured: they never
// execute, their recycling order is unobservable, and their payloads may
// already have been recycled by the model. Dropping them changes Pending()
// but no executed-event sequence — the golden-trace fork tests pin this.

// EventState is the relocatable form of one live queued event. Actor and
// Payload are model-defined codes produced by an EventCoder; the kernel
// only requires that the coder round-trips them.
type EventState struct {
	At      Time   `json:"at"`
	Seq     uint64 `json:"seq"`
	Actor   uint64 `json:"actor"`
	Payload uint64 `json:"payload"`
	Op      uint8  `json:"op"`
	A       int32  `json:"a"`
	B       int32  `json:"b"`
	C       int32  `json:"c"`
}

// KernelState is a complete, relocatable checkpoint of a kernel: restore
// it (into the same kernel or an identically built one) and the resumed
// run executes the same events in the same order, with the same sequence
// numbers, as the run the snapshot was taken from.
type KernelState struct {
	Now      Time   `json:"now"`
	WinStart Time   `json:"win_start"`
	Seq      uint64 `json:"seq"`
	Exec     uint64 `json:"exec"`

	// Events holds every live queued event in ascending (At, Seq) order —
	// the canonical order that lets Restore rebuild bucket FIFOs correctly
	// by plain re-enqueueing.
	Events []EventState `json:"events"`
}

// EventCoder translates event endpoints between live objects and the
// stable numeric codes a snapshot stores. Implementations are owned by
// the model (internal/network); codes are opaque to the kernel. Encode
// methods may assign fresh codes on the fly (e.g. registering an
// in-flight packet in the snapshot's packet table); Decode methods must
// resolve every code their Encode produced.
type EventCoder interface {
	EncodeActor(a Actor) (uint64, error)
	DecodeActor(code uint64) (Actor, error)
	// EncodePayload/DecodePayload receive the event's op so coders can
	// validate payload kinds per op; p is nil for payload-free events and
	// code 0 conventionally means "no payload".
	EncodePayload(op uint8, p any) (uint64, error)
	DecodePayload(op uint8, code uint64) (any, error)
}

// Snapshot captures the kernel's complete calendar state. The kernel is
// not modified; the model may keep running afterwards without
// invalidating the returned state. It fails if any live queued event is a
// closure (At/After) — closures are not relocatable; snapshot boundaries
// must be chosen where only typed (AtAct/AfterAct) events are pending.
func (k *Kernel) Snapshot(c EventCoder) (*KernelState, error) {
	return buildKernelState(k, c)
}

// buildKernelState does the walk and encode; allocation lives here, off
// the simulation steady-state path.
func buildKernelState(k *Kernel, c EventCoder) (*KernelState, error) {
	s := &KernelState{
		Now:      k.now,
		WinStart: k.winStart,
		Seq:      k.seq,
		Exec:     k.nexec,
	}
	live := make([]*Event, 0, k.npend)
	collect := func(e *Event) {
		if e != nil && !e.dead {
			live = append(live, e)
		}
	}
	for i := range k.ring {
		b := &k.ring[i]
		for _, e := range b.q[b.head:] {
			collect(e)
		}
	}
	for _, e := range k.far.h {
		collect(e)
	}
	for _, e := range k.late {
		collect(e)
	}
	// Canonical (At, Seq) order: Seq is unique, so the order is total and
	// re-enqueueing in it reproduces every bucket's FIFO order exactly.
	sort.Slice(live, func(i, j int) bool {
		if live[i].at != live[j].at {
			return live[i].at < live[j].at
		}
		return live[i].seq < live[j].seq
	})
	s.Events = make([]EventState, len(live))
	for i, e := range live {
		if e.fn != nil {
			return nil, fmt.Errorf("sim: snapshot: closure event at t=%d seq=%d has no relocatable form (use AtAct/AfterAct on snapshot paths)", e.at, e.seq)
		}
		actor, err := c.EncodeActor(e.act)
		if err != nil {
			return nil, fmt.Errorf("sim: snapshot event t=%d seq=%d: %w", e.at, e.seq, err)
		}
		payload, err := c.EncodePayload(e.op, e.p)
		if err != nil {
			return nil, fmt.Errorf("sim: snapshot event t=%d seq=%d: %w", e.at, e.seq, err)
		}
		s.Events[i] = EventState{
			At: e.at, Seq: e.seq,
			Actor: actor, Payload: payload,
			Op: e.op, A: e.a, B: e.b, C: e.c,
		}
	}
	return s, nil
}

// Restore rebuilds the kernel's calendar from a snapshot, discarding
// whatever is currently queued. After it returns, the kernel's clock,
// sequence counter, and pending-event population match the snapshot
// exactly, so Run continues bit-identically to the captured run. The
// optional restored callback observes every re-created event alongside
// its EventState — the model uses it to rewire cancellation handles
// (waiter re-route timers) that point at specific events.
func (k *Kernel) Restore(s *KernelState, c EventCoder, restored func(EventState, *Event)) error {
	return initFromKernelState(k, s, c, restored)
}

// initFromKernelState drains and rebuilds; allocation (pool refills) lives
// here, off the steady-state path.
func initFromKernelState(k *Kernel, s *KernelState, c EventCoder, restored func(EventState, *Event)) error {
	// Drain every queued event back to the pool. Payload objects owned by
	// the model are abandoned here; the model's own restore pass rebuilds
	// or recycles them.
	for i := range k.ring {
		b := &k.ring[i]
		for _, e := range b.q[b.head:] {
			e.queued = false
			k.recycle(e)
		}
		b.q = b.q[:0]
		b.head = 0
	}
	for _, e := range k.far.h {
		e.queued = false
		k.recycle(e)
	}
	k.far.h = k.far.h[:0]
	for _, e := range k.late {
		e.queued = false
		k.recycle(e)
	}
	k.late = k.late[:0]
	k.nring = 0
	k.npend = 0

	k.now = s.Now
	k.winStart = s.WinStart
	k.seq = s.Seq
	k.nexec = s.Exec
	k.halted = false

	var prev EventState
	for i, es := range s.Events {
		if es.At < s.Now {
			return fmt.Errorf("sim: restore: event t=%d seq=%d scheduled before snapshot clock %d", es.At, es.Seq, s.Now)
		}
		if es.Seq >= s.Seq {
			return fmt.Errorf("sim: restore: event t=%d seq=%d not below sequence counter %d", es.At, es.Seq, s.Seq)
		}
		if i > 0 && (es.At < prev.At || (es.At == prev.At && es.Seq <= prev.Seq)) {
			return fmt.Errorf("sim: restore: events not in strict (at, seq) order at index %d", i)
		}
		prev = es
		act, err := c.DecodeActor(es.Actor)
		if err != nil {
			return fmt.Errorf("sim: restore event t=%d seq=%d: %w", es.At, es.Seq, err)
		}
		p, err := c.DecodePayload(es.Op, es.Payload)
		if err != nil {
			return fmt.Errorf("sim: restore event t=%d seq=%d: %w", es.At, es.Seq, err)
		}
		n := len(k.free)
		if n == 0 {
			k.refill()
			n = len(k.free)
		}
		e := k.free[n-1]
		k.free = k.free[:n-1]
		e.at = es.At
		e.seq = es.Seq
		e.act = act
		e.op = es.Op
		e.a, e.b, e.c = es.A, es.B, es.C
		e.p = p
		e.fn = nil
		e.dead = false
		e.queued = true
		k.npend++
		k.enqueue(e)
		if restored != nil {
			restored(es, e)
		}
	}
	return nil
}
