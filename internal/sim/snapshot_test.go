package sim

import (
	"fmt"
	"testing"
)

// snapActor is a self-rescheduling typed actor whose execution history is
// observable, for checkpoint equivalence tests.
type snapActor struct {
	k     *Kernel
	trace []string
	stop  Time
}

func (a *snapActor) Act(op uint8, x, y, _ int32, p any) {
	a.trace = append(a.trace, fmt.Sprintf("%d:%d:%d:%d", a.k.Now(), op, x, y))
	if a.k.Now() >= a.stop {
		return
	}
	// Linear chains mixing near, far (beyond the ring window), and
	// same-cycle targets: op0 -> op1 -> op2 -> op0.
	switch op {
	case 0:
		a.k.AfterAct(1, a, 1, x+1, y, 0, p)
	case 1:
		a.k.AfterAct(ringSize+50, a, 2, x, y+1, 0, nil)
	case 2:
		a.k.AfterAct(7, a, 0, x+2, y, 0, nil)
	}
}

// passthroughCoder encodes the single known actor and nil payloads.
type passthroughCoder struct{ a *snapActor }

func (c *passthroughCoder) EncodeActor(a Actor) (uint64, error) {
	if a != Actor(c.a) {
		return 0, fmt.Errorf("unknown actor %T", a)
	}
	return 1, nil
}

func (c *passthroughCoder) DecodeActor(code uint64) (Actor, error) {
	if code != 1 {
		return nil, fmt.Errorf("unknown actor code %d", code)
	}
	return c.a, nil
}

func (c *passthroughCoder) EncodePayload(_ uint8, p any) (uint64, error) {
	if p != nil {
		return 0, fmt.Errorf("unexpected payload %T", p)
	}
	return 0, nil
}

func (c *passthroughCoder) DecodePayload(_ uint8, code uint64) (any, error) {
	if code != 0 {
		return nil, fmt.Errorf("unknown payload code %d", code)
	}
	return nil, nil
}

// TestKernelSnapshotRestoreResumesIdentically pins the core contract:
// snapshot mid-run, keep running to the end, then restore and re-run —
// the resumed half must replay the exact same (time, op, args) sequence
// and end with identical kernel counters.
func TestKernelSnapshotRestoreResumesIdentically(t *testing.T) {
	k := NewKernel()
	a := &snapActor{k: k, stop: 5000}
	coder := &passthroughCoder{a: a}
	for i := 0; i < 8; i++ {
		k.AtAct(Time(i), a, 0, int32(i), 0, 0, nil)
	}
	k.Run(1500)

	snap, err := k.Snapshot(coder)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Now != k.Now() || snap.Seq == 0 || len(snap.Events) == 0 {
		t.Fatalf("implausible snapshot: now=%d seq=%d events=%d", snap.Now, snap.Seq, len(snap.Events))
	}

	mark := len(a.trace)
	k.Run(6000)
	want := append([]string(nil), a.trace[mark:]...)
	wantNow, wantExec, wantSeq := k.Now(), k.Executed(), k.seq

	if err := k.Restore(snap, coder, nil); err != nil {
		t.Fatal(err)
	}
	if k.Now() != snap.Now || k.Executed() != snap.Exec || k.Pending() != len(snap.Events) {
		t.Fatalf("restore state: now=%d exec=%d pending=%d, want %d/%d/%d",
			k.Now(), k.Executed(), k.Pending(), snap.Now, snap.Exec, len(snap.Events))
	}
	a.trace = a.trace[:0]
	k.Run(6000)
	if k.Now() != wantNow || k.Executed() != wantExec || k.seq != wantSeq {
		t.Fatalf("resumed run ended at now=%d exec=%d seq=%d, want %d/%d/%d",
			k.Now(), k.Executed(), k.seq, wantNow, wantExec, wantSeq)
	}
	if len(a.trace) != len(want) {
		t.Fatalf("resumed run executed %d events, want %d", len(a.trace), len(want))
	}
	for i := range want {
		if a.trace[i] != want[i] {
			t.Fatalf("resumed run diverges at event %d: got %s want %s", i, a.trace[i], want[i])
		}
	}
}

// TestKernelSnapshotSkipsDeadEvents ensures cancelled events vanish from
// the snapshot without perturbing the live schedule.
func TestKernelSnapshotSkipsDeadEvents(t *testing.T) {
	k := NewKernel()
	a := &snapActor{k: k, stop: 0}
	coder := &passthroughCoder{a: a}
	live := k.AtAct(10, a, 0, 1, 0, 0, nil)
	doomed := k.AtAct(20, a, 0, 2, 0, 0, nil)
	k.Cancel(doomed)
	snap, err := k.Snapshot(coder)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Events) != 1 || snap.Events[0].At != 10 {
		t.Fatalf("snapshot events = %+v, want just the live t=10 event", snap.Events)
	}
	_ = live
	if err := k.Restore(snap, coder, nil); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d after restore, want 1", k.Pending())
	}
	k.Run(0)
	if len(a.trace) != 1 || a.trace[0] != "10:0:1:0" {
		t.Fatalf("trace = %v, want the single live event", a.trace)
	}
}

// TestKernelSnapshotRejectsClosures: closure events have no relocatable
// form; the error must be explicit rather than a silent drop.
func TestKernelSnapshotRejectsClosures(t *testing.T) {
	k := NewKernel()
	a := &snapActor{k: k}
	k.At(5, func() {})
	if _, err := k.Snapshot(&passthroughCoder{a: a}); err == nil {
		t.Fatal("snapshot of a closure event succeeded, want error")
	}
}

// TestKernelRestoreRejectsMalformedState exercises the validation paths.
func TestKernelRestoreRejectsMalformedState(t *testing.T) {
	k := NewKernel()
	a := &snapActor{k: k}
	coder := &passthroughCoder{a: a}
	bad := []*KernelState{
		{Now: 100, Seq: 5, Events: []EventState{{At: 50, Seq: 1, Actor: 1}}},                         // behind the clock
		{Now: 100, Seq: 5, Events: []EventState{{At: 150, Seq: 9, Actor: 1}}},                        // seq beyond counter
		{Now: 0, Seq: 5, Events: []EventState{{At: 5, Seq: 2, Actor: 1}, {At: 5, Seq: 1, Actor: 1}}}, // out of order
		{Now: 0, Seq: 5, Events: []EventState{{At: 5, Seq: 1, Actor: 77}}},                           // unknown actor
	}
	for i, s := range bad {
		if err := k.Restore(s, coder, nil); err == nil {
			t.Fatalf("case %d: restore of malformed state succeeded", i)
		}
	}
}
