// Sharded-execution support: the kernel-side half of the barrier-
// synchronized parallel executor (internal/shard).
//
// The executor runs one simulation on several cores while keeping the
// executed event sequence bit-identical to a serial run. The contract
// that makes this possible is split between this file and the model
// (internal/network):
//
//   - DrainWindow pops every event scheduled before a window boundary in
//     (time, seq) order — exactly the set and order a serial Run would
//     execute before the clock reaches the boundary. (DrainCycle is the
//     single-timestamp special case, kept for the serial fallback.)
//   - Each shard executes its slice of the window through a Stage, which
//     records schedule calls (AtAct/AfterAct) in program order WITHOUT
//     assigning kernel sequence numbers, and pools events privately so
//     the parallel phase never touches the kernel's free list. A
//     schedule call landing inside the window stays on the shard — the
//     window width is capped at the minimum cross-shard latency, so such
//     an event is same-shard by construction (AtAct asserts it) — and
//     RunWindow executes it locally, interleaved with the drained batch
//     in serial order: at equal times drained events run first (their
//     serial seqs predate every staged seq), and staged events run in
//     staging order (their eventual seqs are assigned in exactly that
//     order by the merge's replay).
//   - After the barrier, the coordinator replays the staged schedule
//     calls in global (executing-event seq, program order) order through
//     InjectStaged, which assigns k.seq exactly as the serial kernel
//     would have: serial seq assignment is a pure function of execution
//     order and per-callback program order, both of which the replay
//     reproduces. Staged events already executed inside the window
//     (done) consume their seq but never re-enter the calendar.
//
// Within one callback the serial kernel interleaves schedule calls with
// model side effects; the replay performs all of an event's schedule
// calls as a block instead. The interleaving is unobservable: sequence
// numbers are never exposed to model code, and side effects (counters,
// observer callbacks) are themselves replayed in the same per-event
// order by the network's effect log.
package sim

// Sharded is implemented by actors whose typed events can be assigned to
// a shard: the returned index must identify the single shard whose state
// the event's callback touches. Events whose actor is not Sharded (and
// all closure events) force the executor to fall back to serial
// execution for their cycle.
type Sharded interface {
	Actor
	ShardOf(op uint8, a, b, c int32, p any) int
}

// At returns the event's scheduled time. Valid between DrainCycle and
// the event's recycling.
func (e *Event) At() Time { return e.at }

// Seq returns the event's sequence number (the FIFO tie-break rank).
func (e *Event) Seq() uint64 { return e.seq }

// Dead reports whether the event was cancelled.
func (e *Event) Dead() bool { return e.dead }

// Shard returns the shard index of a drained event, or ok=false when the
// event cannot be assigned to a shard (closure events, or an actor that
// does not implement Sharded) and the cycle must execute serially.
func (e *Event) Shard() (int, bool) {
	if e.fn != nil || e.act == nil {
		return 0, false
	}
	s, ok := e.act.(Sharded)
	if !ok {
		return 0, false
	}
	return s.ShardOf(e.op, e.a, e.b, e.c, e.p), true
}

// PeekTime returns the timestamp of the earliest queued event. ok=false
// means the queue is empty. Like Run's peek, it slides the calendar
// window so the subsequent DrainCycle pops in O(1).
func (k *Kernel) PeekTime() (Time, bool) {
	e := k.peek()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// DrainCycle removes and returns every event queued for the earliest
// timestamp, in seq order (dead events included — the caller recycles
// them), advancing the clock to that timestamp. It reuses buf's backing
// array. An empty queue returns (0, buf[:0]).
func (k *Kernel) DrainCycle(buf []*Event) (Time, []*Event) {
	buf = buf[:0]
	e := k.peek()
	if e == nil {
		return 0, buf
	}
	t := e.at
	k.now = t
	for {
		k.popPeeked(e)
		buf = append(buf, e)
		e = k.peek()
		if e == nil || e.at != t {
			break
		}
	}
	return t, buf
}

// DrainWindow removes and returns every event queued before winEnd, in
// (time, seq) order (dead events included — the caller recycles,
// executes, or requeues them). Unlike DrainCycle it does NOT touch the
// clock: a window can contain only dead events, for which the serial
// loop would never have advanced now; the merge advances the clock per
// live event instead. It reuses buf's backing array; an empty window
// returns buf[:0].
func (k *Kernel) DrainWindow(winEnd Time, buf []*Event) []*Event {
	buf = buf[:0]
	for {
		e := k.peek()
		if e == nil || e.at >= winEnd {
			return buf
		}
		k.popPeeked(e)
		buf = append(buf, e)
	}
}

// Requeue returns drained-but-unexecuted events to the calendar with
// their original (time, seq) stamps, in drain order, so an unshardable
// window can fall back to single-cycle serial execution. Order is
// preserved: the drain emptied every touched bucket, so re-appending in
// drain order restores sequence-sorted buckets, and events now behind
// the calendar window land in the late list, which peek orders by
// (time, seq).
func (k *Kernel) Requeue(batch []*Event) {
	for _, e := range batch {
		k.npend++
		k.enqueue(e)
	}
}

// SetNow forces the clock, mirroring Run's until-boundary behaviour
// (k.now = until), including the historical quirk that the boundary can
// rewind the clock below an already-executed event's time.
func (k *Kernel) SetNow(t Time) { k.now = t }

// ClearHalt resets the halt flag at the start of a run, as Run/RunCtx do.
func (k *Kernel) ClearHalt() { k.halted = false }

// AddExecuted credits n executed events to the kernel's counter on
// behalf of the sharded executor (shards run callbacks off-kernel; the
// merge accounts for them).
func (k *Kernel) AddExecuted(n uint64) { k.nexec += n }

// ExecDrained runs one event handed out by DrainCycle exactly as the
// serial loop would: dead events are recycled silently, live ones
// advance the clock, count, trace, and run. The executor uses it for
// cycles that cannot be sharded.
func (k *Kernel) ExecDrained(e *Event) {
	if e.dead {
		k.recycle(e)
		return
	}
	k.exec(e)
}

// InjectStaged moves a Stage-created event into the calendar, assigning
// the next kernel sequence number. Called by the coordinator during the
// merge, in the exact order the serial kernel would have assigned
// sequence numbers; staged events that were cancelled in the meantime
// are enqueued dead — they consume a seq, as the serial schedule did.
// Events already executed (or popped dead) inside the window on their
// own shard consume their seq here too, but never re-enter the calendar;
// their structs are recycled by ResetOps after the merge has finished
// reading them.
func (k *Kernel) InjectStaged(e *Event) {
	e.seq = k.seq
	k.seq++
	if e.done {
		return
	}
	k.npend++
	k.enqueue(e)
}

// Stage is one shard's private scheduling context during the parallel
// phase of a window: it collects the shard's schedule calls in program
// order, holds the in-window portion of them on a pending heap for local
// execution, and owns a private event pool, so shards share no mutable
// kernel state. Create one per shard with NewStage; the coordinator
// opens each parallel phase with StartWindow.
type Stage struct {
	now    Time
	idx    int  // this stage's shard index, for the in-window ownership assertion
	winEnd Time // current window's exclusive end; schedules before it stay local
	free   []*Event
	ops    []*Event // staged schedule calls, program order
	pend   farHeap  // in-window staged events, keyed (at, staging rank)

	// Tail of the last RunWindow: the (time, seq)-maximal processed
	// event, live or dead, for the executor's until-overshoot quirk. A
	// staged tail keeps its handle (its kernel seq is assigned only at
	// the merge's replay); a drained tail's stamps are copied out before
	// its struct is recycled.
	tailEv   *Event
	tailAt   Time
	tailSeq  uint64
	tailDead bool
	hasTail  bool
}

// NewStage returns an empty stage for shard idx, pre-stocked with one
// event chunk.
func NewStage(idx int) *Stage {
	st := &Stage{idx: idx, free: make([]*Event, 0, eventChunk)}
	st.refill()
	return st
}

// refill stocks the stage's free list with a fresh chunk. Steady state
// never refills: the merge refunds drained event structs to the stages,
// so structs circulate calendar -> drain -> stage pool -> calendar.
func (st *Stage) refill() {
	//hxlint:allow allocfree — chunked pool refill, identical to the kernel's: one slab per eventChunk events, amortizing to zero once drained-event refunds balance staging
	chunk := make([]Event, eventChunk)
	for i := range chunk {
		//hxlint:allow allocfree — the free list grows once, to the refill slab's size, then recycles in place
		st.free = append(st.free, &chunk[i])
	}
}

// StartCycle pins the stage's clock to the cycle being executed.
func (st *Stage) StartCycle(now Time) { st.now = now }

// StartWindow opens a parallel phase covering [now, winEnd): schedule
// calls landing before winEnd stay on this stage's pending heap and
// execute locally inside RunWindow instead of round-tripping through the
// calendar. It also clears the previous window's tail; the stage clock
// advances per executed event inside RunWindow.
func (st *Stage) StartWindow(winEnd Time) {
	st.winEnd = winEnd
	st.hasTail = false
	st.tailEv = nil
}

// Now returns the stage's clock: the time of the event currently
// executing on this shard.
func (st *Stage) Now() Time { return st.now }

// alloc takes an event from the stage pool and stamps its time. The seq
// stays unassigned until the merge injects the event (AtAct reuses the
// field for the staging rank in the meantime).
func (st *Stage) alloc(t Time) *Event {
	if t < st.now {
		panic("sim: event scheduled in the past")
	}
	n := len(st.free)
	if n == 0 {
		st.refill()
		n = len(st.free)
	}
	e := st.free[n-1]
	st.free = st.free[:n-1]
	e.at = t
	e.dead = false
	e.done = false
	// queued=true from the moment of staging so Kernel.Cancel works on a
	// staged handle exactly as on an enqueued one (same-cycle cancels of
	// reroute timers are same-shard and therefore race-free).
	e.queued = true
	return e
}

// AtAct stages a typed event for absolute time t and returns its handle,
// which supports Kernel.Cancel like a directly scheduled event. An event
// landing inside the current window additionally joins the stage's
// pending heap for local execution; the window width is capped at the
// minimum cross-shard latency (see internal/shard), so such an event is
// same-shard by construction — scheduling a cross-shard event inside the
// window is a model ownership bug, and the assertion here is what keeps
// the window determinism argument mechanized rather than hoped-for.
func (st *Stage) AtAct(t Time, act Actor, op uint8, a, b, c int32, p any) *Event {
	e := st.alloc(t)
	e.act = act
	e.op = op
	e.a, e.b, e.c = a, b, c
	e.p = p
	// Staging rank: position in this stage's ops log. The pending heap
	// orders equal-time events by it, which equals their eventual kernel
	// seq order (the merge's replay walks this shard's records in the
	// same order RunWindow processed them, and each record's ops in
	// program order). InjectStaged overwrites it with the real seq.
	e.seq = uint64(len(st.ops))
	//hxlint:allow allocfree — the staged-ops list grows to the shard's per-window high-water schedule count and is reset (not reallocated) every merge
	st.ops = append(st.ops, e)
	if t < st.winEnd {
		if s, ok := act.(Sharded); !ok || s.ShardOf(op, a, b, c, p) != st.idx {
			panic("sim: cross-shard event staged inside the execution window")
		}
		st.pend.push(e)
	}
	return e
}

// AfterAct stages a typed event d cycles from the stage's cycle time.
func (st *Stage) AfterAct(d Time, act Actor, op uint8, a, b, c int32, p any) *Event {
	return st.AtAct(st.now+d, act, op, a, b, c, p)
}

// Exec recycles a drained live event into the stage pool and runs its
// callback — the parallel-phase mirror of the kernel's exec (recycle
// first, so the callback reschedules from a warm pool). Clock advance,
// counting, and tracing are the merge's job.
func (st *Stage) Exec(e *Event) {
	if fn := e.fn; fn != nil {
		st.Recycle(e)
		fn()
		return
	}
	act, op, a, b, c, p := e.act, e.op, e.a, e.b, e.c, e.p
	st.Recycle(e)
	act.Act(op, a, b, c, p)
}

// Recycle returns a drained event struct to the stage pool (dead events
// skip Exec and land here directly). Clears queued, mirroring the
// kernel's recycle: from here the struct is no longer cancellable.
func (st *Stage) Recycle(e *Event) {
	e.queued = false
	e.done = false
	e.fn = nil
	e.act = nil
	e.p = nil
	//hxlint:allow allocfree — returns capacity the pool already handed out; never exceeds the refill high-water mark
	st.free = append(st.free, e)
}

// ExecStaged runs an in-window staged event locally on its own shard.
// Marking it done and not-queued first mirrors the serial kernel's
// pop-then-exec: a Cancel issued after this point is a no-op, exactly as
// it would be serially once the event had been popped. The struct is NOT
// recycled — the ops log, the shard's effect records, and the tail still
// reference it until the merge — ResetOps recycles done events instead.
func (st *Stage) ExecStaged(e *Event) {
	e.done = true
	e.queued = false
	act, op, a, b, c, p := e.act, e.op, e.a, e.b, e.c, e.p
	act.Act(op, a, b, c, p)
}

// Recorder observes every live event RunWindow processes, in execution
// order. For a drained event, seq is its kernel sequence number and ev
// is nil (the struct is recycled immediately after the callback). For a
// staged event executed in-window, seq is zero and ev is the handle —
// its kernel seq is assigned during the merge's replay, strictly before
// the merge consumes the record (the staging record precedes it in the
// same shard's stream).
type Recorder interface {
	Record(at Time, seq uint64, ev *Event)
}

// RunWindow executes this shard's slice of a window: the drained batch
// (already in (time, seq) order) interleaved with events the callbacks
// stage inside the window, in exactly the serial kernel's order — by
// time; at equal times drained before staged (every drained seq predates
// every staged seq, which the merge assigns from a later counter value);
// among staged, by staging rank (equal to eventual seq order, see AtAct).
// Dead events are skipped without a record, as the serial pop-dead loop
// skips them; deadness is read here, at processing time, so a
// same-window cancel from an earlier event lands exactly as it would
// serially. Each processed event, live or dead, updates the tail.
func (st *Stage) RunWindow(batch []*Event, rec Recorder) {
	i := 0
	for {
		var e *Event
		staged := false
		switch {
		case i < len(batch):
			e = batch[i]
			if len(st.pend.h) > 0 && st.pend.h[0].at < e.at {
				e = st.pend.h[0]
				staged = true
			}
		case len(st.pend.h) > 0:
			e = st.pend.h[0]
			staged = true
		default:
			return
		}
		if staged {
			st.pend.pop()
		} else {
			i++
		}
		st.tailAt = e.at
		st.tailDead = e.dead
		st.hasTail = true
		if staged {
			st.tailEv = e
			if e.dead {
				// Never runs, but consumes its seq at the merge's replay,
				// as the serial schedule did; ResetOps recycles it.
				e.done = true
				e.queued = false
				continue
			}
			st.now = e.at
			st.ExecStaged(e)
			rec.Record(e.at, 0, e)
		} else {
			st.tailEv = nil
			st.tailSeq = e.seq
			if e.dead {
				st.Recycle(e)
				continue
			}
			st.now = e.at
			at, seq := e.at, e.seq
			st.Exec(e)
			rec.Record(at, seq, nil)
		}
	}
}

// Tail returns the (time, seq) of the last event this shard processed in
// its window — live or dead — and whether it was dead. The executor
// needs the global (time, seq)-maximal tail across shards for the
// serial until-overshoot quirk. Call after the merge's ops replay (a
// staged tail's seq is assigned there) and before ResetOps (which
// recycles done structs).
func (st *Stage) Tail() (at Time, seq uint64, dead, ok bool) {
	if !st.hasTail {
		return 0, 0, false, false
	}
	if st.tailEv != nil {
		return st.tailAt, st.tailEv.seq, st.tailDead, true
	}
	return st.tailAt, st.tailSeq, st.tailDead, true
}

// StagedLen returns how many schedule calls have been staged this cycle;
// the shard records it per executed event to delimit each event's ops.
func (st *Stage) StagedLen() int { return len(st.ops) }

// ReplayOps injects staged ops [i, j) into the kernel in program order,
// assigning their sequence numbers. Coordinator-only.
func (st *Stage) ReplayOps(k *Kernel, i, j int) {
	for _, e := range st.ops[i:j] {
		k.InjectStaged(e)
	}
}

// ResetOps clears the staged-ops list after a merge. Events executed (or
// popped dead) inside the window return to the stage pool here — the
// merge has finished reading their seqs by now — while the rest live on
// in the kernel calendar; the backing array is reused next window.
func (st *Stage) ResetOps() {
	for _, e := range st.ops {
		if e.done {
			st.Recycle(e)
		}
	}
	st.ops = st.ops[:0]
}

// PoolLen returns the stage's free-list depth (for the coordinator's
// pool rebalancing: traffic that systematically crosses shards would
// otherwise drain one stage's pool while growing another's forever).
func (st *Stage) PoolLen() int { return len(st.free) }

// MoveFree transfers up to n pooled event structs from st to dst.
// Coordinator-only, between parallel phases.
func (st *Stage) MoveFree(dst *Stage, n int) {
	if n > len(st.free) {
		n = len(st.free)
	}
	cut := len(st.free) - n
	dst.free = append(dst.free, st.free[cut:]...)
	for i := cut; i < len(st.free); i++ {
		st.free[i] = nil
	}
	st.free = st.free[:cut]
}
