// Sharded-execution support: the kernel-side half of the barrier-
// synchronized parallel executor (internal/shard).
//
// The executor runs one simulation on several cores while keeping the
// executed event sequence bit-identical to a serial run. The contract
// that makes this possible is split between this file and the model
// (internal/network):
//
//   - DrainCycle pops every event of the earliest timestamp in (time,
//     seq) order — exactly the set and order a serial Run would execute
//     before the clock next advances.
//   - Each shard executes its slice of the cycle through a Stage, which
//     records schedule calls (AtAct/AfterAct) in program order WITHOUT
//     assigning sequence numbers, and pools events privately so the
//     parallel phase never touches the kernel's free list.
//   - After the barrier, the coordinator replays the staged schedule
//     calls in global (executing-event seq, program order) order through
//     InjectStaged, which assigns k.seq exactly as the serial kernel
//     would have: serial seq assignment is a pure function of execution
//     order and per-callback program order, both of which the replay
//     reproduces.
//
// Within one callback the serial kernel interleaves schedule calls with
// model side effects; the replay performs all of an event's schedule
// calls as a block instead. The interleaving is unobservable: sequence
// numbers are never exposed to model code, and side effects (counters,
// observer callbacks) are themselves replayed in the same per-event
// order by the network's effect log.
package sim

// Sharded is implemented by actors whose typed events can be assigned to
// a shard: the returned index must identify the single shard whose state
// the event's callback touches. Events whose actor is not Sharded (and
// all closure events) force the executor to fall back to serial
// execution for their cycle.
type Sharded interface {
	Actor
	ShardOf(op uint8, a, b, c int32, p any) int
}

// At returns the event's scheduled time. Valid between DrainCycle and
// the event's recycling.
func (e *Event) At() Time { return e.at }

// Seq returns the event's sequence number (the FIFO tie-break rank).
func (e *Event) Seq() uint64 { return e.seq }

// Dead reports whether the event was cancelled.
func (e *Event) Dead() bool { return e.dead }

// Shard returns the shard index of a drained event, or ok=false when the
// event cannot be assigned to a shard (closure events, or an actor that
// does not implement Sharded) and the cycle must execute serially.
func (e *Event) Shard() (int, bool) {
	if e.fn != nil || e.act == nil {
		return 0, false
	}
	s, ok := e.act.(Sharded)
	if !ok {
		return 0, false
	}
	return s.ShardOf(e.op, e.a, e.b, e.c, e.p), true
}

// PeekTime returns the timestamp of the earliest queued event. ok=false
// means the queue is empty. Like Run's peek, it slides the calendar
// window so the subsequent DrainCycle pops in O(1).
func (k *Kernel) PeekTime() (Time, bool) {
	e := k.peek()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// DrainCycle removes and returns every event queued for the earliest
// timestamp, in seq order (dead events included — the caller recycles
// them), advancing the clock to that timestamp. It reuses buf's backing
// array. An empty queue returns (0, buf[:0]).
func (k *Kernel) DrainCycle(buf []*Event) (Time, []*Event) {
	buf = buf[:0]
	e := k.peek()
	if e == nil {
		return 0, buf
	}
	t := e.at
	k.now = t
	for {
		k.popPeeked(e)
		buf = append(buf, e)
		e = k.peek()
		if e == nil || e.at != t {
			break
		}
	}
	return t, buf
}

// SetNow forces the clock, mirroring Run's until-boundary behaviour
// (k.now = until), including the historical quirk that the boundary can
// rewind the clock below an already-executed event's time.
func (k *Kernel) SetNow(t Time) { k.now = t }

// ClearHalt resets the halt flag at the start of a run, as Run/RunCtx do.
func (k *Kernel) ClearHalt() { k.halted = false }

// AddExecuted credits n executed events to the kernel's counter on
// behalf of the sharded executor (shards run callbacks off-kernel; the
// merge accounts for them).
func (k *Kernel) AddExecuted(n uint64) { k.nexec += n }

// ExecDrained runs one event handed out by DrainCycle exactly as the
// serial loop would: dead events are recycled silently, live ones
// advance the clock, count, trace, and run. The executor uses it for
// cycles that cannot be sharded.
func (k *Kernel) ExecDrained(e *Event) {
	if e.dead {
		k.recycle(e)
		return
	}
	k.exec(e)
}

// InjectStaged moves a Stage-created event into the calendar, assigning
// the next kernel sequence number. Called by the coordinator during the
// merge, in the exact order the serial kernel would have assigned
// sequence numbers; staged events that were cancelled in the meantime
// are enqueued dead — they consume a seq, as the serial schedule did.
func (k *Kernel) InjectStaged(e *Event) {
	e.seq = k.seq
	k.seq++
	k.npend++
	k.enqueue(e)
}

// Stage is one shard's private scheduling context during the parallel
// phase of a cycle: it collects the shard's schedule calls in program
// order and owns a private event pool, so shards share no mutable kernel
// state. Create one per shard with NewStage; the coordinator sets the
// clock with StartCycle before each parallel phase.
type Stage struct {
	now  Time
	free []*Event
	ops  []*Event // staged schedule calls, program order
}

// NewStage returns an empty stage pre-stocked with one event chunk.
func NewStage() *Stage {
	st := &Stage{free: make([]*Event, 0, eventChunk)}
	st.refill()
	return st
}

// refill stocks the stage's free list with a fresh chunk. Steady state
// never refills: the merge refunds drained event structs to the stages,
// so structs circulate calendar -> drain -> stage pool -> calendar.
func (st *Stage) refill() {
	//hxlint:allow allocfree — chunked pool refill, identical to the kernel's: one slab per eventChunk events, amortizing to zero once drained-event refunds balance staging
	chunk := make([]Event, eventChunk)
	for i := range chunk {
		//hxlint:allow allocfree — the free list grows once, to the refill slab's size, then recycles in place
		st.free = append(st.free, &chunk[i])
	}
}

// StartCycle pins the stage's clock to the cycle being executed.
func (st *Stage) StartCycle(now Time) { st.now = now }

// Now returns the stage's pinned cycle time.
func (st *Stage) Now() Time { return st.now }

// alloc takes an event from the stage pool and stamps its time. The seq
// stays unassigned (zero) until the merge injects the event.
func (st *Stage) alloc(t Time) *Event {
	if t < st.now {
		panic("sim: event scheduled in the past")
	}
	n := len(st.free)
	if n == 0 {
		st.refill()
		n = len(st.free)
	}
	e := st.free[n-1]
	st.free = st.free[:n-1]
	e.at = t
	e.seq = 0
	e.dead = false
	// queued=true from the moment of staging so Kernel.Cancel works on a
	// staged handle exactly as on an enqueued one (same-cycle cancels of
	// reroute timers are same-shard and therefore race-free).
	e.queued = true
	return e
}

// AtAct stages a typed event for absolute time t and returns its handle,
// which supports Kernel.Cancel like a directly scheduled event.
func (st *Stage) AtAct(t Time, act Actor, op uint8, a, b, c int32, p any) *Event {
	e := st.alloc(t)
	e.act = act
	e.op = op
	e.a, e.b, e.c = a, b, c
	e.p = p
	//hxlint:allow allocfree — the staged-ops list grows to the shard's per-cycle high-water schedule count and is reset (not reallocated) every merge
	st.ops = append(st.ops, e)
	return e
}

// AfterAct stages a typed event d cycles from the stage's cycle time.
func (st *Stage) AfterAct(d Time, act Actor, op uint8, a, b, c int32, p any) *Event {
	return st.AtAct(st.now+d, act, op, a, b, c, p)
}

// Exec recycles a drained live event into the stage pool and runs its
// callback — the parallel-phase mirror of the kernel's exec (recycle
// first, so the callback reschedules from a warm pool). Clock advance,
// counting, and tracing are the merge's job.
func (st *Stage) Exec(e *Event) {
	if fn := e.fn; fn != nil {
		st.Recycle(e)
		fn()
		return
	}
	act, op, a, b, c, p := e.act, e.op, e.a, e.b, e.c, e.p
	st.Recycle(e)
	act.Act(op, a, b, c, p)
}

// Recycle returns a drained event struct to the stage pool (dead events
// skip Exec and land here directly). Clears queued, mirroring the
// kernel's recycle: from here the struct is no longer cancellable.
func (st *Stage) Recycle(e *Event) {
	e.queued = false
	e.fn = nil
	e.act = nil
	e.p = nil
	//hxlint:allow allocfree — returns capacity the pool already handed out; never exceeds the refill high-water mark
	st.free = append(st.free, e)
}

// StagedLen returns how many schedule calls have been staged this cycle;
// the shard records it per executed event to delimit each event's ops.
func (st *Stage) StagedLen() int { return len(st.ops) }

// ReplayOps injects staged ops [i, j) into the kernel in program order,
// assigning their sequence numbers. Coordinator-only.
func (st *Stage) ReplayOps(k *Kernel, i, j int) {
	for _, e := range st.ops[i:j] {
		k.InjectStaged(e)
	}
}

// ResetOps clears the staged-ops list after a merge. The events now live
// in the kernel calendar; the backing array is reused next cycle.
func (st *Stage) ResetOps() { st.ops = st.ops[:0] }

// PoolLen returns the stage's free-list depth (for the coordinator's
// pool rebalancing: traffic that systematically crosses shards would
// otherwise drain one stage's pool while growing another's forever).
func (st *Stage) PoolLen() int { return len(st.free) }

// MoveFree transfers up to n pooled event structs from st to dst.
// Coordinator-only, between parallel phases.
func (st *Stage) MoveFree(dst *Stage, n int) {
	if n > len(st.free) {
		n = len(st.free)
	}
	cut := len(st.free) - n
	dst.free = append(dst.free, st.free[cut:]...)
	for i := cut; i < len(st.free); i++ {
		st.free[i] = nil
	}
	st.free = st.free[:cut]
}
