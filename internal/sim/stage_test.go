package sim

// Unit tests for the sharded-execution staging layer: DrainCycle's
// pop-everything-at-min-time contract (including the late list and dead
// events), InjectStaged's serial-order seq assignment, and the Stage
// pool's closed event circulation.

import "testing"

// logActor appends its event's a operand to a shared log.
type logActor struct{ log *[]int32 }

func (l logActor) Act(_ uint8, a, _, _ int32, _ any) { *l.log = append(*l.log, a) }

func TestDrainCycleSeqOrder(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	// Interleave two timestamps; DrainCycle must return only the earlier
	// one, in schedule (seq) order.
	for i := int32(0); i < 10; i++ {
		k.AtAct(5, act, 0, i, 0, 0, nil)
		k.AtAct(7, act, 0, 100+i, 0, 0, nil)
	}
	at, batch := k.DrainCycle(nil)
	if at != 5 || k.Now() != 5 {
		t.Fatalf("DrainCycle at=%d Now=%d, want 5/5", at, k.Now())
	}
	if len(batch) != 10 {
		t.Fatalf("drained %d events, want 10", len(batch))
	}
	var prev uint64
	for i, e := range batch {
		if e.At() != 5 {
			t.Fatalf("batch[%d] at=%d, want 5", i, e.At())
		}
		if i > 0 && e.Seq() <= prev {
			t.Fatalf("batch seq not increasing at %d: %d after %d", i, e.Seq(), prev)
		}
		prev = e.Seq()
	}
	for _, e := range batch {
		k.ExecDrained(e)
	}
	for i, v := range log {
		if v != int32(i) {
			t.Fatalf("execution order %v, want schedule order", log)
		}
	}
	// The next cycle is the t=7 batch.
	if at, batch = k.DrainCycle(batch[:0]); at != 7 || len(batch) != 10 {
		t.Fatalf("second DrainCycle at=%d len=%d, want 7/10", at, len(batch))
	}
}

func TestDrainCycleIncludesDead(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	k.AtAct(5, act, 0, 0, 0, 0, nil)
	mid := k.AtAct(5, act, 0, 1, 0, 0, nil)
	k.AtAct(5, act, 0, 2, 0, 0, nil)
	k.Cancel(mid)
	_, batch := k.DrainCycle(nil)
	if len(batch) != 3 {
		t.Fatalf("drained %d events, want 3 (dead included — they hold seq positions)", len(batch))
	}
	if !batch[1].Dead() || batch[0].Dead() || batch[2].Dead() {
		t.Fatal("dead flags misplaced in drained batch")
	}
	for _, e := range batch {
		k.ExecDrained(e)
	}
	if len(log) != 2 || log[0] != 0 || log[1] != 2 {
		t.Fatalf("executed %v, want [0 2] (dead event skipped)", log)
	}
}

func TestDrainCycleLateList(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	// Advance the window far ahead, then rewind the clock (the executor
	// does this at an until-boundary) so new near-term events land behind
	// winStart — on the late list.
	k.AtAct(5000, act, 0, 99, 0, 0, nil)
	k.Run(0)
	k.SetNow(100)
	k.AtAct(150, act, 0, 0, 0, 0, nil)
	k.AtAct(150, act, 0, 1, 0, 0, nil)
	k.AtAct(6000, act, 0, 2, 0, 0, nil) // in-window ring event, later time
	at, batch := k.DrainCycle(nil)
	if at != 150 || len(batch) != 2 {
		t.Fatalf("DrainCycle over late list at=%d len=%d, want 150/2", at, len(batch))
	}
	if batch[0].Seq() > batch[1].Seq() {
		t.Fatal("late-list events drained out of seq order")
	}
	for _, e := range batch {
		k.ExecDrained(e)
	}
	if at, batch = k.DrainCycle(batch[:0]); at != 6000 || len(batch) != 1 {
		t.Fatalf("post-late DrainCycle at=%d len=%d, want 6000/1", at, len(batch))
	}
}

// TestInjectStagedSerialSeq: staged events replayed through InjectStaged
// receive exactly the seq numbers — and therefore the execution order —
// the serial kernel would have assigned had the callbacks scheduled
// directly.
func TestInjectStagedSerialSeq(t *testing.T) {
	serial := NewKernel()
	var wantLog []int32
	wact := logActor{&wantLog}
	for i := int32(0); i < 6; i++ {
		serial.AtAct(10, wact, 0, i, 0, 0, nil)
	}
	serial.Run(0)

	k := NewKernel()
	var log []int32
	act := logActor{&log}
	st := NewStage()
	st.StartCycle(k.Now())
	for i := int32(0); i < 6; i++ {
		st.AtAct(10, act, 0, i, 0, 0, nil)
	}
	if st.StagedLen() != 6 {
		t.Fatalf("StagedLen = %d, want 6", st.StagedLen())
	}
	st.ReplayOps(k, 0, 3)
	st.ReplayOps(k, 3, 6)
	st.ResetOps()
	k.Run(0)
	if len(log) != len(wantLog) {
		t.Fatalf("staged path executed %d events, serial %d", len(log), len(wantLog))
	}
	for i := range log {
		if log[i] != wantLog[i] {
			t.Fatalf("staged execution order %v, serial %v", log, wantLog)
		}
	}
}

// TestStagedCancelConsumesSeq: Kernel.Cancel works on a staged handle
// (queued is set at stage time), and the dead event still consumes a seq
// number at injection — exactly as a cancelled event does serially.
func TestStagedCancelConsumesSeq(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	st := NewStage()
	st.StartCycle(k.Now())
	e0 := st.AtAct(10, act, 0, 0, 0, 0, nil)
	st.AtAct(10, act, 0, 1, 0, 0, nil)
	k.Cancel(e0)
	if !e0.Dead() {
		t.Fatal("Cancel on a staged handle did not take")
	}
	st.ReplayOps(k, 0, 2)
	var seqs []uint64
	k.TraceExec = func(_ Time, seq uint64) { seqs = append(seqs, seq) }
	k.Run(0)
	if len(log) != 1 || log[0] != 1 {
		t.Fatalf("executed %v, want only the live event", log)
	}
	// The live event was staged second, so it carries seq 1: the dead
	// event consumed seq 0.
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("live event got seq %v, want [1] (dead staged event must consume a seq)", seqs)
	}
}

func TestStageAllocPanicsOnPast(t *testing.T) {
	st := NewStage()
	st.StartCycle(10)
	defer func() {
		if recover() == nil {
			t.Fatal("staging an event in the past did not panic")
		}
	}()
	st.AtAct(5, logActor{new([]int32)}, 0, 0, 0, 0, nil)
}

// TestStagePoolCirculation: Exec and Recycle return events to the stage's
// own pool, and MoveFree rebalances capacity between stages without
// creating or losing events.
func TestStagePoolCirculation(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	a, b := NewStage(), NewStage()
	a.StartCycle(0)
	before := a.PoolLen()
	e := a.AtAct(5, act, 0, 7, 0, 0, nil)
	if a.PoolLen() != before-1 {
		t.Fatalf("alloc did not draw from the stage pool: %d -> %d", before, a.PoolLen())
	}
	a.ResetOps() // keep the handle out of the ops list; exec it directly
	a.Exec(e)
	if len(log) != 1 || log[0] != 7 {
		t.Fatalf("Exec ran %v, want [7]", log)
	}
	if a.PoolLen() != before {
		t.Fatalf("Exec did not recycle into the stage pool: %d, want %d", a.PoolLen(), before)
	}
	moved := 4
	la, lb := a.PoolLen(), b.PoolLen()
	a.MoveFree(b, moved)
	if a.PoolLen() != la-moved || b.PoolLen() != lb+moved {
		t.Fatalf("MoveFree(%d): pools %d/%d -> %d/%d", moved, la, lb, a.PoolLen(), b.PoolLen())
	}
	_ = k
}
