package sim

// Unit tests for the sharded-execution staging layer: DrainCycle's
// pop-everything-at-min-time contract (including the late list and dead
// events), DrainWindow's (time, seq) order and clock neutrality,
// Requeue's order preservation, RunWindow's in-window local execution
// (same-cycle staging, window-granularity cancels, done-event seq
// consumption), InjectStaged's serial-order seq assignment, and the
// Stage pool's closed event circulation.

import "testing"

// logActor appends its event's a operand to a shared log.
type logActor struct{ log *[]int32 }

func (l logActor) Act(_ uint8, a, _, _ int32, _ any) { *l.log = append(*l.log, a) }

func TestDrainCycleSeqOrder(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	// Interleave two timestamps; DrainCycle must return only the earlier
	// one, in schedule (seq) order.
	for i := int32(0); i < 10; i++ {
		k.AtAct(5, act, 0, i, 0, 0, nil)
		k.AtAct(7, act, 0, 100+i, 0, 0, nil)
	}
	at, batch := k.DrainCycle(nil)
	if at != 5 || k.Now() != 5 {
		t.Fatalf("DrainCycle at=%d Now=%d, want 5/5", at, k.Now())
	}
	if len(batch) != 10 {
		t.Fatalf("drained %d events, want 10", len(batch))
	}
	var prev uint64
	for i, e := range batch {
		if e.At() != 5 {
			t.Fatalf("batch[%d] at=%d, want 5", i, e.At())
		}
		if i > 0 && e.Seq() <= prev {
			t.Fatalf("batch seq not increasing at %d: %d after %d", i, e.Seq(), prev)
		}
		prev = e.Seq()
	}
	for _, e := range batch {
		k.ExecDrained(e)
	}
	for i, v := range log {
		if v != int32(i) {
			t.Fatalf("execution order %v, want schedule order", log)
		}
	}
	// The next cycle is the t=7 batch.
	if at, batch = k.DrainCycle(batch[:0]); at != 7 || len(batch) != 10 {
		t.Fatalf("second DrainCycle at=%d len=%d, want 7/10", at, len(batch))
	}
}

func TestDrainCycleIncludesDead(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	k.AtAct(5, act, 0, 0, 0, 0, nil)
	mid := k.AtAct(5, act, 0, 1, 0, 0, nil)
	k.AtAct(5, act, 0, 2, 0, 0, nil)
	k.Cancel(mid)
	_, batch := k.DrainCycle(nil)
	if len(batch) != 3 {
		t.Fatalf("drained %d events, want 3 (dead included — they hold seq positions)", len(batch))
	}
	if !batch[1].Dead() || batch[0].Dead() || batch[2].Dead() {
		t.Fatal("dead flags misplaced in drained batch")
	}
	for _, e := range batch {
		k.ExecDrained(e)
	}
	if len(log) != 2 || log[0] != 0 || log[1] != 2 {
		t.Fatalf("executed %v, want [0 2] (dead event skipped)", log)
	}
}

func TestDrainCycleLateList(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	// Advance the window far ahead, then rewind the clock (the executor
	// does this at an until-boundary) so new near-term events land behind
	// winStart — on the late list.
	k.AtAct(5000, act, 0, 99, 0, 0, nil)
	k.Run(0)
	k.SetNow(100)
	k.AtAct(150, act, 0, 0, 0, 0, nil)
	k.AtAct(150, act, 0, 1, 0, 0, nil)
	k.AtAct(6000, act, 0, 2, 0, 0, nil) // in-window ring event, later time
	at, batch := k.DrainCycle(nil)
	if at != 150 || len(batch) != 2 {
		t.Fatalf("DrainCycle over late list at=%d len=%d, want 150/2", at, len(batch))
	}
	if batch[0].Seq() > batch[1].Seq() {
		t.Fatal("late-list events drained out of seq order")
	}
	for _, e := range batch {
		k.ExecDrained(e)
	}
	if at, batch = k.DrainCycle(batch[:0]); at != 6000 || len(batch) != 1 {
		t.Fatalf("post-late DrainCycle at=%d len=%d, want 6000/1", at, len(batch))
	}
}

// TestInjectStagedSerialSeq: staged events replayed through InjectStaged
// receive exactly the seq numbers — and therefore the execution order —
// the serial kernel would have assigned had the callbacks scheduled
// directly.
func TestInjectStagedSerialSeq(t *testing.T) {
	serial := NewKernel()
	var wantLog []int32
	wact := logActor{&wantLog}
	for i := int32(0); i < 6; i++ {
		serial.AtAct(10, wact, 0, i, 0, 0, nil)
	}
	serial.Run(0)

	k := NewKernel()
	var log []int32
	act := logActor{&log}
	st := NewStage(0)
	st.StartCycle(k.Now())
	for i := int32(0); i < 6; i++ {
		st.AtAct(10, act, 0, i, 0, 0, nil)
	}
	if st.StagedLen() != 6 {
		t.Fatalf("StagedLen = %d, want 6", st.StagedLen())
	}
	st.ReplayOps(k, 0, 3)
	st.ReplayOps(k, 3, 6)
	st.ResetOps()
	k.Run(0)
	if len(log) != len(wantLog) {
		t.Fatalf("staged path executed %d events, serial %d", len(log), len(wantLog))
	}
	for i := range log {
		if log[i] != wantLog[i] {
			t.Fatalf("staged execution order %v, serial %v", log, wantLog)
		}
	}
}

// TestStagedCancelConsumesSeq: Kernel.Cancel works on a staged handle
// (queued is set at stage time), and the dead event still consumes a seq
// number at injection — exactly as a cancelled event does serially.
func TestStagedCancelConsumesSeq(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	st := NewStage(0)
	st.StartCycle(k.Now())
	e0 := st.AtAct(10, act, 0, 0, 0, 0, nil)
	st.AtAct(10, act, 0, 1, 0, 0, nil)
	k.Cancel(e0)
	if !e0.Dead() {
		t.Fatal("Cancel on a staged handle did not take")
	}
	st.ReplayOps(k, 0, 2)
	var seqs []uint64
	k.TraceExec = func(_ Time, seq uint64) { seqs = append(seqs, seq) }
	k.Run(0)
	if len(log) != 1 || log[0] != 1 {
		t.Fatalf("executed %v, want only the live event", log)
	}
	// The live event was staged second, so it carries seq 1: the dead
	// event consumed seq 0.
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("live event got seq %v, want [1] (dead staged event must consume a seq)", seqs)
	}
}

// TestDrainWindowMixedTimestamps: DrainWindow pops every event strictly
// before winEnd in (time, seq) order across timestamps, leaves events at
// or past winEnd queued, and — unlike DrainCycle — never touches the
// clock (the merge advances it per live event).
func TestDrainWindowMixedTimestamps(t *testing.T) {
	k := NewKernel()
	act := logActor{new([]int32)}
	// Schedule out of time order so drain order proves the sort.
	k.AtAct(7, act, 0, 0, 0, 0, nil)
	k.AtAct(5, act, 0, 1, 0, 0, nil)
	k.AtAct(6, act, 0, 2, 0, 0, nil)
	k.AtAct(5, act, 0, 3, 0, 0, nil)
	k.AtAct(9, act, 0, 4, 0, 0, nil) // past winEnd: must stay queued
	batch := k.DrainWindow(8, nil)
	if len(batch) != 4 {
		t.Fatalf("drained %d events, want 4 (t=9 is outside the window)", len(batch))
	}
	if k.Now() != 0 {
		t.Fatalf("DrainWindow moved the clock to %d; it must not touch it", k.Now())
	}
	for i := 1; i < len(batch); i++ {
		a, b := batch[i-1], batch[i]
		if a.At() > b.At() || (a.At() == b.At() && a.Seq() >= b.Seq()) {
			t.Fatalf("batch not in (time, seq) order at %d: (%d,%d) then (%d,%d)",
				i, a.At(), a.Seq(), b.At(), b.Seq())
		}
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d after drain, want 1", k.Pending())
	}
	if rest := k.DrainWindow(10, batch[:0]); len(rest) != 1 || rest[0].At() != 9 {
		t.Fatalf("second window drained %d events, want the t=9 leftover", len(rest))
	}
	if empty := k.DrainWindow(100, nil); len(empty) != 0 {
		t.Fatalf("empty calendar drained %d events, want 0", len(empty))
	}
}

// TestDrainWindowCancelDrained: a drained-but-unexecuted event is still
// cancellable — drain does not clear the queued flag — and the dead flag
// is honored at processing time by ExecDrained, mirroring how an
// earlier-in-window event's cancel lands under the windowed executor.
func TestDrainWindowCancelDrained(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	k.AtAct(5, act, 0, 0, 0, 0, nil)
	victim := k.AtAct(6, act, 0, 1, 0, 0, nil)
	k.AtAct(7, act, 0, 2, 0, 0, nil)
	batch := k.DrainWindow(10, nil)
	k.Cancel(victim)
	if !victim.Dead() {
		t.Fatal("Cancel after DrainWindow did not take; window-granularity cancels would be lost")
	}
	for _, e := range batch {
		if !e.Dead() {
			k.SetNow(e.At())
		}
		k.ExecDrained(e)
	}
	if len(log) != 2 || log[0] != 0 || log[1] != 2 {
		t.Fatalf("executed %v, want [0 2] (cancelled-after-drain event skipped)", log)
	}
}

// TestRequeuePreservesOrder: Requeue returns a drained window to the
// calendar with original (time, seq) stamps, so a fresh drain reproduces
// the identical batch — the unshardable-window fallback depends on this.
func TestRequeuePreservesOrder(t *testing.T) {
	k := NewKernel()
	act := logActor{new([]int32)}
	for i := int32(0); i < 4; i++ {
		k.AtAct(Time(5+i%2), act, 0, i, 0, 0, nil)
	}
	batch := k.DrainWindow(8, nil)
	want := make([]*Event, len(batch))
	copy(want, batch)
	k.Requeue(batch)
	if k.Pending() != 4 {
		t.Fatalf("Pending = %d after Requeue, want 4", k.Pending())
	}
	again := k.DrainWindow(8, nil)
	if len(again) != len(want) {
		t.Fatalf("re-drain returned %d events, want %d", len(again), len(want))
	}
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("re-drain order diverged at %d", i)
		}
	}
}

// windowActor is a Sharded actor that logs its a operand and stages
// follow-up events on its stage according to a spawn table, exercising
// RunWindow's in-window local execution path.
type windowActor struct {
	st    *Stage
	log   *[]int32
	spawn map[int32][]Time // a operand -> follow-up event times (staged as a+100, a+200, ...)
}

func (w *windowActor) Act(_ uint8, a, _, _ int32, _ any) {
	*w.log = append(*w.log, a)
	for i, at := range w.spawn[a] {
		w.st.AtAct(at, w, 0, a+int32(100*(i+1)), 0, 0, nil)
	}
}

func (w *windowActor) ShardOf(uint8, int32, int32, int32, any) int { return 0 }

// windowRecorder captures RunWindow's Record stream: times, and whether
// each record was a drained event (ev nil, kernel seq) or a staged one
// (handle, seq assigned later at the merge).
type windowRecorder struct {
	ats    []Time
	staged []bool
}

func (r *windowRecorder) Record(at Time, _ uint64, ev *Event) {
	r.ats = append(r.ats, at)
	r.staged = append(r.staged, ev != nil)
}

// TestRunWindowSameCycleStaging: an event that stages a same-cycle
// follow-up sees it execute inside the same window, after the remaining
// drained events of that cycle (drained-before-staged at equal time) and
// before any later-cycle work — the serial kernel's exact interleaving.
func TestRunWindowSameCycleStaging(t *testing.T) {
	k := NewKernel()
	var log []int32
	st := NewStage(0)
	w := &windowActor{st: st, log: &log, spawn: map[int32][]Time{
		0: {5, 6}, // same-cycle (t=5) and mid-window (t=6) follow-ups
	}}
	k.AtAct(5, w, 0, 0, 0, 0, nil)
	k.AtAct(5, w, 0, 1, 0, 0, nil)
	k.AtAct(7, w, 0, 2, 0, 0, nil)
	batch := k.DrainWindow(10, nil)
	st.StartWindow(10)
	rec := &windowRecorder{}
	st.RunWindow(batch, rec)
	// Drained t=5 pair first (schedule order), then the staged t=5
	// follow-up, the staged t=6 one, then the drained t=7 event.
	wantLog := []int32{0, 1, 100, 200, 2}
	if len(log) != len(wantLog) {
		t.Fatalf("executed %v, want %v", log, wantLog)
	}
	for i := range wantLog {
		if log[i] != wantLog[i] {
			t.Fatalf("executed %v, want %v", log, wantLog)
		}
	}
	wantAts := []Time{5, 5, 5, 6, 7}
	wantStaged := []bool{false, false, true, true, false}
	for i := range wantAts {
		if rec.ats[i] != wantAts[i] || rec.staged[i] != wantStaged[i] {
			t.Fatalf("record stream ats=%v staged=%v, want %v/%v", rec.ats, rec.staged, wantAts, wantStaged)
		}
	}
	if st.Now() != 7 {
		t.Fatalf("stage clock = %d after window, want 7", st.Now())
	}
}

// TestRunWindowCancelStaged: Kernel.Cancel on a staged handle before its
// in-window execution point makes RunWindow skip it without a record —
// it still becomes the tail and still consumes a seq at the merge's
// replay, exactly as a cancelled event does serially.
func TestRunWindowCancelStaged(t *testing.T) {
	k := NewKernel()
	var log []int32
	st := NewStage(0)
	w := &windowActor{st: st, log: &log, spawn: map[int32][]Time{}}
	k.AtAct(5, w, 0, 0, 0, 0, nil)
	batch := k.DrainWindow(10, nil)
	st.StartWindow(10)
	st.StartCycle(5)
	victim := st.AtAct(8, w, 0, 50, 0, 0, nil)
	k.Cancel(victim)
	rec := &windowRecorder{}
	st.RunWindow(batch, rec)
	if len(log) != 1 || log[0] != 0 {
		t.Fatalf("executed %v, want only the drained event", log)
	}
	if len(rec.ats) != 1 {
		t.Fatalf("recorded %d events, want 1 (dead staged event skipped without a record)", len(rec.ats))
	}
	at, _, dead, ok := st.Tail()
	if !ok || at != 8 || !dead {
		t.Fatalf("Tail = (%d, dead=%v, ok=%v), want the dead staged event at t=8", at, dead, ok)
	}
	// The dead in-window event is done: ReplayOps assigns it a seq but
	// never re-enqueues it.
	seqBefore := k.AtAct(100, w, 0, 9, 0, 0, nil).Seq()
	st.ReplayOps(k, 0, st.StagedLen())
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d after replaying a done event, want 1 (only the probe)", k.Pending())
	}
	if victim.Seq() != seqBefore+1 {
		t.Fatalf("done event got seq %d, want %d (must consume the next kernel seq)", victim.Seq(), seqBefore+1)
	}
	st.ResetOps()
}

// TestInjectStagedDoneNoEnqueue: an event executed in-window on its own
// shard (done) consumes a kernel seq at injection but never re-enters
// the calendar, and ResetOps recycles its struct back to the stage pool.
func TestInjectStagedDoneNoEnqueue(t *testing.T) {
	k := NewKernel()
	var log []int32
	st := NewStage(0)
	w := &windowActor{st: st, log: &log, spawn: map[int32][]Time{}}
	st.StartWindow(10)
	st.StartCycle(0)
	pool := st.PoolLen()
	e := st.AtAct(5, w, 0, 7, 0, 0, nil)
	st.RunWindow(nil, &windowRecorder{})
	if len(log) != 1 || log[0] != 7 {
		t.Fatalf("RunWindow on staged-only window executed %v, want [7]", log)
	}
	st.ReplayOps(k, 0, st.StagedLen())
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0 (done event must not re-enter the calendar)", k.Pending())
	}
	if e.Seq() != 0 {
		t.Fatalf("done event seq = %d, want 0 (first kernel seq)", e.Seq())
	}
	if next := k.AtAct(20, w, 0, 8, 0, 0, nil); next.Seq() != 1 {
		t.Fatalf("next kernel seq = %d, want 1 (done event consumed seq 0)", next.Seq())
	}
	st.ResetOps()
	if st.PoolLen() != pool {
		t.Fatalf("ResetOps pool = %d, want %d (done struct recycled to the stage pool)", st.PoolLen(), pool)
	}
}

func TestStageAllocPanicsOnPast(t *testing.T) {
	st := NewStage(0)
	st.StartCycle(10)
	defer func() {
		if recover() == nil {
			t.Fatal("staging an event in the past did not panic")
		}
	}()
	st.AtAct(5, logActor{new([]int32)}, 0, 0, 0, 0, nil)
}

// TestStagePoolCirculation: Exec and Recycle return events to the stage's
// own pool, and MoveFree rebalances capacity between stages without
// creating or losing events.
func TestStagePoolCirculation(t *testing.T) {
	k := NewKernel()
	var log []int32
	act := logActor{&log}
	a, b := NewStage(0), NewStage(1)
	a.StartCycle(0)
	before := a.PoolLen()
	e := a.AtAct(5, act, 0, 7, 0, 0, nil)
	if a.PoolLen() != before-1 {
		t.Fatalf("alloc did not draw from the stage pool: %d -> %d", before, a.PoolLen())
	}
	a.ResetOps() // keep the handle out of the ops list; exec it directly
	a.Exec(e)
	if len(log) != 1 || log[0] != 7 {
		t.Fatalf("Exec ran %v, want [7]", log)
	}
	if a.PoolLen() != before {
		t.Fatalf("Exec did not recycle into the stage pool: %d, want %d", a.PoolLen(), before)
	}
	moved := 4
	la, lb := a.PoolLen(), b.PoolLen()
	a.MoveFree(b, moved)
	if a.PoolLen() != la-moved || b.PoolLen() != lb+moved {
		t.Fatalf("MoveFree(%d): pools %d/%d -> %d/%d", moved, la, lb, a.PoolLen(), b.PoolLen())
	}
	_ = k
}
