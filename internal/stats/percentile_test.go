package stats

import "testing"

// TestPercentileNearestRank: table-driven check of the nearest-rank
// convention sorted[ceil(q/100*n)-1] across the sample counts where the
// old sorted[n*q/100] indexing went wrong (n=100 read the maximum as P99;
// n=1 was fine only by clamping).
func TestPercentileNearestRank(t *testing.T) {
	mk := func(n int) []int64 {
		s := make([]int64, n)
		for i := range s {
			s[i] = int64(i + 1) // value == rank, so expectations read directly
		}
		return s
	}
	cases := []struct {
		n    int
		q    float64
		want float64
	}{
		{1, 50, 1}, {1, 99, 1}, {1, 100, 1},
		{10, 50, 5}, {10, 99, 10}, {10, 100, 10},
		{99, 50, 50}, {99, 99, 99},
		{100, 50, 50}, {100, 99, 99}, {100, 100, 100},
		{101, 50, 51}, {101, 99, 100}, {101, 100, 101},
	}
	for _, c := range cases {
		if got := Percentile(mk(c.n), c.q); got != c.want {
			t.Errorf("Percentile(n=%d, q=%g) = %g, want %g", c.n, c.q, got, c.want)
		}
	}
	if got := Percentile(nil, 99); got != 0 {
		t.Errorf("empty slice: got %g, want 0", got)
	}
	// q=0 clamps to the minimum rather than indexing out of range.
	if got := Percentile(mk(10), 0); got != 1 {
		t.Errorf("q=0: got %g, want 1", got)
	}
}
