// Package stats implements the paper's steady-state measurement
// methodology (Section 6.1). A run has four phases, all under continuous
// open-loop injection (see internal/traffic):
//
//  1. Warm-up — [0, Start): the network fills to steady state; nothing
//     born here is measured, which removes the cold-start transient from
//     the latency distribution.
//  2. Measurement window — [Start, End): every packet *born* in the
//     window is measured from birth to delivery, and every flit
//     *delivered* inside the window counts toward accepted throughput
//     (flits/cycle/terminal, so 1.0 = terminal channel capacity).
//  3. Drain — injection keeps running after End, so the measured tail
//     experiences realistic back-pressure rather than an artificially
//     emptying network, until every measured packet is delivered.
//  4. Drain cap — if more than 1% of measured packets still haven't
//     arrived when the cap (facade default: 10× the window) expires, the
//     run is declared saturated: the network cannot sustain the offered
//     load, so source queues — and latencies — grow without bound.
//
// Saturation is detected by whichever of four signals fires first; a
// load-latency curve (Figure 6a–f) ends at its first saturated point:
//
//   - mean latency above an outright cap (RunOpts.LatencyCap);
//   - >1% of measured packets undelivered at the drain cap (above);
//   - latency growth *within* the window: the mean over packets born in
//     the second half exceeding 1.5× the first-half mean (plus 100 ns of
//     slack) — a stable network's latency does not trend inside the
//     window;
//   - accepted throughput measurably below offered load — the
//     "Accepted < 0.95·load − 0.005" rule applied by the facade
//     (hyperx.RunLoadPoint), which is the sharpest open-loop signal:
//     whatever the network does not accept piles up in source queues.
//
// The collector is deliberately passive — it only observes OnBirth /
// OnDeliver callbacks — so attaching it never perturbs simulation
// determinism (see internal/rng).
package stats

import (
	"math"
	"sort"

	"hyperx/internal/route"
	"hyperx/internal/sim"
)

// Collector accumulates per-packet latencies and windowed flit counts.
// Attach Collector.OnDeliver to Network.OnDeliver and call CountBirth from
// the generator's OnBirth hook.
type Collector struct {
	Start, End sim.Time // measurement window

	born      int
	delivered int
	dropped   int // measured packets discarded by fault-induced drops

	lat       []int64 // latency of each measured packet, birth -> delivery
	firstSum  int64   // latency sum, packets born in the first half
	firstN    int
	secondSum int64
	secondN   int

	windowFlits int64 // flits delivered with delivery time inside the window
}

// NewCollector builds a collector for the window [start, end).
func NewCollector(start, end sim.Time) *Collector {
	return &Collector{Start: start, End: end, lat: make([]int64, 0, 1<<16)}
}

// CountBirth registers a packet creation at time at.
func (c *Collector) CountBirth(at sim.Time) {
	if at >= c.Start && at < c.End {
		c.born++
	}
}

// OnDeliver observes a delivered packet; signature matches
// network.Network.OnDeliver.
func (c *Collector) OnDeliver(p *route.Packet, at sim.Time) {
	if at >= c.Start && at < c.End {
		c.windowFlits += int64(p.Len)
	}
	if p.Birth < c.Start || p.Birth >= c.End {
		return
	}
	c.delivered++
	l := int64(at - p.Birth)
	c.lat = append(c.lat, l)
	mid := c.Start + (c.End-c.Start)/2
	if p.Birth < mid {
		c.firstSum += l
		c.firstN++
	} else {
		c.secondSum += l
		c.secondN++
	}
}

// OnDrop observes a packet discarded by the network's detect-and-drop
// path (fault-induced); signature matches network.Network.OnDrop. Dropped
// measured packets resolve the drain condition — they will never deliver
// — but contribute neither latency samples nor accepted throughput.
func (c *Collector) OnDrop(p *route.Packet, _ sim.Time) {
	if p.Birth >= c.Start && p.Birth < c.End {
		c.dropped++
	}
}

// Done reports whether every measured packet has been resolved
// (delivered, or dropped on a faulted network).
func (c *Collector) Done() bool { return c.born > 0 && c.delivered+c.dropped >= c.born }

// Born returns the number of packets born in the window.
func (c *Collector) Born() int { return c.born }

// Delivered returns the number of measured packets delivered so far.
func (c *Collector) Delivered() int { return c.delivered }

// Dropped returns the number of measured packets dropped so far.
func (c *Collector) Dropped() int { return c.dropped }

// Result summarizes one steady-state measurement.
type Result struct {
	Samples  int
	Mean     float64
	P50      float64
	P99      float64
	Max      int64
	Accepted float64 // flits/cycle/terminal with delivery inside the window
	Dropped  int     // measured packets lost to fault-induced drops

	// HalfMeans are the mean latencies of packets born in the first and
	// second halves of the window — the saturation growth signal.
	HalfMeans [2]float64

	Saturated bool
}

// Summarize computes the result. terminals scales accepted throughput;
// latencyCap (cycles) declares saturation outright when exceeded by the
// mean, and growth between window halves beyond 50% (plus slack) does
// the same: a stable network's latency does not trend inside the window.
// Percentile returns the q-th percentile of sorted (ascending) under the
// nearest-rank convention: the smallest element such that at least q% of
// the samples are at or below it, i.e. sorted[ceil(q/100*n)-1]. For
// n=100 this gives P99 = sorted[98] — the naive sorted[n*99/100] indexing
// returns sorted[99], the maximum, an off-by-one that overstates tail
// latency on every curve.
func Percentile(sorted []int64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(q/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return float64(sorted[idx])
}

func (c *Collector) Summarize(terminals int, latencyCap float64) Result {
	r := Result{Samples: len(c.lat), Dropped: c.dropped}
	window := float64(c.End - c.Start)
	r.Accepted = float64(c.windowFlits) / (window * float64(terminals))
	if len(c.lat) == 0 {
		// Deep saturation: no packet born in the window was delivered
		// before measurement ended. Accepted throughput is still valid.
		r.Saturated = true
		return r
	}
	var sum int64
	for _, l := range c.lat {
		sum += l
		if l > r.Max {
			r.Max = l
		}
	}
	r.Mean = float64(sum) / float64(len(c.lat))
	sorted := append([]int64(nil), c.lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	r.P50 = Percentile(sorted, 50)
	r.P99 = Percentile(sorted, 99)
	if c.firstN > 0 {
		r.HalfMeans[0] = float64(c.firstSum) / float64(c.firstN)
	}
	if c.secondN > 0 {
		r.HalfMeans[1] = float64(c.secondSum) / float64(c.secondN)
	}
	// Drops are loss, not congestion: they resolve the drain condition and
	// must not masquerade as the could-not-drain saturation signal.
	undelivered := c.born - c.delivered - c.dropped
	switch {
	case r.Mean > latencyCap:
		r.Saturated = true
	case undelivered > c.born/100:
		r.Saturated = true // could not drain the measured packets
	case c.firstN > 50 && c.secondN > 50 &&
		r.HalfMeans[1] > 1.5*r.HalfMeans[0]+100:
		r.Saturated = true // latency grows within the window
	}
	return r
}
