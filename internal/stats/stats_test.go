package stats

import (
	"testing"

	"hyperx/internal/route"
	"hyperx/internal/sim"
)

func TestCollectorWindowing(t *testing.T) {
	c := NewCollector(100, 200)
	// Born before the window: latency not sampled even if delivered in it.
	c.OnDeliver(&route.Packet{Birth: 50, Len: 4}, 150)
	// Born inside, delivered after the window end: sampled for latency,
	// not for windowed throughput.
	c.CountBirth(150)
	c.OnDeliver(&route.Packet{Birth: 150, Len: 4}, 250)
	// Born and delivered inside.
	c.CountBirth(120)
	c.OnDeliver(&route.Packet{Birth: 120, Len: 8}, 180)

	if c.Born() != 2 || c.Delivered() != 2 {
		t.Fatalf("born=%d delivered=%d", c.Born(), c.Delivered())
	}
	r := c.Summarize(1, 1e9)
	if r.Samples != 2 {
		t.Fatalf("samples=%d", r.Samples)
	}
	// Window flits: 4 (early-born packet) + 8 = 12 over 100 cycles.
	if r.Accepted != 0.12 {
		t.Fatalf("accepted=%v, want 0.12", r.Accepted)
	}
	// Latencies 100 and 60.
	if r.Mean != 80 {
		t.Fatalf("mean=%v", r.Mean)
	}
	if r.Max != 100 {
		t.Fatalf("max=%v", r.Max)
	}
}

func TestCollectorDone(t *testing.T) {
	c := NewCollector(0, 100)
	if c.Done() {
		t.Fatal("empty collector reports done")
	}
	c.CountBirth(10)
	if c.Done() {
		t.Fatal("done with undelivered packet")
	}
	c.OnDeliver(&route.Packet{Birth: 10, Len: 1}, 500)
	if !c.Done() {
		t.Fatal("not done after delivery")
	}
}

func TestSaturationByLatencyCap(t *testing.T) {
	c := NewCollector(0, 100)
	c.CountBirth(10)
	c.OnDeliver(&route.Packet{Birth: 10, Len: 1}, 50_000)
	r := c.Summarize(1, 20_000)
	if !r.Saturated {
		t.Error("latency cap exceeded but not saturated")
	}
}

func TestSaturationByGrowth(t *testing.T) {
	c := NewCollector(0, 1000)
	// 60 packets in each half; second half 6x the latency of the first.
	for i := 0; i < 60; i++ {
		b := sim.Time(i * 8)
		c.CountBirth(b)
		c.OnDeliver(&route.Packet{Birth: b, Len: 1}, b+100)
	}
	for i := 0; i < 60; i++ {
		b := sim.Time(500 + i*8)
		c.CountBirth(b)
		c.OnDeliver(&route.Packet{Birth: b, Len: 1}, b+600)
	}
	r := c.Summarize(1, 1e9)
	if !r.Saturated {
		t.Errorf("6x latency growth not flagged: halves %v", r.HalfMeans)
	}
}

func TestNotSaturatedWhenStable(t *testing.T) {
	c := NewCollector(0, 1000)
	for i := 0; i < 200; i++ {
		b := sim.Time(i * 5)
		c.CountBirth(b)
		c.OnDeliver(&route.Packet{Birth: b, Len: 2}, b+300)
	}
	r := c.Summarize(4, 1e6)
	if r.Saturated {
		t.Errorf("stable run flagged saturated: %+v", r)
	}
	if r.Mean != 300 || r.P50 != 300 || r.P99 != 300 {
		t.Errorf("latency stats wrong: %+v", r)
	}
}

func TestSaturationByUndelivered(t *testing.T) {
	c := NewCollector(0, 1000)
	for i := 0; i < 100; i++ {
		c.CountBirth(sim.Time(i * 10))
	}
	// Only half delivered.
	for i := 0; i < 50; i++ {
		b := sim.Time(i * 10)
		c.OnDeliver(&route.Packet{Birth: b, Len: 1}, b+50)
	}
	r := c.Summarize(1, 1e9)
	if !r.Saturated {
		t.Error("50% undelivered not flagged saturated")
	}
}

// TestAcceptedSurvivesEmptyLatencies: deep saturation delivers no
// measured-born packets, but accepted throughput must still be reported
// (regression test for the RunThroughput zero bug).
func TestAcceptedSurvivesEmptyLatencies(t *testing.T) {
	c := NewCollector(100, 200)
	c.CountBirth(150)
	c.OnDeliver(&route.Packet{Birth: 10, Len: 50}, 150) // old traffic draining
	r := c.Summarize(1, 1e9)
	if !r.Saturated {
		t.Error("no measured deliveries should flag saturation")
	}
	if r.Accepted != 0.5 {
		t.Errorf("accepted=%v, want 0.5", r.Accepted)
	}
}
