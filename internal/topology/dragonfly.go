package topology

import "fmt"

// Dragonfly is the canonical balanced dragonfly of Kim et al. (ISCA '08):
// groups of A routers, each router with P terminals and H global links,
// groups fully connected by global links using the absolute arrangement,
// routers within a group fully connected by local links. This package
// supports the maximal balanced configuration with G = A*H + 1 groups.
//
// Port layout per router:
//
//	[0, P)            terminal ports
//	[P, P+A-1)        local ports, ordered by peer local index (own skipped)
//	[P+A-1, P+A-1+H)  global ports
type Dragonfly struct {
	P, A, H int // terminals/router, routers/group, globals/router
	G       int // number of groups = A*H + 1
}

// NewDragonfly builds the maximal balanced dragonfly for the given
// parameters.
func NewDragonfly(p, a, h int) (*Dragonfly, error) {
	if p < 1 || a < 2 || h < 1 {
		return nil, fmt.Errorf("dragonfly: invalid parameters p=%d a=%d h=%d", p, a, h)
	}
	return &Dragonfly{P: p, A: a, H: h, G: a*h + 1}, nil
}

// MustDragonfly is NewDragonfly that panics on error.
func MustDragonfly(p, a, h int) *Dragonfly {
	d, err := NewDragonfly(p, a, h)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Topology.
func (d *Dragonfly) Name() string {
	return fmt.Sprintf("dragonfly-p%d-a%d-h%d", d.P, d.A, d.H)
}

// NumRouters implements Topology.
func (d *Dragonfly) NumRouters() int { return d.G * d.A }

// NumTerminals implements Topology.
func (d *Dragonfly) NumTerminals() int { return d.G * d.A * d.P }

// NumPorts implements Topology.
func (d *Dragonfly) NumPorts() int { return d.P + d.A - 1 + d.H }

// Group returns the group of router r.
func (d *Dragonfly) Group(r int) int { return r / d.A }

// LocalIndex returns the index of router r within its group.
func (d *Dragonfly) LocalIndex(r int) int { return r % d.A }

// LocalPort returns the port of router r that reaches local index v within
// the same group.
func (d *Dragonfly) LocalPort(r, v int) int {
	own := d.LocalIndex(r)
	if v == own {
		panic("dragonfly: LocalPort to self")
	}
	idx := v
	if v > own {
		idx--
	}
	return d.P + idx
}

// globalChannel returns the global channel index (0..A*H-1 within the
// group) that group g uses to reach group tgt.
func (d *Dragonfly) globalChannel(g, tgt int) int {
	if tgt < g {
		return tgt
	}
	return tgt - 1
}

// GlobalPortTo returns the router in group g owning the global link to
// group tgt, and that router's port for it.
func (d *Dragonfly) GlobalPortTo(g, tgt int) (router, port int) {
	c := d.globalChannel(g, tgt)
	return g*d.A + c/d.H, d.P + d.A - 1 + c%d.H
}

// PortKind implements Topology.
func (d *Dragonfly) PortKind(r, p int) LinkKind {
	switch {
	case p < 0 || p >= d.NumPorts():
		return Unused
	case p < d.P:
		return Terminal
	case p < d.P+d.A-1:
		return Local
	default:
		return Global
	}
}

// Peer implements Topology.
func (d *Dragonfly) Peer(r, p int) (int, int) {
	switch d.PortKind(r, p) {
	case Local:
		idx := p - d.P
		own := d.LocalIndex(r)
		if idx >= own {
			idx++
		}
		peer := d.Group(r)*d.A + idx
		return peer, d.LocalPort(peer, own)
	case Global:
		g := d.Group(r)
		c := d.LocalIndex(r)*d.H + (p - (d.P + d.A - 1))
		tgt := c
		if c >= g {
			tgt = c + 1
		}
		return d.GlobalPortTo(tgt, g)
	default:
		panic("dragonfly: Peer of non-router port")
	}
}

// PortTerminal implements Topology.
func (d *Dragonfly) PortTerminal(r, p int) int {
	if p < 0 || p >= d.P {
		return -1
	}
	return r*d.P + p
}

// TerminalPort implements Topology.
func (d *Dragonfly) TerminalPort(t int) (int, int) {
	return t / d.P, t % d.P
}

// MinHops implements Topology. Minimal paths are (local), global, (local).
func (d *Dragonfly) MinHops(a, b int) int {
	if a == b {
		return 0
	}
	ga, gb := d.Group(a), d.Group(b)
	if ga == gb {
		return 1
	}
	src, _ := d.GlobalPortTo(ga, gb)
	dst, _ := d.GlobalPortTo(gb, ga)
	hops := 1
	if src != a {
		hops++
	}
	if dst != b {
		hops++
	}
	return hops
}
