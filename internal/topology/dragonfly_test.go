package topology

import "testing"

func TestDragonflyValidate(t *testing.T) {
	for _, d := range []*Dragonfly{
		MustDragonfly(1, 2, 1),
		MustDragonfly(2, 4, 1),
		MustDragonfly(4, 8, 2),
		MustDragonfly(3, 6, 3),
	} {
		if err := Validate(d); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}

func TestDragonflyCounts(t *testing.T) {
	d := MustDragonfly(4, 8, 2) // g = 17
	if d.G != 17 {
		t.Errorf("groups = %d, want 17", d.G)
	}
	if d.NumRouters() != 17*8 {
		t.Errorf("routers = %d, want 136", d.NumRouters())
	}
	if d.NumTerminals() != 17*8*4 {
		t.Errorf("terminals = %d, want 544", d.NumTerminals())
	}
	if d.NumPorts() != 4+7+2 {
		t.Errorf("ports = %d, want 13", d.NumPorts())
	}
}

// TestDragonflyGlobalWiring: every pair of groups is connected by exactly
// one global link, and GlobalPortTo agrees with Peer.
func TestDragonflyGlobalWiring(t *testing.T) {
	d := MustDragonfly(2, 4, 2) // g = 9
	for ga := 0; ga < d.G; ga++ {
		for gb := 0; gb < d.G; gb++ {
			if ga == gb {
				continue
			}
			r, p := d.GlobalPortTo(ga, gb)
			if d.Group(r) != ga {
				t.Fatalf("gateway %d not in group %d", r, ga)
			}
			pr, pp := d.Peer(r, p)
			if d.Group(pr) != gb {
				t.Fatalf("global link from group %d lands in group %d, want %d", ga, d.Group(pr), gb)
			}
			// And the reverse port resolves back.
			br, bp := d.Peer(pr, pp)
			if br != r || bp != p {
				t.Fatalf("global link not symmetric")
			}
		}
	}
}

// TestDragonflyMinHops checks the 0/1/2/3-hop structure.
func TestDragonflyMinHops(t *testing.T) {
	d := MustDragonfly(2, 4, 2)
	for a := 0; a < d.NumRouters(); a++ {
		for b := 0; b < d.NumRouters(); b++ {
			h := d.MinHops(a, b)
			switch {
			case a == b && h != 0:
				t.Fatalf("MinHops(%d,%d)=%d, want 0", a, b, h)
			case a != b && d.Group(a) == d.Group(b) && h != 1:
				t.Fatalf("same group MinHops(%d,%d)=%d, want 1", a, b, h)
			case d.Group(a) != d.Group(b) && (h < 1 || h > 3):
				t.Fatalf("cross group MinHops(%d,%d)=%d, want 1..3", a, b, h)
			}
			if h != d.MinHops(b, a) {
				t.Fatalf("MinHops not symmetric at (%d,%d)", a, b)
			}
		}
	}
}

func TestFatTreeValidate(t *testing.T) {
	for _, k := range []int{4, 6, 8, 16} {
		f := MustFatTree(k)
		if err := Validate(f); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestFatTreeCounts(t *testing.T) {
	f := MustFatTree(8)
	if f.NumTerminals() != 128 {
		t.Errorf("terminals = %d, want k^3/4 = 128", f.NumTerminals())
	}
	if f.NumRouters() != 32+32+16 {
		t.Errorf("routers = %d, want 80", f.NumRouters())
	}
}

// TestFatTreeReachability: from every edge switch, going up any port then
// down reaches every terminal in at most 4 hops (diameter of a 3-level
// Clos between edge switches).
func TestFatTreeUpDownStructure(t *testing.T) {
	f := MustFatTree(4)
	for r := 0; r < f.NumRouters(); r++ {
		lvl := f.Level(r)
		for p := 0; p < f.NumPorts(); p++ {
			switch f.PortKind(r, p) {
			case Terminal:
				if lvl != 0 {
					t.Fatalf("terminal port on non-edge router %d", r)
				}
			case Local:
				pr, _ := f.Peer(r, p)
				lp := f.Level(pr)
				if !(lvl == 0 && lp == 1 || lvl == 1 && lp == 0) {
					t.Fatalf("Local link between levels %d-%d", lvl, lp)
				}
				if f.Pod(r) != f.Pod(pr) {
					t.Fatalf("edge-agg link crosses pods")
				}
			case Global:
				pr, _ := f.Peer(r, p)
				lp := f.Level(pr)
				if !(lvl == 1 && lp == 2 || lvl == 2 && lp == 1) {
					t.Fatalf("Global link between levels %d-%d", lvl, lp)
				}
			}
		}
	}
}

// TestFatTreeNewErrors rejects odd or tiny radix.
func TestFatTreeNewErrors(t *testing.T) {
	if _, err := NewFatTree(5); err == nil {
		t.Error("odd radix accepted")
	}
	if _, err := NewFatTree(2); err == nil {
		t.Error("radix 2 accepted")
	}
}

// TestDragonflyNewErrors rejects degenerate parameters.
func TestDragonflyNewErrors(t *testing.T) {
	if _, err := NewDragonfly(0, 4, 2); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewDragonfly(2, 1, 2); err == nil {
		t.Error("a=1 accepted")
	}
}
