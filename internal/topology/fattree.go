package topology

import "fmt"

// FatTree is a 3-level k-ary folded-Clos fat tree (Al-Fares style): k pods,
// each with k/2 edge and k/2 aggregation switches, and (k/2)^2 core
// switches; k^3/4 terminals. All switches have radix k.
//
// Router IDs: edges first (pod-major), then aggregations (pod-major), then
// cores. Port layout: down ports [0, k/2), up ports [k/2, k). Core switches
// have k down ports (one per pod) and no up ports.
type FatTree struct {
	K int // switch radix, even, >= 4

	half, edges, aggs, cores int
}

// NewFatTree builds a 3-level fat tree from radix-k switches.
func NewFatTree(k int) (*FatTree, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("fattree: radix must be even and >= 4, got %d", k)
	}
	half := k / 2
	return &FatTree{K: k, half: half, edges: k * half, aggs: k * half, cores: half * half}, nil
}

// MustFatTree is NewFatTree that panics on error.
func MustFatTree(k int) *FatTree {
	f, err := NewFatTree(k)
	if err != nil {
		panic(err)
	}
	return f
}

// Name implements Topology.
func (f *FatTree) Name() string { return fmt.Sprintf("fattree-k%d", f.K) }

// NumRouters implements Topology.
func (f *FatTree) NumRouters() int { return f.edges + f.aggs + f.cores }

// NumTerminals implements Topology.
func (f *FatTree) NumTerminals() int { return f.edges * f.half }

// NumPorts implements Topology.
func (f *FatTree) NumPorts() int { return f.K }

// Level returns 0 for edge, 1 for aggregation, 2 for core switches.
func (f *FatTree) Level(r int) int {
	switch {
	case r < f.edges:
		return 0
	case r < f.edges+f.aggs:
		return 1
	default:
		return 2
	}
}

// Pod returns the pod of an edge or aggregation switch, or -1 for cores.
func (f *FatTree) Pod(r int) int {
	switch f.Level(r) {
	case 0:
		return r / f.half
	case 1:
		return (r - f.edges) / f.half
	default:
		return -1
	}
}

// indexInPod returns the within-pod index of an edge or agg switch.
func (f *FatTree) indexInPod(r int) int {
	if f.Level(r) == 0 {
		return r % f.half
	}
	return (r - f.edges) % f.half
}

// PortKind implements Topology.
func (f *FatTree) PortKind(r, p int) LinkKind {
	if p < 0 || p >= f.K {
		return Unused
	}
	switch f.Level(r) {
	case 0:
		if p < f.half {
			return Terminal
		}
		return Local // edge-agg, within pod
	case 1:
		if p < f.half {
			return Local
		}
		return Global // agg-core, between pods
	default:
		if p < f.K {
			return Global
		}
		return Unused
	}
}

// Peer implements Topology.
func (f *FatTree) Peer(r, p int) (int, int) {
	switch f.Level(r) {
	case 0: // edge: up port p reaches agg (p - half) of same pod
		if p < f.half {
			panic("fattree: Peer of terminal port")
		}
		agg := f.edges + f.Pod(r)*f.half + (p - f.half)
		return agg, f.indexInPod(r) // agg down port = edge index
	case 1:
		if p < f.half { // down to edge
			edge := f.Pod(r)*f.half + p
			return edge, f.half + f.indexInPod(r)
		}
		// up to core: agg j's up port m -> core j*half + m, core down port = pod
		core := f.edges + f.aggs + f.indexInPod(r)*f.half + (p - f.half)
		return core, f.Pod(r)
	default: // core: down port p -> pod p's agg j at up port m
		ci := r - f.edges - f.aggs
		j, m := ci/f.half, ci%f.half
		agg := f.edges + p*f.half + j
		return agg, f.half + m
	}
}

// PortTerminal implements Topology.
func (f *FatTree) PortTerminal(r, p int) int {
	if f.Level(r) != 0 || p < 0 || p >= f.half {
		return -1
	}
	return r*f.half + p
}

// TerminalPort implements Topology.
func (f *FatTree) TerminalPort(t int) (int, int) {
	return t / f.half, t % f.half
}

// MinHops implements Topology.
func (f *FatTree) MinHops(a, b int) int {
	if a == b {
		return 0
	}
	la, lb := f.Level(a), f.Level(b)
	pa, pb := f.Pod(a), f.Pod(b)
	switch {
	case la == 0 && lb == 0:
		if pa == pb {
			return 2 // via an agg
		}
		return 4 // via agg, core, agg
	case la == 0 && lb == 1 || la == 1 && lb == 0:
		if pa == pb {
			return 1
		}
		return 3
	case la == 1 && lb == 1:
		if pa == pb {
			return 2
		}
		return 2 // via a shared core when column matches; conservatively 2
	case la == 2 && lb == 2:
		return 2
	case la == 2 || lb == 2:
		// core <-> edge: 2; core <-> agg: 1 if wired, else 3; use the
		// dominant case for weight estimation.
		if la == 2 && lb == 0 || la == 0 && lb == 2 {
			return 2
		}
		return 1
	}
	return 4
}
