package topology

import (
	"fmt"
	"sort"

	"hyperx/internal/rng"
)

// FaultSet is a set of failed router-to-router links. A link failure is
// always bidirectional — both directed halves of the cable are dead — and
// terminal links never fail (a dead terminal link is an endpoint failure,
// not a network fault, and is out of scope for the routing question this
// model answers).
//
// A FaultSet is static for the lifetime of a simulation, mirroring the
// operational reality the fault-tolerance literature assumes: faults are
// detected and disseminated out of band, and routing reconverges against
// a fixed fault picture between failure events. Fault-aware algorithms
// therefore receive the FaultSet at construction time, while the router
// model consults it only to mark output ports dead.
//
// The zero value and a nil *FaultSet are both valid, empty sets; a
// network built against either is bit-identical to a fault-free build.
type FaultSet struct {
	dead  map[[2]int]struct{} // (router, port) directed halves
	links []FailedLink        // canonical bidirectional records
}

// FailedLink is the canonical record of one failed bidirectional link,
// oriented so that RouterA < RouterB.
type FailedLink struct {
	RouterA, PortA int
	RouterB, PortB int
}

// String renders the link as "rA.pA<->rB.pB".
func (l FailedLink) String() string {
	return fmt.Sprintf("r%d.p%d<->r%d.p%d", l.RouterA, l.PortA, l.RouterB, l.PortB)
}

// NewFaultSet returns an empty fault set.
func NewFaultSet() *FaultSet { return &FaultSet{} }

// Add fails the bidirectional link at (r, p), which must be a router-to-
// router port of t. Adding an already-failed link is a no-op.
func (fs *FaultSet) Add(t Topology, r, p int) error {
	switch t.PortKind(r, p) {
	case Local, Global:
	default:
		return fmt.Errorf("faults: router %d port %d is not a router-to-router link", r, p)
	}
	pr, pp := t.Peer(r, p)
	if fs.Dead(r, p) {
		return nil
	}
	if fs.dead == nil {
		fs.dead = make(map[[2]int]struct{})
	}
	fs.dead[[2]int{r, p}] = struct{}{}
	fs.dead[[2]int{pr, pp}] = struct{}{}
	l := FailedLink{RouterA: r, PortA: p, RouterB: pr, PortB: pp}
	if pr < r {
		l = FailedLink{RouterA: pr, PortA: pp, RouterB: r, PortB: p}
	}
	fs.links = append(fs.links, l)
	return nil
}

// Dead reports whether the link out of router r through port p has
// failed. It is nil-receiver safe and returns false for any port kind,
// so callers need not distinguish pristine from faulted builds.
func (fs *FaultSet) Dead(r, p int) bool {
	if fs == nil || fs.dead == nil {
		return false
	}
	_, ok := fs.dead[[2]int{r, p}]
	return ok
}

// Size returns the number of failed bidirectional links.
func (fs *FaultSet) Size() int {
	if fs == nil {
		return 0
	}
	return len(fs.links)
}

// Links returns the failed links in canonical ascending order.
func (fs *FaultSet) Links() []FailedLink {
	if fs == nil {
		return nil
	}
	out := append([]FailedLink(nil), fs.links...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RouterA != out[j].RouterA {
			return out[i].RouterA < out[j].RouterA
		}
		return out[i].PortA < out[j].PortA
	})
	return out
}

// Strings renders Links for manifests and logs.
func (fs *FaultSet) Strings() []string {
	ls := fs.Links()
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.String()
	}
	return out
}

// allLinks enumerates every bidirectional router-to-router link of t
// exactly once, in canonical (router, port) order.
func allLinks(t Topology) []FailedLink {
	var out []FailedLink
	for r := 0; r < t.NumRouters(); r++ {
		for p := 0; p < t.NumPorts(); p++ {
			switch t.PortKind(r, p) {
			case Local, Global:
				pr, pp := t.Peer(r, p)
				if pr > r || (pr == r && pp > p) {
					out = append(out, FailedLink{RouterA: r, PortA: p, RouterB: pr, PortB: pp})
				}
			}
		}
	}
	return out
}

// RandomFaults fails k distinct router-to-router links of t chosen by a
// deterministic shuffle seeded with seed: the same (topology, k, seed)
// always yields the same fault set, on any host.
func RandomFaults(t Topology, k int, seed uint64) (*FaultSet, error) {
	links := allLinks(t)
	if k < 0 || k > len(links) {
		return nil, fmt.Errorf("faults: k=%d out of range (topology has %d links)", k, len(links))
	}
	perm := make([]int, len(links))
	rng.New(seed).Perm(perm)
	fs := NewFaultSet()
	for i := 0; i < k; i++ {
		l := links[perm[i]]
		if err := fs.Add(t, l.RouterA, l.PortA); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// RandomConnectedFaults draws deterministic random fault sets of k links,
// re-deriving the seed until the surviving network is connected (almost
// always the first draw for small k). The resampling sequence is itself
// deterministic, so the result is a pure function of (topology, k, seed).
func RandomConnectedFaults(t Topology, k int, seed uint64) (*FaultSet, error) {
	const maxAttempts = 64
	for a := 0; a < maxAttempts; a++ {
		fs, err := RandomFaults(t, k, rng.DeriveSeed(seed, uint64(a)))
		if err != nil {
			return nil, err
		}
		if Connected(t, fs) {
			return fs, nil
		}
	}
	return nil, fmt.Errorf("faults: no connected fault set of %d links found in %d attempts", k, maxAttempts)
}

// TargetedFaults fails the first k router-to-router links of the given
// router — the "failing switch" scenario where faults cluster instead of
// scattering. It is deterministic by construction.
func TargetedFaults(t Topology, router, k int) (*FaultSet, error) {
	fs := NewFaultSet()
	added := 0
	for p := 0; p < t.NumPorts() && added < k; p++ {
		switch t.PortKind(router, p) {
		case Local, Global:
			if err := fs.Add(t, router, p); err != nil {
				return nil, err
			}
			added++
		}
	}
	if added < k {
		return nil, fmt.Errorf("faults: router %d has only %d router links, need %d", router, added, k)
	}
	return fs, nil
}

// Connected reports whether every router of t can reach every other over
// links that are not in fs (BFS from router 0).
func Connected(t Topology, fs *FaultSet) bool {
	nr := t.NumRouters()
	if nr == 0 {
		return true
	}
	seen := make([]bool, nr)
	queue := make([]int, 0, nr)
	seen[0] = true
	queue = append(queue, 0)
	visited := 1
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for p := 0; p < t.NumPorts(); p++ {
			switch t.PortKind(r, p) {
			case Local, Global:
				if fs.Dead(r, p) {
					continue
				}
				pr, _ := t.Peer(r, p)
				if !seen[pr] {
					seen[pr] = true
					visited++
					queue = append(queue, pr)
				}
			}
		}
	}
	return visited == nr
}
