package topology

import (
	"reflect"
	"testing"
)

func TestFaultSetAddBothDirections(t *testing.T) {
	h := MustHyperX([]int{3, 3}, 1)
	fs := NewFaultSet()
	r := h.RouterAt([]int{0, 0})
	p := h.DimPort(r, 0, 1) // link (0,0) <-> (1,0)
	if err := fs.Add(h, r, p); err != nil {
		t.Fatal(err)
	}
	pr, pp := h.Peer(r, p)
	if !fs.Dead(r, p) || !fs.Dead(pr, pp) {
		t.Error("link failure must kill both directed halves")
	}
	if fs.Size() != 1 {
		t.Errorf("size = %d, want 1", fs.Size())
	}
	// Adding either half again is a no-op.
	if err := fs.Add(h, pr, pp); err != nil {
		t.Fatal(err)
	}
	if fs.Size() != 1 {
		t.Errorf("size after duplicate add = %d, want 1", fs.Size())
	}
	// Terminal links never fail.
	if err := fs.Add(h, r, 0); err == nil {
		t.Error("failing a terminal port must error")
	}
}

func TestFaultSetNilSafe(t *testing.T) {
	var fs *FaultSet
	if fs.Dead(0, 0) || fs.Size() != 0 || fs.Links() != nil {
		t.Error("nil FaultSet must behave as empty")
	}
	if len(fs.Strings()) != 0 {
		t.Error("nil FaultSet Strings must be empty")
	}
	empty := NewFaultSet()
	if empty.Dead(3, 4) || empty.Size() != 0 {
		t.Error("empty FaultSet must report nothing dead")
	}
}

func TestRandomFaultsDeterministic(t *testing.T) {
	h := MustHyperX([]int{4, 4}, 2)
	a, err := RandomFaults(h, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomFaults(h, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Strings(), b.Strings()) {
		t.Error("same (k, seed) must yield the same fault set")
	}
	if a.Size() != 5 {
		t.Errorf("size = %d, want 5", a.Size())
	}
	c, err := RandomFaults(h, 5, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Strings(), c.Strings()) {
		t.Error("different seeds drew identical fault sets (vanishingly unlikely)")
	}
	if _, err := RandomFaults(h, 10_000, 1); err == nil {
		t.Error("k beyond the link count must error")
	}
}

func TestRandomConnectedFaultsStaysConnected(t *testing.T) {
	h := MustHyperX([]int{3, 3}, 1)
	for seed := uint64(1); seed <= 8; seed++ {
		fs, err := RandomConnectedFaults(h, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		if fs.Size() != 3 {
			t.Fatalf("seed %d: size %d", seed, fs.Size())
		}
		if !Connected(h, fs) {
			t.Errorf("seed %d: surviving network disconnected", seed)
		}
	}
}

func TestTargetedFaults(t *testing.T) {
	h := MustHyperX([]int{3, 3}, 1)
	fs, err := TargetedFaults(h, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Size() != 3 {
		t.Fatalf("size = %d, want 3", fs.Size())
	}
	for _, l := range fs.Links() {
		if l.RouterA != 4 && l.RouterB != 4 {
			t.Errorf("link %v does not touch the target router", l)
		}
	}
	// A 3x3 router has 4 router links; asking for 5 must fail.
	if _, err := TargetedFaults(h, 4, 5); err == nil {
		t.Error("k beyond the router degree must error")
	}
}

func TestConnectedDetectsIsolation(t *testing.T) {
	h := MustHyperX([]int{3, 3}, 1)
	if !Connected(h, nil) {
		t.Fatal("pristine network must be connected")
	}
	// Fail every router link of one router: it is now unreachable.
	fs, err := TargetedFaults(h, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Connected(h, fs) {
		t.Error("isolated router not detected")
	}
}
