package topology

import (
	"fmt"
	"strings"
)

// HyperX is the generalized flat integer-lattice topology of Ahn et al.
// (SC '09): L dimensions, each fully connected, with Widths[d] routers per
// dimension and Terms terminals attached to every router.
//
// Router coordinates are mixed-radix numbers over Widths; router IDs place
// dimension 0 as the fastest-varying digit. Port layout per router:
//
//	[0, Terms)                          terminal ports
//	[Terms+off(d), Terms+off(d)+W_d-1)  dimension-d ports, ordered by the
//	                                    peer's coordinate in d (own skipped)
//
// where off(d) = sum of (W_e - 1) for e < d.
type HyperX struct {
	Widths []int // routers per dimension (W_d >= 2)
	Terms  int   // terminals per router (t >= 1)

	dimOff  []int // port offset of each dimension's port block
	nr      int   // number of routers
	radix   int   // ports per router
	strides []int // mixed-radix strides for coordinate <-> id

	tab tables // precomputed digit/port/neighbor lookups (see tables.go)
}

// NewHyperX builds a HyperX with the given per-dimension widths and
// terminals per router.
func NewHyperX(widths []int, terms int) (*HyperX, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("hyperx: need at least one dimension")
	}
	if terms < 1 {
		return nil, fmt.Errorf("hyperx: terminals per router must be >= 1, got %d", terms)
	}
	h := &HyperX{Widths: append([]int(nil), widths...), Terms: terms}
	h.nr = 1
	h.radix = terms
	h.dimOff = make([]int, len(widths))
	h.strides = make([]int, len(widths))
	off := terms
	for d, w := range widths {
		if w < 2 {
			return nil, fmt.Errorf("hyperx: dimension %d width must be >= 2, got %d", d, w)
		}
		if w > 1<<15 {
			return nil, fmt.Errorf("hyperx: dimension %d width %d exceeds table limit %d", d, w, 1<<15)
		}
		h.dimOff[d] = off
		h.strides[d] = h.nr
		off += w - 1
		h.radix += w - 1
		h.nr *= w
	}
	h.buildTables()
	return h, nil
}

// MustHyperX is NewHyperX that panics on configuration error; intended for
// tests and examples with constant parameters.
func MustHyperX(widths []int, terms int) *HyperX {
	h, err := NewHyperX(widths, terms)
	if err != nil {
		panic(err)
	}
	return h
}

// Name implements Topology.
func (h *HyperX) Name() string {
	parts := make([]string, len(h.Widths))
	for i, w := range h.Widths {
		parts[i] = fmt.Sprint(w)
	}
	return fmt.Sprintf("hyperx-%s-t%d", strings.Join(parts, "x"), h.Terms)
}

// NumDims returns the number of dimensions.
func (h *HyperX) NumDims() int { return len(h.Widths) }

// NumRouters implements Topology.
func (h *HyperX) NumRouters() int { return h.nr }

// NumTerminals implements Topology.
func (h *HyperX) NumTerminals() int { return h.nr * h.Terms }

// NumPorts implements Topology.
func (h *HyperX) NumPorts() int { return h.radix }

// Coord writes the mixed-radix coordinate of router r into out (length
// NumDims) and returns it. Passing a caller-owned slice avoids allocation
// in routing hot paths.
func (h *HyperX) Coord(r int, out []int) []int {
	L := len(h.Widths)
	row := h.tab.digits[r*L : r*L+L]
	for d := range out {
		out[d] = int(row[d])
	}
	return out
}

// CoordDigit returns coordinate digit d of router r without materializing
// the full coordinate.
func (h *HyperX) CoordDigit(r, d int) int {
	return int(h.tab.digits[r*len(h.Widths)+d])
}

// RouterAt returns the router ID at the given coordinate.
func (h *HyperX) RouterAt(coord []int) int {
	r := 0
	for d := len(coord) - 1; d >= 0; d-- {
		r = r*h.Widths[d] + coord[d]
	}
	return r
}

// WithDigit returns the router obtained from r by replacing coordinate
// digit d with v.
func (h *HyperX) WithDigit(r, d, v int) int {
	cur := h.CoordDigit(r, d)
	return r + (v-cur)*h.strides[d]
}

// DimPort returns the output port of router r that reaches coordinate
// value v in dimension d. It panics if v equals r's own coordinate.
func (h *HyperX) DimPort(r, d, v int) int {
	w := h.Widths[d]
	p := h.tab.portOf[h.tab.dimBase[d]+h.CoordDigit(r, d)*w+v]
	if p < 0 {
		panic("hyperx: DimPort to own coordinate")
	}
	return int(p)
}

// PortDim decodes a router-link port into its dimension and the peer's
// coordinate value in that dimension. It returns (-1, -1) for terminal
// ports.
func (h *HyperX) PortDim(r, p int) (dim, peerVal int) {
	d := int(h.tab.portDim[p])
	if d < 0 {
		return -1, -1
	}
	own := h.CoordDigit(r, d)
	return d, int(h.tab.peerVal[h.tab.valBase[d]+own*(h.Widths[d]-1)+(p-h.dimOff[d])])
}

// PortKind implements Topology.
func (h *HyperX) PortKind(r, p int) LinkKind {
	switch {
	case p < 0 || p >= h.radix:
		return Unused
	case p < h.Terms:
		return Terminal
	default:
		// Dimension 0 is packaged closest (in-cabinet); call it Local and
		// all higher dimensions Global. Routing does not depend on this;
		// the cost model and channel latencies may.
		if h.tab.portDim[p] == 0 {
			return Local
		}
		return Global
	}
}

// Peer implements Topology.
func (h *HyperX) Peer(r, p int) (int, int) {
	peer := h.PeerRouter(r, p)
	if peer < 0 {
		panic("hyperx: Peer of non-router port")
	}
	d := int(h.tab.portDim[p])
	w := h.Widths[d]
	back := h.tab.portOf[h.tab.dimBase[d]+h.CoordDigit(peer, d)*w+h.CoordDigit(r, d)]
	return peer, int(back)
}

// PeerRouter returns the router on the far side of port p of router r, or
// -1 for terminal ports — a single table load, for routing hot paths that
// do not need the peer's ingress port.
func (h *HyperX) PeerRouter(r, p int) int {
	return int(h.tab.peer[r*h.radix+p])
}

// DimPortBlock returns the first port and port count of dimension d's
// block. Iterating [base, base+n) visits the dimension's peers in
// ascending coordinate order with the router's own digit skipped — the
// same order the deroute loops in internal/routing enumerate laterals, so
// they can walk ports directly instead of re-deriving them per digit.
func (h *HyperX) DimPortBlock(d int) (base, n int) {
	return h.dimOff[d], h.Widths[d] - 1
}

// OfferedPorts returns the largest candidate set any routing decision can
// offer on this topology: every router-link port (minimal ports are part
// of their dimension's block), plus one spare so an algorithm may add a
// terminal/eject entry. Routers size their candidate scratch from this so
// paper-scale radix can never force a mid-decision grow.
func (h *HyperX) OfferedPorts() int {
	return h.radix - h.Terms + 1
}

// PortTerminal implements Topology.
func (h *HyperX) PortTerminal(r, p int) int {
	if p < 0 || p >= h.Terms {
		return -1
	}
	return r*h.Terms + p
}

// TerminalPort implements Topology.
func (h *HyperX) TerminalPort(t int) (int, int) {
	return t / h.Terms, t % h.Terms
}

// MinHops implements Topology: the number of differing coordinate digits,
// since every dimension is fully connected.
func (h *HyperX) MinHops(a, b int) int {
	L := len(h.Widths)
	da := h.tab.digits[a*L : a*L+L]
	db := h.tab.digits[b*L : b*L+L]
	hops := 0
	for d := range da {
		if da[d] != db[d] {
			hops++
		}
	}
	return hops
}

// UnalignedDims appends to buf the dimensions in which routers a and b
// differ, in ascending order, and returns the result.
func (h *HyperX) UnalignedDims(a, b int, buf []int) []int {
	L := len(h.Widths)
	da := h.tab.digits[a*L : a*L+L]
	db := h.tab.digits[b*L : b*L+L]
	for d := range da {
		if da[d] != db[d] {
			buf = append(buf, d)
		}
	}
	return buf
}

// FirstUnalignedDim returns the lowest dimension in which a and b differ,
// or -1 if a == b. Dimension-ordered algorithms traverse dimensions in
// ascending order.
func (h *HyperX) FirstUnalignedDim(a, b int) int {
	L := len(h.Widths)
	da := h.tab.digits[a*L : a*L+L]
	db := h.tab.digits[b*L : b*L+L]
	for d := range da {
		if da[d] != db[d] {
			return d
		}
	}
	return -1
}
