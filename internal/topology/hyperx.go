package topology

import (
	"fmt"
	"strings"
)

// HyperX is the generalized flat integer-lattice topology of Ahn et al.
// (SC '09): L dimensions, each fully connected, with Widths[d] routers per
// dimension and Terms terminals attached to every router.
//
// Router coordinates are mixed-radix numbers over Widths; router IDs place
// dimension 0 as the fastest-varying digit. Port layout per router:
//
//	[0, Terms)                          terminal ports
//	[Terms+off(d), Terms+off(d)+W_d-1)  dimension-d ports, ordered by the
//	                                    peer's coordinate in d (own skipped)
//
// where off(d) = sum of (W_e - 1) for e < d.
type HyperX struct {
	Widths []int // routers per dimension (W_d >= 2)
	Terms  int   // terminals per router (t >= 1)

	dimOff  []int // port offset of each dimension's port block
	nr      int   // number of routers
	radix   int   // ports per router
	strides []int // mixed-radix strides for coordinate <-> id
}

// NewHyperX builds a HyperX with the given per-dimension widths and
// terminals per router.
func NewHyperX(widths []int, terms int) (*HyperX, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("hyperx: need at least one dimension")
	}
	if terms < 1 {
		return nil, fmt.Errorf("hyperx: terminals per router must be >= 1, got %d", terms)
	}
	h := &HyperX{Widths: append([]int(nil), widths...), Terms: terms}
	h.nr = 1
	h.radix = terms
	h.dimOff = make([]int, len(widths))
	h.strides = make([]int, len(widths))
	off := terms
	for d, w := range widths {
		if w < 2 {
			return nil, fmt.Errorf("hyperx: dimension %d width must be >= 2, got %d", d, w)
		}
		h.dimOff[d] = off
		h.strides[d] = h.nr
		off += w - 1
		h.radix += w - 1
		h.nr *= w
	}
	return h, nil
}

// MustHyperX is NewHyperX that panics on configuration error; intended for
// tests and examples with constant parameters.
func MustHyperX(widths []int, terms int) *HyperX {
	h, err := NewHyperX(widths, terms)
	if err != nil {
		panic(err)
	}
	return h
}

// Name implements Topology.
func (h *HyperX) Name() string {
	parts := make([]string, len(h.Widths))
	for i, w := range h.Widths {
		parts[i] = fmt.Sprint(w)
	}
	return fmt.Sprintf("hyperx-%s-t%d", strings.Join(parts, "x"), h.Terms)
}

// NumDims returns the number of dimensions.
func (h *HyperX) NumDims() int { return len(h.Widths) }

// NumRouters implements Topology.
func (h *HyperX) NumRouters() int { return h.nr }

// NumTerminals implements Topology.
func (h *HyperX) NumTerminals() int { return h.nr * h.Terms }

// NumPorts implements Topology.
func (h *HyperX) NumPorts() int { return h.radix }

// Coord writes the mixed-radix coordinate of router r into out (length
// NumDims) and returns it. Passing a caller-owned slice avoids allocation
// in routing hot paths.
func (h *HyperX) Coord(r int, out []int) []int {
	for d, w := range h.Widths {
		out[d] = r % w
		r /= w
	}
	return out
}

// CoordDigit returns coordinate digit d of router r without materializing
// the full coordinate.
func (h *HyperX) CoordDigit(r, d int) int {
	return (r / h.strides[d]) % h.Widths[d]
}

// RouterAt returns the router ID at the given coordinate.
func (h *HyperX) RouterAt(coord []int) int {
	r := 0
	for d := len(coord) - 1; d >= 0; d-- {
		r = r*h.Widths[d] + coord[d]
	}
	return r
}

// WithDigit returns the router obtained from r by replacing coordinate
// digit d with v.
func (h *HyperX) WithDigit(r, d, v int) int {
	cur := h.CoordDigit(r, d)
	return r + (v-cur)*h.strides[d]
}

// DimPort returns the output port of router r that reaches coordinate
// value v in dimension d. It panics if v equals r's own coordinate.
func (h *HyperX) DimPort(r, d, v int) int {
	own := h.CoordDigit(r, d)
	if v == own {
		panic("hyperx: DimPort to own coordinate")
	}
	idx := v
	if v > own {
		idx--
	}
	return h.dimOff[d] + idx
}

// PortDim decodes a router-link port into its dimension and the peer's
// coordinate value in that dimension. It returns (-1, -1) for terminal
// ports.
func (h *HyperX) PortDim(r, p int) (dim, peerVal int) {
	if p < h.Terms {
		return -1, -1
	}
	for d := len(h.Widths) - 1; d >= 0; d-- {
		if p >= h.dimOff[d] {
			idx := p - h.dimOff[d]
			own := h.CoordDigit(r, d)
			if idx >= own {
				idx++
			}
			return d, idx
		}
	}
	return -1, -1
}

// PortKind implements Topology.
func (h *HyperX) PortKind(r, p int) LinkKind {
	switch {
	case p < 0 || p >= h.radix:
		return Unused
	case p < h.Terms:
		return Terminal
	default:
		// Dimension 0 is packaged closest (in-cabinet); call it Local and
		// all higher dimensions Global. Routing does not depend on this;
		// the cost model and channel latencies may.
		if d, _ := h.PortDim(r, p); d == 0 {
			return Local
		}
		return Global
	}
}

// Peer implements Topology.
func (h *HyperX) Peer(r, p int) (int, int) {
	d, v := h.PortDim(r, p)
	if d < 0 {
		panic("hyperx: Peer of non-router port")
	}
	peer := h.WithDigit(r, d, v)
	return peer, h.DimPort(peer, d, h.CoordDigit(r, d))
}

// PortTerminal implements Topology.
func (h *HyperX) PortTerminal(r, p int) int {
	if p < 0 || p >= h.Terms {
		return -1
	}
	return r*h.Terms + p
}

// TerminalPort implements Topology.
func (h *HyperX) TerminalPort(t int) (int, int) {
	return t / h.Terms, t % h.Terms
}

// MinHops implements Topology: the number of differing coordinate digits,
// since every dimension is fully connected.
func (h *HyperX) MinHops(a, b int) int {
	hops := 0
	for d, w := range h.Widths {
		sa := (a / h.strides[d]) % w
		sb := (b / h.strides[d]) % w
		if sa != sb {
			hops++
		}
	}
	return hops
}

// UnalignedDims appends to buf the dimensions in which routers a and b
// differ, in ascending order, and returns the result.
func (h *HyperX) UnalignedDims(a, b int, buf []int) []int {
	for d, w := range h.Widths {
		sa := (a / h.strides[d]) % w
		sb := (b / h.strides[d]) % w
		if sa != sb {
			buf = append(buf, d)
		}
	}
	return buf
}

// FirstUnalignedDim returns the lowest dimension in which a and b differ,
// or -1 if a == b. Dimension-ordered algorithms traverse dimensions in
// ascending order.
func (h *HyperX) FirstUnalignedDim(a, b int) int {
	for d, w := range h.Widths {
		if (a/h.strides[d])%w != (b/h.strides[d])%w {
			return d
		}
	}
	return -1
}
