package topology

// Property-based coverage of the HyperX coordinate algebra. The rest of
// the simulator leans on these identities being exact — router IDs,
// mixed-radix coordinates, and port numbers are converted back and forth
// on every routing decision — so they are checked here over randomized
// topologies and router pairs rather than a handful of fixed examples.
// FuzzCoordRoundTrip extends the same identities to fuzzed inputs; its
// seed corpus lives in testdata/fuzz/FuzzCoordRoundTrip.

import (
	"testing"

	"hyperx/internal/rng"
)

// clampWidths maps arbitrary fuzz/random bytes onto a valid HyperX shape:
// 1-3 dimensions of width 2..9 and 1..4 terminals per router.
func clampWidths(w0, w1, w2, terms uint8) ([]int, int) {
	widths := []int{int(w0%8) + 2}
	if w1%4 != 0 { // three of four shapes get a second dimension
		widths = append(widths, int(w1%8)+2)
	}
	if w2%4 != 0 {
		widths = append(widths, int(w2%8)+2)
	}
	return widths, int(terms%4) + 1
}

// checkCoordIdentities asserts every coordinate/port identity for one
// router of one topology. Shared by the property test and the fuzz target.
func checkCoordIdentities(t *testing.T, h *HyperX, r int) {
	t.Helper()
	coord := h.Coord(r, make([]int, h.NumDims()))
	if got := h.RouterAt(coord); got != r {
		t.Fatalf("%s: RouterAt(Coord(%d)) = %d", h.Name(), r, got)
	}
	for d := range h.Widths {
		if got := h.CoordDigit(r, d); got != coord[d] {
			t.Fatalf("%s: CoordDigit(%d, %d) = %d, coord %v", h.Name(), r, d, got, coord)
		}
		for v := 0; v < h.Widths[d]; v++ {
			w := h.WithDigit(r, d, v)
			if got := h.CoordDigit(w, d); got != v {
				t.Fatalf("%s: WithDigit(%d, %d, %d) has digit %d", h.Name(), r, d, v, got)
			}
			for e := range h.Widths {
				if e != d && h.CoordDigit(w, e) != coord[e] {
					t.Fatalf("%s: WithDigit(%d, %d, %d) disturbed dim %d", h.Name(), r, d, v, e)
				}
			}
			if v == coord[d] {
				continue
			}
			// Port encoding round trip and link symmetry.
			port := h.DimPort(r, d, v)
			if pd, pv := h.PortDim(r, port); pd != d || pv != v {
				t.Fatalf("%s: PortDim(%d, DimPort(%d,%d,%d)) = (%d,%d)", h.Name(), r, r, d, v, pd, pv)
			}
			pr, pp := h.Peer(r, port)
			if pr != w {
				t.Fatalf("%s: Peer(%d,%d) router = %d, want %d", h.Name(), r, port, pr, w)
			}
			if br, bp := h.Peer(pr, pp); br != r || bp != port {
				t.Fatalf("%s: link not symmetric: Peer(%d,%d) = (%d,%d), want (%d,%d)",
					h.Name(), pr, pp, br, bp, r, port)
			}
		}
	}
	// Terminal ports round-trip through their terminal IDs.
	for p := 0; p < h.Terms; p++ {
		term := h.PortTerminal(r, p)
		if tr, tp := h.TerminalPort(term); tr != r || tp != p {
			t.Fatalf("%s: TerminalPort(PortTerminal(%d,%d)) = (%d,%d)", h.Name(), r, p, tr, tp)
		}
	}
}

// TestMinimalHopsProperties: MinHops is exactly the Hamming distance of
// the mixed-radix coordinates, and behaves like a metric that a single
// dimension hop decreases by exactly one.
func TestMinimalHopsProperties(t *testing.T) {
	rs := rng.New(7)
	for trial := 0; trial < 300; trial++ {
		widths, terms := clampWidths(uint8(rs.Intn(256)), uint8(rs.Intn(256)), uint8(rs.Intn(256)), uint8(rs.Intn(256)))
		h := MustHyperX(widths, terms)
		a := rs.Intn(h.NumRouters())
		b := rs.Intn(h.NumRouters())

		// Hamming-distance definition, symmetry, identity.
		want := 0
		for d := range h.Widths {
			if h.CoordDigit(a, d) != h.CoordDigit(b, d) {
				want++
			}
		}
		if got := h.MinHops(a, b); got != want {
			t.Fatalf("%s: MinHops(%d,%d) = %d, want Hamming %d", h.Name(), a, b, got, want)
		}
		if h.MinHops(a, b) != h.MinHops(b, a) {
			t.Fatalf("%s: MinHops not symmetric for (%d,%d)", h.Name(), a, b)
		}
		if h.MinHops(a, a) != 0 {
			t.Fatalf("%s: MinHops(%d,%d) != 0", h.Name(), a, a)
		}

		// UnalignedDims and FirstUnalignedDim agree with MinHops.
		dims := h.UnalignedDims(a, b, nil)
		if len(dims) != want {
			t.Fatalf("%s: UnalignedDims(%d,%d) = %v, want %d dims", h.Name(), a, b, dims, want)
		}
		first := h.FirstUnalignedDim(a, b)
		if want == 0 && first != -1 {
			t.Fatalf("%s: FirstUnalignedDim(%d,%d) = %d for aligned pair", h.Name(), a, b, first)
		}
		if want > 0 && first != dims[0] {
			t.Fatalf("%s: FirstUnalignedDim(%d,%d) = %d, want %d", h.Name(), a, b, first, dims[0])
		}

		// Aligning any unaligned dimension is exactly one hop of progress:
		// every dimension is fully connected, so minimal paths resolve one
		// differing digit per hop.
		for _, d := range dims {
			step := h.WithDigit(a, d, h.CoordDigit(b, d))
			if got := h.MinHops(step, b); got != want-1 {
				t.Fatalf("%s: aligning dim %d of (%d,%d): MinHops = %d, want %d",
					h.Name(), d, a, b, got, want-1)
			}
		}
	}
}

// TestCoordIdentitiesRandom drives the shared identity checker over random
// topologies, complementing the fuzz target with always-on coverage.
func TestCoordIdentitiesRandom(t *testing.T) {
	rs := rng.New(11)
	for trial := 0; trial < 100; trial++ {
		widths, terms := clampWidths(uint8(rs.Intn(256)), uint8(rs.Intn(256)), uint8(rs.Intn(256)), uint8(rs.Intn(256)))
		h := MustHyperX(widths, terms)
		checkCoordIdentities(t, h, rs.Intn(h.NumRouters()))
	}
}

// FuzzCoordRoundTrip fuzzes the coordinate algebra: any (shape, router)
// the clamp admits must satisfy every round-trip identity.
func FuzzCoordRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(2), uint8(1), uint16(0))
	f.Add(uint8(6), uint8(6), uint8(6), uint8(2), uint16(511)) // 8x8x8 t4 far corner
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint16(3))   // width-2 dims collapse to 1D
	f.Add(uint8(7), uint8(4), uint8(0), uint8(3), uint16(80))
	f.Fuzz(func(t *testing.T, w0, w1, w2, terms uint8, router uint16) {
		widths, nt := clampWidths(w0, w1, w2, terms)
		h := MustHyperX(widths, nt)
		checkCoordIdentities(t, h, int(router)%h.NumRouters())
	})
}
