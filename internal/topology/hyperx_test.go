package topology

import (
	"testing"
	"testing/quick"
)

func TestHyperXValidate(t *testing.T) {
	for _, h := range []*HyperX{
		MustHyperX([]int{4}, 2),
		MustHyperX([]int{2, 2}, 1),
		MustHyperX([]int{4, 4, 4}, 4),
		MustHyperX([]int{3, 5, 2}, 3),
		MustHyperX([]int{8, 8, 8}, 8),
	} {
		if err := Validate(h); err != nil {
			t.Errorf("%s: %v", h.Name(), err)
		}
	}
}

func TestHyperXCounts(t *testing.T) {
	h := MustHyperX([]int{8, 8, 8}, 8)
	if h.NumRouters() != 512 {
		t.Errorf("routers = %d, want 512", h.NumRouters())
	}
	if h.NumTerminals() != 4096 {
		t.Errorf("terminals = %d, want 4096 (the paper's evaluation scale)", h.NumTerminals())
	}
	if h.NumPorts() != 8+3*7 {
		t.Errorf("radix = %d, want 29", h.NumPorts())
	}
}

func TestHyperXNewErrors(t *testing.T) {
	if _, err := NewHyperX(nil, 1); err == nil {
		t.Error("no dims: want error")
	}
	if _, err := NewHyperX([]int{1, 4}, 1); err == nil {
		t.Error("width 1: want error")
	}
	if _, err := NewHyperX([]int{4, 4}, 0); err == nil {
		t.Error("0 terminals: want error")
	}
}

// TestHyperXCoordRoundTrip: RouterAt(Coord(r)) == r for every router.
func TestHyperXCoordRoundTrip(t *testing.T) {
	h := MustHyperX([]int{3, 4, 5}, 2)
	buf := make([]int, 3)
	for r := 0; r < h.NumRouters(); r++ {
		c := h.Coord(r, buf)
		if got := h.RouterAt(c); got != r {
			t.Fatalf("RouterAt(Coord(%d)) = %d", r, got)
		}
		for d := range c {
			if h.CoordDigit(r, d) != c[d] {
				t.Fatalf("CoordDigit(%d,%d) = %d, want %d", r, d, h.CoordDigit(r, d), c[d])
			}
		}
	}
}

// TestHyperXDimPortRoundTrip: PortDim inverts DimPort everywhere.
func TestHyperXDimPortRoundTrip(t *testing.T) {
	h := MustHyperX([]int{4, 3, 2}, 3)
	for r := 0; r < h.NumRouters(); r++ {
		for d, w := range h.Widths {
			own := h.CoordDigit(r, d)
			for v := 0; v < w; v++ {
				if v == own {
					continue
				}
				p := h.DimPort(r, d, v)
				gd, gv := h.PortDim(r, p)
				if gd != d || gv != v {
					t.Fatalf("PortDim(DimPort(r=%d,d=%d,v=%d)=%d) = (%d,%d)", r, d, v, p, gd, gv)
				}
			}
		}
	}
}

// TestHyperXMinHopsProperties: symmetry, triangle inequality over one
// intermediate, and the diameter bound (number of dimensions).
func TestHyperXMinHopsProperties(t *testing.T) {
	h := MustHyperX([]int{4, 4, 4}, 4)
	f := func(a, b, c uint32) bool {
		x := int(a) % h.NumRouters()
		y := int(b) % h.NumRouters()
		z := int(c) % h.NumRouters()
		hx := h.MinHops(x, y)
		if hx != h.MinHops(y, x) {
			return false
		}
		if hx > h.NumDims() {
			return false
		}
		return h.MinHops(x, z) <= hx+h.MinHops(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestHyperXPeerReducesDistance: moving toward the destination coordinate
// in any unaligned dimension reduces MinHops by exactly one.
func TestHyperXPeerReducesDistance(t *testing.T) {
	h := MustHyperX([]int{3, 4, 5}, 1)
	f := func(a, b uint32) bool {
		x := int(a) % h.NumRouters()
		y := int(b) % h.NumRouters()
		if x == y {
			return true
		}
		d := h.FirstUnalignedDim(x, y)
		next := h.WithDigit(x, d, h.CoordDigit(y, d))
		return h.MinHops(next, y) == h.MinHops(x, y)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestHyperXUnalignedDims agrees with MinHops and FirstUnalignedDim.
func TestHyperXUnalignedDims(t *testing.T) {
	h := MustHyperX([]int{4, 4}, 2)
	buf := make([]int, 0, 2)
	for a := 0; a < h.NumRouters(); a++ {
		for b := 0; b < h.NumRouters(); b++ {
			dims := h.UnalignedDims(a, b, buf[:0])
			if len(dims) != h.MinHops(a, b) {
				t.Fatalf("UnalignedDims(%d,%d) len %d != MinHops %d", a, b, len(dims), h.MinHops(a, b))
			}
			if len(dims) > 0 && dims[0] != h.FirstUnalignedDim(a, b) {
				t.Fatalf("first unaligned mismatch at (%d,%d)", a, b)
			}
		}
	}
}

// TestHyperXTerminalMapping: terminal <-> (router, port) is a bijection.
func TestHyperXTerminalMapping(t *testing.T) {
	h := MustHyperX([]int{3, 3}, 4)
	seen := make(map[[2]int]bool)
	for term := 0; term < h.NumTerminals(); term++ {
		r, p := h.TerminalPort(term)
		if h.PortTerminal(r, p) != term {
			t.Fatalf("PortTerminal(TerminalPort(%d)) mismatch", term)
		}
		if h.PortKind(r, p) != Terminal {
			t.Fatalf("terminal port %d/%d not Terminal kind", r, p)
		}
		key := [2]int{r, p}
		if seen[key] {
			t.Fatalf("duplicate attachment %v", key)
		}
		seen[key] = true
	}
}

// TestHyperXLinkCount: each dimension-d instance is a full mesh, so total
// bidirectional links = sum over d of prod(W)/W_d * W_d(W_d-1)/2.
func TestHyperXLinkCount(t *testing.T) {
	h := MustHyperX([]int{4, 3, 2}, 1)
	count := 0
	for r := 0; r < h.NumRouters(); r++ {
		for p := h.Terms; p < h.NumPorts(); p++ {
			pr, _ := h.Peer(r, p)
			if pr > r {
				count++
			}
		}
	}
	want := 0
	for d, w := range h.Widths {
		_ = d
		want += h.NumRouters() / w * w * (w - 1) / 2
	}
	if count != want {
		t.Errorf("link count %d, want %d", count, want)
	}
}
