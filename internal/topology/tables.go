package topology

// Precomputed routing tables for HyperX.
//
// Every routing decision converts router IDs to mixed-radix digits and
// digits to port numbers; at paper scale (8x8x8 t=8, radix 29) that
// arithmetic — integer division and modulo per digit, per hop — is the
// single largest CPU cost outside the event kernel. NewHyperX therefore
// precomputes the complete digit/port/neighbor algebra once, and the
// public accessors (CoordDigit, DimPort, PortDim, Peer, MinHops,
// FirstUnalignedDim, ...) become table lookups. The arithmetic
// definitions survive as the *Arith reference implementations below,
// which the property tests replay against the tables over randomized
// shapes (see tables_test.go).
//
// Table footprint is O(routers x radix): at the paper's 512-router scale
// about 60 KiB, dominated by the neighbor table. The per-dimension port
// tables are O(sum W_d^2) and shared by all routers, because a router's
// port layout within a dimension depends only on its own digit there.
type tables struct {
	digits  []uint16 // [r*L + d] -> digit of router r in dimension d
	portOf  []int16  // dimBase[d] + own*W_d + v -> port reaching digit v in dim d (-1 when v == own)
	peerVal []uint16 // valBase[d] + own*(W_d-1) + idx -> peer digit of port dimOff[d]+idx
	peer    []int32  // [r*radix + p] -> peer router over port p (-1 for terminal ports)
	portDim []int8   // [p] -> dimension of port p, -1 for terminal ports

	dimBase []int // portOf block offset per dimension
	valBase []int // peerVal block offset per dimension
}

// buildTables fills the lookup tables from the already-validated shape.
// Called once by NewHyperX; the instance is immutable afterwards.
func (h *HyperX) buildTables() {
	L := len(h.Widths)
	nr, radix := h.nr, h.radix

	h.tab.dimBase = make([]int, L)
	h.tab.valBase = make([]int, L)
	szPort, szVal := 0, 0
	for d, w := range h.Widths {
		h.tab.dimBase[d] = szPort
		h.tab.valBase[d] = szVal
		szPort += w * w
		szVal += w * (w - 1)
	}

	// portOf / peerVal: for each dimension, indexed by the router's own
	// digit — the only part of a router's identity the in-dimension port
	// layout depends on.
	h.tab.portOf = make([]int16, szPort)
	h.tab.peerVal = make([]uint16, szVal)
	for d, w := range h.Widths {
		for own := 0; own < w; own++ {
			for v := 0; v < w; v++ {
				i := h.tab.dimBase[d] + own*w + v
				if v == own {
					h.tab.portOf[i] = -1
					continue
				}
				h.tab.portOf[i] = int16(dimPortArith(h, d, own, v))
			}
			for idx := 0; idx < w-1; idx++ {
				v := idx
				if idx >= own {
					v++
				}
				h.tab.peerVal[h.tab.valBase[d]+own*(w-1)+idx] = uint16(v)
			}
		}
	}

	// portDim: dimension of each router-link port (shared by all routers).
	h.tab.portDim = make([]int8, radix)
	for p := 0; p < radix; p++ {
		h.tab.portDim[p] = -1
		for d := L - 1; d >= 0; d-- {
			if p >= h.dimOff[d] {
				h.tab.portDim[p] = int8(d)
				break
			}
		}
	}

	// digits: the mixed-radix coordinate of every router, flattened.
	h.tab.digits = make([]uint16, nr*L)
	for r := 0; r < nr; r++ {
		v := r
		for d, w := range h.Widths {
			h.tab.digits[r*L+d] = uint16(v % w)
			v /= w
		}
	}

	// peer: the neighbor router across every port.
	h.tab.peer = make([]int32, nr*radix)
	for r := 0; r < nr; r++ {
		row := h.tab.peer[r*radix : (r+1)*radix]
		for p := 0; p < h.Terms; p++ {
			row[p] = -1
		}
		for p := h.Terms; p < radix; p++ {
			d := int(h.tab.portDim[p])
			own := int(h.tab.digits[r*L+d])
			v := int(h.tab.peerVal[h.tab.valBase[d]+own*(h.Widths[d]-1)+(p-h.dimOff[d])])
			row[p] = int32(r + (v-own)*h.strides[d])
		}
	}
}

// dimPortArith is the arithmetic definition of DimPort given the router's
// own digit: the reference the tables are built from and checked against.
func dimPortArith(h *HyperX, d, own, v int) int {
	idx := v
	if v > own {
		idx--
	}
	return h.dimOff[d] + idx
}

// CoordDigitArith, MinHopsArith, PortDimArith, PeerArith, and
// FirstUnalignedDimArith are the pre-table coordinate-arithmetic
// implementations of the corresponding methods. They exist so property
// and fuzz tests can assert table/arithmetic agreement on randomized
// shapes; simulation code must use the table-driven methods.

// CoordDigitArith computes a coordinate digit by division.
func (h *HyperX) CoordDigitArith(r, d int) int {
	return (r / h.strides[d]) % h.Widths[d]
}

// MinHopsArith computes MinHops by per-dimension division.
func (h *HyperX) MinHopsArith(a, b int) int {
	hops := 0
	for d, w := range h.Widths {
		sa := (a / h.strides[d]) % w
		sb := (b / h.strides[d]) % w
		if sa != sb {
			hops++
		}
	}
	return hops
}

// FirstUnalignedDimArith computes FirstUnalignedDim by division.
func (h *HyperX) FirstUnalignedDimArith(a, b int) int {
	for d, w := range h.Widths {
		if (a/h.strides[d])%w != (b/h.strides[d])%w {
			return d
		}
	}
	return -1
}

// PortDimArith decodes a port by scanning the dimension offsets.
func (h *HyperX) PortDimArith(r, p int) (dim, peerVal int) {
	if p < h.Terms {
		return -1, -1
	}
	for d := len(h.Widths) - 1; d >= 0; d-- {
		if p >= h.dimOff[d] {
			idx := p - h.dimOff[d]
			own := h.CoordDigitArith(r, d)
			if idx >= own {
				idx++
			}
			return d, idx
		}
	}
	return -1, -1
}

// PeerArith computes the far side of a router link arithmetically.
func (h *HyperX) PeerArith(r, p int) (int, int) {
	d, v := h.PortDimArith(r, p)
	if d < 0 {
		panic("hyperx: Peer of non-router port")
	}
	own := h.CoordDigitArith(r, d)
	peer := r + (v-own)*h.strides[d]
	return peer, dimPortArith(h, d, v, own)
}
