package topology

// Table/arithmetic agreement tests. The public HyperX accessors are table
// lookups (tables.go); the mixed-radix arithmetic they replaced survives
// as the *Arith reference implementations. These properties assert the
// two agree everywhere over randomized shapes drawn from the same clamp
// the FuzzCoordRoundTrip corpus uses, plus the paper-scale 8x8x8 t=8
// instance, so a table-construction bug cannot hide behind a matching bug
// in the fast path.

import (
	"testing"

	"hyperx/internal/rng"
)

// checkTablesAgainstArith exhaustively compares every table-backed
// accessor with its arithmetic reference for one router.
func checkTablesAgainstArith(t *testing.T, h *HyperX, r int) {
	t.Helper()
	for d := range h.Widths {
		if got, want := h.CoordDigit(r, d), h.CoordDigitArith(r, d); got != want {
			t.Fatalf("%s: CoordDigit(%d,%d) = %d, arith %d", h.Name(), r, d, got, want)
		}
		base, n := h.DimPortBlock(d)
		if base != h.dimOff[d] || n != h.Widths[d]-1 {
			t.Fatalf("%s: DimPortBlock(%d) = (%d,%d), want (%d,%d)",
				h.Name(), d, base, n, h.dimOff[d], h.Widths[d]-1)
		}
		own := h.CoordDigitArith(r, d)
		for v := 0; v < h.Widths[d]; v++ {
			if v == own {
				continue
			}
			if got, want := h.DimPort(r, d, v), dimPortArith(h, d, own, v); got != want {
				t.Fatalf("%s: DimPort(%d,%d,%d) = %d, arith %d", h.Name(), r, d, v, got, want)
			}
		}
	}
	for p := 0; p < h.NumPorts(); p++ {
		gd, gv := h.PortDim(r, p)
		wd, wv := h.PortDimArith(r, p)
		if gd != wd || gv != wv {
			t.Fatalf("%s: PortDim(%d,%d) = (%d,%d), arith (%d,%d)", h.Name(), r, p, gd, gv, wd, wv)
		}
		if gd < 0 {
			if peer := h.PeerRouter(r, p); peer != -1 {
				t.Fatalf("%s: PeerRouter(%d,%d) = %d for terminal port", h.Name(), r, p, peer)
			}
			continue
		}
		gr, gp := h.Peer(r, p)
		wr, wp := h.PeerArith(r, p)
		if gr != wr || gp != wp {
			t.Fatalf("%s: Peer(%d,%d) = (%d,%d), arith (%d,%d)", h.Name(), r, p, gr, gp, wr, wp)
		}
		if peer := h.PeerRouter(r, p); peer != wr {
			t.Fatalf("%s: PeerRouter(%d,%d) = %d, arith %d", h.Name(), r, p, peer, wr)
		}
	}
}

// TestTablesMatchArithRandom: table lookups agree with coordinate
// arithmetic over randomized shapes and routers.
func TestTablesMatchArithRandom(t *testing.T) {
	rs := rng.New(23)
	for trial := 0; trial < 200; trial++ {
		widths, terms := clampWidths(uint8(rs.Intn(256)), uint8(rs.Intn(256)), uint8(rs.Intn(256)), uint8(rs.Intn(256)))
		h := MustHyperX(widths, terms)
		a := rs.Intn(h.NumRouters())
		b := rs.Intn(h.NumRouters())
		checkTablesAgainstArith(t, h, a)
		if got, want := h.MinHops(a, b), h.MinHopsArith(a, b); got != want {
			t.Fatalf("%s: MinHops(%d,%d) = %d, arith %d", h.Name(), a, b, got, want)
		}
		if got, want := h.FirstUnalignedDim(a, b), h.FirstUnalignedDimArith(a, b); got != want {
			t.Fatalf("%s: FirstUnalignedDim(%d,%d) = %d, arith %d", h.Name(), a, b, got, want)
		}
	}
}

// TestTablesMatchArithPaperScale pins agreement on the paper's 8x8x8 t=8
// instance, sampling routers across the ID range including both corners.
func TestTablesMatchArithPaperScale(t *testing.T) {
	h := MustHyperX([]int{8, 8, 8}, 8)
	rs := rng.New(29)
	routers := []int{0, h.NumRouters() - 1}
	for i := 0; i < 30; i++ {
		routers = append(routers, rs.Intn(h.NumRouters()))
	}
	for _, r := range routers {
		checkTablesAgainstArith(t, h, r)
	}
}

// TestOfferedPorts: the candidate-scratch bound is the router-link port
// count plus one, and at paper scale it exceeds the historical fixed cap
// of 64... by being exactly 22 — the point is it is shape-derived, not
// assumed. A wide 1-D shape shows where a fixed 64 would have truncated.
func TestOfferedPorts(t *testing.T) {
	cases := []struct {
		widths []int
		terms  int
		want   int
	}{
		{[]int{4, 4, 4}, 4, 10},
		{[]int{8, 8, 8}, 8, 22},
		{[]int{100}, 2, 100}, // 99 laterals + 1: past any fixed cap of 64
	}
	for _, c := range cases {
		h := MustHyperX(c.widths, c.terms)
		if got := h.OfferedPorts(); got != c.want {
			t.Fatalf("%v t%d: OfferedPorts = %d, want %d", c.widths, c.terms, got, c.want)
		}
		if got := h.OfferedPorts(); got != h.NumPorts()-h.Terms+1 {
			t.Fatalf("%v t%d: OfferedPorts disagrees with radix", c.widths, c.terms)
		}
	}
}
