// Package topology defines the network topologies evaluated in the paper:
// HyperX (the subject), and Dragonfly and 3-level folded-Clos fat tree
// (comparison topologies for the motivation experiments).
//
// A topology is a static description: routers, ports, the wiring between
// them, and the attachment of terminals. The network package turns a
// topology into a live simulation; routing algorithms downcast to the
// concrete topology type for structure-aware decisions.
package topology

// LinkKind classifies a router port.
type LinkKind uint8

const (
	// Unused marks a port with nothing attached.
	Unused LinkKind = iota
	// Terminal marks a port attached to an endpoint.
	Terminal
	// Local marks a short router-to-router link (in-cabinet / in-group).
	Local
	// Global marks a long router-to-router link (between cabinets/groups).
	Global
)

// Topology describes a static network graph.
//
// Ports of a router are numbered 0..NumPorts-1. Terminal ports come first
// by convention in all implementations, but callers should rely on
// PortKind/Peer rather than numbering conventions.
type Topology interface {
	// Name identifies the topology family and configuration.
	Name() string
	// NumRouters returns the number of routers.
	NumRouters() int
	// NumTerminals returns the number of attached endpoints.
	NumTerminals() int
	// NumPorts returns the (uniform) number of ports per router.
	NumPorts() int
	// PortKind reports what is attached to port p of router r.
	PortKind(r, p int) LinkKind
	// Peer returns the router and port on the far side of a router-to-router
	// link. It panics if the port is not a router link.
	Peer(r, p int) (peerRouter, peerPort int)
	// PortTerminal returns the terminal attached to port p of router r, or
	// -1 if the port is not a terminal port.
	PortTerminal(r, p int) int
	// TerminalPort returns the router and port a terminal attaches to.
	TerminalPort(t int) (router, port int)
	// MinHops returns the minimal number of router-to-router hops between
	// two routers.
	MinHops(a, b int) int
}

// Validate exhaustively checks the wiring invariants of a topology: link
// symmetry (Peer is an involution), terminal attachment consistency, and
// MinHops sanity at distance zero. It is used by tests and by network
// assembly in debug builds.
func Validate(t Topology) error {
	for r := 0; r < t.NumRouters(); r++ {
		for p := 0; p < t.NumPorts(); p++ {
			switch t.PortKind(r, p) {
			case Local, Global:
				pr, pp := t.Peer(r, p)
				if pr < 0 || pr >= t.NumRouters() {
					return &WiringError{r, p, "peer router out of range"}
				}
				br, bp := t.Peer(pr, pp)
				if br != r || bp != p {
					return &WiringError{r, p, "link is not symmetric"}
				}
			case Terminal:
				term := t.PortTerminal(r, p)
				if term < 0 || term >= t.NumTerminals() {
					return &WiringError{r, p, "terminal out of range"}
				}
				tr, tp := t.TerminalPort(term)
				if tr != r || tp != p {
					return &WiringError{r, p, "terminal attachment is not symmetric"}
				}
			}
		}
		if h := t.MinHops(r, r); h != 0 {
			return &WiringError{r, -1, "MinHops(r,r) != 0"}
		}
	}
	return nil
}

// WiringError reports a structural defect found by Validate.
type WiringError struct {
	Router, Port int
	Reason       string
}

func (e *WiringError) Error() string {
	return "topology: router " + itoa(e.Router) + " port " + itoa(e.Port) + ": " + e.Reason
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}
