package traffic

import (
	"hyperx/internal/network"
	"hyperx/internal/rng"
	"hyperx/internal/sim"
)

// SizeDist draws packet lengths in flits.
type SizeDist interface {
	Draw(rs *rng.Source) int
	Mean() float64
}

// UniformSize draws uniformly in [Min, Max] flits — the paper's
// evaluation uses 1..16.
type UniformSize struct {
	Min, Max int
}

// Draw implements SizeDist.
func (u UniformSize) Draw(rs *rng.Source) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rs.Intn(u.Max-u.Min+1)
}

// Mean implements SizeDist.
func (u UniformSize) Mean() float64 { return float64(u.Min+u.Max) / 2 }

// FixedSize always draws the same length.
type FixedSize int

// Draw implements SizeDist.
func (f FixedSize) Draw(*rng.Source) int { return int(f) }

// Mean implements SizeDist.
func (f FixedSize) Mean() float64 { return float64(f) }

// Generator drives open-loop steady-state injection: every terminal
// independently injects packets with exponentially distributed
// interarrival gaps whose mean realizes the configured offered load
// (in flits per cycle per terminal, 1.0 = channel capacity).
type Generator struct {
	Net     *network.Network
	Pattern Pattern
	Sizes   SizeDist
	Load    float64

	// OnBirth, if set, observes every generated packet (for stats).
	OnBirth func(src, dst, flits int, at sim.Time)

	stopped bool
	streams []*rng.Source
}

// Start begins injection on every terminal. The first packet of each
// terminal arrives after a randomized initial gap so sources are not
// phase-aligned.
func (g *Generator) Start(seed uint64) {
	if g.Load <= 0 {
		panic("traffic: Load must be positive")
	}
	master := rng.New(seed ^ 0xdeadbeefcafef00d)
	n := len(g.Net.Terminals)
	g.streams = make([]*rng.Source, n)
	for t := 0; t < n; t++ {
		g.streams[t] = master.Derive(uint64(t))
		g.scheduleNext(t, g.initialGap(t))
	}
}

// Stop ceases all future injection; packets already queued still drain.
func (g *Generator) Stop() { g.stopped = true }

// Stopped reports whether the generator has been stopped.
func (g *Generator) Stopped() bool { return g.stopped }

func (g *Generator) initialGap(t int) sim.Time {
	mean := g.Sizes.Mean() / g.Load
	return sim.Time(g.streams[t].Float64() * mean)
}

func (g *Generator) scheduleNext(t int, gap sim.Time) {
	g.Net.K.After(gap, func() { g.inject(t) })
}

func (g *Generator) inject(t int) {
	if g.stopped {
		return
	}
	rs := g.streams[t]
	size := g.Sizes.Draw(rs)
	dst := g.Pattern.Dest(t, rs)
	if dst == t {
		// Patterns avoid self-sends structurally; guard anyway.
		dst = (t + 1) % len(g.Net.Terminals)
	}
	p := g.Net.NewPacket(t, dst, size)
	if g.OnBirth != nil {
		g.OnBirth(t, dst, size, g.Net.K.Now())
	}
	g.Net.Terminals[t].Send(p)
	// Mean gap of size/Load cycles keeps the long-run flit rate at Load.
	gap := sim.Time(rs.Exponential(float64(size) / g.Load))
	if gap < 1 {
		gap = 1
	}
	g.scheduleNext(t, gap)
}

// TotalQueued returns the aggregate source-queue depth across terminals —
// a saturation signal.
func (g *Generator) TotalQueued() int {
	total := 0
	for _, t := range g.Net.Terminals {
		total += t.QueueLen()
	}
	return total
}
