package traffic

import (
	"fmt"

	"hyperx/internal/network"
	"hyperx/internal/rng"
	"hyperx/internal/sim"
)

// SizeDist draws packet lengths in flits.
type SizeDist interface {
	Draw(rs *rng.Source) int
	Mean() float64
}

// UniformSize draws uniformly in [Min, Max] flits — the paper's
// evaluation uses 1..16.
type UniformSize struct {
	Min, Max int
}

// Draw implements SizeDist.
func (u UniformSize) Draw(rs *rng.Source) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rs.Intn(u.Max-u.Min+1)
}

// Mean implements SizeDist.
func (u UniformSize) Mean() float64 { return float64(u.Min+u.Max) / 2 }

// FixedSize always draws the same length.
type FixedSize int

// Draw implements SizeDist.
func (f FixedSize) Draw(*rng.Source) int { return int(f) }

// Mean implements SizeDist.
func (f FixedSize) Mean() float64 { return float64(f) }

// Generator drives open-loop steady-state injection: every terminal
// independently injects packets with exponentially distributed
// interarrival gaps whose mean realizes the configured offered load
// (in flits per cycle per terminal, 1.0 = channel capacity).
type Generator struct {
	//hxlint:state ephemeral — wiring: a restore target drives its own network, rebound at construction
	Net *network.Network
	//hxlint:state ephemeral — stateless value type (no pattern holds mutable state); shared freely across forks
	Pattern Pattern
	//hxlint:state ephemeral — stateless value type; shared freely across forks
	Sizes SizeDist
	Load  float64

	// OnBirth, if set, observes every generated packet (for stats).
	//hxlint:state ephemeral — measurement observer; every run point rebinds its own collector after restore
	OnBirth func(src, dst, flits int, at sim.Time)

	// SelfRedirects counts packets whose pattern mapped a source onto
	// itself and that were redirected to the next terminal. Random
	// patterns re-draw internally so this stays zero for them; only the
	// fixed points of deterministic permutation patterns (e.g. a tornado
	// shift on a width-1 dimension) land here.
	SelfRedirects uint64

	stopped bool
	streams []rng.Source
	carry   []float64 // per-terminal fractional-cycle remainder of the gap sequence
}

// Start begins injection on every terminal. The first packet of each
// terminal arrives after a randomized initial gap so sources are not
// phase-aligned.
func (g *Generator) Start(seed uint64) {
	if g.Load <= 0 {
		panic("traffic: Load must be positive")
	}
	//hxlint:allow seedflow — frozen stream constant: every published sweep CSV (fig6*, resilience) was produced from this exact XOR-separated stream, and rewriting it through DeriveSeed would change every result byte; new streams must use rng.DeriveSeed
	master := rng.New(seed ^ 0xdeadbeefcafef00d)
	n := len(g.Net.Terminals)
	g.streams = master.DeriveN(0, n)
	g.carry = make([]float64, n)
	for t := 0; t < n; t++ {
		g.scheduleNext(t, g.initialGap(t))
	}
}

// Stop ceases all future injection; packets already queued still drain.
func (g *Generator) Stop() { g.stopped = true }

// Stopped reports whether the generator has been stopped.
func (g *Generator) Stopped() bool { return g.stopped }

func (g *Generator) initialGap(t int) sim.Time {
	mean := g.Sizes.Mean() / g.Load
	exact := g.streams[t].Float64() * mean
	gap := sim.Time(exact)
	g.carry[t] = exact - float64(gap)
	return gap
}

// Act implements sim.Actor: each firing injects one packet on terminal a
// and schedules that terminal's next injection. Typed events keep the
// per-packet scheduling cost allocation-free; the op code is unused since
// injection is the generator's only event kind.
func (g *Generator) Act(_ uint8, a, _, _ int32, _ any) {
	g.inject(int(a))
}

func (g *Generator) scheduleNext(t int, gap sim.Time) {
	if sc := g.Net.TerminalShard(t); sc != nil {
		sc.Stage.AfterAct(gap, g, 0, int32(t), 0, 0, nil)
		return
	}
	g.Net.K.AfterAct(gap, g, 0, int32(t), 0, 0, nil)
}

// ShardOf implements sim.Sharded: an injection event touches terminal a's
// source queue and its router's shard-staged state, plus the generator's
// own per-terminal stream — all owned by the terminal's router's shard.
func (g *Generator) ShardOf(_ uint8, a, _, _ int32, _ any) int {
	return g.Net.ShardOfTerminal(int(a))
}

func (g *Generator) inject(t int) {
	if g.stopped {
		return
	}
	rs := &g.streams[t]
	size := g.Sizes.Draw(rs)
	dst := g.Pattern.Dest(t, rs)
	sc := g.Net.TerminalShard(t) // non-nil only during a sharded parallel phase
	if dst == t {
		// A deterministic permutation pattern can map a degenerate source
		// onto itself; redirect to the next terminal and count it rather
		// than silently rewriting the traffic matrix.
		if sc != nil {
			sc.StageCount(&g.SelfRedirects)
		} else {
			g.SelfRedirects++
		}
		dst = (t + 1) % len(g.Net.Terminals)
	}
	p := g.Net.NewPacket(t, dst, size)
	if g.OnBirth != nil {
		if sc != nil {
			sc.StageBirth(g.OnBirth, t, dst, size)
		} else {
			g.OnBirth(t, dst, size, g.Net.K.Now())
		}
	}
	g.Net.Terminals[t].Send(p)
	// Mean gap of size/Load cycles keeps the long-run flit rate at Load.
	// Truncating each exponential draw to whole cycles shaves an expected
	// half cycle per packet, and flooring the result at 1 inflates the
	// short-gap tail — together a load-dependent bias of several percent.
	// Instead carry the fractional remainder into the next draw, so each
	// terminal's integer gap sequence sums to the exact exponential one.
	exact := rs.Exponential(float64(size)/g.Load) + g.carry[t]
	gap := sim.Time(exact)
	g.carry[t] = exact - float64(gap)
	g.scheduleNext(t, gap)
}

// GenState is the generator's complete mutable state in relocatable form,
// the traffic half of the warm-state snapshot contract (docs/STATE.md).
// Pattern and size-distribution values are stateless and re-derivable from
// configuration, so only the per-terminal stream positions, fractional-gap
// carries, and counters are captured. Load is included so a checkpointed
// run resumes at the exact offered load it was saved at; warm-fork callers
// overwrite Generator.Load after Restore to retarget the fork.
type GenState struct {
	Streams       []uint64  `json:"streams"` // per-terminal rng resume tokens
	Carry         []float64 `json:"carry"`
	Load          float64   `json:"load"`
	SelfRedirects uint64    `json:"self_redirects"`
	Stopped       bool      `json:"stopped"`
}

// Snapshot captures the generator's mutable state. The generator's pending
// injection events live on the shared kernel and are captured by the
// network snapshot (the generator is passed as an external actor there).
func (g *Generator) Snapshot() *GenState {
	s := &GenState{
		Streams:       make([]uint64, len(g.streams)),
		Carry:         make([]float64, len(g.carry)),
		Load:          g.Load,
		SelfRedirects: g.SelfRedirects,
		Stopped:       g.stopped,
	}
	for i := range g.streams {
		s.Streams[i] = g.streams[i].State()
	}
	copy(s.Carry, g.carry)
	return s
}

// Restore rewinds the generator to a snapshotted state. The generator must
// have been started (Start derives the stream slab) with the same terminal
// count as the snapshot; streams are restored by value, never re-derived,
// so the resumed gap and destination sequences are exactly the captured
// run's.
func (g *Generator) Restore(s *GenState) error {
	if len(s.Streams) != len(g.streams) || len(s.Carry) != len(g.carry) {
		return fmt.Errorf("traffic: restore: snapshot has %d/%d terminal streams/carries, generator has %d/%d",
			len(s.Streams), len(s.Carry), len(g.streams), len(g.carry))
	}
	for i := range g.streams {
		g.streams[i].SetState(s.Streams[i])
	}
	copy(g.carry, s.Carry)
	g.Load = s.Load
	g.SelfRedirects = s.SelfRedirects
	g.stopped = s.Stopped
	return nil
}

// TotalQueued returns the aggregate source-queue depth across terminals —
// a saturation signal.
func (g *Generator) TotalQueued() int {
	total := 0
	for _, t := range g.Net.Terminals {
		total += t.QueueLen()
	}
	return total
}
