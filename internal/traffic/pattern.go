// Package traffic implements the synthetic traffic patterns of Table 3
// (UR, BC, URB, S2, DCR, plus extras), the random packet-size
// distribution, and the open-loop injection process used for steady-state
// measurements.
//
// Injection is open-loop in the Section 6.1 sense: every terminal
// independently draws exponentially distributed interarrival gaps whose
// mean realizes the configured offered load (flits/cycle/terminal, 1.0 =
// terminal channel capacity), and keeps injecting regardless of network
// state. The network cannot throttle the sources — when offered exceeds
// accepted, source queues grow without bound, which is exactly the
// saturation signal the measurement methodology in internal/stats relies
// on. Injection also continues through the post-window drain phase so the
// measured tail sees realistic back-pressure.
//
// Determinism: Generator.Start derives one rng stream per terminal from
// the run's seed (see internal/rng), so a terminal's destination, size,
// and gap sequence is a pure function of (seed, terminal index) — stable
// across hosts, schedulers, and parallel sweep workers.
package traffic

import (
	"fmt"

	"hyperx/internal/rng"
	"hyperx/internal/topology"
)

// Pattern selects a destination terminal for each packet injected by a
// source terminal.
type Pattern interface {
	Name() string
	Dest(src int, rs *rng.Source) int
}

// UniformRandom (UR) draws destinations uniformly, excluding the source.
type UniformRandom struct {
	N int // number of terminals
}

// Name implements Pattern.
func (u UniformRandom) Name() string { return "UR" }

// Dest implements Pattern.
func (u UniformRandom) Dest(src int, rs *rng.Source) int {
	d := rs.Intn(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// BitComplement (BC) sends every packet to the complement terminal. For a
// power-of-two terminal count this is the bitwise complement; in general
// it is the index-reversal N-1-src, which is identical for powers of two.
// For odd N the middle terminal is its own complement; it re-draws a
// uniform non-self destination instead of self-sending (when rs is nil —
// pattern-only unit tests — the degenerate index is returned as-is and
// the generator's counted redirect guard applies).
type BitComplement struct {
	N int
}

// Name implements Pattern.
func (b BitComplement) Name() string { return "BC" }

// Dest implements Pattern.
func (b BitComplement) Dest(src int, rs *rng.Source) int {
	d := b.N - 1 - src
	if d == src && rs != nil && b.N > 1 {
		d = rs.Intn(b.N - 1)
		if d >= src {
			d++
		}
	}
	return d
}

// comp returns the complement coordinate within a dimension of width w.
func comp(v, w int) int { return w - 1 - v }

// URB is Uniform Random Bisection (Table 3): the destination router takes
// the complement coordinate in the target dimension and uniformly random
// coordinates in all other dimensions, leaving exactly one dimension
// non-load-balanced. URB with Dim=1 (URBy) is the paper's headline
// adversarial case: source-adaptive algorithms cannot see the dimension-1
// congestion from the source router.
type URB struct {
	Topo *topology.HyperX
	Dim  int
}

// Name implements Pattern.
func (u URB) Name() string { return fmt.Sprintf("URB%c", 'x'+rune(u.Dim)) }

// Dest implements Pattern.
//
// With an odd width in the target dimension its middle coordinate is its
// own complement, so the uniform draws can land on the source itself;
// such draws are retried (bounded, then a deterministic non-self
// fallback). Even-width instances never hit the retry, so their draw
// sequence — and thus every existing even-width result — is unchanged.
func (u URB) Dest(src int, rs *rng.Source) int {
	h := u.Topo
	srcRouter := src / h.Terms
	for try := 0; try < 8; try++ {
		dst := srcRouter
		for d, w := range h.Widths {
			if d == u.Dim {
				dst = h.WithDigit(dst, d, comp(h.CoordDigit(srcRouter, d), w))
			} else {
				dst = h.WithDigit(dst, d, rs.Intn(w))
			}
		}
		if t := dst*h.Terms + rs.Intn(h.Terms); t != src {
			return t
		}
	}
	// Only reachable when every non-target dimension has width 1 and
	// Terms == 1 — a degenerate topology; fall back deterministically.
	return (src + 1) % h.NumTerminals()
}

// Swap2 (S2, Table 3): even terminals send to the complement router in
// the X dimension, odd terminals in the Y dimension; all other
// coordinates are unchanged. The traffic is non-load-balanced per
// dimension while most network bandwidth stays unused.
type Swap2 struct {
	Topo *topology.HyperX
}

// Name implements Pattern.
func (s Swap2) Name() string { return "S2" }

// Dest implements Pattern.
func (s Swap2) Dest(src int, _ *rng.Source) int {
	h := s.Topo
	srcRouter := src / h.Terms
	local := src % h.Terms
	dim := src % 2 // even -> X (0), odd -> Y (1)
	dst := h.WithDigit(srcRouter, dim, comp(h.CoordDigit(srcRouter, dim), h.Widths[dim]))
	return dst*h.Terms + local
}

// DCR is Dimension Complement Reverse (Table 3), the worst-case
// admissible pattern for a 3-D HyperX: each X-dimension instance (the row
// of routers sharing (y, z)) distributes its traffic across the
// complement Z-dimension instance — destination coordinates are
// x' = comp(z), y' = comp(y), z' uniform. Under dimension-order routing
// the entire row (W routers x t terminals) funnels through the single
// Y-dimension link at (comp(z), y) -> (comp(z), comp(y)), a W*t : 1
// oversubscription.
type DCR struct {
	Topo *topology.HyperX
}

// Name implements Pattern.
func (p DCR) Name() string { return "DCR" }

// Dest implements Pattern.
func (p DCR) Dest(src int, rs *rng.Source) int {
	h := p.Topo
	if h.NumDims() != 3 {
		panic("traffic: DCR requires a 3-D HyperX")
	}
	srcRouter := src / h.Terms
	x := h.CoordDigit(srcRouter, 0)
	y := h.CoordDigit(srcRouter, 1)
	z := h.CoordDigit(srcRouter, 2)
	_ = x
	dst := srcRouter
	dst = h.WithDigit(dst, 0, comp(z, h.Widths[0]))
	dst = h.WithDigit(dst, 1, comp(y, h.Widths[1]))
	dst = h.WithDigit(dst, 2, rs.Intn(h.Widths[2]))
	return dst*h.Terms + rs.Intn(h.Terms)
}

// Transpose swaps the high and low halves of the terminal index — a
// classic adversarial pattern included for extended coverage. Requires a
// perfect-square terminal count to be meaningful; defined for any N via
// digit swap on the router grid of a 2-or-more-D HyperX.
type Transpose struct {
	Topo *topology.HyperX
}

// Name implements Pattern.
func (t Transpose) Name() string { return "TP" }

// Dest implements Pattern.
func (t Transpose) Dest(src int, _ *rng.Source) int {
	h := t.Topo
	srcRouter := src / h.Terms
	local := src % h.Terms
	dst := srcRouter
	// Swap coordinates of dimension pairs (0,1), (2,3), ...
	for d := 0; d+1 < h.NumDims(); d += 2 {
		a := h.CoordDigit(srcRouter, d)
		b := h.CoordDigit(srcRouter, d+1)
		if h.Widths[d] == h.Widths[d+1] {
			dst = h.WithDigit(dst, d, b)
			dst = h.WithDigit(dst, d+1, a)
		}
	}
	return dst*h.Terms + local
}

// Hotspot sends a configurable fraction of traffic to a single hot
// terminal and the rest uniformly — the localized-congestion scenario of
// Section 3.2 (a small high-bandwidth job embedded in background
// traffic).
type Hotspot struct {
	N        int     // number of terminals
	Hot      int     // the hot terminal
	Fraction float64 // probability of targeting the hot terminal
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "HS" }

// Dest implements Pattern.
func (h Hotspot) Dest(src int, rs *rng.Source) int {
	if src != h.Hot && rs.Float64() < h.Fraction {
		return h.Hot
	}
	d := rs.Intn(h.N - 1)
	if d >= src {
		d++
	}
	return d
}

// Tornado shifts each coordinate halfway around its dimension, the
// classic pattern that defeats minimal routing on rings; on fully
// connected dimensions it concentrates load on one link per dimension.
type Tornado struct {
	Topo *topology.HyperX
}

// Name implements Pattern.
func (t Tornado) Name() string { return "TOR" }

// Dest implements Pattern.
func (t Tornado) Dest(src int, _ *rng.Source) int {
	h := t.Topo
	srcRouter := src / h.Terms
	local := src % h.Terms
	dst := srcRouter
	for d, w := range h.Widths {
		v := (h.CoordDigit(srcRouter, d) + w/2) % w
		dst = h.WithDigit(dst, d, v)
	}
	return dst*h.Terms + local
}
