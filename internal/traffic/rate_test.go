package traffic

import (
	"math"
	"testing"

	"hyperx/internal/network"
	"hyperx/internal/rng"
	"hyperx/internal/routing"
	"hyperx/internal/sim"
	"hyperx/internal/topology"
)

// TestRealizedInjectionRate: the open-loop generator must realize the
// configured offered load to within 0.5%. Truncating each exponential
// gap (and flooring at one cycle) biased the realized rate by several
// percent at high load; the fractional-remainder carry removes it.
func TestRealizedInjectionRate(t *testing.T) {
	const horizon = 500_000
	for _, load := range []float64{0.3, 0.9} {
		h := topology.MustHyperX([]int{2, 2}, 2)
		k := sim.NewKernel()
		n, err := network.New(k, network.Config{Topo: h, Alg: routing.NewDOR(h), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		var flits int64
		g := &Generator{
			Net:     n,
			Pattern: UniformRandom{N: h.NumTerminals()},
			Sizes:   UniformSize{Min: 1, Max: 16},
			Load:    load,
			OnBirth: func(_, _, f int, _ sim.Time) { flits += int64(f) },
		}
		g.Start(7)
		k.Run(horizon)
		g.Stop()
		realized := float64(flits) / (horizon * float64(h.NumTerminals()))
		if rel := math.Abs(realized-load) / load; rel > 0.005 {
			t.Errorf("load %.1f: realized %.5f (%.2f%% off, want within 0.5%%)",
				load, realized, 100*rel)
		}
		if g.SelfRedirects != 0 {
			t.Errorf("load %.1f: UR produced %d self-redirects", load, g.SelfRedirects)
		}
	}
}

// selfPattern always maps a source onto itself — the degenerate case the
// generator's counted redirect guard exists for.
type selfPattern struct{}

func (selfPattern) Name() string                    { return "self" }
func (selfPattern) Dest(src int, _ *rng.Source) int { return src }

func TestSelfRedirectCounted(t *testing.T) {
	h := topology.MustHyperX([]int{2}, 1)
	k := sim.NewKernel()
	n, err := network.New(k, network.Config{Topo: h, Alg: routing.NewDOR(h), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var dsts []int
	g := &Generator{
		Net:     n,
		Pattern: selfPattern{},
		Sizes:   FixedSize(1),
		Load:    0.5,
		OnBirth: func(src, dst, _ int, _ sim.Time) {
			if dst == src {
				t.Fatal("self-send escaped the guard")
			}
			dsts = append(dsts, dst)
		},
	}
	g.Start(3)
	k.Run(500)
	g.Stop()
	if g.SelfRedirects == 0 || int(g.SelfRedirects) != len(dsts) {
		t.Errorf("SelfRedirects = %d, births = %d; every self-send must be counted",
			g.SelfRedirects, len(dsts))
	}
}

// TestBitComplementOddRedraws: for odd N the middle terminal is its own
// complement and must re-draw a uniform non-self destination; every other
// source keeps the exact complement.
func TestBitComplementOddRedraws(t *testing.T) {
	b := BitComplement{N: 9}
	rs := rng.New(5)
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		d := b.Dest(4, rs)
		if d == 4 {
			t.Fatal("odd-N middle terminal sent to itself")
		}
		if d < 0 || d >= 9 {
			t.Fatalf("destination %d out of range", d)
		}
		seen[d] = true
	}
	if len(seen) != 8 {
		t.Errorf("redraw covered %d destinations, want all 8 non-self", len(seen))
	}
	for src := 0; src < 9; src++ {
		if src == 4 {
			continue
		}
		if d := b.Dest(src, rs); d != 8-src {
			t.Errorf("BC(%d) = %d, want %d", src, d, 8-src)
		}
	}
}

// TestURBOddWidthNoSelf: with an odd width the target dimension's middle
// coordinate is its own complement, so the uniform draws can land on the
// source; URB must retry rather than self-send.
func TestURBOddWidthNoSelf(t *testing.T) {
	h := topology.MustHyperX([]int{3, 3}, 1)
	for dim := 0; dim < 2; dim++ {
		u := URB{Topo: h, Dim: dim}
		rs := rng.New(uint64(dim + 1))
		for src := 0; src < h.NumTerminals(); src++ {
			for i := 0; i < 200; i++ {
				d := u.Dest(src, rs)
				if d == src {
					t.Fatalf("dim %d: URB returned self for src %d", dim, src)
				}
				sr, dr := src/h.Terms, d/h.Terms
				if h.CoordDigit(dr, dim) != h.Widths[dim]-1-h.CoordDigit(sr, dim) {
					t.Fatalf("dim %d: target coordinate not complemented", dim)
				}
			}
		}
	}
}

// TestURBDegenerateFallback: when every non-target dimension has width 1
// and Terms is 1, the middle source has literally no URB-admissible
// destination; the deterministic fallback picks the next terminal.
func TestURBDegenerateFallback(t *testing.T) {
	h := topology.MustHyperX([]int{3}, 1)
	u := URB{Topo: h, Dim: 0}
	rs := rng.New(1)
	if d := u.Dest(1, rs); d != 2 {
		t.Errorf("degenerate fallback gave %d, want 2", d)
	}
}
