package traffic

import (
	"testing"
	"testing/quick"

	"hyperx/internal/rng"
	"hyperx/internal/topology"
)

func TestUniformRandomExcludesSelfAndCovers(t *testing.T) {
	u := UniformRandom{N: 64}
	rs := rng.New(1)
	seen := make([]bool, 64)
	for i := 0; i < 20000; i++ {
		src := i % 64
		d := u.Dest(src, rs)
		if d == src {
			t.Fatal("UR returned self")
		}
		if d < 0 || d >= 64 {
			t.Fatalf("UR out of range: %d", d)
		}
		seen[d] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("destination %d never drawn", i)
		}
	}
}

// TestBitComplementInvolution: BC is its own inverse and matches the
// bitwise complement for powers of two.
func TestBitComplementInvolution(t *testing.T) {
	b := BitComplement{N: 256}
	for src := 0; src < 256; src++ {
		d := b.Dest(src, nil)
		if b.Dest(d, nil) != src {
			t.Fatalf("BC not an involution at %d", src)
		}
		if d != (^src)&255 {
			t.Fatalf("BC(%d) = %d, want bitwise complement %d", src, d, (^src)&255)
		}
	}
}

// TestURBTargetsComplementDim: the destination router complements exactly
// the target dimension; other dims may be anything.
func TestURBTargetsComplementDim(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 4)
	for dim := 0; dim < 3; dim++ {
		u := URB{Topo: h, Dim: dim}
		rs := rng.New(7)
		f := func(s uint32) bool {
			src := int(s) % h.NumTerminals()
			d := u.Dest(src, rs)
			sr, dr := src/h.Terms, d/h.Terms
			return h.CoordDigit(dr, dim) == h.Widths[dim]-1-h.CoordDigit(sr, dim)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("dim %d: %v", dim, err)
		}
	}
}

// TestURBNamesMatchPaper: URBy means BC in Y, UR elsewhere.
func TestURBNames(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 4)
	for dim, want := range []string{"URBx", "URBy", "URBz"} {
		if got := (URB{Topo: h, Dim: dim}).Name(); got != want {
			t.Errorf("URB dim %d name %q, want %q", dim, got, want)
		}
	}
}

// TestSwap2Structure: even terminals swap in X, odd in Y, all other
// coordinates and the local index unchanged.
func TestSwap2Structure(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 4)
	s := Swap2{Topo: h}
	for src := 0; src < h.NumTerminals(); src++ {
		d := s.Dest(src, nil)
		sr, dr := src/h.Terms, d/h.Terms
		if src%h.Terms != d%h.Terms {
			t.Fatalf("S2 changed local index at %d", src)
		}
		dim := src % 2
		for e := 0; e < 3; e++ {
			sc, dc := h.CoordDigit(sr, e), h.CoordDigit(dr, e)
			if e == dim {
				if dc != h.Widths[e]-1-sc {
					t.Fatalf("S2 src %d: dim %d not complemented", src, e)
				}
			} else if sc != dc {
				t.Fatalf("S2 src %d: dim %d changed", src, e)
			}
		}
	}
}

// TestDCRStructure: x' = comp(z), y' = comp(y), z' free; never self.
func TestDCRStructure(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 4)
	p := DCR{Topo: h}
	rs := rng.New(3)
	for i := 0; i < 5000; i++ {
		src := i % h.NumTerminals()
		d := p.Dest(src, rs)
		sr, dr := src/h.Terms, d/h.Terms
		if h.CoordDigit(dr, 0) != 3-h.CoordDigit(sr, 2) {
			t.Fatalf("DCR x' != comp(z) at %d", src)
		}
		if h.CoordDigit(dr, 1) != 3-h.CoordDigit(sr, 1) {
			t.Fatalf("DCR y' != comp(y) at %d", src)
		}
	}
}

// TestDCRFunnelsUnderDOR verifies the property the paper uses to explain
// DOR's 1/(W*t) collapse: after aligning X, the entire X-instance's
// traffic crosses one Y link. We count, over all sources in one
// X-instance, the distinct (router, Y-target) pairs their DOR paths use
// at the Y stage — it must be exactly one.
func TestDCRFunnelsUnderDOR(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4, 4}, 4)
	p := DCR{Topo: h}
	rs := rng.New(5)
	links := map[[2]int]bool{}
	y, z := 1, 2 // the X instance with y=1, z=2
	for x := 0; x < 4; x++ {
		for l := 0; l < h.Terms; l++ {
			src := (h.RouterAt([]int{x, y, z}))*h.Terms + l
			d := p.Dest(src, rs)
			dr := d / h.Terms
			// DOR: align X first -> router (x', y, z), then Y link.
			xAligned := h.RouterAt([]int{h.CoordDigit(dr, 0), y, z})
			links[[2]int{xAligned, h.CoordDigit(dr, 1)}] = true
		}
	}
	if len(links) != 1 {
		t.Errorf("DCR+DOR Y-stage uses %d distinct links, want exactly 1 (the W*t:1 funnel)", len(links))
	}
}

// TestTornadoShift: each coordinate shifts by half the width.
func TestTornadoShift(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 2)
	tor := Tornado{Topo: h}
	for src := 0; src < h.NumTerminals(); src++ {
		d := tor.Dest(src, nil)
		sr, dr := src/h.Terms, d/h.Terms
		for e := 0; e < 2; e++ {
			if h.CoordDigit(dr, e) != (h.CoordDigit(sr, e)+2)%4 {
				t.Fatalf("tornado shift wrong at %d dim %d", src, e)
			}
		}
	}
}

// TestTransposeInvolution on a square grid.
func TestTransposeInvolution(t *testing.T) {
	h := topology.MustHyperX([]int{4, 4}, 2)
	tp := Transpose{Topo: h}
	for src := 0; src < h.NumTerminals(); src++ {
		if tp.Dest(tp.Dest(src, nil), nil) != src {
			t.Fatalf("transpose not an involution at %d", src)
		}
	}
}

// TestHotspotFraction: roughly the configured fraction hits the hot node
// and the hot node never targets itself.
func TestHotspotFraction(t *testing.T) {
	h := Hotspot{N: 64, Hot: 5, Fraction: 0.3}
	rs := rng.New(2)
	hits, total := 0, 0
	for i := 0; i < 30000; i++ {
		src := i % 64
		d := h.Dest(src, rs)
		if d == src {
			t.Fatal("hotspot returned self")
		}
		if src == 5 {
			continue
		}
		total++
		if d == 5 {
			hits++
		}
	}
	frac := float64(hits) / float64(total)
	// UR picks the hot node occasionally too, so expect slightly > 0.3.
	if frac < 0.28 || frac > 0.36 {
		t.Errorf("hot fraction %.3f, want ~0.30-0.32", frac)
	}
}

// TestSizeDists: bounds and means.
func TestSizeDists(t *testing.T) {
	rs := rng.New(9)
	u := UniformSize{Min: 1, Max: 16}
	if u.Mean() != 8.5 {
		t.Errorf("mean %v", u.Mean())
	}
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		v := u.Draw(rs)
		if v < 1 || v > 16 {
			t.Fatalf("size %d out of range", v)
		}
		sum += v
	}
	if m := float64(sum) / n; m < 8.3 || m > 8.7 {
		t.Errorf("empirical mean %.2f", m)
	}
	f := FixedSize(4)
	if f.Draw(rs) != 4 || f.Mean() != 4 {
		t.Error("FixedSize broken")
	}
}
