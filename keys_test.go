package hyperx

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateKeys = flag.Bool("update-keys", false, "rewrite testdata/checkpoint_keys.txt from the current key functions (an intentional cache-format bump; see docs/STATE.md)")

// keyCases pins the exact canonical key strings for a spread of
// configurations: the defaults, hex-float edge loads (0.0 renders
// 0x0p+00, 1.0 renders 0x1p+00), a faulted config, and the fork
// variants. Every case is a distinct stability contract.
func keyCases() []struct {
	name string
	key  string
} {
	base := Config{Widths: []int{4, 4}, Terms: 2, Algorithm: "DimWAR", Seed: 1}
	faulted := base
	faulted.Algorithm = "OmniWAR"
	faulted.Faults = 2
	faulted.FaultSeed = 9
	opts := RunOpts{Warmup: 1000, Window: 1000}
	loads := []float64{0.0, 0.5, 1.0}
	return []struct {
		name string
		key  string
	}{
		{"point-default", PointKey(Config{}, "UR", 0.5, RunOpts{})},
		{"point-small", PointKey(base, "UR", 0.5, opts)},
		{"point-load-zero", PointKey(base, "UR", 0.0, opts)},
		{"point-load-one", PointKey(base, "URBy", 1.0, opts)},
		{"point-faulted", PointKey(faulted, "UR", 0.5, opts)},
		{"point-sharded-same-as-serial", PointKey(base, "UR", 0.5, RunOpts{Warmup: 1000, Window: 1000, Shards: 4})},
		{"point-windowed-same-as-serial", PointKey(base, "UR", 0.5, RunOpts{Warmup: 1000, Window: 1000, Shards: 4, ShardWindow: 50})},
		{"thpt-default", ThptKey(Config{}, "DCR", RunOpts{})},
		{"thpt-small", ThptKey(base, "BC", opts)},
		{"curve-pristine-fork", CurveKey(base, "UR", loads, opts, ForkOpts{})},
		{"curve-warm-fork", CurveKey(base, "UR", loads, opts, ForkOpts{WarmCycles: 500, WarmLoad: 0.25, Settle: 100})},
		{"curve-faulted", CurveKey(faulted, "S2", loads, opts, ForkOpts{})},
	}
}

// TestCheckpointKeyStability locks the canonical key strings against the
// golden file. These strings are the on-disk cache contract: hxserved
// derives job identities from them, and persistent caches in the wild
// are addressed by them. If this test fails, either restore the key
// functions or — when the change is an intentional semantic bump —
// bump checkpointVersion, rerun with -update-keys, and record the bump
// in docs/STATE.md (old caches become unreachable, which is the point:
// a changed key must never silently serve stale results).
func TestCheckpointKeyStability(t *testing.T) {
	cases := keyCases()
	golden := filepath.Join("testdata", "checkpoint_keys.txt")

	if *updateKeys {
		var b strings.Builder
		b.WriteString("# Canonical checkpoint/cache key strings, pinned by TestCheckpointKeyStability.\n")
		b.WriteString("# Regenerate with: go test -run TestCheckpointKeyStability -update-keys\n")
		b.WriteString("# A diff here is a cache-format change; see docs/STATE.md before committing one.\n")
		for _, c := range cases {
			fmt.Fprintf(&b, "%s\t%s\n", c.name, c.key)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden key file (run with -update-keys to create it): %v", err)
	}
	want := map[string]string{}
	var order []string
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, key, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[name] = key
		order = append(order, name)
	}
	if len(order) != len(cases) {
		t.Errorf("golden file has %d keys, test table has %d — rerun -update-keys after reconciling", len(order), len(cases))
	}
	for _, c := range cases {
		g, ok := want[c.name]
		if !ok {
			t.Errorf("%s: missing from golden file", c.name)
			continue
		}
		if g != c.key {
			t.Errorf("%s: key changed\n  golden:  %s\n  current: %s\nthis breaks every existing cache; see docs/STATE.md", c.name, g, c.key)
		}
	}
}

// TestExportedKeysMatchInternal pins the exported accessors to the
// internal key functions including defaulting: the exported forms apply
// withDefaults exactly as the sweep paths do, so hxserved's job
// identities address the same cache cells the facade files.
func TestExportedKeysMatchInternal(t *testing.T) {
	cfg := Config{Widths: []int{4, 4}, Terms: 2, Algorithm: "DimWAR", Seed: 1}
	opts := RunOpts{Warmup: 1000, Window: 1000}
	loads := []float64{0.1, 0.2}

	if got, want := PointKey(cfg, "UR", 0.1, opts), pointKey(cfg.withDefaults(), "UR", 0.1, opts.withDefaults()); got != want {
		t.Errorf("PointKey:\n  %s\n  %s", got, want)
	}
	if got, want := ThptKey(cfg, "UR", opts), thptKey(cfg.withDefaults(), "UR", opts.withDefaults()); got != want {
		t.Errorf("ThptKey:\n  %s\n  %s", got, want)
	}
	o := opts.withDefaults()
	if got, want := CurveKey(cfg, "UR", loads, opts, ForkOpts{}), curveKey(cfg.withDefaults(), "UR", loads, o, ForkOpts{}.withDefaults(o)); got != want {
		t.Errorf("CurveKey:\n  %s\n  %s", got, want)
	}

	// Shards stays excluded through the exported surface too.
	sharded := opts
	sharded.Shards = 8
	if PointKey(cfg, "UR", 0.1, opts) != PointKey(cfg, "UR", 0.1, sharded) {
		t.Error("PointKey depends on Shards; serial and sharded runs must share cache cells")
	}
}

// TestShardWindowExcludedFromCheckpointKey: like Shards, the barrier
// window width never affects results (TestShardedWindowWidths proves the
// bit-identical fingerprint), so every key function must ignore it — a
// cache written at one width serves runs at every other, including
// serial-written caches served to windowed runs.
func TestShardWindowExcludedFromCheckpointKey(t *testing.T) {
	cfg := Config{Widths: []int{4, 4}, Terms: 2, Algorithm: "DimWAR", Seed: 1}
	opts := RunOpts{Warmup: 1000, Window: 1000}
	loads := []float64{0.1, 0.2}
	for _, w := range []int{1, 5, 50, 1000} {
		windowed := opts
		windowed.Shards = 4
		windowed.ShardWindow = w
		if PointKey(cfg, "UR", 0.1, opts) != PointKey(cfg, "UR", 0.1, windowed) {
			t.Errorf("PointKey depends on ShardWindow=%d; all widths must share cache cells", w)
		}
		if ThptKey(cfg, "UR", opts) != ThptKey(cfg, "UR", windowed) {
			t.Errorf("ThptKey depends on ShardWindow=%d", w)
		}
		if CurveKey(cfg, "UR", loads, opts, ForkOpts{}) != CurveKey(cfg, "UR", loads, windowed, ForkOpts{}) {
			t.Errorf("CurveKey depends on ShardWindow=%d", w)
		}
	}
}
