package hyperx

import (
	"context"
	"fmt"

	"hyperx/internal/harness"
)

// Manifest is the observability record of a parallel run: pool shape,
// wall time, and per-job wall time / simulated cycles / events executed /
// events-per-second. See internal/harness for field documentation; write
// it with its WriteJSON method.
type Manifest = harness.Manifest

// SweepOpts configures the parallel execution of a sweep; it does not
// affect the measured results, only how fast they arrive and what gets
// reported along the way.
type SweepOpts struct {
	// Workers bounds the worker pool (the -j flag of cmd/hxsweep);
	// 0 means GOMAXPROCS. Results are bit-identical at any worker count.
	Workers int
	// Progress, when non-nil, receives a one-line status per completed
	// job (cmd/hxsweep points it at stderr).
	Progress func(line string)

	// Fork, when non-nil, switches RunLoadSweepParallel to warm-fork
	// execution: each (pattern, algorithm) curve becomes one job that
	// builds a single instance, snapshots it, and restores per load point
	// (see ForkOpts for the pristine vs warm modes and their determinism
	// contracts). Parallelism then spans curves rather than points.
	Fork *ForkOpts

	// CheckpointDir, when non-empty, persists every completed result to
	// that directory and serves already-present results from it, so a
	// killed sweep rerun with identical flags resumes where it stopped
	// and still emits a byte-identical CSV. The manifest marks served
	// jobs as cached and records the directory in its provenance block.
	CheckpointDir string

	// Store, when non-nil, is used instead of opening CheckpointDir —
	// the sweep service passes its long-lived store here so cache-access
	// counters aggregate across every job the daemon runs.
	Store *CheckpointStore

	// Flight, when non-nil, deduplicates concurrent identical cell
	// computations across sweeps sharing the group: each cell's
	// compute-and-save runs under its checkpoint key, so two overlapping
	// service jobs submitted simultaneously simulate every shared cell
	// exactly once. Jobs served by another sweep's in-flight computation
	// are marked cached in the manifest, like store hits.
	Flight *harness.Flight

	// OnEvent, when non-nil, receives a structured progress event per
	// resolved job — what the service streams to clients. See
	// harness.Event.
	OnEvent func(harness.Event)
}

// stampFaults records the fault set a Config implies on the manifest, so
// every result file names the exact links that were dead while it was
// produced. No-op for pristine configurations; fault selection is
// deterministic in (Widths, Faults, FaultSeed), so this reproduces the
// same list the simulation instances used without rebuilding a network.
func stampFaults(cfg Config, m *Manifest) {
	if m == nil || cfg.Faults == 0 {
		return
	}
	if fs, err := BuildFaults(cfg); err == nil && fs != nil {
		m.Faults = fs.Strings()
	}
}

// openSweepStore opens the checkpoint store a SweepOpts asks for — a
// shared instance takes precedence over a directory path — or returns
// nil when checkpointing is off.
func openSweepStore(po SweepOpts) (*CheckpointStore, error) {
	if po.Store != nil {
		return po.Store, nil
	}
	if po.CheckpointDir == "" {
		return nil, nil
	}
	return OpenCheckpointDir(po.CheckpointDir)
}

// runCell funnels one cell's compute-and-save through the sweep's
// singleflight group when one is configured; shared reports that the
// value came from a concurrent identical computation in another sweep
// (callers mark such jobs cached). Without a group it just computes.
func runCell[T any](fl *harness.Flight, key string, compute func() (T, error)) (rec T, shared bool, err error) {
	if fl == nil {
		rec, err = compute()
		return rec, false, err
	}
	v, shared, err := fl.Do(key, func() (any, error) { return compute() })
	if err != nil {
		var zero T
		return zero, false, err
	}
	return v.(T), shared, nil
}

// stampProvenance fills the manifest's provenance block: the execution
// mode, the fork parameters when forking, and the checkpoint origin of
// any cached jobs. A plain cold sweep with no store leaves the block nil
// (the historical manifest shape).
func stampProvenance(m *Manifest, mode string, cfg Config, fk *ForkOpts, store *CheckpointStore, rr *harness.RunResult) {
	if m == nil {
		return
	}
	cached := 0
	for _, jr := range rr.Jobs {
		if jr.Done && jr.Outcome.Cached {
			cached++
		}
	}
	if mode == "cold" && store == nil && cached == 0 {
		return
	}
	p := &harness.Provenance{Mode: mode, CachedJobs: cached}
	if fk != nil {
		p.WarmSeed = cfg.Seed
		p.ForkCycles = fk.WarmCycles
		p.ForkLoad = fk.WarmLoad
		p.ForkSettle = fk.Settle
	}
	if store != nil {
		p.ResumedFrom = store.Dir()
	}
	m.Provenance = p
}

// runLoadSweepForked is the warm-fork execution of RunLoadSweepParallel:
// one job per (pattern, algorithm) curve, each forking a shared snapshot
// per load point serially in ascending load order (see ForkOpts for the
// two modes and their determinism contracts). The worker pool parallelizes
// across curves; the early-stop rule is the natural serial one inside each
// curve, so no speculation is needed or run.
func runLoadSweepForked(ctx context.Context, cfg Config, patterns, algs []string, loads []float64, opts RunOpts, po SweepOpts, store *CheckpointStore) ([]Curve, *Manifest, error) {
	fk := po.Fork.withDefaults(opts.withDefaults())
	mode := "pristine-fork"
	if fk.WarmCycles > 0 {
		mode = "warm-fork"
	}
	type curveID struct{ pat, alg string }
	ids := make([]curveID, 0, len(patterns)*len(algs))
	for _, pat := range patterns {
		for _, alg := range algs {
			ids = append(ids, curveID{pat, alg})
		}
	}

	keyOpts := opts.withDefaults()
	jobs := make([]harness.Job, 0, len(ids))
	for c, id := range ids {
		ccfg := cfg
		ccfg.Algorithm = id.alg
		jobs = append(jobs, harness.Job{
			Curve: c,
			Point: 0,
			Label: fmt.Sprintf("%s/%s curve[%s]", id.pat, id.alg, mode),
			Seed:  ccfg.Seed,
			Run: func(jctx context.Context) (harness.Outcome, error) {
				key := curveKey(ccfg, id.pat, loads, keyOpts, fk)
				if store != nil {
					var rec curveRecord
					if ok, err := store.Load(key, &rec); err != nil {
						return harness.Outcome{}, err
					} else if ok {
						return harness.Outcome{
							Cached:    true,
							Cycles:    rec.Stats.Cycles,
							Events:    rec.Stats.Events,
							Delivered: rec.Stats.Delivered,
							Dropped:   rec.Stats.Dropped,
							Value:     rec.Points,
						}, nil
					}
				}
				rec, shared, err := runCell(po.Flight, key, func() (curveRecord, error) {
					pts, st, err := runCurveWarmFork(jctx, ccfg, id.pat, loads, opts, fk)
					if err != nil {
						return curveRecord{}, err
					}
					if store != nil {
						if err := store.Save(key, curveRecord{Points: pts, Stats: st}); err != nil {
							return curveRecord{}, err
						}
					}
					return curveRecord{Points: pts, Stats: st}, nil
				})
				if err != nil {
					return harness.Outcome{}, err
				}
				return harness.Outcome{
					Cached:    shared,
					Cycles:    rec.Stats.Cycles,
					Events:    rec.Stats.Events,
					Delivered: rec.Stats.Delivered,
					Dropped:   rec.Stats.Dropped,
					Value:     rec.Points,
				}, nil
			},
		})
	}

	rr, err := harness.Run(ctx, jobs, harness.Options{Workers: po.Workers, Progress: po.Progress, OnEvent: po.OnEvent})
	if rr != nil {
		stampFaults(cfg, rr.Manifest)
		stampProvenance(rr.Manifest, mode, cfg, &fk, store, rr)
	}
	if err != nil {
		var m *Manifest
		if rr != nil {
			m = rr.Manifest
		}
		return nil, m, err
	}

	curves := make([]Curve, len(ids))
	for c, id := range ids {
		curves[c] = Curve{Pattern: id.pat, Algorithm: id.alg}
	}
	for _, jr := range rr.Jobs {
		if jr.Done {
			curves[jr.Job.Curve].Points = jr.Outcome.Value.([]LoadPoint)
		}
	}
	return curves, rr.Manifest, nil
}

// Curve is one load-latency line of a Figure 6 panel: the sweep of one
// traffic pattern under one routing algorithm, truncated after its first
// saturated point exactly like the serial RunLoadSweep output.
type Curve struct {
	Pattern   string
	Algorithm string
	Points    []LoadPoint
}

// RunLoadSweepParallel measures the patterns × algorithms grid of
// load-latency curves on a bounded worker pool. Every (pattern,
// algorithm, load) triple is an independent simulation seeded exactly as
// the serial path seeds it, so the returned curves are bit-identical to
// calling RunLoadSweep once per (pattern, algorithm) — at any worker
// count. Points past a curve's first confirmed saturation are run
// speculatively and cancelled once saturation is known; a point at or
// below the eventual curve end is never cancelled (see internal/harness).
// Curves are returned in pattern-major order.
func RunLoadSweepParallel(ctx context.Context, cfg Config, patterns, algs []string, loads []float64, opts RunOpts, po SweepOpts) ([]Curve, *Manifest, error) {
	cfg = cfg.withDefaults()
	store, err := openSweepStore(po)
	if err != nil {
		return nil, nil, err
	}
	if po.Fork != nil {
		return runLoadSweepForked(ctx, cfg, patterns, algs, loads, opts, po, store)
	}
	type curveID struct{ pat, alg string }
	ids := make([]curveID, 0, len(patterns)*len(algs))
	for _, pat := range patterns {
		for _, alg := range algs {
			ids = append(ids, curveID{pat, alg})
		}
	}

	keyOpts := opts.withDefaults()
	jobs := make([]harness.Job, 0, len(ids)*len(loads))
	for c, id := range ids {
		ccfg := cfg
		ccfg.Algorithm = id.alg
		for li, load := range loads {
			jobs = append(jobs, harness.Job{
				Curve: c,
				Point: li,
				Label: fmt.Sprintf("%s/%s@%.3f", id.pat, id.alg, load),
				Seed:  ccfg.Seed,
				Run: func(jctx context.Context) (harness.Outcome, error) {
					key := pointKey(ccfg, id.pat, load, keyOpts)
					if store != nil {
						var rec pointRecord
						if ok, err := store.Load(key, &rec); err != nil {
							return harness.Outcome{}, err
						} else if ok {
							return harness.Outcome{
								Saturated: rec.Point.Saturated,
								Cached:    true,
								Cycles:    rec.Stats.Cycles,
								Events:    rec.Stats.Events,
								Delivered: rec.Stats.Delivered,
								Dropped:   rec.Stats.Dropped,
								Value:     rec.Point,
							}, nil
						}
					}
					rec, shared, err := runCell(po.Flight, key, func() (pointRecord, error) {
						pt, st, err := runLoadPointCtx(jctx, ccfg, id.pat, load, opts)
						if err != nil {
							return pointRecord{}, err
						}
						if store != nil {
							if err := store.Save(key, pointRecord{Point: pt, Stats: st}); err != nil {
								return pointRecord{}, err
							}
						}
						return pointRecord{Point: pt, Stats: st}, nil
					})
					if err != nil {
						return harness.Outcome{}, err
					}
					return harness.Outcome{
						Saturated: rec.Point.Saturated,
						Cached:    shared,
						Cycles:    rec.Stats.Cycles,
						Events:    rec.Stats.Events,
						Delivered: rec.Stats.Delivered,
						Dropped:   rec.Stats.Dropped,
						Value:     rec.Point,
					}, nil
				},
			})
		}
	}
	harness.SortForSpeculation(jobs)

	rr, err := harness.Run(ctx, jobs, harness.Options{
		Workers:   po.Workers,
		EarlyStop: true,
		Progress:  po.Progress,
		OnEvent:   po.OnEvent,
	})
	if rr != nil {
		stampFaults(cfg, rr.Manifest)
		stampProvenance(rr.Manifest, "cold", cfg, nil, store, rr)
	}
	if err != nil {
		var m *Manifest
		if rr != nil {
			m = rr.Manifest
		}
		return nil, m, err
	}

	// Reassemble in (curve, point) order and truncate each curve at its
	// first saturated point — the serial early-stop rule.
	byCurve := make(map[int]map[int]harness.JobResult, len(ids))
	for _, jr := range rr.Jobs {
		if byCurve[jr.Job.Curve] == nil {
			byCurve[jr.Job.Curve] = make(map[int]harness.JobResult, len(loads))
		}
		byCurve[jr.Job.Curve][jr.Job.Point] = jr
	}
	curves := make([]Curve, len(ids))
	for c, id := range ids {
		curves[c] = Curve{Pattern: id.pat, Algorithm: id.alg}
		for li := range loads {
			jr, ok := byCurve[c][li]
			if !ok || !jr.Done {
				break
			}
			pt := jr.Outcome.Value.(LoadPoint)
			curves[c].Points = append(curves[c].Points, pt)
			if pt.Saturated {
				break
			}
		}
	}
	return curves, rr.Manifest, nil
}

// ThroughputGrid is the Figure 6g measurement: accepted throughput at
// full offered load for every pattern × algorithm cell, with
// Values[p][a] corresponding to Patterns[p] under Algorithms[a].
type ThroughputGrid struct {
	Patterns   []string
	Algorithms []string
	Values     [][]float64
}

// RunThroughputGrid measures saturated throughput (offered load 1.0) for
// every pattern × algorithm cell on a bounded worker pool. Each cell is
// an independent simulation seeded exactly as RunThroughput seeds it, so
// every Values entry is bit-identical to the corresponding serial call,
// at any worker count. SweepOpts.CheckpointDir persists and serves cells
// exactly like the load-sweep paths. A cell that did not complete is an
// error naming the cell — never a silent 0.0, which would be
// indistinguishable from a measured zero throughput.
func RunThroughputGrid(ctx context.Context, cfg Config, patterns, algs []string, opts RunOpts, po SweepOpts) (*ThroughputGrid, *Manifest, error) {
	cfg = cfg.withDefaults()
	store, err := openSweepStore(po)
	if err != nil {
		return nil, nil, err
	}
	keyOpts := opts.withDefaults()
	jobs := make([]harness.Job, 0, len(patterns)*len(algs))
	for pi, pat := range patterns {
		for ai, alg := range algs {
			ccfg := cfg
			ccfg.Algorithm = alg
			jobs = append(jobs, harness.Job{
				Curve: pi*len(algs) + ai, // one cell per curve: no early stop
				Point: 0,
				Label: fmt.Sprintf("%s/%s@1.000", pat, alg),
				Seed:  ccfg.Seed,
				Run: func(jctx context.Context) (harness.Outcome, error) {
					key := thptKey(ccfg, pat, keyOpts)
					if store != nil {
						var rec thptRecord
						if ok, err := store.Load(key, &rec); err != nil {
							return harness.Outcome{}, err
						} else if ok {
							return harness.Outcome{
								Cached:    true,
								Cycles:    rec.Stats.Cycles,
								Events:    rec.Stats.Events,
								Delivered: rec.Stats.Delivered,
								Dropped:   rec.Stats.Dropped,
								Value:     rec.Value,
							}, nil
						}
					}
					rec, shared, err := runCell(po.Flight, key, func() (thptRecord, error) {
						th, st, err := runThroughputCtx(jctx, ccfg, pat, opts)
						if err != nil {
							return thptRecord{}, err
						}
						if store != nil {
							if err := store.Save(key, thptRecord{Value: th, Stats: st}); err != nil {
								return thptRecord{}, err
							}
						}
						return thptRecord{Value: th, Stats: st}, nil
					})
					if err != nil {
						return harness.Outcome{}, err
					}
					return harness.Outcome{
						Cached:    shared,
						Cycles:    rec.Stats.Cycles,
						Events:    rec.Stats.Events,
						Delivered: rec.Stats.Delivered,
						Dropped:   rec.Stats.Dropped,
						Value:     rec.Value,
					}, nil
				},
			})
		}
	}

	rr, err := harness.Run(ctx, jobs, harness.Options{Workers: po.Workers, Progress: po.Progress, OnEvent: po.OnEvent})
	if rr != nil {
		stampFaults(cfg, rr.Manifest)
		stampProvenance(rr.Manifest, "cold", cfg, nil, store, rr)
	}
	if err != nil {
		var m *Manifest
		if rr != nil {
			m = rr.Manifest
		}
		return nil, m, err
	}

	grid, err := assembleGrid(rr, patterns, algs)
	if err != nil {
		return nil, rr.Manifest, err
	}
	return grid, rr.Manifest, nil
}

// assembleGrid reassembles completed harness jobs into the throughput
// grid. A cell that did not complete is an error naming the cell — never
// a silently skipped Values entry left at 0.0, which a reader could not
// distinguish from a measured zero throughput.
func assembleGrid(rr *harness.RunResult, patterns, algs []string) (*ThroughputGrid, error) {
	grid := &ThroughputGrid{
		Patterns:   append([]string(nil), patterns...),
		Algorithms: append([]string(nil), algs...),
		Values:     make([][]float64, len(patterns)),
	}
	for pi := range patterns {
		grid.Values[pi] = make([]float64, len(algs))
	}
	for _, jr := range rr.Jobs {
		pi, ai := jr.Job.Curve/len(algs), jr.Job.Curve%len(algs)
		if !jr.Done {
			return nil, fmt.Errorf("hyperx: throughput grid: cell %s/%s did not complete", patterns[pi], algs[ai])
		}
		grid.Values[pi][ai] = jr.Outcome.Value.(float64)
	}
	return grid, nil
}

// ResiliencePoint is one cell of the resilience experiment: one routing
// algorithm measured at a fixed offered load with Faults failed links
// injected. DeliveredFrac is the survival headline — the fraction of all
// packets injected over the run (warmup included) that reached their
// destination; fault-aware algorithms hold it at 1.0 while detect-and-drop
// baselines shed exactly the traffic that met a dead minimal hop.
type ResiliencePoint struct {
	Algorithm string
	Faults    int
	FaultSet  []string // the injected links, "rA.pA<->rB.pB"
	LoadPoint LoadPoint
}

// DeliveredFrac returns delivered/(delivered+dropped), or 1 when the run
// moved no packets at all.
func (p ResiliencePoint) DeliveredFrac() float64 {
	total := p.LoadPoint.Delivered + p.LoadPoint.Dropped
	if total == 0 {
		return 1
	}
	return float64(p.LoadPoint.Delivered) / float64(total)
}

// RunResilienceSweep measures the graceful-degradation experiment: every
// algorithm × fault-count cell at one fixed offered load, for k = 0..
// maxFaults failed links. Fault sets are nested in spirit but drawn
// independently per k (each k uses the deterministic seeded selection of
// BuildFaults with the same FaultSeed), so the k axis is reproducible run
// to run. Each cell is an independent simulation — results are
// bit-identical at any worker count — and cells never early-stop: a
// saturated or lossy cell is itself the measurement. Points are returned
// grouped by algorithm in input order, ascending k; a cell that did not
// complete is an error naming the cell, never a silently absent point.
// SweepOpts.CheckpointDir persists and serves cells exactly like the
// load-sweep paths (a resilience cell shares its key — and so its cache
// entry — with the identical cold-sweep load point, because both run the
// same simulation).
func RunResilienceSweep(ctx context.Context, cfg Config, patternName string, algs []string, maxFaults int, load float64, opts RunOpts, po SweepOpts) ([]ResiliencePoint, *Manifest, error) {
	cfg = cfg.withDefaults()
	store, err := openSweepStore(po)
	if err != nil {
		return nil, nil, err
	}
	// Resolve every fault set up front: the lists go into the points (and
	// errors surface before any simulation time is spent).
	faultSets := make([][]string, maxFaults+1)
	for k := 1; k <= maxFaults; k++ {
		fcfg := cfg
		fcfg.Faults = k
		fs, err := BuildFaults(fcfg)
		if err != nil {
			return nil, nil, fmt.Errorf("hyperx: resilience sweep k=%d: %w", k, err)
		}
		faultSets[k] = fs.Strings()
	}

	keyOpts := opts.withDefaults()
	jobs := make([]harness.Job, 0, len(algs)*(maxFaults+1))
	for ai, alg := range algs {
		for k := 0; k <= maxFaults; k++ {
			ccfg := cfg
			ccfg.Algorithm = alg
			ccfg.Faults = k
			jobs = append(jobs, harness.Job{
				Curve: ai,
				Point: k,
				Label: fmt.Sprintf("%s/%s@%.2f k=%d", patternName, alg, load, k),
				Seed:  ccfg.Seed,
				Run: func(jctx context.Context) (harness.Outcome, error) {
					// ccfg.Faults is inside configKey, so this is the same key
					// the cold sweep would use for the identical simulation.
					key := pointKey(ccfg, patternName, load, keyOpts)
					if store != nil {
						var rec pointRecord
						if ok, err := store.Load(key, &rec); err != nil {
							return harness.Outcome{}, err
						} else if ok {
							return harness.Outcome{
								Saturated: rec.Point.Saturated,
								Cached:    true,
								Cycles:    rec.Stats.Cycles,
								Events:    rec.Stats.Events,
								Delivered: rec.Stats.Delivered,
								Dropped:   rec.Stats.Dropped,
								Value:     rec.Point,
							}, nil
						}
					}
					rec, shared, err := runCell(po.Flight, key, func() (pointRecord, error) {
						pt, st, err := runLoadPointCtx(jctx, ccfg, patternName, load, opts)
						if err != nil {
							return pointRecord{}, err
						}
						if store != nil {
							if err := store.Save(key, pointRecord{Point: pt, Stats: st}); err != nil {
								return pointRecord{}, err
							}
						}
						return pointRecord{Point: pt, Stats: st}, nil
					})
					if err != nil {
						return harness.Outcome{}, err
					}
					return harness.Outcome{
						Saturated: rec.Point.Saturated,
						Cached:    shared,
						Cycles:    rec.Stats.Cycles,
						Events:    rec.Stats.Events,
						Delivered: rec.Stats.Delivered,
						Dropped:   rec.Stats.Dropped,
						Value:     rec.Point,
					}, nil
				},
			})
		}
	}

	rr, err := harness.Run(ctx, jobs, harness.Options{Workers: po.Workers, Progress: po.Progress, OnEvent: po.OnEvent})
	if rr != nil {
		// The manifest records the largest injected fault set: stamp it
		// through the same helper every other sweep uses (deterministic in
		// (Widths, Faults, FaultSeed), so it reproduces faultSets[maxFaults]).
		fcfg := cfg
		fcfg.Faults = maxFaults
		stampFaults(fcfg, rr.Manifest)
		stampProvenance(rr.Manifest, "cold", cfg, nil, store, rr)
	}
	if err != nil {
		var m *Manifest
		if rr != nil {
			m = rr.Manifest
		}
		return nil, m, err
	}

	points, err := assembleResilience(rr, algs, maxFaults, faultSets)
	if err != nil {
		return points, rr.Manifest, err
	}
	return points, rr.Manifest, nil
}

// assembleResilience reassembles completed harness jobs into resilience
// points, grouped by algorithm in input order with ascending k. A cell
// that did not complete is an error naming the cell — never a silently
// absent point, which would quietly shorten a degradation curve.
func assembleResilience(rr *harness.RunResult, algs []string, maxFaults int, faultSets [][]string) ([]ResiliencePoint, error) {
	points := make([]ResiliencePoint, 0, len(algs)*(maxFaults+1))
	byCell := make(map[[2]int]harness.JobResult, len(rr.Jobs))
	for _, jr := range rr.Jobs {
		byCell[[2]int{jr.Job.Curve, jr.Job.Point}] = jr
	}
	for ai, alg := range algs {
		for k := 0; k <= maxFaults; k++ {
			jr, ok := byCell[[2]int{ai, k}]
			if !ok || !jr.Done {
				return points, fmt.Errorf("hyperx: resilience sweep: cell %s k=%d did not complete", alg, k)
			}
			points = append(points, ResiliencePoint{
				Algorithm: alg,
				Faults:    k,
				FaultSet:  faultSets[k],
				LoadPoint: jr.Outcome.Value.(LoadPoint),
			})
		}
	}
	return points, nil
}
