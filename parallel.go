package hyperx

import (
	"context"
	"fmt"

	"hyperx/internal/harness"
)

// Manifest is the observability record of a parallel run: pool shape,
// wall time, and per-job wall time / simulated cycles / events executed /
// events-per-second. See internal/harness for field documentation; write
// it with its WriteJSON method.
type Manifest = harness.Manifest

// SweepOpts configures the parallel execution of a sweep; it does not
// affect the measured results, only how fast they arrive and what gets
// reported along the way.
type SweepOpts struct {
	// Workers bounds the worker pool (the -j flag of cmd/hxsweep);
	// 0 means GOMAXPROCS. Results are bit-identical at any worker count.
	Workers int
	// Progress, when non-nil, receives a one-line status per completed
	// job (cmd/hxsweep points it at stderr).
	Progress func(line string)
}

// Curve is one load-latency line of a Figure 6 panel: the sweep of one
// traffic pattern under one routing algorithm, truncated after its first
// saturated point exactly like the serial RunLoadSweep output.
type Curve struct {
	Pattern   string
	Algorithm string
	Points    []LoadPoint
}

// RunLoadSweepParallel measures the patterns × algorithms grid of
// load-latency curves on a bounded worker pool. Every (pattern,
// algorithm, load) triple is an independent simulation seeded exactly as
// the serial path seeds it, so the returned curves are bit-identical to
// calling RunLoadSweep once per (pattern, algorithm) — at any worker
// count. Points past a curve's first confirmed saturation are run
// speculatively and cancelled once saturation is known; a point at or
// below the eventual curve end is never cancelled (see internal/harness).
// Curves are returned in pattern-major order.
func RunLoadSweepParallel(ctx context.Context, cfg Config, patterns, algs []string, loads []float64, opts RunOpts, po SweepOpts) ([]Curve, *Manifest, error) {
	cfg = cfg.withDefaults()
	type curveID struct{ pat, alg string }
	ids := make([]curveID, 0, len(patterns)*len(algs))
	for _, pat := range patterns {
		for _, alg := range algs {
			ids = append(ids, curveID{pat, alg})
		}
	}

	jobs := make([]harness.Job, 0, len(ids)*len(loads))
	for c, id := range ids {
		ccfg := cfg
		ccfg.Algorithm = id.alg
		for li, load := range loads {
			jobs = append(jobs, harness.Job{
				Curve: c,
				Point: li,
				Label: fmt.Sprintf("%s/%s@%.3f", id.pat, id.alg, load),
				Seed:  ccfg.Seed,
				Run: func(jctx context.Context) (harness.Outcome, error) {
					pt, st, err := runLoadPointCtx(jctx, ccfg, id.pat, load, opts)
					if err != nil {
						return harness.Outcome{}, err
					}
					return harness.Outcome{
						Saturated: pt.Saturated,
						Cycles:    st.Cycles,
						Events:    st.Events,
						Value:     pt,
					}, nil
				},
			})
		}
	}
	harness.SortForSpeculation(jobs)

	rr, err := harness.Run(ctx, jobs, harness.Options{
		Workers:   po.Workers,
		EarlyStop: true,
		Progress:  po.Progress,
	})
	if err != nil {
		var m *Manifest
		if rr != nil {
			m = rr.Manifest
		}
		return nil, m, err
	}

	// Reassemble in (curve, point) order and truncate each curve at its
	// first saturated point — the serial early-stop rule.
	byCurve := make(map[int]map[int]harness.JobResult, len(ids))
	for _, jr := range rr.Jobs {
		if byCurve[jr.Job.Curve] == nil {
			byCurve[jr.Job.Curve] = make(map[int]harness.JobResult, len(loads))
		}
		byCurve[jr.Job.Curve][jr.Job.Point] = jr
	}
	curves := make([]Curve, len(ids))
	for c, id := range ids {
		curves[c] = Curve{Pattern: id.pat, Algorithm: id.alg}
		for li := range loads {
			jr, ok := byCurve[c][li]
			if !ok || !jr.Done {
				break
			}
			pt := jr.Outcome.Value.(LoadPoint)
			curves[c].Points = append(curves[c].Points, pt)
			if pt.Saturated {
				break
			}
		}
	}
	return curves, rr.Manifest, nil
}

// ThroughputGrid is the Figure 6g measurement: accepted throughput at
// full offered load for every pattern × algorithm cell, with
// Values[p][a] corresponding to Patterns[p] under Algorithms[a].
type ThroughputGrid struct {
	Patterns   []string
	Algorithms []string
	Values     [][]float64
}

// RunThroughputGrid measures saturated throughput (offered load 1.0) for
// every pattern × algorithm cell on a bounded worker pool. Each cell is
// an independent simulation seeded exactly as RunThroughput seeds it, so
// every Values entry is bit-identical to the corresponding serial call,
// at any worker count.
func RunThroughputGrid(ctx context.Context, cfg Config, patterns, algs []string, opts RunOpts, po SweepOpts) (*ThroughputGrid, *Manifest, error) {
	cfg = cfg.withDefaults()
	jobs := make([]harness.Job, 0, len(patterns)*len(algs))
	for pi, pat := range patterns {
		for ai, alg := range algs {
			ccfg := cfg
			ccfg.Algorithm = alg
			jobs = append(jobs, harness.Job{
				Curve: pi*len(algs) + ai, // one cell per curve: no early stop
				Point: 0,
				Label: fmt.Sprintf("%s/%s@1.000", pat, alg),
				Seed:  ccfg.Seed,
				Run: func(jctx context.Context) (harness.Outcome, error) {
					th, st, err := runThroughputCtx(jctx, ccfg, pat, opts)
					if err != nil {
						return harness.Outcome{}, err
					}
					return harness.Outcome{Cycles: st.Cycles, Events: st.Events, Value: th}, nil
				},
			})
		}
	}

	rr, err := harness.Run(ctx, jobs, harness.Options{Workers: po.Workers, Progress: po.Progress})
	if err != nil {
		var m *Manifest
		if rr != nil {
			m = rr.Manifest
		}
		return nil, m, err
	}

	grid := &ThroughputGrid{
		Patterns:   append([]string(nil), patterns...),
		Algorithms: append([]string(nil), algs...),
		Values:     make([][]float64, len(patterns)),
	}
	for pi := range patterns {
		grid.Values[pi] = make([]float64, len(algs))
	}
	for _, jr := range rr.Jobs {
		if !jr.Done {
			continue
		}
		pi, ai := jr.Job.Curve/len(algs), jr.Job.Curve%len(algs)
		grid.Values[pi][ai] = jr.Outcome.Value.(float64)
	}
	return grid, rr.Manifest, nil
}
