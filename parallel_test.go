package hyperx

import (
	"context"
	"reflect"
	"testing"
)

// TestLoadRangeExact: grid points are generated as i*step, so they carry
// no accumulated float error — index i is exactly (i+1)*step and every
// standard step lands exactly on 1.0 at the top.
func TestLoadRangeExact(t *testing.T) {
	for _, step := range []float64{0.02, 0.05, 0.1, 0.2, 0.25} {
		r := LoadRange(step)
		for i, l := range r {
			if want := float64(i+1) * step; l != want {
				t.Errorf("LoadRange(%v)[%d] = %v, want exactly %v", step, i, l, want)
			}
		}
		if last := r[len(r)-1]; last != 1.0 {
			t.Errorf("LoadRange(%v) endpoint = %v, want exactly 1.0", step, last)
		}
	}
}

// TestRunLoadSweepParallelMatchesSerial: the tentpole determinism claim —
// for multiple worker counts and seeds, the parallel sweep is
// byte-identical to the serial RunLoadSweep, including where the curve
// ends (early stop at first saturation).
func TestRunLoadSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 1500, Window: 1500}
	loads := LoadRange(0.2)
	const pattern, alg = "UR", "VAL" // VAL saturates ~0.5: exercises early stop

	serial := make(map[uint64][]LoadPoint)
	for _, seed := range []uint64{1, 9} {
		cfg := DefaultScale()
		cfg.Algorithm = alg
		cfg.Seed = seed
		pts, err := RunLoadSweep(cfg, pattern, loads, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) == 0 || len(pts) == len(loads) && !pts[len(pts)-1].Saturated {
			t.Fatalf("seed %d: want a curve ending in saturation to exercise early stop, got %+v", seed, pts)
		}
		serial[seed] = pts
	}

	cases := []struct {
		workers int
		seed    uint64
	}{
		{2, 1}, {5, 1}, {2, 9}, {5, 9},
	}
	for _, c := range cases {
		cfg := DefaultScale()
		cfg.Seed = c.seed
		curves, mani, err := RunLoadSweepParallel(context.Background(), cfg,
			[]string{pattern}, []string{alg}, loads, opts, SweepOpts{Workers: c.workers})
		if err != nil {
			t.Fatalf("workers=%d seed=%d: %v", c.workers, c.seed, err)
		}
		if len(curves) != 1 || curves[0].Pattern != pattern || curves[0].Algorithm != alg {
			t.Fatalf("workers=%d seed=%d: unexpected curves %+v", c.workers, c.seed, curves)
		}
		if !reflect.DeepEqual(curves[0].Points, serial[c.seed]) {
			t.Errorf("workers=%d seed=%d: parallel diverged from serial:\nparallel: %s\nserial:   %s",
				c.workers, c.seed, FormatLoadPoints(curves[0].Points), FormatLoadPoints(serial[c.seed]))
		}
		if mani == nil || mani.Workers != c.workers || mani.Completed == 0 {
			t.Errorf("workers=%d seed=%d: manifest missing or empty: %+v", c.workers, c.seed, mani)
		}
	}
}

// TestParallelCancellationPreservesPreSaturation: with one worker per
// point every load runs concurrently, so the deep-saturated high loads
// are cancelled mid-flight once the true saturation point confirms — and
// the curve must still contain every point up to and including it,
// matching serial exactly. The manifest must show every pre-saturation
// point as completed, never cancelled.
func TestParallelCancellationPreservesPreSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 1500, Window: 1500}
	loads := LoadRange(0.2)
	cfg := DefaultScale()
	cfg.Algorithm = "VAL"
	serial, err := RunLoadSweep(cfg, "UR", loads, opts)
	if err != nil {
		t.Fatal(err)
	}

	curves, mani, err := RunLoadSweepParallel(context.Background(), DefaultScale(),
		[]string{"UR"}, []string{"VAL"}, loads, opts, SweepOpts{Workers: len(loads)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(curves[0].Points, serial) {
		t.Errorf("cancellation dropped or altered a pre-saturation point:\nparallel: %s\nserial:   %s",
			FormatLoadPoints(curves[0].Points), FormatLoadPoints(serial))
	}
	satIdx := len(serial) - 1
	for _, rec := range mani.Jobs {
		if rec.Point <= satIdx && rec.Status != "done" {
			t.Errorf("pre-saturation point %d has status %q, want done", rec.Point, rec.Status)
		}
		if rec.Status == "done" && (rec.WallSeconds <= 0 || rec.Events == 0) {
			t.Errorf("job record lacks observability data: %+v", rec)
		}
	}
}

// TestRunThroughputGridMatchesSerial: every grid cell equals the serial
// RunThroughput measurement for the same configuration and seed.
func TestRunThroughputGridMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	opts := RunOpts{Warmup: 1500, Window: 1500}
	patterns, algs := []string{"UR"}, []string{"DOR", "VAL"}
	grid, mani, err := RunThroughputGrid(context.Background(), DefaultScale(), patterns, algs, opts, SweepOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for pi, pat := range patterns {
		for ai, alg := range algs {
			cfg := DefaultScale()
			cfg.Algorithm = alg
			want, err := RunThroughput(cfg, pat, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := grid.Values[pi][ai]; got != want {
				t.Errorf("%s/%s: grid %.6f != serial %.6f", pat, alg, got, want)
			}
		}
	}
	if mani.Completed != len(patterns)*len(algs) {
		t.Errorf("manifest completed = %d, want %d", mani.Completed, len(patterns)*len(algs))
	}
}

// TestParallelSweepUnknownAlgorithm: a bad name fails the run with a
// labelled error instead of hanging the pool.
func TestParallelSweepUnknownAlgorithm(t *testing.T) {
	_, _, err := RunLoadSweepParallel(context.Background(), DefaultScale(),
		[]string{"UR"}, []string{"bogus"}, []float64{0.1}, RunOpts{Warmup: 100, Window: 100}, SweepOpts{})
	if err == nil {
		t.Fatal("unknown algorithm did not error")
	}
}
