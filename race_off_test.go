//go:build !race

package hyperx

const raceEnabled = false
