//go:build race

package hyperx

// raceEnabled reports that the binary was built with the race detector.
// The paper-scale simulations don't fit the package test deadline under
// its slowdown; `make race` is for the concurrency in internal/harness.
const raceEnabled = true
