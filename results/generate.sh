#!/bin/sh
# Regenerates every experiment CSV in this directory at the default
# (256-node) scale. Pass -paper flags manually for the 4,096-node scale.
#
# Sweeps run on the parallel harness: set JOBS to bound the worker pool
# (default 0 = GOMAXPROCS). Results are bit-identical at any JOBS value.
# Each hxsweep invocation also writes a JSON run manifest (per-job wall
# time, simulated cycles, events/sec) next to its CSV.
set -e
cd "$(dirname "$0")/.."
JOBS="${JOBS:-0}"
for pat in UR BC URBx URBy URBz S2 DCR; do
  go run ./cmd/hxsweep -pattern $pat -step 0.1 -warmup 8000 -window 8000 \
    -j "$JOBS" -manifest results/fig6_$pat.manifest.json > results/fig6_$pat.csv
done
go run ./cmd/hxsweep -throughput -warmup 8000 -window 8000 \
  -j "$JOBS" -manifest results/fig6g_throughput.manifest.json > results/fig6g_throughput.csv
# Resilience: throughput/latency/loss vs number of failed links at a fixed
# mid-range load. Fault-aware algorithms (DimWAR, OmniWAR) hold
# delivered_frac at 1.0; the dimension-ordered baselines detect-and-drop.
go run ./cmd/hxsweep -resilience 6 -load 0.5 -pattern UR \
  -algs DOR,VAL,UGAL,UGAL+,DimWAR,OmniWAR -warmup 8000 -window 8000 \
  -j "$JOBS" -manifest results/resilience.manifest.json > results/resilience.csv
go run ./cmd/hxstencil -bytes 100000 > results/fig8.csv
go run ./cmd/hxstencil -bytes 100000 -iters 16 -algs DimWAR,OmniWAR,UGAL,UGAL+ > results/fig8c_16iter.csv
go run ./cmd/hxstencil -fig4 -bytes 100000 > results/fig4.csv
go run ./cmd/hxcost -fig 2 > results/fig2.csv
go run ./cmd/hxcost -fig 3 > results/fig3.csv
# Paper scale (PAPER=1): the true 4,096-node 8x8x8 t=8 UR panel, with a
# reduced warmup/window that keeps the serial run around ten minutes.
# Deterministic and manifest-logged like every other sweep.
if [ "${PAPER:-0}" = 1 ]; then
  go run ./cmd/hxsweep -pattern UR -algs DOR,DimWAR,OmniWAR -step 0.1     -warmup 10000 -window 10000 -paper -j "$JOBS"     -manifest results/fig6_UR_paper.manifest.json > results/fig6_UR_paper.csv
fi
echo ALL_DONE
