package hyperx

import (
	"context"
	"fmt"

	"hyperx/internal/sim"
	"hyperx/internal/stats"
	"hyperx/internal/traffic"
)

// RunOpts controls a steady-state run, following the paper's Section 6.1
// methodology (documented in full in internal/stats): the network warms
// up for Warmup cycles under full injection, every packet *born* during
// the next Window cycles is measured, and injection then continues — so
// the measured tail experiences realistic back-pressure — until all
// measured packets are delivered or DrainCap extra cycles have elapsed,
// at which point the run is declared saturated.
//
// Zero values take defaults sized for the 4x4x4 test scale; multiply
// Warmup/Window up for the full 8x8x8.
type RunOpts struct {
	Warmup     int     // cycles before the measurement window (default 20000)
	Window     int     // measurement window length in cycles (default 15000)
	DrainCap   int     // extra cycles allowed for measured packets to drain (default 10x window)
	LatencyCap float64 // mean latency declaring saturation outright (default 20000)
	MinFlits   int     // smallest generated packet (default 1)
	MaxFlits   int     // largest generated packet (default 16)

	// Shards runs each simulation on Shards cores via the deterministic
	// barrier-synchronized executor (internal/shard); 0 or 1 is serial.
	// The executed event sequence — and every result — is bit-identical
	// across shard counts, so Shards is deliberately excluded from the
	// checkpoint key (checkpoint.go optsKey): a cache written serially is
	// served to sharded runs and vice versa. Counts above the router
	// count are clamped.
	//hxlint:key excluded — results are bit-identical across shard counts, so serial and sharded runs share checkpoints (TestShardsExcludedFromCheckpointKey)
	Shards int

	// ShardWindow sets the sharded executor's barrier window width in
	// cycles: shards drain and execute all cycles in [t, t+W) between
	// merges instead of one timestamp at a time. 0 derives the
	// conservative default from the configured latencies
	// (min(XbarLat, RouterChanLat, TermChanLat), 5 with defaults);
	// widths beyond the minimum cross-shard latency (RouterChanLat) are
	// clamped to it, and 1 reproduces the per-cycle barrier exactly.
	// Ignored when Shards <= 1. Like Shards, the window never affects
	// results — only barrier frequency — so it too stays out of the
	// checkpoint key.
	//hxlint:key excluded — results are bit-identical across window widths, so runs at every width share checkpoints (TestShardWindowExcludedFromCheckpointKey)
	ShardWindow int
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Warmup == 0 {
		o.Warmup = 20000
	}
	if o.Window == 0 {
		o.Window = 15000
	}
	if o.DrainCap == 0 {
		o.DrainCap = 10 * o.Window
	}
	if o.LatencyCap == 0 {
		o.LatencyCap = 20000
	}
	if o.MinFlits == 0 {
		o.MinFlits = 1
	}
	if o.MaxFlits == 0 {
		o.MaxFlits = 16
	}
	return o
}

// LoadPoint is one point on a load-latency curve (Figure 6 a-f).
type LoadPoint struct {
	Load      float64 // offered load, flits/cycle/terminal (1.0 = capacity)
	Mean      float64 // mean packet latency, cycles (ns)
	P50       float64
	P99       float64
	Accepted  float64 // accepted throughput, flits/cycle/terminal
	Samples   int
	Saturated bool

	// Delivered and Dropped count packets over the whole run (warmup
	// included): on a pristine network Dropped is always zero; on a
	// faulted one it is the loss the detect-and-drop path charged to
	// fault-oblivious algorithms.
	Delivered uint64
	Dropped   uint64
}

// simStats carries the kernel's observability counters out of a run for
// the harness manifest.
type simStats struct {
	Cycles    int64  // simulation clock at the end of the run
	Events    uint64 // kernel events executed
	Delivered uint64 // packets delivered over the whole run
	Dropped   uint64 // packets lost to fault-induced drops
}

// RunLoadPoint measures one offered load for one pattern, following the
// Section 6.1 methodology: warm up, then measure every packet born in the
// window while injection continues; injection stops only once all
// measured packets are delivered (or the drain cap declares saturation).
func RunLoadPoint(cfg Config, patternName string, load float64, opts RunOpts) (LoadPoint, error) {
	pt, _, err := runLoadPointCtx(context.Background(), cfg, patternName, load, opts)
	return pt, err
}

// runLoadPointCtx is the cancellable core of RunLoadPoint, shared by the
// serial and parallel paths. An uncancelled run is bit-identical to the
// historical serial implementation: the context poll in sim.Kernel.RunCtx
// never reorders events, and the whole random universe of the instance
// derives from cfg.Seed alone (see internal/rng).
func runLoadPointCtx(ctx context.Context, cfg Config, patternName string, load float64, opts RunOpts) (LoadPoint, simStats, error) {
	opts = opts.withDefaults()
	inst, err := Build(cfg)
	if err != nil {
		return LoadPoint{}, simStats{}, err
	}
	defer inst.Close()
	pat, err := NewPattern(patternName, inst.Topo)
	if err != nil {
		return LoadPoint{}, simStats{}, err
	}
	gen := &traffic.Generator{
		Net:     inst.Net,
		Pattern: pat,
		Sizes:   traffic.UniformSize{Min: opts.MinFlits, Max: opts.MaxFlits},
		Load:    load,
	}
	gen.Start(inst.Cfg.Seed)
	return runPointOn(ctx, inst, gen, load, opts, sim.Time(opts.Warmup))
}

// runPointOn measures one load point on an already-built instance whose
// generator is started (and possibly warm): the network settles for settle
// cycles from the current clock, every packet born during the next Window
// cycles is measured, and injection continues until the measured tail
// drains or the cap declares saturation. The cold path calls it straight
// after Build+Start with settle = Warmup — bit-identical to the historical
// inline implementation — and the warm-fork path calls it after a Restore
// with a shorter settle, the fork having amortized the warmup.
func runPointOn(ctx context.Context, inst *Instance, gen *traffic.Generator, load float64, opts RunOpts, settle sim.Time) (LoadPoint, simStats, error) {
	warm := inst.K.Now() + settle
	end := warm + sim.Time(opts.Window)
	col := stats.NewCollector(warm, end)
	inst.Net.OnDeliver = col.OnDeliver
	inst.Net.OnDrop = col.OnDrop
	gen.OnBirth = func(_, _, _ int, at sim.Time) { col.CountBirth(at) }

	kstats := func() simStats {
		return simStats{
			Cycles:    int64(inst.K.Now()),
			Events:    inst.K.Executed(),
			Delivered: inst.Net.DeliveredPackets,
			Dropped:   inst.Net.DroppedPackets,
		}
	}
	if _, err := inst.runCtx(ctx, end, opts.Shards, opts.ShardWindow); err != nil {
		return LoadPoint{}, kstats(), err
	}
	// Drain: injection continues (realistic back-pressure on the measured
	// tail) until every measured packet is delivered or the cap is hit.
	deadline := end + sim.Time(opts.DrainCap)
	for !col.Done() && inst.K.Now() < deadline {
		if _, err := inst.runCtx(ctx, inst.K.Now()+2000, opts.Shards, opts.ShardWindow); err != nil {
			return LoadPoint{}, kstats(), err
		}
	}
	gen.Stop()

	res := col.Summarize(inst.Topo.NumTerminals(), opts.LatencyCap)
	// The sharpest saturation signal in an open-loop run: the network
	// accepts measurably less than offered (beyond a 5% relative + 0.005
	// absolute tolerance for sampling noise at low loads), so source
	// queues grow without bound. This is the rule that terminates each
	// Figure 6 curve; stats.Collector contributes the latency-based
	// signals folded in via res.Saturated.
	saturated := res.Saturated || res.Accepted < 0.95*load-0.005
	return LoadPoint{
		Load:      load,
		Mean:      res.Mean,
		P50:       res.P50,
		P99:       res.P99,
		Accepted:  res.Accepted,
		Samples:   res.Samples,
		Saturated: saturated,
		Delivered: inst.Net.DeliveredPackets,
		Dropped:   inst.Net.DroppedPackets,
	}, kstats(), nil
}

// RunLoadSweep measures ascending offered loads and stops after the first
// saturated point, mirroring how the paper's load-latency lines end at
// saturation. Loads are fractions of terminal channel capacity.
// RunLoadSweepParallel produces bit-identical curves on a worker pool.
func RunLoadSweep(cfg Config, patternName string, loads []float64, opts RunOpts) ([]LoadPoint, error) {
	var out []LoadPoint
	for _, l := range loads {
		pt, err := RunLoadPoint(cfg, patternName, l, opts)
		if err != nil {
			return out, err
		}
		out = append(out, pt)
		if pt.Saturated {
			break
		}
	}
	return out, nil
}

// LoadRange builds the sweep grid [step, 2*step, ..., 1.0]; the paper uses
// a 2% granularity (step 0.02). Each point is computed as i*step (not by
// repeated addition), so grids are exact: LoadRange(0.1)[9] is exactly
// 1.0, and the same index always yields the same load bit pattern.
func LoadRange(step float64) []float64 {
	var out []float64
	for i := 1; ; i++ {
		l := float64(i) * step
		if l > 1.0+1e-9 {
			break
		}
		out = append(out, l)
	}
	return out
}

// RunThroughput measures accepted throughput at full offered load — the
// saturated "total achieved throughput" of Figure 6g.
func RunThroughput(cfg Config, patternName string, opts RunOpts) (float64, error) {
	th, _, err := runThroughputCtx(context.Background(), cfg, patternName, opts)
	return th, err
}

// runThroughputCtx is the cancellable core of RunThroughput, shared by
// the serial and parallel paths; uncancelled runs are bit-identical to
// the historical serial implementation.
func runThroughputCtx(ctx context.Context, cfg Config, patternName string, opts RunOpts) (float64, simStats, error) {
	opts = opts.withDefaults()
	inst, err := Build(cfg)
	if err != nil {
		return 0, simStats{}, err
	}
	defer inst.Close()
	pat, err := NewPattern(patternName, inst.Topo)
	if err != nil {
		return 0, simStats{}, err
	}
	warm := sim.Time(opts.Warmup)
	end := warm + sim.Time(opts.Window)
	col := stats.NewCollector(warm, end)
	inst.Net.OnDeliver = col.OnDeliver
	inst.Net.OnDrop = col.OnDrop

	gen := &traffic.Generator{
		Net:     inst.Net,
		Pattern: pat,
		Sizes:   traffic.UniformSize{Min: opts.MinFlits, Max: opts.MaxFlits},
		Load:    1.0,
		OnBirth: func(_, _, _ int, at sim.Time) { col.CountBirth(at) },
	}
	gen.Start(inst.Cfg.Seed)
	kstats := func() simStats {
		return simStats{
			Cycles:    int64(inst.K.Now()),
			Events:    inst.K.Executed(),
			Delivered: inst.Net.DeliveredPackets,
			Dropped:   inst.Net.DroppedPackets,
		}
	}
	if _, err := inst.runCtx(ctx, end, opts.Shards, opts.ShardWindow); err != nil {
		return 0, kstats(), err
	}
	gen.Stop()
	st := kstats()

	res := col.Summarize(inst.Topo.NumTerminals(), opts.LatencyCap)
	return res.Accepted, st, nil
}

// FormatLoadPoints renders sweep results as an aligned text table.
func FormatLoadPoints(pts []LoadPoint) string {
	s := fmt.Sprintf("%8s %10s %10s %10s %10s %9s\n", "load", "mean(ns)", "p50(ns)", "p99(ns)", "accepted", "samples")
	for _, p := range pts {
		mark := ""
		if p.Saturated {
			mark = "  [saturated]"
		}
		s += fmt.Sprintf("%8.2f %10.1f %10.1f %10.1f %10.3f %9d%s\n",
			p.Load, p.Mean, p.P50, p.P99, p.Accepted, p.Samples, mark)
	}
	return s
}
