#!/usr/bin/env bash
# servesmoke: end-to-end smoke for cmd/hxserved, the persistent sweep
# service. Two phases:
#
#   A. cold compute — start the daemon on a random port with a fresh
#      checkpoint store, submit the same sweep `make smoke` runs on the
#      CLI, and require the served result.csv to be byte-identical to
#      cmd/hxsweep's stdout for the identical configuration.
#   B. crash resume — submit a second sweep and kill -9 the daemon
#      mid-job, then restart it against the same store. The first sweep
#      must replay entirely from cache (provenance cached_jobs == the
#      completed-cell count, zero new computes) and the second must complete to the
#      same bytes the CLI produces, resuming whatever cells the crashed
#      run had already persisted.
#
# Wired into `make ci` via the servesmoke target.
set -euo pipefail

GO=${GO:-go}
WORK=$(mktemp -d /tmp/hx-servesmoke.XXXXXX)
STORE="$WORK/store"
DAEMON_PID=""

cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "servesmoke FAIL: $*" >&2; exit 1; }

$GO build -o "$WORK/hxserved" ./cmd/hxserved
$GO build -o "$WORK/hxsweep" ./cmd/hxsweep

# The experiment both sides run: UR, DOR+VAL, loads 0.25..1.0, seeds 1/2.
SWEEP_FLAGS=(-pattern UR -algs DOR,VAL -step 0.25 -warmup 1000 -window 1000 -q)
req() { # $1 = seed
    printf '{"patterns":["UR"],"algorithms":["DOR","VAL"],"step":0.25,"config":{"Seed":%d},"opts":{"Warmup":1000,"Window":1000}}' "$1"
}

"$WORK/hxsweep" "${SWEEP_FLAGS[@]}" -seed 1 > "$WORK/cli-1.csv"
"$WORK/hxsweep" "${SWEEP_FLAGS[@]}" -seed 2 > "$WORK/cli-2.csv"

start_daemon() {
    rm -f "$WORK/addr"
    "$WORK/hxserved" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
        -checkpoint-dir "$STORE" -j 2 2>> "$WORK/daemon.log" &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$WORK/addr" ] && break
        kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on startup: $(cat "$WORK/daemon.log")"
        sleep 0.1
    done
    [ -s "$WORK/addr" ] || fail "daemon never wrote its address file"
    BASE="http://$(cat "$WORK/addr")"
}

submit() { # $1 = seed; prints the job id
    curl -sS -X POST --data "$(req "$1")" "$BASE/v1/sweeps" \
        | grep -o '"id": "[0-9a-fx]*"' | head -1 | cut -d'"' -f4
}

wait_done() { # $1 = job id
    for _ in $(seq 1 300); do
        state=$(curl -sS "$BASE/v1/jobs/$1" | grep -o '"state": "[a-z]*"' | cut -d'"' -f4)
        case "$state" in
            done) return 0 ;;
            failed|cancelled) fail "job $1 ended $state" ;;
        esac
        sleep 0.1
    done
    fail "job $1 did not finish in 30s"
}

json_field() { # $1 = file, $2 = field; prints the first integer value
    grep -o "\"$2\": [0-9]*" "$1" | head -1 | awk '{print $2}'
}

# --- Phase A: cold compute, byte-identity against the CLI ---
start_daemon
ID1=$(submit 1)
[ -n "$ID1" ] || fail "submit returned no job id"
wait_done "$ID1"
curl -sS "$BASE/v1/jobs/$ID1/result.csv" > "$WORK/served-1.csv"
cmp "$WORK/cli-1.csv" "$WORK/served-1.csv" \
    || fail "served CSV differs from hxsweep CSV (seed 1)"

# --- Phase B: kill -9 mid-job, restart, resume from the store ---
ID2=$(submit 2)
[ -n "$ID2" ] || fail "second submit returned no job id"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

start_daemon
ID1B=$(submit 1)
[ "$ID1B" = "$ID1" ] || fail "content-addressed job id changed across restart: $ID1 vs $ID1B"
wait_done "$ID1B"
curl -sS "$BASE/v1/jobs/$ID1B/result.csv" > "$WORK/served-1b.csv"
cmp "$WORK/cli-1.csv" "$WORK/served-1b.csv" \
    || fail "cache-served CSV differs from the cold one (seed 1)"
curl -sS "$BASE/v1/jobs/$ID1B/result.json" > "$WORK/result-1b.json"
# Every completed cell must have come from the store; the difference
# between num_jobs and completed is the speculative points the early
# stop cancels past saturation — those are never computed or cached.
cached=$(json_field "$WORK/result-1b.json" cached_jobs)
completed=$(json_field "$WORK/result-1b.json" completed)
[ -n "$cached" ] && [ "$cached" = "$completed" ] \
    || fail "restart recomputed: cached_jobs=$cached of completed=$completed, want all completed cells cached"

ID2B=$(submit 2)
wait_done "$ID2B"
curl -sS "$BASE/v1/jobs/$ID2B/result.csv" > "$WORK/served-2.csv"
cmp "$WORK/cli-2.csv" "$WORK/served-2.csv" \
    || fail "post-crash CSV differs from hxsweep CSV (seed 2)"

curl -sS "$BASE/v1/cache/stats" | grep -q '"hits"' \
    || fail "cache stats endpoint is missing store counters"

kill "$DAEMON_PID" 2>/dev/null && wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "servesmoke OK"
