package hyperx

// Sharded-execution determinism suite. The contract under test is
// absolute: a run at any shard count executes the bit-identical event
// sequence — and lands in the bit-identical end state — as the serial
// kernel loop, across network shapes, routing algorithms, faulted
// configurations, and composition with warm-state snapshot/restore. The
// same property makes RunOpts.Shards invisible to the checkpoint key,
// which the cross-mode cache test pins. Run under `-race` (make race)
// this suite doubles as the data-race check of the parallel phase.

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"reflect"
	"strings"
	"testing"

	"hyperx/internal/harness"
	"hyperx/internal/sim"
	"hyperx/internal/traffic"
)

// simFingerprint condenses a run into the executed (time, seq) stream
// hash plus the end-state counters — the same fold as the golden trace.
type simFingerprint struct {
	Hash   uint64
	Events uint64
	Now    sim.Time
}

// foldCounters folds the instance's end-state counters into h, mirroring
// runTraced so any bookkeeping divergence is caught even when the event
// order matches.
func foldCounters(h interface{ Write([]byte) (int, error) }, inst *Instance) {
	var buf [8]byte
	fold := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, ls := range inst.Net.LinkUtilization() {
		fold(uint64(ls.Router))
		fold(uint64(ls.Port))
		fold(ls.Grants)
		fold(math.Float64bits(ls.Utilization))
	}
	fold(inst.Net.InjectedPackets)
	fold(inst.Net.InjectedFlits)
	fold(inst.Net.DeliveredPackets)
	fold(inst.Net.DeliveredFlits)
	fold(inst.Net.DroppedPackets)
	fold(uint64(inst.K.Now()))
	fold(inst.K.Executed())
}

// fingerprintRun builds cfg, drives UR traffic at 0.6 load for until
// cycles through the serial kernel (shards <= 1) or the sharded executor
// at the given barrier window width (0 derives the default from the
// configured latencies), and returns the run's fingerprint.
func fingerprintRun(t *testing.T, cfg Config, shards, window int, until sim.Time) simFingerprint {
	t.Helper()
	inst, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	h := fnv.New64a()
	var buf [16]byte
	inst.K.TraceExec = func(at sim.Time, seq uint64) {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(at))
		binary.LittleEndian.PutUint64(buf[8:16], seq)
		h.Write(buf[:])
	}
	pat, err := NewPattern("UR", inst.Topo)
	if err != nil {
		t.Fatal(err)
	}
	gen := &traffic.Generator{Net: inst.Net, Pattern: pat, Sizes: traffic.UniformSize{Min: 1, Max: 16}, Load: 0.6}
	gen.Start(inst.Cfg.Seed)
	if _, err := inst.runCtx(context.Background(), until, shards, window); err != nil {
		t.Fatal(err)
	}
	foldCounters(h, inst)
	return simFingerprint{Hash: h.Sum64(), Events: inst.K.Executed(), Now: inst.K.Now()}
}

// TestShardedMatchesSerialShapes: bit-identical execution across shard
// counts on shapes from 4 routers (every count clamps or divides
// unevenly) through 16 (even contiguous blocks), and across the
// algorithm families: dimension-ordered, the two incremental adaptive
// algorithms, and the RNG-drawing baselines (VAL redraws its
// intermediate on every Route call, UGAL draws tie-breaks), whose
// per-router streams make any spuriously executed event visible.
func TestShardedMatchesSerialShapes(t *testing.T) {
	cases := []struct {
		name   string
		widths []int
		alg    string
	}{
		{"2x2-DimWAR", []int{2, 2}, "DimWAR"},
		{"2x2x2-OmniWAR", []int{2, 2, 2}, "OmniWAR"},
		{"4x4-DOR", []int{4, 4}, "DOR"},
		{"4x4-DimWAR", []int{4, 4}, "DimWAR"},
		{"4x4-VAL", []int{4, 4}, "VAL"},
		{"4x4-UGAL", []int{4, 4}, "UGAL"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{Widths: c.widths, Terms: 2, Algorithm: c.alg, Seed: 7}
			want := fingerprintRun(t, cfg, 1, 0, 2500)
			for _, nsh := range []int{2, 3, 4, 8} {
				if got := fingerprintRun(t, cfg, nsh, 0, 2500); got != want {
					t.Errorf("shards=%d diverged from serial: got %+v, want %+v", nsh, got, want)
				}
			}
		})
	}
}

// TestShardedSameCycleCancelVAL pins a regression: a reroute timer
// cancelled by an earlier-seq event of its own cycle still fired under
// sharding, because DrainCycle pops the whole cycle up front and
// Kernel.Cancel used to no-op on any already-popped (queued=false)
// event — serially the target would still be in the calendar when the
// canceller runs. VAL makes the bug observable: every Route call on an
// unrouted packet redraws the intermediate from the per-router RNG
// stream, so one spuriously executed reroute shifts every later draw
// on that router. Paper-scale VAL at this seed hits the
// grant-vs-timer same-cycle coincidence within 4000 cycles.
func TestShardedSameCycleCancelVAL(t *testing.T) {
	cfg := DefaultScale()
	cfg.Algorithm = "VAL"
	cfg.Seed = 1
	want := fingerprintRun(t, cfg, 1, 0, 4000)
	for _, nsh := range []int{2, 4} {
		// Window 50 (the cross-shard latency cap) makes the cancelled timer
		// and its canceller share a window far more often than the per-cycle
		// barrier did, stressing processing-time deadness reads.
		for _, win := range []int{1, 50} {
			if got := fingerprintRun(t, cfg, nsh, win, 4000); got != want {
				t.Errorf("shards=%d window=%d diverged from serial: got %+v, want %+v", nsh, win, got, want)
			}
		}
	}
}

// TestShardedWindowWidths: every legal barrier window width — per-cycle,
// partial, the derived default, and the cross-shard latency cap (wider
// requests clamp to it) — yields the bit-identical fingerprint. The
// window only changes how often the shards synchronize, never what they
// execute.
func TestShardedWindowWidths(t *testing.T) {
	for _, c := range []struct {
		name   string
		widths []int
		alg    string
	}{
		{"4x4-DimWAR", []int{4, 4}, "DimWAR"},
		{"2x2x2-OmniWAR", []int{2, 2, 2}, "OmniWAR"},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{Widths: c.widths, Terms: 2, Algorithm: c.alg, Seed: 7}
			want := fingerprintRun(t, cfg, 1, 0, 2500)
			for _, win := range []int{1, 2, 5, 50, 1000} {
				if got := fingerprintRun(t, cfg, 4, win, 2500); got != want {
					t.Errorf("window=%d diverged from serial: got %+v, want %+v", win, got, want)
				}
			}
		})
	}
}

// TestShardedMatchesSerialFaulted: the detect-and-drop path (fxDrop
// staging, loss counters) and fault-aware rerouting stay bit-identical
// under sharding.
func TestShardedMatchesSerialFaulted(t *testing.T) {
	for _, alg := range []string{"DOR", "DimWAR"} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			cfg := Config{Widths: []int{4, 4}, Terms: 2, Algorithm: alg, Seed: 3, Faults: 4}
			want := fingerprintRun(t, cfg, 1, 0, 2500)
			if got := fingerprintRun(t, cfg, 4, 0, 2500); got != want {
				t.Errorf("faulted sharded run diverged from serial: got %+v, want %+v", got, want)
			}
			if got := fingerprintRun(t, cfg, 4, 50, 2500); got != want {
				t.Errorf("faulted windowed run diverged from serial: got %+v, want %+v", got, want)
			}
			if want.Hash == fingerprintRun(t, Config{Widths: []int{4, 4}, Terms: 2, Algorithm: alg, Seed: 3}, 1, 0, 2500).Hash {
				t.Error("faulted and pristine runs share a fingerprint; the fixture exercises no fault path")
			}
		})
	}
}

// TestShardedSnapshotRestoreResume: snapshot/restore composes with
// sharded execution — a warm snapshot resumed through the sharded
// executor is bit-identical to the same snapshot resumed serially.
func TestShardedSnapshotRestoreResume(t *testing.T) {
	cfg := Config{Widths: []int{2, 2, 2}, Terms: 2, Algorithm: "DimWAR", Seed: 5}
	inst := MustBuild(cfg)
	defer inst.Close()
	pat, err := NewPattern("UR", inst.Topo)
	if err != nil {
		t.Fatal(err)
	}
	gen := &traffic.Generator{Net: inst.Net, Pattern: pat, Sizes: traffic.UniformSize{Min: 1, Max: 16}, Load: 0.6}
	gen.Start(inst.Cfg.Seed)
	inst.K.Run(1200)
	snap, err := inst.Snapshot(gen)
	if err != nil {
		t.Fatal(err)
	}

	resume := func(shards int) simFingerprint {
		if err := inst.Restore(snap, gen); err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		var buf [16]byte
		inst.K.TraceExec = func(at sim.Time, seq uint64) {
			binary.LittleEndian.PutUint64(buf[0:8], uint64(at))
			binary.LittleEndian.PutUint64(buf[8:16], seq)
			h.Write(buf[:])
		}
		if _, err := inst.runCtx(context.Background(), 3600, shards, 0); err != nil {
			t.Fatal(err)
		}
		inst.K.TraceExec = nil
		foldCounters(h, inst)
		return simFingerprint{Hash: h.Sum64(), Events: inst.K.Executed(), Now: inst.K.Now()}
	}

	want := resume(1)
	for _, nsh := range []int{2, 4} {
		if got := resume(nsh); got != want {
			t.Errorf("restore-then-resume at shards=%d diverged from serial resume: got %+v, want %+v", nsh, got, want)
		}
	}
	// And back to serial after sharded runs: the executor must leave no
	// residual mode or pool state that perturbs a later serial resume.
	if got := resume(1); got != want {
		t.Errorf("serial resume after sharded runs diverged: got %+v, want %+v", got, want)
	}
}

// TestShardedSteadyStateZeroAlloc: once pools and staging slabs are warm,
// sharded execution must not allocate per event — allocations per
// executor invocation are a small constant (worker goroutines, the work
// channel), independent of how many cycles the invocation simulates.
func TestShardedSteadyStateZeroAlloc(t *testing.T) {
	cfg := Config{Widths: []int{4, 4}, Terms: 2, Algorithm: "DimWAR", Seed: 1}
	inst := MustBuild(cfg)
	defer inst.Close()
	pat, err := NewPattern("UR", inst.Topo)
	if err != nil {
		t.Fatal(err)
	}
	gen := &traffic.Generator{Net: inst.Net, Pattern: pat, Sizes: traffic.UniformSize{Min: 1, Max: 16}, Load: 0.6}
	gen.Start(inst.Cfg.Seed)
	// Warm pools, queue capacities, and shard staging slabs to their
	// high-water marks through the sharded path itself.
	if _, err := inst.runCtx(context.Background(), 100000, 4, 0); err != nil {
		t.Fatal(err)
	}
	measure := func(cycles sim.Time) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := inst.runCtx(context.Background(), inst.K.Now()+cycles, 4, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := measure(200), measure(2000)
	// 10x the simulated work must not change the per-invocation alloc
	// count: every allocation belongs to executor setup, none to events.
	if long > short+1 {
		t.Errorf("sharded execution allocates per event: %.1f allocs for 200-cycle runs vs %.1f for 2000-cycle runs", short, long)
	}
	if short > 32 {
		t.Errorf("sharded executor setup allocates %.1f objects per invocation, want a small constant (<= 32)", short)
	}
}

// TestShardsExcludedFromCheckpointKey: the cross-mode cache contract. A
// checkpoint store populated by a serial sweep must serve a sharded rerun
// entirely from cache (and return identical curves) — possible only
// because results are bit-identical across shard counts and optsKey
// deliberately omits Shards.
func TestShardsExcludedFromCheckpointKey(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	cfg := Config{Widths: []int{4, 4}, Terms: 2, Seed: 1}
	opts := RunOpts{Warmup: 1000, Window: 1000}
	loads := []float64{0.2, 0.4}
	dir := t.TempDir()

	serial, _, err := RunLoadSweepParallel(context.Background(), cfg,
		[]string{"UR"}, []string{"DimWAR"}, loads, opts, SweepOpts{Workers: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	shOpts := opts
	shOpts.Shards = 4
	sharded, mani, err := RunLoadSweepParallel(context.Background(), cfg,
		[]string{"UR"}, []string{"DimWAR"}, loads, shOpts, SweepOpts{Workers: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sharded, serial) {
		t.Errorf("sharded rerun diverged from serial-written cache:\ngot:  %+v\nwant: %+v", sharded, serial)
	}
	if mani.Provenance == nil || mani.Provenance.CachedJobs == 0 {
		t.Errorf("sharded rerun recomputed despite a serial-written cache (provenance %+v); Shards leaked into the checkpoint key", mani.Provenance)
	}
}

// TestShardedSweepMatchesSerialSweep: the end-to-end facade claim — a
// full measured load point (latency percentiles, accepted throughput,
// saturation flag, stats counters) is identical with and without shards.
func TestShardedSweepMatchesSerialSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	cfg := Config{Widths: []int{2, 2, 2}, Terms: 2, Algorithm: "DimWAR", Seed: 1}
	opts := RunOpts{Warmup: 1500, Window: 1500}
	want, wantSt, err := runLoadPointCtx(context.Background(), cfg, "UR", 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	shOpts := opts
	shOpts.Shards = 4
	got, gotSt, err := runLoadPointCtx(context.Background(), cfg, "UR", 0.5, shOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || gotSt != wantSt {
		t.Errorf("sharded load point diverged from serial:\ngot:  %+v / %+v\nwant: %+v / %+v", got, gotSt, want, wantSt)
	}
}

// TestThroughputGridCheckpointResume: regression for the grid silently
// ignoring SweepOpts.CheckpointDir — the first run persists every cell,
// the rerun serves all of them from cache with identical values and a
// provenance block recording the store.
func TestThroughputGridCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	cfg := Config{Widths: []int{4, 4}, Terms: 2, Seed: 1}
	opts := RunOpts{Warmup: 800, Window: 800}
	patterns, algs := []string{"UR"}, []string{"DOR", "DimWAR"}
	dir := t.TempDir()
	run := func() (*ThroughputGrid, *Manifest) {
		grid, mani, err := RunThroughputGrid(context.Background(), cfg, patterns, algs, opts,
			SweepOpts{Workers: 2, CheckpointDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return grid, mani
	}
	first, mani1 := run()
	if mani1.Provenance == nil || mani1.Provenance.ResumedFrom != dir {
		t.Errorf("first grid run provenance %+v, want store %q recorded", mani1.Provenance, dir)
	}
	if mani1.Provenance != nil && mani1.Provenance.CachedJobs != 0 {
		t.Errorf("first grid run served %d cached jobs from an empty store", mani1.Provenance.CachedJobs)
	}
	second, mani2 := run()
	if !reflect.DeepEqual(second, first) {
		t.Errorf("cached grid diverged from the run that populated the store:\ngot:  %+v\nwant: %+v", second, first)
	}
	if mani2.Provenance == nil || mani2.Provenance.CachedJobs != len(patterns)*len(algs) {
		t.Errorf("second grid run provenance %+v, want all %d cells cached", mani2.Provenance, len(patterns)*len(algs))
	}
}

// TestResilienceSweepCheckpointResume: regression for the resilience
// sweep silently ignoring SweepOpts.CheckpointDir and stamping its
// manifest outside the shared helpers — the rerun is fully cached, and
// both manifests carry the maxFaults fault list and a provenance block.
func TestResilienceSweepCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state simulations")
	}
	cfg := Config{Widths: []int{4, 4}, Terms: 2, Seed: 1}
	opts := RunOpts{Warmup: 800, Window: 800}
	algs := []string{"DOR", "DimWAR"}
	const maxFaults = 2
	dir := t.TempDir()
	run := func() ([]ResiliencePoint, *Manifest) {
		pts, mani, err := RunResilienceSweep(context.Background(), cfg, "UR", algs, maxFaults, 0.3, opts,
			SweepOpts{Workers: 2, CheckpointDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return pts, mani
	}
	first, mani1 := run()
	if len(first) != len(algs)*(maxFaults+1) {
		t.Fatalf("resilience sweep returned %d points, want %d", len(first), len(algs)*(maxFaults+1))
	}
	if len(mani1.Faults) != maxFaults {
		t.Errorf("first run manifest records %d faults, want the maxFaults=%d set", len(mani1.Faults), maxFaults)
	}
	second, mani2 := run()
	if !reflect.DeepEqual(second, first) {
		t.Error("cached resilience sweep diverged from the run that populated the store")
	}
	if mani2.Provenance == nil || mani2.Provenance.CachedJobs != len(algs)*(maxFaults+1) {
		t.Errorf("second run provenance %+v, want all %d cells cached", mani2.Provenance, len(algs)*(maxFaults+1))
	}
	if len(mani2.Faults) != maxFaults {
		t.Errorf("cached run manifest records %d faults, want %d; fault stamping must not depend on recomputation", len(mani2.Faults), maxFaults)
	}
}

// TestGridIncompleteCellError: regression for a not-Done grid cell
// silently surviving as Values[pi][ai] == 0.0 — assembly must fail
// loudly, naming the cell.
func TestGridIncompleteCellError(t *testing.T) {
	rr := &harness.RunResult{Jobs: []harness.JobResult{
		{Job: harness.Job{Curve: 0, Label: "UR/DOR@1.000"}, Done: true, Outcome: harness.Outcome{Value: 0.42}},
		{Job: harness.Job{Curve: 1, Label: "UR/DimWAR@1.000"}, Done: false},
	}}
	grid, err := assembleGrid(rr, []string{"UR"}, []string{"DOR", "DimWAR"})
	if err == nil {
		t.Fatalf("incomplete cell assembled without error: %+v", grid)
	}
	if want := "UR/DimWAR"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the missing cell %q", err, want)
	}
	rr.Jobs[1].Done = true
	rr.Jobs[1].Outcome = harness.Outcome{Value: 0.9}
	grid, err = assembleGrid(rr, []string{"UR"}, []string{"DOR", "DimWAR"})
	if err != nil {
		t.Fatal(err)
	}
	if grid.Values[0][0] != 0.42 || grid.Values[0][1] != 0.9 {
		t.Errorf("assembled grid %+v, want [[0.42 0.9]]", grid.Values)
	}
}

// TestResilienceIncompleteCellError: regression for a not-Done resilience
// cell being silently skipped, quietly shortening a degradation curve.
func TestResilienceIncompleteCellError(t *testing.T) {
	pt := LoadPoint{Load: 0.3, Delivered: 10}
	rr := &harness.RunResult{Jobs: []harness.JobResult{
		{Job: harness.Job{Curve: 0, Point: 0}, Done: true, Outcome: harness.Outcome{Value: pt}},
		{Job: harness.Job{Curve: 0, Point: 1}, Done: false},
	}}
	pts, err := assembleResilience(rr, []string{"DimWAR"}, 1, [][]string{nil, {"r0.p0<->r1.p0"}})
	if err == nil {
		t.Fatalf("incomplete cell assembled without error: %+v", pts)
	}
	if want := "DimWAR k=1"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the missing cell %q", err, want)
	}
	rr.Jobs[1].Done = true
	rr.Jobs[1].Outcome = harness.Outcome{Value: pt}
	pts, err = assembleResilience(rr, []string{"DimWAR"}, 1, [][]string{nil, {"r0.p0<->r1.p0"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].Faults != 1 || len(pts[1].FaultSet) != 1 {
		t.Errorf("assembled points %+v, want two cells with the k=1 fault set attached", pts)
	}
}
