package hyperx

import "testing"

// TestSmokeURLowLoad drives every algorithm at low uniform-random load and
// checks basic sanity: unsaturated, latency near zero-load (a few hundred
// ns), and near-full delivery.
func TestSmokeURLowLoad(t *testing.T) {
	for _, alg := range []string{"DOR", "VAL", "UGAL", "UGAL+", "DimWAR", "OmniWAR", "MinAD"} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			cfg := DefaultScale()
			cfg.Algorithm = alg
			pt, err := RunLoadPoint(cfg, "UR", 0.1, RunOpts{Warmup: 3000, Window: 3000})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: mean=%.1f p99=%.1f accepted=%.3f samples=%d saturated=%v",
				alg, pt.Mean, pt.P99, pt.Accepted, pt.Samples, pt.Saturated)
			if pt.Saturated {
				t.Fatalf("%s saturated at 10%% UR load", alg)
			}
			if pt.Mean < 100 || pt.Mean > 5000 {
				t.Fatalf("%s mean latency %f out of sane range", alg, pt.Mean)
			}
			if pt.Samples == 0 {
				t.Fatalf("%s collected no samples", alg)
			}
		})
	}
}
