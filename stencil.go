package hyperx

import (
	"fmt"

	"hyperx/internal/app"
	"hyperx/internal/network"
	"hyperx/internal/routing"
	"hyperx/internal/sim"
	"hyperx/internal/topology"
)

// StencilOpts configures a 27-point stencil application run (Section 6.2).
type StencilOpts struct {
	Grid       [3]int // process grid; zero takes the largest cube fitting the network
	Mode       app.Mode
	Iterations int
	Bytes      int  // aggregate halo bytes per process per exchange (default 100 kB)
	Random     bool // random process placement (the paper's policy)
	// RecursiveDoubling swaps the dissemination collective for recursive
	// doubling (requires a power-of-two process count).
	RecursiveDoubling bool
	Seed              uint64
}

// Modes re-exported for callers of RunStencil.
const (
	CollectiveOnly = app.CollectiveOnly
	HaloOnly       = app.HaloOnly
	FullApp        = app.Full
)

// RunStencil executes the stencil application on a HyperX built from cfg
// and returns the measured execution time.
func RunStencil(cfg Config, o StencilOpts) (app.Result, error) {
	inst, err := Build(cfg)
	if err != nil {
		return app.Result{}, err
	}
	return RunStencilOn(inst.Net, o)
}

// RunStencilOn executes the stencil application on an already-built
// network of any topology (used by the Figure 4 topology comparison).
func RunStencilOn(net *network.Network, o StencilOpts) (app.Result, error) {
	grid := o.Grid
	if grid[0] == 0 {
		grid = FitGrid(net.Cfg.Topo.NumTerminals())
	}
	place := app.LinearPlacement
	if o.Random {
		place = app.RandomPlacement
	}
	coll := app.Dissemination
	if o.RecursiveDoubling {
		coll = app.RecursiveDoubling
	}
	st, err := app.New(net, app.Config{
		GridX:            grid[0],
		GridY:            grid[1],
		GridZ:            grid[2],
		Mode:             o.Mode,
		Iterations:       o.Iterations,
		BytesPerExchange: o.Bytes,
		Placement:        place,
		Collective:       coll,
		Seed:             o.Seed,
	})
	if err != nil {
		return app.Result{}, err
	}
	return st.Run()
}

// FitGrid returns the most cubic 3-D process grid with at most n
// processes.
func FitGrid(n int) [3]int {
	best := [3]int{1, 1, 2}
	bestVol := 2
	for x := 1; x*x*x <= n; x++ {
		for y := x; x*y*y <= n; y++ {
			z := n / (x * y)
			if z < y {
				continue
			}
			if v := x * y * z; v > bestVol || (v == bestVol && z-x < best[2]-best[0]) {
				best, bestVol = [3]int{x, y, z}, v
			}
		}
	}
	return best
}

// DragonflyConfig parameterizes the comparison Dragonfly (Figure 4).
type DragonflyConfig struct {
	P, A, H   int    // terminals/router, routers/group, globals/router
	Algorithm string // "MIN", "VAL", "UGAL" (default "UGAL")
	NumVCs    int
	Seed      uint64
}

// BuildDragonfly constructs a Dragonfly network with its routing.
func BuildDragonfly(cfg DragonflyConfig) (*network.Network, error) {
	d, err := topology.NewDragonfly(cfg.P, cfg.A, cfg.H)
	if err != nil {
		return nil, err
	}
	a := routing.NewDragonflyUGAL(d)
	switch cfg.Algorithm {
	case "", "UGAL":
	case "MIN":
		a = routing.NewDragonflyMIN(d)
	case "VAL":
		a = routing.NewDragonflyVAL(d)
	default:
		return nil, fmt.Errorf("hyperx: unknown dragonfly algorithm %q", cfg.Algorithm)
	}
	if cfg.NumVCs == 0 {
		cfg.NumVCs = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return network.New(sim.NewKernel(), network.Config{
		Topo:   d,
		Alg:    a,
		NumVCs: cfg.NumVCs,
		Seed:   cfg.Seed,
	})
}

// FatTreeConfig parameterizes the comparison fat tree (Figure 4).
type FatTreeConfig struct {
	K      int // switch radix
	NumVCs int
	Seed   uint64
}

// BuildFatTree constructs a 3-level fat tree with adaptive Clos routing.
func BuildFatTree(cfg FatTreeConfig) (*network.Network, error) {
	f, err := topology.NewFatTree(cfg.K)
	if err != nil {
		return nil, err
	}
	if cfg.NumVCs == 0 {
		cfg.NumVCs = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return network.New(sim.NewKernel(), network.Config{
		Topo:   f,
		Alg:    routing.NewFatTreeAdaptive(f),
		NumVCs: cfg.NumVCs,
		Seed:   cfg.Seed,
	})
}
