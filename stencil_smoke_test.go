package hyperx

import (
	"testing"

	"hyperx/internal/app"
)

// TestStencilSmoke runs the three application modes on a small HyperX and
// checks completion and basic ordering: the full app takes at least as
// long as either phase alone, and 2 iterations take longer than 1.
func TestStencilSmoke(t *testing.T) {
	cfg := DefaultScale()
	cfg.Algorithm = "DimWAR"

	run := func(mode app.Mode, iters int) int64 {
		t.Helper()
		res, err := RunStencil(cfg, StencilOpts{
			Grid:       [3]int{4, 4, 4},
			Mode:       mode,
			Iterations: iters,
			Bytes:      10_000, // scaled down for test runtime
			Random:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.ExecTime <= 0 {
			t.Fatalf("mode %v: non-positive exec time", mode)
		}
		return int64(res.ExecTime)
	}
	coll := run(CollectiveOnly, 1)
	halo := run(HaloOnly, 1)
	full := run(FullApp, 1)
	full2 := run(FullApp, 2)
	t.Logf("collective=%d halo=%d full=%d full(2 iters)=%d", coll, halo, full, full2)
	if full < halo || full < coll {
		t.Errorf("full app (%d) faster than a single phase (halo=%d coll=%d)", full, halo, coll)
	}
	if full2 <= full {
		t.Errorf("2 iterations (%d) not slower than 1 (%d)", full2, full)
	}
}

// TestStencilTopologyComparison exercises the Figure 4 path: the same
// process grid on HyperX, Dragonfly, and fat tree all complete.
func TestStencilTopologyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-network stencil run")
	}
	opts := StencilOpts{Grid: [3]int{4, 4, 4}, Mode: FullApp, Iterations: 1, Bytes: 10_000, Random: true}

	hx := MustBuild(DefaultScale())
	rh, err := RunStencilOn(hx.Net, opts)
	if err != nil {
		t.Fatalf("hyperx: %v", err)
	}

	df, err := BuildDragonfly(DragonflyConfig{P: 4, A: 8, H: 2}) // 17 groups x 8 routers x 4 terms = 544
	if err != nil {
		t.Fatal(err)
	}
	rd, err := RunStencilOn(df, opts)
	if err != nil {
		t.Fatalf("dragonfly: %v", err)
	}

	ft, err := BuildFatTree(FatTreeConfig{K: 8}) // 128 terminals
	if err != nil {
		t.Fatal(err)
	}
	rf, err := RunStencilOn(ft, StencilOpts{Grid: [3]int{4, 4, 4}, Mode: FullApp, Iterations: 1, Bytes: 10_000, Random: true})
	if err != nil {
		t.Fatalf("fattree: %v", err)
	}
	t.Logf("exec time: hyperx=%d dragonfly=%d fattree=%d", rh.ExecTime, rd.ExecTime, rf.ExecTime)
}
