package hyperx

import (
	"fmt"
	"strings"

	"hyperx/internal/topology"
)

// TableOne renders the paper's Table 1 (adaptive routing implementation
// comparison) from the live Meta() of each implemented algorithm, so the
// table can never drift from the code.
func TableOne() string {
	h := topology.MustHyperX([]int{8, 8, 8}, 8)
	cfg := Config{NumVCs: 8, OmniClasses: 8}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-9s %-12s %-8s %-38s %-38s %s\n",
		"Alg", "DimOrder", "Style", "VCs", "Deadlock", "ArchRequires", "PktContents")
	for _, name := range []string{"UGAL", "UGAL+", "DAL", "DimWAR", "OmniWAR"} {
		alg, err := NewAlgorithm(name, h, cfg)
		if err != nil {
			panic(err)
		}
		m := alg.Meta()
		dim := "no"
		if m.DimOrdered {
			dim = "yes"
		}
		fmt.Fprintf(&b, "%-8s %-9s %-12s %-8s %-38s %-38s %s\n",
			name, dim, m.Style, m.VCsRequired, m.Deadlock, m.ArchRequires, m.PktContents)
	}
	return b.String()
}
